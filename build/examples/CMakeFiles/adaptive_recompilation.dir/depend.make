# Empty dependencies file for adaptive_recompilation.
# This may be replaced when dependencies are built.
