file(REMOVE_RECURSE
  "CMakeFiles/adaptive_recompilation.dir/adaptive_recompilation.cpp.o"
  "CMakeFiles/adaptive_recompilation.dir/adaptive_recompilation.cpp.o.d"
  "adaptive_recompilation"
  "adaptive_recompilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_recompilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
