file(REMOVE_RECURSE
  "CMakeFiles/vector_addelement.dir/vector_addelement.cpp.o"
  "CMakeFiles/vector_addelement.dir/vector_addelement.cpp.o.d"
  "vector_addelement"
  "vector_addelement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_addelement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
