# Empty compiler generated dependencies file for vector_addelement.
# This may be replaced when dependencies are built.
