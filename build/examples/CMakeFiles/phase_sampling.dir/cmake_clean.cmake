file(REMOVE_RECURSE
  "CMakeFiles/phase_sampling.dir/phase_sampling.cpp.o"
  "CMakeFiles/phase_sampling.dir/phase_sampling.cpp.o.d"
  "phase_sampling"
  "phase_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
