# Empty dependencies file for phase_sampling.
# This may be replaced when dependencies are built.
