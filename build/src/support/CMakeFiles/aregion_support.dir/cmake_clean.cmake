file(REMOVE_RECURSE
  "CMakeFiles/aregion_support.dir/logging.cc.o"
  "CMakeFiles/aregion_support.dir/logging.cc.o.d"
  "CMakeFiles/aregion_support.dir/random.cc.o"
  "CMakeFiles/aregion_support.dir/random.cc.o.d"
  "CMakeFiles/aregion_support.dir/statistics.cc.o"
  "CMakeFiles/aregion_support.dir/statistics.cc.o.d"
  "CMakeFiles/aregion_support.dir/table.cc.o"
  "CMakeFiles/aregion_support.dir/table.cc.o.d"
  "libaregion_support.a"
  "libaregion_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
