# Empty dependencies file for aregion_support.
# This may be replaced when dependencies are built.
