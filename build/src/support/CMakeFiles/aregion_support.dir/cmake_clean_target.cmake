file(REMOVE_RECURSE
  "libaregion_support.a"
)
