file(REMOVE_RECURSE
  "CMakeFiles/aregion_runtime.dir/jit.cc.o"
  "CMakeFiles/aregion_runtime.dir/jit.cc.o.d"
  "CMakeFiles/aregion_runtime.dir/sampling.cc.o"
  "CMakeFiles/aregion_runtime.dir/sampling.cc.o.d"
  "libaregion_runtime.a"
  "libaregion_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
