
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/jit.cc" "src/runtime/CMakeFiles/aregion_runtime.dir/jit.cc.o" "gcc" "src/runtime/CMakeFiles/aregion_runtime.dir/jit.cc.o.d"
  "/root/repo/src/runtime/sampling.cc" "src/runtime/CMakeFiles/aregion_runtime.dir/sampling.cc.o" "gcc" "src/runtime/CMakeFiles/aregion_runtime.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aregion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aregion_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/aregion_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aregion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aregion_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aregion_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
