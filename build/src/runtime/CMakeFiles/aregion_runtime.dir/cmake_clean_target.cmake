file(REMOVE_RECURSE
  "libaregion_runtime.a"
)
