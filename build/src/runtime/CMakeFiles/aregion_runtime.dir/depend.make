# Empty dependencies file for aregion_runtime.
# This may be replaced when dependencies are built.
