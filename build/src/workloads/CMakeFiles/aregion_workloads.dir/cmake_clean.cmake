file(REMOVE_RECURSE
  "CMakeFiles/aregion_workloads.dir/antlr.cc.o"
  "CMakeFiles/aregion_workloads.dir/antlr.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/bloat.cc.o"
  "CMakeFiles/aregion_workloads.dir/bloat.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/fop.cc.o"
  "CMakeFiles/aregion_workloads.dir/fop.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/hsqldb.cc.o"
  "CMakeFiles/aregion_workloads.dir/hsqldb.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/jython.cc.o"
  "CMakeFiles/aregion_workloads.dir/jython.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/pmd.cc.o"
  "CMakeFiles/aregion_workloads.dir/pmd.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/workload.cc.o"
  "CMakeFiles/aregion_workloads.dir/workload.cc.o.d"
  "CMakeFiles/aregion_workloads.dir/xalan.cc.o"
  "CMakeFiles/aregion_workloads.dir/xalan.cc.o.d"
  "libaregion_workloads.a"
  "libaregion_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
