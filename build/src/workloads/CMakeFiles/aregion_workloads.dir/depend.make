# Empty dependencies file for aregion_workloads.
# This may be replaced when dependencies are built.
