file(REMOVE_RECURSE
  "libaregion_workloads.a"
)
