
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/antlr.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/antlr.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/antlr.cc.o.d"
  "/root/repo/src/workloads/bloat.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/bloat.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/bloat.cc.o.d"
  "/root/repo/src/workloads/fop.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/fop.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/fop.cc.o.d"
  "/root/repo/src/workloads/hsqldb.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/hsqldb.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/hsqldb.cc.o.d"
  "/root/repo/src/workloads/jython.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/jython.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/jython.cc.o.d"
  "/root/repo/src/workloads/pmd.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/pmd.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/pmd.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/xalan.cc" "src/workloads/CMakeFiles/aregion_workloads.dir/xalan.cc.o" "gcc" "src/workloads/CMakeFiles/aregion_workloads.dir/xalan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/aregion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aregion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aregion_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/aregion_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aregion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aregion_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aregion_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
