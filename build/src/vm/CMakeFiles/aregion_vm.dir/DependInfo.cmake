
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/builder.cc" "src/vm/CMakeFiles/aregion_vm.dir/builder.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/builder.cc.o.d"
  "/root/repo/src/vm/bytecode.cc" "src/vm/CMakeFiles/aregion_vm.dir/bytecode.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/bytecode.cc.o.d"
  "/root/repo/src/vm/heap.cc" "src/vm/CMakeFiles/aregion_vm.dir/heap.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/heap.cc.o.d"
  "/root/repo/src/vm/interpreter.cc" "src/vm/CMakeFiles/aregion_vm.dir/interpreter.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/interpreter.cc.o.d"
  "/root/repo/src/vm/profile.cc" "src/vm/CMakeFiles/aregion_vm.dir/profile.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/profile.cc.o.d"
  "/root/repo/src/vm/program.cc" "src/vm/CMakeFiles/aregion_vm.dir/program.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/program.cc.o.d"
  "/root/repo/src/vm/trap.cc" "src/vm/CMakeFiles/aregion_vm.dir/trap.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/trap.cc.o.d"
  "/root/repo/src/vm/verifier.cc" "src/vm/CMakeFiles/aregion_vm.dir/verifier.cc.o" "gcc" "src/vm/CMakeFiles/aregion_vm.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/aregion_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
