file(REMOVE_RECURSE
  "CMakeFiles/aregion_vm.dir/builder.cc.o"
  "CMakeFiles/aregion_vm.dir/builder.cc.o.d"
  "CMakeFiles/aregion_vm.dir/bytecode.cc.o"
  "CMakeFiles/aregion_vm.dir/bytecode.cc.o.d"
  "CMakeFiles/aregion_vm.dir/heap.cc.o"
  "CMakeFiles/aregion_vm.dir/heap.cc.o.d"
  "CMakeFiles/aregion_vm.dir/interpreter.cc.o"
  "CMakeFiles/aregion_vm.dir/interpreter.cc.o.d"
  "CMakeFiles/aregion_vm.dir/profile.cc.o"
  "CMakeFiles/aregion_vm.dir/profile.cc.o.d"
  "CMakeFiles/aregion_vm.dir/program.cc.o"
  "CMakeFiles/aregion_vm.dir/program.cc.o.d"
  "CMakeFiles/aregion_vm.dir/trap.cc.o"
  "CMakeFiles/aregion_vm.dir/trap.cc.o.d"
  "CMakeFiles/aregion_vm.dir/verifier.cc.o"
  "CMakeFiles/aregion_vm.dir/verifier.cc.o.d"
  "libaregion_vm.a"
  "libaregion_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
