file(REMOVE_RECURSE
  "libaregion_vm.a"
)
