# Empty dependencies file for aregion_vm.
# This may be replaced when dependencies are built.
