file(REMOVE_RECURSE
  "libaregion_core.a"
)
