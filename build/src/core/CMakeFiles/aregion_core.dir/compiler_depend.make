# Empty compiler generated dependencies file for aregion_core.
# This may be replaced when dependencies are built.
