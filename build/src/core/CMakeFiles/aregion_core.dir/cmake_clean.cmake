file(REMOVE_RECURSE
  "CMakeFiles/aregion_core.dir/adaptive.cc.o"
  "CMakeFiles/aregion_core.dir/adaptive.cc.o.d"
  "CMakeFiles/aregion_core.dir/compiler.cc.o"
  "CMakeFiles/aregion_core.dir/compiler.cc.o.d"
  "CMakeFiles/aregion_core.dir/lock_elision.cc.o"
  "CMakeFiles/aregion_core.dir/lock_elision.cc.o.d"
  "CMakeFiles/aregion_core.dir/postdom_check_elim.cc.o"
  "CMakeFiles/aregion_core.dir/postdom_check_elim.cc.o.d"
  "CMakeFiles/aregion_core.dir/region_formation.cc.o"
  "CMakeFiles/aregion_core.dir/region_formation.cc.o.d"
  "CMakeFiles/aregion_core.dir/safepoint_elision.cc.o"
  "CMakeFiles/aregion_core.dir/safepoint_elision.cc.o.d"
  "libaregion_core.a"
  "libaregion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
