
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/aregion_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/aregion_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/compiler.cc" "src/core/CMakeFiles/aregion_core.dir/compiler.cc.o" "gcc" "src/core/CMakeFiles/aregion_core.dir/compiler.cc.o.d"
  "/root/repo/src/core/lock_elision.cc" "src/core/CMakeFiles/aregion_core.dir/lock_elision.cc.o" "gcc" "src/core/CMakeFiles/aregion_core.dir/lock_elision.cc.o.d"
  "/root/repo/src/core/postdom_check_elim.cc" "src/core/CMakeFiles/aregion_core.dir/postdom_check_elim.cc.o" "gcc" "src/core/CMakeFiles/aregion_core.dir/postdom_check_elim.cc.o.d"
  "/root/repo/src/core/region_formation.cc" "src/core/CMakeFiles/aregion_core.dir/region_formation.cc.o" "gcc" "src/core/CMakeFiles/aregion_core.dir/region_formation.cc.o.d"
  "/root/repo/src/core/safepoint_elision.cc" "src/core/CMakeFiles/aregion_core.dir/safepoint_elision.cc.o" "gcc" "src/core/CMakeFiles/aregion_core.dir/safepoint_elision.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/aregion_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aregion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aregion_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aregion_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
