file(REMOVE_RECURSE
  "CMakeFiles/aregion_hw.dir/branch_predictor.cc.o"
  "CMakeFiles/aregion_hw.dir/branch_predictor.cc.o.d"
  "CMakeFiles/aregion_hw.dir/cache.cc.o"
  "CMakeFiles/aregion_hw.dir/cache.cc.o.d"
  "CMakeFiles/aregion_hw.dir/codegen.cc.o"
  "CMakeFiles/aregion_hw.dir/codegen.cc.o.d"
  "CMakeFiles/aregion_hw.dir/isa.cc.o"
  "CMakeFiles/aregion_hw.dir/isa.cc.o.d"
  "CMakeFiles/aregion_hw.dir/machine.cc.o"
  "CMakeFiles/aregion_hw.dir/machine.cc.o.d"
  "CMakeFiles/aregion_hw.dir/timing.cc.o"
  "CMakeFiles/aregion_hw.dir/timing.cc.o.d"
  "libaregion_hw.a"
  "libaregion_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
