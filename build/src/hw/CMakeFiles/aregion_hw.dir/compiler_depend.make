# Empty compiler generated dependencies file for aregion_hw.
# This may be replaced when dependencies are built.
