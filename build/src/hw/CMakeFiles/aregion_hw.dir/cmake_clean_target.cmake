file(REMOVE_RECURSE
  "libaregion_hw.a"
)
