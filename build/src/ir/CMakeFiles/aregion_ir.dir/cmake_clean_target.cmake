file(REMOVE_RECURSE
  "libaregion_ir.a"
)
