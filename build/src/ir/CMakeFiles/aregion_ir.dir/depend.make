# Empty dependencies file for aregion_ir.
# This may be replaced when dependencies are built.
