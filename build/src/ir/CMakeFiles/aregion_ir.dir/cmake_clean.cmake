file(REMOVE_RECURSE
  "CMakeFiles/aregion_ir.dir/cfg.cc.o"
  "CMakeFiles/aregion_ir.dir/cfg.cc.o.d"
  "CMakeFiles/aregion_ir.dir/dominators.cc.o"
  "CMakeFiles/aregion_ir.dir/dominators.cc.o.d"
  "CMakeFiles/aregion_ir.dir/evaluator.cc.o"
  "CMakeFiles/aregion_ir.dir/evaluator.cc.o.d"
  "CMakeFiles/aregion_ir.dir/ir.cc.o"
  "CMakeFiles/aregion_ir.dir/ir.cc.o.d"
  "CMakeFiles/aregion_ir.dir/loops.cc.o"
  "CMakeFiles/aregion_ir.dir/loops.cc.o.d"
  "CMakeFiles/aregion_ir.dir/printer.cc.o"
  "CMakeFiles/aregion_ir.dir/printer.cc.o.d"
  "CMakeFiles/aregion_ir.dir/translate.cc.o"
  "CMakeFiles/aregion_ir.dir/translate.cc.o.d"
  "CMakeFiles/aregion_ir.dir/verifier.cc.o"
  "CMakeFiles/aregion_ir.dir/verifier.cc.o.d"
  "libaregion_ir.a"
  "libaregion_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
