# Empty dependencies file for aregion_opt.
# This may be replaced when dependencies are built.
