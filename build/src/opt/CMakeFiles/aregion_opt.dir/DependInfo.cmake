
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/constant_fold.cc" "src/opt/CMakeFiles/aregion_opt.dir/constant_fold.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/constant_fold.cc.o.d"
  "/root/repo/src/opt/copy_prop.cc" "src/opt/CMakeFiles/aregion_opt.dir/copy_prop.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/copy_prop.cc.o.d"
  "/root/repo/src/opt/cse.cc" "src/opt/CMakeFiles/aregion_opt.dir/cse.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/cse.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/opt/CMakeFiles/aregion_opt.dir/dce.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/dce.cc.o.d"
  "/root/repo/src/opt/inliner.cc" "src/opt/CMakeFiles/aregion_opt.dir/inliner.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/inliner.cc.o.d"
  "/root/repo/src/opt/pass.cc" "src/opt/CMakeFiles/aregion_opt.dir/pass.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/pass.cc.o.d"
  "/root/repo/src/opt/simplify_cfg.cc" "src/opt/CMakeFiles/aregion_opt.dir/simplify_cfg.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/simplify_cfg.cc.o.d"
  "/root/repo/src/opt/unroll.cc" "src/opt/CMakeFiles/aregion_opt.dir/unroll.cc.o" "gcc" "src/opt/CMakeFiles/aregion_opt.dir/unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/aregion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aregion_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aregion_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
