file(REMOVE_RECURSE
  "libaregion_opt.a"
)
