file(REMOVE_RECURSE
  "CMakeFiles/aregion_opt.dir/constant_fold.cc.o"
  "CMakeFiles/aregion_opt.dir/constant_fold.cc.o.d"
  "CMakeFiles/aregion_opt.dir/copy_prop.cc.o"
  "CMakeFiles/aregion_opt.dir/copy_prop.cc.o.d"
  "CMakeFiles/aregion_opt.dir/cse.cc.o"
  "CMakeFiles/aregion_opt.dir/cse.cc.o.d"
  "CMakeFiles/aregion_opt.dir/dce.cc.o"
  "CMakeFiles/aregion_opt.dir/dce.cc.o.d"
  "CMakeFiles/aregion_opt.dir/inliner.cc.o"
  "CMakeFiles/aregion_opt.dir/inliner.cc.o.d"
  "CMakeFiles/aregion_opt.dir/pass.cc.o"
  "CMakeFiles/aregion_opt.dir/pass.cc.o.d"
  "CMakeFiles/aregion_opt.dir/simplify_cfg.cc.o"
  "CMakeFiles/aregion_opt.dir/simplify_cfg.cc.o.d"
  "CMakeFiles/aregion_opt.dir/unroll.cc.o"
  "CMakeFiles/aregion_opt.dir/unroll.cc.o.d"
  "libaregion_opt.a"
  "libaregion_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aregion_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
