# Empty compiler generated dependencies file for core_formation_detail_test.
# This may be replaced when dependencies are built.
