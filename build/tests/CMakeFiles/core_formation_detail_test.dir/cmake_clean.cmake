file(REMOVE_RECURSE
  "CMakeFiles/core_formation_detail_test.dir/core_formation_detail_test.cc.o"
  "CMakeFiles/core_formation_detail_test.dir/core_formation_detail_test.cc.o.d"
  "core_formation_detail_test"
  "core_formation_detail_test.pdb"
  "core_formation_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_formation_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
