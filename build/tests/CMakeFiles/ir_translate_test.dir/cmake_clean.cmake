file(REMOVE_RECURSE
  "CMakeFiles/ir_translate_test.dir/ir_translate_test.cc.o"
  "CMakeFiles/ir_translate_test.dir/ir_translate_test.cc.o.d"
  "ir_translate_test"
  "ir_translate_test.pdb"
  "ir_translate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
