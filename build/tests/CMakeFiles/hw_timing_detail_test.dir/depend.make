# Empty dependencies file for hw_timing_detail_test.
# This may be replaced when dependencies are built.
