file(REMOVE_RECURSE
  "CMakeFiles/hw_detail_test.dir/hw_detail_test.cc.o"
  "CMakeFiles/hw_detail_test.dir/hw_detail_test.cc.o.d"
  "hw_detail_test"
  "hw_detail_test.pdb"
  "hw_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
