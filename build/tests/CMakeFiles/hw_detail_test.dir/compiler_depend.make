# Empty compiler generated dependencies file for hw_detail_test.
# This may be replaced when dependencies are built.
