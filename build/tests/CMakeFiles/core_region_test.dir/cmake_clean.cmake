file(REMOVE_RECURSE
  "CMakeFiles/core_region_test.dir/core_region_test.cc.o"
  "CMakeFiles/core_region_test.dir/core_region_test.cc.o.d"
  "core_region_test"
  "core_region_test.pdb"
  "core_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
