# Empty dependencies file for ir_dominators_property_test.
# This may be replaced when dependencies are built.
