file(REMOVE_RECURSE
  "CMakeFiles/ir_dominators_property_test.dir/ir_dominators_property_test.cc.o"
  "CMakeFiles/ir_dominators_property_test.dir/ir_dominators_property_test.cc.o.d"
  "ir_dominators_property_test"
  "ir_dominators_property_test.pdb"
  "ir_dominators_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_dominators_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
