# Empty dependencies file for opt_constfold_detail_test.
# This may be replaced when dependencies are built.
