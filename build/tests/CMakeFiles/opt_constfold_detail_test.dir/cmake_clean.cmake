file(REMOVE_RECURSE
  "CMakeFiles/opt_constfold_detail_test.dir/opt_constfold_detail_test.cc.o"
  "CMakeFiles/opt_constfold_detail_test.dir/opt_constfold_detail_test.cc.o.d"
  "opt_constfold_detail_test"
  "opt_constfold_detail_test.pdb"
  "opt_constfold_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_constfold_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
