file(REMOVE_RECURSE
  "CMakeFiles/vm_builder_test.dir/vm_builder_test.cc.o"
  "CMakeFiles/vm_builder_test.dir/vm_builder_test.cc.o.d"
  "vm_builder_test"
  "vm_builder_test.pdb"
  "vm_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
