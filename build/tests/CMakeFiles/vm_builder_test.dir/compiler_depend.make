# Empty compiler generated dependencies file for vm_builder_test.
# This may be replaced when dependencies are built.
