file(REMOVE_RECURSE
  "CMakeFiles/hw_timing_test.dir/hw_timing_test.cc.o"
  "CMakeFiles/hw_timing_test.dir/hw_timing_test.cc.o.d"
  "hw_timing_test"
  "hw_timing_test.pdb"
  "hw_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
