# Empty dependencies file for hw_timing_test.
# This may be replaced when dependencies are built.
