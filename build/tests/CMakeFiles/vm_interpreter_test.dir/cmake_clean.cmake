file(REMOVE_RECURSE
  "CMakeFiles/vm_interpreter_test.dir/vm_interpreter_test.cc.o"
  "CMakeFiles/vm_interpreter_test.dir/vm_interpreter_test.cc.o.d"
  "vm_interpreter_test"
  "vm_interpreter_test.pdb"
  "vm_interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
