file(REMOVE_RECURSE
  "CMakeFiles/vm_threads_test.dir/vm_threads_test.cc.o"
  "CMakeFiles/vm_threads_test.dir/vm_threads_test.cc.o.d"
  "vm_threads_test"
  "vm_threads_test.pdb"
  "vm_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
