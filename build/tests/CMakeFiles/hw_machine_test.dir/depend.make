# Empty dependencies file for hw_machine_test.
# This may be replaced when dependencies are built.
