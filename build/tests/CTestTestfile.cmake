# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/vm_builder_test[1]_include.cmake")
include("/root/repo/build/tests/vm_interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/vm_threads_test[1]_include.cmake")
include("/root/repo/build/tests/ir_structure_test[1]_include.cmake")
include("/root/repo/build/tests/ir_translate_test[1]_include.cmake")
include("/root/repo/build/tests/opt_passes_test[1]_include.cmake")
include("/root/repo/build/tests/core_region_test[1]_include.cmake")
include("/root/repo/build/tests/hw_machine_test[1]_include.cmake")
include("/root/repo/build/tests/hw_timing_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/opt_cse_detail_test[1]_include.cmake")
include("/root/repo/build/tests/hw_detail_test[1]_include.cmake")
include("/root/repo/build/tests/core_formation_detail_test[1]_include.cmake")
include("/root/repo/build/tests/figure_shape_test[1]_include.cmake")
include("/root/repo/build/tests/opt_constfold_detail_test[1]_include.cmake")
include("/root/repo/build/tests/ir_dominators_property_test[1]_include.cmake")
include("/root/repo/build/tests/opt_inliner_detail_test[1]_include.cmake")
include("/root/repo/build/tests/hw_timing_detail_test[1]_include.cmake")
