file(REMOVE_RECURSE
  "CMakeFiles/table3_regions.dir/table3_regions.cc.o"
  "CMakeFiles/table3_regions.dir/table3_regions.cc.o.d"
  "table3_regions"
  "table3_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
