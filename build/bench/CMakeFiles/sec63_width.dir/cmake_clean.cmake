file(REMOVE_RECURSE
  "CMakeFiles/sec63_width.dir/sec63_width.cc.o"
  "CMakeFiles/sec63_width.dir/sec63_width.cc.o.d"
  "sec63_width"
  "sec63_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
