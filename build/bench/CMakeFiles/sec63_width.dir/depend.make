# Empty dependencies file for sec63_width.
# This may be replaced when dependencies are built.
