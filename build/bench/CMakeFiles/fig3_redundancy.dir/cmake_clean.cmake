file(REMOVE_RECURSE
  "CMakeFiles/fig3_redundancy.dir/fig3_redundancy.cc.o"
  "CMakeFiles/fig3_redundancy.dir/fig3_redundancy.cc.o.d"
  "fig3_redundancy"
  "fig3_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
