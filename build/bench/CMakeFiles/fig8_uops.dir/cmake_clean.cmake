file(REMOVE_RECURSE
  "CMakeFiles/fig8_uops.dir/fig8_uops.cc.o"
  "CMakeFiles/fig8_uops.dir/fig8_uops.cc.o.d"
  "fig8_uops"
  "fig8_uops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_uops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
