# Empty dependencies file for fig8_uops.
# This may be replaced when dependencies are built.
