# Empty compiler generated dependencies file for sec62_footprint.
# This may be replaced when dependencies are built.
