file(REMOVE_RECURSE
  "CMakeFiles/sec62_footprint.dir/sec62_footprint.cc.o"
  "CMakeFiles/sec62_footprint.dir/sec62_footprint.cc.o.d"
  "sec62_footprint"
  "sec62_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
