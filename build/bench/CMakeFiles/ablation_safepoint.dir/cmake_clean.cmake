file(REMOVE_RECURSE
  "CMakeFiles/ablation_safepoint.dir/ablation_safepoint.cc.o"
  "CMakeFiles/ablation_safepoint.dir/ablation_safepoint.cc.o.d"
  "ablation_safepoint"
  "ablation_safepoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_safepoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
