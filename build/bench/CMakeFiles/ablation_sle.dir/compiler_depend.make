# Empty compiler generated dependencies file for ablation_sle.
# This may be replaced when dependencies are built.
