file(REMOVE_RECURSE
  "CMakeFiles/ablation_sle.dir/ablation_sle.cc.o"
  "CMakeFiles/ablation_sle.dir/ablation_sle.cc.o.d"
  "ablation_sle"
  "ablation_sle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
