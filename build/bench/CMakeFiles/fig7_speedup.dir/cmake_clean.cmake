file(REMOVE_RECURSE
  "CMakeFiles/fig7_speedup.dir/fig7_speedup.cc.o"
  "CMakeFiles/fig7_speedup.dir/fig7_speedup.cc.o.d"
  "fig7_speedup"
  "fig7_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
