file(REMOVE_RECURSE
  "CMakeFiles/simulator_throughput.dir/simulator_throughput.cc.o"
  "CMakeFiles/simulator_throughput.dir/simulator_throughput.cc.o.d"
  "simulator_throughput"
  "simulator_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
