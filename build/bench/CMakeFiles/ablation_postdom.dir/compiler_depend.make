# Empty compiler generated dependencies file for ablation_postdom.
# This may be replaced when dependencies are built.
