file(REMOVE_RECURSE
  "CMakeFiles/ablation_postdom.dir/ablation_postdom.cc.o"
  "CMakeFiles/ablation_postdom.dir/ablation_postdom.cc.o.d"
  "ablation_postdom"
  "ablation_postdom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_postdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
