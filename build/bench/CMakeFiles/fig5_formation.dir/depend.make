# Empty dependencies file for fig5_formation.
# This may be replaced when dependencies are built.
