file(REMOVE_RECURSE
  "CMakeFiles/fig5_formation.dir/fig5_formation.cc.o"
  "CMakeFiles/fig5_formation.dir/fig5_formation.cc.o.d"
  "fig5_formation"
  "fig5_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
