/**
 * @file
 * Fine-grained GVN semantics tests built on hand-constructed IR:
 * commutative canonicalization, store-to-load forwarding, the
 * memory-kill rules (stores by field, calls, monitors, safepoints),
 * and the region-isolation refinement the paper's third bullet
 * promises (monitors/safepoints inside regions do not invalidate
 * loads).
 *
 * These scenarios carried over from the old available-expressions CSE
 * pass verbatim: GVN must preserve its kill semantics exactly — only
 * the cost model changed.
 */

#include <gtest/gtest.h>

#include "ir/ssa.hh"
#include "ir/verifier.hh"
#include "opt/pass.hh"

namespace {

using namespace aregion::ir;
namespace opt = aregion::opt;

/** Single-block function builder for kill-rule tests. */
class BlockBuilder
{
  public:
    BlockBuilder()
    {
        block = &func.newBlock();
        func.entry = block->id;
    }

    Vreg
    vreg()
    {
        return func.newVreg();
    }

    Instr &
    add(Op op, Vreg dst, std::vector<Vreg> srcs, int64_t imm = 0,
        int aux = 0)
    {
        Instr in;
        in.op = op;
        in.dst = dst;
        in.srcs = std::move(srcs);
        in.imm = imm;
        in.aux = aux;
        block->instrs.push_back(std::move(in));
        return block->instrs.back();
    }

    Function &
    finish(std::vector<Vreg> keep_alive = {})
    {
        for (Vreg v : keep_alive)
            add(Op::Print, NO_VREG, {v});
        add(Op::Ret, NO_VREG, {});
        verifyOrDie(func);
        return func;
    }

    int
    count(Op op) const
    {
        int n = 0;
        for (int b : func.reversePostOrder()) {
            for (const auto &in : func.block(b).instrs)
                n += in.op == op;
        }
        return n;
    }

    Function func;
    Block *block;
};

/** GVN + cleanup on SSA form (the builder's single-def IR round-trips
 *  losslessly). No trailing verify: some scenarios tag a bare block
 *  with a region id without registering a RegionInfo, which
 *  compact() then clears. */
void
runGvn(Function &f)
{
    buildSSA(f);
    opt::gvn(f);
    opt::deadCodeElim(f);
    destroySSA(f);
}

TEST(GvnDetail, CommutativeOperandsCanonicalize)
{
    BlockBuilder b;
    const Vreg x = b.vreg();
    const Vreg y = b.vreg();
    const Vreg a = b.vreg();
    const Vreg c = b.vreg();
    b.add(Op::Const, x, {}, 3);
    b.add(Op::Const, y, {}, 4);
    b.add(Op::Add, a, {x, y});
    b.add(Op::Add, c, {y, x});     // same expression, swapped
    Function &f = b.finish({a, c});
    runGvn(f);
    EXPECT_EQ(b.count(Op::Add), 1);
}

TEST(GvnDetail, NonCommutativeOperandsDoNot)
{
    BlockBuilder b;
    const Vreg x = b.vreg();
    const Vreg y = b.vreg();
    const Vreg a = b.vreg();
    const Vreg c = b.vreg();
    b.add(Op::Const, x, {}, 3);
    b.add(Op::Const, y, {}, 4);
    b.add(Op::Sub, a, {x, y});
    b.add(Op::Sub, c, {y, x});
    Function &f = b.finish({a, c});
    runGvn(f);
    EXPECT_EQ(b.count(Op::Sub), 2);
}

TEST(GvnDetail, StoreToLoadForwardingRemovesLoad)
{
    BlockBuilder b;
    const Vreg obj = b.vreg();
    const Vreg v = b.vreg();
    const Vreg out = b.vreg();
    b.add(Op::Const, obj, {}, 100);
    b.add(Op::Const, v, {}, 7);
    b.add(Op::StoreField, NO_VREG, {obj, v}, 0, 2);
    b.add(Op::LoadField, out, {obj}, 0, 2);
    Function &f = b.finish({out});
    runGvn(f);
    EXPECT_EQ(b.count(Op::LoadField), 0);
}

TEST(GvnDetail, StoreToSameFieldKillsOtherBasesLoads)
{
    BlockBuilder b;
    const Vreg p = b.vreg();
    const Vreg q = b.vreg();
    const Vreg v = b.vreg();
    const Vreg l1 = b.vreg();
    const Vreg l2 = b.vreg();
    b.add(Op::Const, p, {}, 100);
    b.add(Op::Const, q, {}, 200);
    b.add(Op::Const, v, {}, 1);
    b.add(Op::LoadField, l1, {p}, 0, 3);
    b.add(Op::StoreField, NO_VREG, {q, v}, 0, 3);  // may alias p
    b.add(Op::LoadField, l2, {p}, 0, 3);
    Function &f = b.finish({l1, l2});
    runGvn(f);
    EXPECT_EQ(b.count(Op::LoadField), 2);
}

TEST(GvnDetail, StoreToDifferentFieldPreservesLoads)
{
    BlockBuilder b;
    const Vreg p = b.vreg();
    const Vreg v = b.vreg();
    const Vreg l1 = b.vreg();
    const Vreg l2 = b.vreg();
    b.add(Op::Const, p, {}, 100);
    b.add(Op::Const, v, {}, 1);
    b.add(Op::LoadField, l1, {p}, 0, 3);
    b.add(Op::StoreField, NO_VREG, {p, v}, 0, 4);  // disjoint field
    b.add(Op::LoadField, l2, {p}, 0, 3);
    Function &f = b.finish({l1, l2});
    runGvn(f);
    EXPECT_EQ(b.count(Op::LoadField), 1);
}

TEST(GvnDetail, CallsKillAllLoads)
{
    BlockBuilder b;
    const Vreg p = b.vreg();
    const Vreg l1 = b.vreg();
    const Vreg l2 = b.vreg();
    b.add(Op::Const, p, {}, 100);
    b.add(Op::LoadField, l1, {p}, 0, 3);
    b.add(Op::CallStatic, NO_VREG, {}, 0, 0);
    b.add(Op::LoadField, l2, {p}, 0, 3);
    Function &f = b.finish({l1, l2});
    runGvn(f);
    EXPECT_EQ(b.count(Op::LoadField), 2);
}

TEST(GvnDetail, ChecksSurviveCalls)
{
    // NullCheck is a register property; a call cannot invalidate it.
    BlockBuilder b;
    const Vreg p = b.vreg();
    b.add(Op::Const, p, {}, 100);
    b.add(Op::NullCheck, NO_VREG, {p});
    b.add(Op::CallStatic, NO_VREG, {}, 0, 0);
    b.add(Op::NullCheck, NO_VREG, {p});
    Function &f = b.finish();
    runGvn(f);
    EXPECT_EQ(b.count(Op::NullCheck), 1);
}

/** Monitors/safepoints: loads die outside regions, survive inside. */
class IsolationKillTest : public ::testing::TestWithParam<Op>
{
};

TEST_P(IsolationKillTest, KillsLoadsOnlyOutsideRegions)
{
    for (bool in_region : {false, true}) {
        BlockBuilder b;
        const Vreg p = b.vreg();
        const Vreg l1 = b.vreg();
        const Vreg l2 = b.vreg();
        b.add(Op::Const, p, {}, 100);
        b.add(Op::LoadField, l1, {p}, 0, 3);
        if (GetParam() == Op::Safepoint)
            b.add(Op::Safepoint, NO_VREG, {});
        else
            b.add(GetParam(), NO_VREG, {p});
        b.add(Op::LoadField, l2, {p}, 0, 3);
        Function &f = b.finish({l1, l2});
        if (in_region) {
            // Mark the block as region code. The region must be
            // registered: compact() (run by SSA build/destroy)
            // clears region tags with no backing RegionInfo.
            b.block->regionId = 0;
            RegionInfo r;
            r.id = 0;
            r.entryBlock = b.block->id;
            r.altBlock = b.block->id;
            f.regions.push_back(r);
        }
        runGvn(f);
        EXPECT_EQ(b.count(Op::LoadField), in_region ? 1 : 2)
            << opName(GetParam()) << " in_region=" << in_region;
        b.block->regionId = -1;
    }
}

INSTANTIATE_TEST_SUITE_P(IsolationOps, IsolationKillTest,
                         ::testing::Values(Op::MonitorEnter,
                                           Op::MonitorExit,
                                           Op::Safepoint));

TEST(GvnDetail, RedundantAssertsCollapseRespectingPolarity)
{
    BlockBuilder b;
    const Vreg c = b.vreg();
    b.add(Op::Const, c, {}, 0);
    b.block->regionId = 0;
    b.add(Op::Assert, NO_VREG, {c}, 0, 1);
    b.add(Op::Assert, NO_VREG, {c}, 0, 2);   // same polarity: dup
    b.add(Op::Assert, NO_VREG, {c}, 1, 3);   // inverted: distinct
    Function &f = b.finish();
    runGvn(f);
    EXPECT_EQ(b.count(Op::Assert), 2);
    b.block->regionId = -1;
}

TEST(GvnDetail, LoadElemKilledByAnyElementStore)
{
    BlockBuilder b;
    const Vreg arr = b.vreg();
    const Vreg i = b.vreg();
    const Vreg j = b.vreg();
    const Vreg v = b.vreg();
    const Vreg l1 = b.vreg();
    const Vreg l2 = b.vreg();
    b.add(Op::Const, arr, {}, 100);
    b.add(Op::Const, i, {}, 1);
    b.add(Op::Const, j, {}, 2);
    b.add(Op::Const, v, {}, 9);
    b.add(Op::LoadElem, l1, {arr, i});
    b.add(Op::StoreElem, NO_VREG, {arr, j, v});    // may alias i
    b.add(Op::LoadElem, l2, {arr, i});
    Function &f = b.finish({l1, l2});
    runGvn(f);
    EXPECT_EQ(b.count(Op::LoadElem), 2);
}

TEST(GvnDetail, AllocationDoesNotKillLoads)
{
    BlockBuilder b;
    const Vreg p = b.vreg();
    const Vreg fresh = b.vreg();
    const Vreg l1 = b.vreg();
    const Vreg l2 = b.vreg();
    b.add(Op::Const, p, {}, 100);
    b.add(Op::LoadField, l1, {p}, 0, 3);
    b.add(Op::NewObject, fresh, {}, 0, 0);
    b.add(Op::LoadField, l2, {p}, 0, 3);
    Function &f = b.finish({l1, l2, fresh});
    runGvn(f);
    EXPECT_EQ(b.count(Op::LoadField), 1);
}

} // namespace
