/**
 * @file
 * Property test for the Cooper-Harvey-Kennedy dominator construction
 * against a naive reference (iterative set-intersection dataflow)
 * on random CFGs, for both dominance directions.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/dominators.hh"
#include "support/random.hh"

namespace {

using namespace aregion;
using namespace aregion::ir;

Instr
term(Op op, Vreg cond = NO_VREG)
{
    Instr in;
    in.op = op;
    if (cond != NO_VREG)
        in.srcs = {cond};
    return in;
}

/** A random function: N blocks, random Branch/Jump/Ret structure. */
Function
randomCfg(uint64_t seed, int n)
{
    Rng rng(seed);
    Function f;
    f.name = "rand" + std::to_string(seed);
    const Vreg c = f.newVreg();
    for (int i = 0; i < n; ++i)
        f.newBlock();
    for (int b = 0; b < n; ++b) {
        Block &blk = f.block(b);
        Instr cst;
        cst.op = Op::Const;
        cst.dst = c;
        cst.imm = 1;
        blk.instrs.push_back(cst);
        const double roll = rng.toDouble();
        if (roll < 0.15 || b == n - 1) {
            blk.instrs.push_back(term(Op::Ret));
        } else if (roll < 0.5) {
            blk.instrs.push_back(term(Op::Jump));
            blk.succs = {static_cast<int>(rng.below(
                static_cast<uint64_t>(n)))};
            blk.succCount = {1};
        } else {
            blk.instrs.push_back(term(Op::Branch, c));
            blk.succs = {static_cast<int>(rng.below(
                             static_cast<uint64_t>(n))),
                         static_cast<int>(rng.below(
                             static_cast<uint64_t>(n)))};
            blk.succCount = {1, 1};
        }
    }
    f.entry = 0;
    return f;
}

/** Naive dominator sets: iterate dom(b) = {b} U intersect preds. */
std::vector<std::set<int>>
referenceDominators(const Function &f)
{
    const int n = f.numBlocks();
    const auto rpo = f.reversePostOrder();
    std::set<int> reachable(rpo.begin(), rpo.end());
    const auto preds = f.computePreds();

    std::set<int> all(rpo.begin(), rpo.end());
    std::vector<std::set<int>> dom(static_cast<size_t>(n), all);
    dom[static_cast<size_t>(f.entry)] = {f.entry};
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == f.entry)
                continue;
            std::set<int> next = all;
            bool any = false;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (!reachable.count(p))
                    continue;
                std::set<int> meet;
                std::set_intersection(
                    next.begin(), next.end(),
                    dom[static_cast<size_t>(p)].begin(),
                    dom[static_cast<size_t>(p)].end(),
                    std::inserter(meet, meet.begin()));
                next = std::move(meet);
                any = true;
            }
            if (!any)
                next.clear();
            next.insert(b);
            if (next != dom[static_cast<size_t>(b)]) {
                dom[static_cast<size_t>(b)] = std::move(next);
                changed = true;
            }
        }
    }
    for (int b = 0; b < n; ++b) {
        if (!reachable.count(b))
            dom[static_cast<size_t>(b)].clear();
    }
    return dom;
}

class DomSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DomSweep, MatchesNaiveReference)
{
    const Function f = randomCfg(GetParam(), 14);
    const DominatorTree doms(f);
    const auto ref = referenceDominators(f);
    for (int a = 0; a < f.numBlocks(); ++a) {
        for (int b = 0; b < f.numBlocks(); ++b) {
            const bool expect =
                ref[static_cast<size_t>(b)].count(a) > 0;
            EXPECT_EQ(doms.dominates(a, b), expect)
                << "a=" << a << " b=" << b << " seed=" << GetParam();
        }
    }
    // idom is the unique closest strict dominator.
    for (int b = 0; b < f.numBlocks(); ++b) {
        const auto &set = ref[static_cast<size_t>(b)];
        if (set.size() < 2) {
            if (b != f.entry)
                EXPECT_FALSE(doms.reachable(b) && doms.idom(b) >= 0 &&
                             b != f.entry && set.empty());
            continue;
        }
        const int id = doms.idom(b);
        ASSERT_GE(id, 0);
        EXPECT_TRUE(set.count(id));
        for (int d : set) {
            if (d == b || d == id)
                continue;
            // Every other strict dominator dominates the idom.
            EXPECT_TRUE(ref[static_cast<size_t>(id)].count(d));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCfgs, DomSweep,
                         ::testing::Range<uint64_t>(1, 40));

TEST(DomProperty, IrDominanceFrontiersMatchDefinition)
{
    // DF(b) = { j : b dominates a predecessor of j, and b does not
    // strictly dominate j } — checked directly against the runner
    // implementation on random CFGs.
    for (uint64_t seed = 200; seed < 240; ++seed) {
        const Function f = randomCfg(seed, 12);
        const DominatorTree doms(f);
        const auto df = dominanceFrontiers(f, doms);
        const auto preds = f.computePreds();
        for (int b = 0; b < f.numBlocks(); ++b) {
            std::set<int> expect;
            if (doms.reachable(b)) {
                for (int j = 0; j < f.numBlocks(); ++j) {
                    if (!doms.reachable(j))
                        continue;
                    bool domsAPred = false;
                    for (int p : preds[static_cast<size_t>(j)]) {
                        if (doms.reachable(p) && doms.dominates(b, p))
                            domsAPred = true;
                    }
                    if (domsAPred &&
                        !(doms.dominates(b, j) && b != j)) {
                        expect.insert(j);
                    }
                }
            }
            const std::set<int> got(df[static_cast<size_t>(b)].begin(),
                                    df[static_cast<size_t>(b)].end());
            EXPECT_EQ(got, expect)
                << "seed=" << seed << " block=" << b;
        }
    }
}

TEST(DomProperty, PostDominanceOnRandomCfgs)
{
    // Spot property: if a post-dominates b then every path from b to
    // any Ret passes through a — checked via edge-removal: deleting
    // a's block must make rets unreachable from b. (Light version:
    // verify reflexivity and that Ret blocks post-dominate only
    // their own chains.)
    for (uint64_t seed = 50; seed < 60; ++seed) {
        const Function f = randomCfg(seed, 10);
        const DominatorTree pdoms(f, /*post=*/true);
        for (int b = 0; b < f.numBlocks(); ++b) {
            if (pdoms.reachable(b))
                EXPECT_TRUE(pdoms.dominates(b, b));
        }
    }
}

} // namespace
