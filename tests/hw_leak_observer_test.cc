/**
 * @file
 * Aborted-work leakage observer tests (timing.hh leakObserver mode).
 *
 * Architecturally an abort is perfect — the rollback oracles prove
 * it — but the discarded uops still ran through the cache and branch
 * predictor. The observer records the microarchitectural footprint
 * of every discarded region attempt and diffs it against the
 * committed replay of the same region; whatever only the dead
 * attempt touched is input-dependent residue a prober could read
 * back. These tests drive it with hand-assembled secret-dependent
 * regions, the machine.inject.leak planted bug, and an inertness
 * check (the observer must never change modelled time).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hw/machine.hh"
#include "hw/timing.hh"
#include "support/failpoint.hh"
#include "vm/builder.hh"

namespace {

using namespace aregion;
namespace hw = aregion::hw;
namespace fp = aregion::failpoint;

/** Hand-assemble a machine program around one main function. */
struct Assembler
{
    explicit Assembler(const vm::Program &prog) { mp.prog = &prog; }

    hw::MachineFunction &
    func(vm::MethodId m, int num_args, int num_regs)
    {
        hw::MachineFunction f;
        f.methodId = m;
        f.name = "asm" + std::to_string(m);
        f.numArgs = num_args;
        f.numRegs = num_regs;
        auto [it, ok] = mp.funcs.emplace(m, std::move(f));
        (void)ok;
        return it->second;
    }

    static hw::MUop
    uop(hw::MKind kind, hw::MReg dst = hw::NO_MREG,
        std::vector<hw::MReg> srcs = {}, int64_t imm = 0,
        int aux = 0, int target = -1)
    {
        hw::MUop u;
        u.kind = kind;
        u.dst = dst;
        u.srcs = std::move(srcs);
        u.imm = imm;
        u.aux = aux;
        u.target = target;
        return u;
    }

    hw::MachineProgram mp;
};

vm::Program
shellProgram()
{
    vm::ProgramBuilder pb;
    const vm::MethodId id = pb.declareMethod("m0", 0);
    auto mb = pb.define(id);
    mb.retVoid();
    mb.finish();
    pb.setMain(id);
    return pb.build();
}

/**
 * A region that speculatively loads `array[secret_off]`, then
 * aborts. When `alt_loads_too` the alternate path performs the same
 * load — the committed replay then covers the aborted footprint and
 * there is nothing left to leak.
 *
 *   0: Imm   r4 = 2048
 *   1: Alloc r1 = alloc(2048)
 *   2: Imm   r5 = secret_off
 *   3: Alu   r1 = r1 + r5
 *   4: ABegin (alt = 7)
 *   5: Load  r2 = mem[r1]     <- discarded secret-dependent access
 *   6: AAbort id=1
 *   7: Load  r3 = mem[r1]     (only when alt_loads_too; else Imm)
 *   8: Print r3
 *   9: Ret
 */
void
secretRegion(Assembler &as, int64_t secret_off, bool alt_loads_too)
{
    auto &f = as.func(0, 0, 8);
    using K = hw::MKind;
    f.code = {
        Assembler::uop(K::Imm, 4, {}, 2048),
        Assembler::uop(K::Alloc, 1, {4}, 1),
        Assembler::uop(K::Imm, 5, {}, secret_off),
        Assembler::uop(K::Alu, 1, {1, 5}),
        Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 7),
        Assembler::uop(K::Load, 2, {1}),
        Assembler::uop(K::AAbort, hw::NO_MREG, {}, 0, 1),
        // alt (offset 7):
        alt_loads_too ? Assembler::uop(K::Load, 3, {1})
                      : Assembler::uop(K::Imm, 3, {}, 5),
        Assembler::uop(K::Print, hw::NO_MREG, {3}),
        Assembler::uop(K::Ret),
    };
}

struct LeakRun
{
    hw::MachineResult result;
    std::vector<hw::TimingModel::RegionLeak> report;
    uint64_t cycles = 0;
    uint64_t uops = 0;
};

LeakRun
runWithObserver(const hw::MachineProgram &mp, bool observer_on)
{
    hw::TimingConfig cfg = hw::TimingConfig::baseline();
    cfg.leakObserver = observer_on;
    hw::TimingModel tm(cfg);
    hw::Machine machine(mp, hw::HwConfig{}, &tm);
    LeakRun run;
    run.result = machine.run();
    run.report = tm.leakReport();
    run.cycles = tm.cycles();
    run.uops = tm.uopCount;
    return run;
}

class LeakObserverTest : public ::testing::Test
{
  protected:
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

/** The aborted attempt's load shows up as leaked residue: the line
 *  it touched is in no committed execution's footprint, and which
 *  line leaks follows the secret address — exactly the property a
 *  cache-probing observer exploits. */
TEST_F(LeakObserverTest, AbortedLoadLeaksItsSecretDependentLine)
{
    const vm::Program shell = shellProgram();
    auto leakedLinesFor = [&](int64_t secret_off) {
        Assembler as(shell);
        secretRegion(as, secret_off, false);
        const LeakRun run = runWithObserver(as.mp, true);
        EXPECT_TRUE(run.result.completed);
        EXPECT_EQ(run.result.regionAborts, 1u);
        std::vector<uint64_t> lines;
        for (const auto &leak : run.report) {
            EXPECT_EQ(leak.abortedAttempts, 1u);
            if (leak.leaky())
                lines.insert(lines.end(), leak.leakedLines.begin(),
                             leak.leakedLines.end());
        }
        return lines;
    };

    const std::vector<uint64_t> low = leakedLinesFor(64);
    ASSERT_EQ(low.size(), 1u);

    const std::vector<uint64_t> high = leakedLinesFor(768);
    ASSERT_EQ(high.size(), 1u);
    EXPECT_NE(low[0], high[0]);     // residue is input-dependent
}

/** When the alternate path performs the same load, the committed
 *  replay covers the aborted footprint — no leak. The replay-window
 *  attribution (timing.hh) is what makes this distinction. */
TEST_F(LeakObserverTest, CoveredAbortedLoadIsNotALeak)
{
    const vm::Program shell = shellProgram();
    Assembler as(shell);
    secretRegion(as, 64, true);
    const LeakRun run = runWithObserver(as.mp, true);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.regionAborts, 1u);
    for (const auto &leak : run.report)
        EXPECT_FALSE(leak.leaky())
            << "line " << (leak.leakedLines.empty()
                               ? leak.leakedBranchEntries.front()
                               : leak.leakedLines.front());
}

/** A region with no memory traffic at all leaves no residue. */
void
loadlessRegion(Assembler &as)
{
    auto &f = as.func(0, 0, 4);
    using K = hw::MKind;
    f.code = {
        Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 3),
        Assembler::uop(K::Imm, 0, {}, 1),
        Assembler::uop(K::AAbort, hw::NO_MREG, {}, 0, 2),
        // alt (offset 3):
        Assembler::uop(K::Imm, 0, {}, 2),
        Assembler::uop(K::Print, hw::NO_MREG, {0}),
        Assembler::uop(K::Ret),
    };
}

/** Negative self-test: the machine.inject.leak failpoint streams a
 *  synthetic discarded load (payload = word address) into the dying
 *  attempt, exactly as a hardware bug that let one speculative
 *  access escape the flush would. The observer must flag its line. */
TEST_F(LeakObserverTest, InjectedLeakIsDetected)
{
    const vm::Program shell = shellProgram();

    // Unarmed control: the loadless region is clean.
    {
        Assembler as(shell);
        loadlessRegion(as);
        const LeakRun run = runWithObserver(as.mp, true);
        ASSERT_TRUE(run.result.completed);
        EXPECT_EQ(run.result.injectedLeaks, 0u);
        for (const auto &leak : run.report)
            EXPECT_FALSE(leak.leaky());
    }

    auto &fps = fp::Registry::global();
    fps.disarmAll();
    fps.setSeed(3);
    std::string err;
    ASSERT_GE(fps.configure("machine.inject.leak:p1=9000", &err), 0)
        << err;

    Assembler as(shell);
    loadlessRegion(as);
    const LeakRun run = runWithObserver(as.mp, true);
    fps.disarmAll();
    ASSERT_TRUE(run.result.completed);
    EXPECT_GE(run.result.injectedLeaks, 1u);

    bool flagged = false;
    for (const auto &leak : run.report) {
        for (uint64_t line : leak.leakedLines)
            flagged = flagged || line == 9000u / 8;
    }
    EXPECT_TRUE(flagged)
        << "planted discarded load of word 9000 not flagged";
}

/** Observation only: enabling the observer must not move a single
 *  cycle, and disabled runs must report nothing. */
TEST_F(LeakObserverTest, ObserverIsInert)
{
    const vm::Program shell = shellProgram();
    Assembler as_on(shell);
    secretRegion(as_on, 64, false);
    Assembler as_off(shell);
    secretRegion(as_off, 64, false);

    const LeakRun on = runWithObserver(as_on.mp, true);
    const LeakRun off = runWithObserver(as_off.mp, false);

    ASSERT_TRUE(on.result.completed);
    ASSERT_TRUE(off.result.completed);
    EXPECT_EQ(on.result.output, off.result.output);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.uops, off.uops);
    EXPECT_FALSE(on.report.empty());
    EXPECT_TRUE(off.report.empty());
}

} // namespace
