#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "support/failpoint.hh"

namespace fp = aregion::failpoint;

namespace {

// Tests share the global registry; keep each one hermetic.
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::Registry::global().disarmAll(); }
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

TEST_F(FailpointTest, ParseProbability)
{
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("p0.25", &spec, &err)) << err;
    EXPECT_EQ(spec.trigger, fp::Trigger::Probability);
    EXPECT_DOUBLE_EQ(spec.probability, 0.25);
    EXPECT_EQ(spec.value, 0);
}

TEST_F(FailpointTest, ParseEveryNth)
{
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("n100", &spec, &err)) << err;
    EXPECT_EQ(spec.trigger, fp::Trigger::EveryNth);
    EXPECT_EQ(spec.n, 100u);
}

TEST_F(FailpointTest, ParseOneShotWithPayload)
{
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("once5=-24", &spec, &err)) << err;
    EXPECT_EQ(spec.trigger, fp::Trigger::OneShot);
    EXPECT_EQ(spec.n, 5u);
    EXPECT_EQ(spec.value, -24);

    ASSERT_TRUE(fp::parseSpec("once", &spec, &err)) << err;
    EXPECT_EQ(spec.n, 1u);
}

TEST_F(FailpointTest, ParseRejectsMalformed)
{
    fp::Spec spec;
    std::string err;
    EXPECT_FALSE(fp::parseSpec("", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("x3", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("p1.5", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("p-0.1", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("n0", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("nabc", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("once0", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("n3=", &spec, &err));
    EXPECT_FALSE(fp::parseSpec("n3=xyz", &spec, &err));
    EXPECT_FALSE(err.empty());
}

TEST_F(FailpointTest, UnarmedFindReturnsNull)
{
    auto &reg = fp::Registry::global();
    EXPECT_EQ(reg.find("no.such.point"), nullptr);
    EXPECT_FALSE(reg.anyArmed());
    EXPECT_FALSE(reg.fire("no.such.point"));
}

TEST_F(FailpointTest, EveryNthFiresOnSchedule)
{
    auto &reg = fp::Registry::global();
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("n3", &spec, &err)) << err;
    reg.arm("test.point", spec);
    EXPECT_TRUE(reg.anyArmed());

    fp::Failpoint *point = reg.find("test.point");
    ASSERT_NE(point, nullptr);
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(point->evaluate());
    const std::vector<bool> want = {false, false, true,  false, false,
                                    true,  false, false, true};
    EXPECT_EQ(fired, want);
    EXPECT_EQ(point->hits(), 9u);
    EXPECT_EQ(point->fires(), 3u);
}

TEST_F(FailpointTest, OneShotFiresExactlyOnce)
{
    auto &reg = fp::Registry::global();
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("once4", &spec, &err)) << err;
    reg.arm("test.point", spec);
    fp::Failpoint *point = reg.find("test.point");
    ASSERT_NE(point, nullptr);
    int fires = 0;
    for (int i = 0; i < 100; ++i)
        fires += point->evaluate() ? 1 : 0;
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(point->fires(), 1u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicInSeed)
{
    auto &reg = fp::Registry::global();
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("p0.3", &spec, &err)) << err;

    auto stream = [&](uint64_t seed) {
        reg.setSeed(seed);
        reg.arm("test.point", spec);
        fp::Failpoint *point = reg.find("test.point");
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i)
            fired.push_back(point->evaluate());
        return fired;
    };

    const auto a = stream(42);
    const auto b = stream(42);
    const auto c = stream(43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);

    // Sanity: the rate is in the right ballpark for p=0.3, n=200.
    const long fires = std::count(a.begin(), a.end(), true);
    EXPECT_GT(fires, 30);
    EXPECT_LT(fires, 90);
}

TEST_F(FailpointTest, DistinctNamesGetDistinctStreams)
{
    auto &reg = fp::Registry::global();
    reg.setSeed(7);
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("p0.5", &spec, &err)) << err;
    reg.arm("point.a", spec);
    reg.arm("point.b", spec);
    fp::Failpoint *a = reg.find("point.a");
    fp::Failpoint *b = reg.find("point.b");
    std::vector<bool> sa, sb;
    for (int i = 0; i < 64; ++i) {
        sa.push_back(a->evaluate());
        sb.push_back(b->evaluate());
    }
    EXPECT_NE(sa, sb);
}

TEST_F(FailpointTest, SeedOrderDoesNotMatter)
{
    auto &reg = fp::Registry::global();
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("p0.5", &spec, &err)) << err;

    reg.setSeed(99);
    reg.arm("test.point", spec);
    std::vector<bool> seed_first;
    for (int i = 0; i < 50; ++i)
        seed_first.push_back(reg.find("test.point")->evaluate());

    reg.disarmAll();
    reg.setSeed(0);
    reg.arm("test.point", spec);
    reg.setSeed(99);   // re-derives and resets counters
    std::vector<bool> seed_last;
    for (int i = 0; i < 50; ++i)
        seed_last.push_back(reg.find("test.point")->evaluate());

    EXPECT_EQ(seed_first, seed_last);
}

TEST_F(FailpointTest, ConfigureParsesCsv)
{
    auto &reg = fp::Registry::global();
    std::string err;
    EXPECT_EQ(reg.configure("a.x:n2,b.y:p0.5=7,c.z:once3", &err), 3)
        << err;
    const auto names = reg.armedNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.x");
    EXPECT_EQ(names[1], "b.y");
    EXPECT_EQ(names[2], "c.z");
    fp::Failpoint *b = reg.find("b.y");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->value(), 7);

    EXPECT_EQ(reg.configure("bad-entry-no-colon", &err), -1);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(reg.configure("", &err), 0);
}

TEST_F(FailpointTest, MalformedEntriesDoNotDropValidOnes)
{
    // A bad entry in AREGION_FAILPOINTS must not silently disable
    // the rest of the spec: every well-formed entry is armed, the
    // return value still signals the error, and *err names every
    // bad entry (';'-joined) so the warning is actionable.
    auto &reg = fp::Registry::global();
    std::string err;
    EXPECT_EQ(reg.configure("a.x:n2,garbage,b.y:p0.5", &err), -1);
    EXPECT_NE(err.find("garbage"), std::string::npos) << err;
    const auto names = reg.armedNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.x");
    EXPECT_EQ(names[1], "b.y");
    EXPECT_NE(reg.find("a.x"), nullptr);
    EXPECT_NE(reg.find("b.y"), nullptr);
}

TEST_F(FailpointTest, EveryMalformedEntryIsReported)
{
    auto &reg = fp::Registry::global();
    std::string err;
    // Three distinct failure shapes: no colon, empty name, bad
    // trigger. All three must appear in the joined error message.
    EXPECT_EQ(
        reg.configure("no-colon,:p0.5,c.z:zap7,d.w:once2", &err), -1);
    EXPECT_NE(err.find("no-colon"), std::string::npos) << err;
    EXPECT_NE(err.find("zap7"), std::string::npos) << err;
    EXPECT_GE(std::count(err.begin(), err.end(), ';'), 2) << err;
    // The one valid entry still armed.
    const auto names = reg.armedNames();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "d.w");
}

TEST_F(FailpointTest, DescribeRoundTrips)
{
    auto &reg = fp::Registry::global();
    std::string err;
    ASSERT_EQ(reg.configure("a.x:n2,b.y:once3=9", &err), 2) << err;
    const std::string desc = reg.describe();
    EXPECT_EQ(desc, "a.x:n2,b.y:once3=9");

    reg.disarmAll();
    ASSERT_EQ(reg.configure(desc, &err), 2) << err;
    EXPECT_EQ(reg.describe(), desc);
}

TEST_F(FailpointTest, DisarmRemovesPoint)
{
    auto &reg = fp::Registry::global();
    std::string err;
    ASSERT_EQ(reg.configure("a.x:n2,b.y:n3", &err), 2) << err;
    reg.disarm("a.x");
    EXPECT_EQ(reg.find("a.x"), nullptr);
    EXPECT_NE(reg.find("b.y"), nullptr);
    EXPECT_TRUE(reg.anyArmed());
    reg.disarmAll();
    EXPECT_FALSE(reg.anyArmed());
}

TEST_F(FailpointTest, ConcurrentEvaluateCountsEveryHit)
{
    auto &reg = fp::Registry::global();
    fp::Spec spec;
    std::string err;
    ASSERT_TRUE(fp::parseSpec("n10", &spec, &err)) << err;
    reg.arm("test.point", spec);
    fp::Failpoint *point = reg.find("test.point");

    constexpr int kThreads = 4;
    constexpr int kHitsPer = 2500;
    std::vector<std::thread> workers;
    std::vector<uint64_t> fires(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kHitsPer; ++i)
                fires[static_cast<size_t>(t)] +=
                    point->evaluate() ? 1 : 0;
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(point->hits(), uint64_t{kThreads} * kHitsPer);
    // Every-10th over 10000 total hits: exactly 1000 fires, however
    // the threads interleave.
    uint64_t total = 0;
    for (const uint64_t f : fires)
        total += f;
    EXPECT_EQ(total, 1000u);
    EXPECT_EQ(point->fires(), 1000u);
}

} // namespace
