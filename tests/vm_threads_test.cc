/**
 * @file
 * Multi-threading and monitor semantics in the interpreter: mutual
 * exclusion, recursive locking, synchronized methods, deterministic
 * scheduling, and deadlock detection.
 */

#include <gtest/gtest.h>

#include "vm_test_util.hh"

namespace {

using namespace aregion::vm;

/**
 * Build a program where N worker threads each add 1 to a shared
 * counter `iters` times under a monitor; main spins until all workers
 * set their done flags, then prints the counter.
 */
Program
counterProgram(int workers, int iters, bool locked)
{
    ProgramBuilder pb;
    const ClassId shared = pb.declareClass("Shared", {"count", "done"});
    const int f_count = pb.fieldIndex(shared, "count");
    const int f_done = pb.fieldIndex(shared, "done");

    const MethodId worker = pb.declareMethod("worker", 1);
    {
        auto w = pb.define(worker);
        const Reg obj = w.arg(0);
        const Reg i = w.constant(0);
        const Reg n = w.constant(iters);
        const Reg one = w.constant(1);
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        if (locked)
            w.monitorEnter(obj);
        const Reg c = w.getField(obj, f_count);
        const Reg c1 = w.add(c, one);
        w.putField(obj, f_count, c1);
        if (locked)
            w.monitorExit(obj);
        w.binopTo(Bc::Add, i, i, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(obj);
        const Reg d = w.getField(obj, f_done);
        const Reg d1 = w.add(d, one);
        w.putField(obj, f_done, d1);
        w.monitorExit(obj);
        w.retVoid();
        w.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg obj = mb.newObject(shared);
    for (int t = 0; t < workers; ++t)
        mb.spawn(worker, {obj});
    const Reg want = mb.constant(workers);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    mb.safepoint();
    const Reg d = mb.getField(obj, f_done);
    mb.branchCmp(Bc::CmpGe, d, want, ready);
    mb.jump(wait);
    mb.bind(ready);
    mb.print(mb.getField(obj, f_count));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

TEST(Threads, LockedCounterIsExact)
{
    const Program prog = counterProgram(3, 200, true);
    Interpreter interp(prog);
    const auto res = interp.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(interp.output(), std::vector<int64_t>{600});
}

TEST(Threads, SchedulingIsDeterministic)
{
    // Two identical runs must produce identical instruction counts.
    const Program pa = counterProgram(2, 100, true);
    const Program pb2 = counterProgram(2, 100, true);
    Interpreter a(pa);
    Interpreter b(pb2);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(a.output(), b.output());
}

TEST(Threads, RecursiveMonitorEnterIsAllowed)
{
    ProgramBuilder pb;
    const ClassId c = pb.declareClass("C", {});
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg o = mb.newObject(c);
    mb.monitorEnter(o);
    mb.monitorEnter(o);
    mb.monitorExit(o);
    mb.monitorExit(o);
    mb.print(mb.constant(1));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    Interpreter interp(prog);
    EXPECT_TRUE(interp.run().completed);
}

TEST(Threads, SynchronizedMethodExcludesOthers)
{
    // A synchronized increment method: still exact with two threads.
    ProgramBuilder pb;
    const ClassId shared = pb.declareClass("S", {"count", "done"});
    const int f_count = pb.fieldIndex(shared, "count");
    const int f_done = pb.fieldIndex(shared, "done");

    const MethodId incr = pb.declareMethod("incr", 1, /*sync=*/true);
    {
        auto f = pb.define(incr);
        const Reg c = f.getField(f.self(), f_count);
        const Reg one = f.constant(1);
        f.putField(f.self(), f_count, f.add(c, one));
        f.retVoid();
        f.finish();
    }
    const MethodId worker = pb.declareMethod("worker", 1);
    {
        auto w = pb.define(worker);
        const Reg i = w.constant(0);
        const Reg n = w.constant(150);
        const Reg one = w.constant(1);
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        w.callStaticVoid(incr, {w.arg(0)});
        w.binopTo(Bc::Add, i, i, one);
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(w.arg(0));
        const Reg d = w.getField(w.arg(0), f_done);
        w.putField(w.arg(0), f_done, w.add(d, one));
        w.monitorExit(w.arg(0));
        w.retVoid();
        w.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg obj = mb.newObject(shared);
    mb.spawn(worker, {obj});
    mb.spawn(worker, {obj});
    const Reg two = mb.constant(2);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    const Reg d = mb.getField(obj, f_done);
    mb.branchCmp(Bc::CmpGe, d, two, ready);
    mb.jump(wait);
    mb.bind(ready);
    mb.print(mb.getField(obj, f_count));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    Interpreter interp(prog);
    ASSERT_TRUE(interp.run().completed);
    EXPECT_EQ(interp.output(), std::vector<int64_t>{300});
}

TEST(Threads, DeadlockIsDetected)
{
    // Main locks the object and then spins waiting on a flag that the
    // worker can only set after acquiring the same lock: deadlock...
    // except main never blocks. Instead: main locks A then tries B,
    // worker locks B then tries A.
    ProgramBuilder pb;
    const ClassId c = pb.declareClass("C", {"go"});
    const int f_go = pb.fieldIndex(c, "go");

    const MethodId worker = pb.declareMethod("worker", 2);
    {
        auto w = pb.define(worker);
        w.monitorEnter(w.arg(1));      // lock B
        const Reg one = w.constant(1);
        w.putField(w.arg(1), f_go, one);
        const Label wait = w.newLabel();
        const Label go = w.newLabel();
        w.bind(wait);
        const Reg g = w.getField(w.arg(0), f_go);
        w.branchCmp(Bc::CmpEq, g, one, go);
        w.jump(wait);
        w.bind(go);
        w.monitorEnter(w.arg(0));      // then lock A (held by main)
        w.monitorExit(w.arg(0));
        w.monitorExit(w.arg(1));
        w.retVoid();
        w.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.newObject(c);
    const Reg b = mb.newObject(c);
    mb.monitorEnter(a);                // lock A
    const Reg one = mb.constant(1);
    mb.putField(a, f_go, one);
    mb.spawn(worker, {a, b});
    const Label wait = mb.newLabel();
    const Label go = mb.newLabel();
    mb.bind(wait);
    const Reg g = mb.getField(b, f_go);
    mb.branchCmp(Bc::CmpEq, g, one, go);
    mb.jump(wait);
    mb.bind(go);
    mb.monitorEnter(b);                // then lock B (held by worker)
    mb.monitorExit(b);
    mb.monitorExit(a);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    Interpreter interp(prog);
    const auto res = interp.run(1u << 22);
    ASSERT_TRUE(res.trap.has_value());
    EXPECT_EQ(res.trap->kind, TrapKind::Deadlock);
}

TEST(Threads, MainFinishStopsDaemonThreads)
{
    // A worker that never terminates must not hang the run.
    ProgramBuilder pb;
    const MethodId worker = pb.declareMethod("spin", 0);
    {
        auto w = pb.define(worker);
        const Label loop = w.newLabel();
        w.bind(loop);
        w.safepoint();
        w.jump(loop);
        w.retVoid();
        w.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    mb.spawn(worker, {});
    mb.print(mb.constant(1));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    Interpreter interp(prog);
    const auto res = interp.run(1u << 22);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(interp.output(), std::vector<int64_t>{1});
}

} // namespace
