#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/parallel.hh"

namespace parallel = aregion::parallel;

namespace {

// plannedThreads/runGrid read AREGION_JOBS per call, so tests can
// steer the single-thread vs pooled path through the environment.
class ScopedJobs
{
  public:
    explicit ScopedJobs(const char *value)
    {
        if (const char *old = std::getenv("AREGION_JOBS")) {
            hadOld = true;
            oldValue = old;
        }
        setenv("AREGION_JOBS", value, 1);
    }
    ~ScopedJobs()
    {
        if (hadOld)
            setenv("AREGION_JOBS", oldValue.c_str(), 1);
        else
            unsetenv("AREGION_JOBS");
    }

  private:
    bool hadOld = false;
    std::string oldValue;
};

class ParallelTest : public ::testing::Test
{
  protected:
    void SetUp() override { aregion::setLogQuiet(true); }
    void TearDown() override { aregion::setLogQuiet(false); }
};

TEST_F(ParallelTest, PlannedThreadsClampsToTasks)
{
    ScopedJobs jobs("8");
    EXPECT_EQ(parallel::plannedThreads(0), 1u);
    EXPECT_EQ(parallel::plannedThreads(3), 3u);
    EXPECT_EQ(parallel::plannedThreads(100), 8u);
}

TEST_F(ParallelTest, JobsEnvNonNumericFallsBack)
{
    const size_t hw = [] {
        ScopedJobs unset("");
        unsetenv("AREGION_JOBS");
        return parallel::plannedThreads(100000);
    }();
    ScopedJobs jobs("banana");
    EXPECT_EQ(parallel::plannedThreads(100000), hw);
}

TEST_F(ParallelTest, JobsEnvTrailingGarbageFallsBack)
{
    const size_t hw = [] {
        ScopedJobs unset("");
        unsetenv("AREGION_JOBS");
        return parallel::plannedThreads(100000);
    }();
    ScopedJobs jobs("4x");
    EXPECT_EQ(parallel::plannedThreads(100000), hw);
}

TEST_F(ParallelTest, JobsEnvAbsurdValueClamps)
{
    ScopedJobs jobs("99999999");
    EXPECT_EQ(parallel::plannedThreads(100000), 256u);
}

TEST_F(ParallelTest, JobsEnvOverflowClamps)
{
    ScopedJobs jobs("99999999999999999999999999");
    EXPECT_EQ(parallel::plannedThreads(100000), 256u);
}

TEST_F(ParallelTest, JobsEnvNonPositiveFallsBack)
{
    const size_t hw = [] {
        ScopedJobs unset("");
        unsetenv("AREGION_JOBS");
        return parallel::plannedThreads(100000);
    }();
    {
        ScopedJobs jobs("0");
        EXPECT_EQ(parallel::plannedThreads(100000), hw);
    }
    {
        ScopedJobs jobs("-4");
        EXPECT_EQ(parallel::plannedThreads(100000), hw);
    }
}

TEST_F(ParallelTest, RunGridRunsEveryCellSingleThread)
{
    ScopedJobs jobs("1");
    std::vector<int> hit(16, 0);
    parallel::runGrid(hit.size(),
                      [&](size_t i) { hit[i] = static_cast<int>(i) + 1; });
    for (size_t i = 0; i < hit.size(); ++i)
        EXPECT_EQ(hit[i], static_cast<int>(i) + 1);
}

TEST_F(ParallelTest, RunGridRunsEveryCellPooled)
{
    ScopedJobs jobs("4");
    std::vector<std::atomic<int>> hit(64);
    parallel::runGrid(hit.size(), [&](size_t i) {
        hit[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hit)
        EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, RunGridZeroTasksIsNoop)
{
    ScopedJobs jobs("4");
    parallel::runGrid(0, [](size_t) { FAIL() << "cell ran"; });
}

// Drain-then-rethrow, single-thread path: the first error wins and
// every later cell still runs before the rethrow.
TEST_F(ParallelTest, SingleThreadDrainsThenRethrowsFirstError)
{
    ScopedJobs jobs("1");
    std::vector<int> hit(8, 0);
    try {
        parallel::runGrid(hit.size(), [&](size_t i) {
            hit[i] = 1;
            if (i == 2)
                throw std::runtime_error("cell 2");
            if (i == 5)
                throw std::runtime_error("cell 5");
        });
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 2");
    }
    for (const int h : hit)
        EXPECT_EQ(h, 1);
}

// Pooled path: cells queued after the failing one still run, and
// exactly one of the thrown errors (whichever was recorded first)
// reaches the caller.
TEST_F(ParallelTest, PooledDrainsThenRethrows)
{
    ScopedJobs jobs("4");
    std::vector<std::atomic<int>> hit(64);
    bool caught = false;
    try {
        parallel::runGrid(hit.size(), [&](size_t i) {
            hit[i].fetch_add(1, std::memory_order_relaxed);
            if (i % 16 == 3)
                throw std::runtime_error("cell " + std::to_string(i));
        });
    } catch (const std::runtime_error &e) {
        caught = true;
        EXPECT_EQ(std::string(e.what()).rfind("cell ", 0), 0u);
    }
    EXPECT_TRUE(caught);
    for (const auto &h : hit)
        EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, NonStdExceptionPropagates)
{
    ScopedJobs jobs("2");
    std::atomic<int> ran{0};
    bool caught = false;
    try {
        parallel::runGrid(8, [&](size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 0)
                throw 42;
        });
    } catch (int v) {
        caught = true;
        EXPECT_EQ(v, 42);
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(ran.load(), 8);
}

} // namespace
