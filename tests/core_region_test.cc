/**
 * @file
 * Atomic-region formation tests: Algorithm 1/2 units, Equation 1,
 * structural invariants of formed regions, and the central semantic
 * property — region-compiled code behaves identically to the
 * interpreter, even under forced aborts.
 */

#include <gtest/gtest.h>

#include "core/adaptive.hh"
#include "core/compiler.hh"
#include "core/region_formation.hh"
#include "ir/evaluator.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "programs.hh"
#include "random_program.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;
namespace core = aregion::core;

int
countOps(const ir::Function &f, ir::Op op)
{
    int n = 0;
    for (int b : f.reversePostOrder()) {
        for (const auto &in : f.block(b).instrs)
            n += in.op == op;
    }
    return n;
}

int
countOpsModule(const ir::Module &mod, ir::Op op)
{
    int n = 0;
    for (const auto &[m, f] : mod.funcs)
        n += countOps(f, op);
    return n;
}

/** Profile + compile helper. */
core::Compiled
compile(const Program &prog, const core::CompilerConfig &config,
        Profile &profile)
{
    Interpreter interp(prog, &profile);
    const auto res = interp.run();
    AREGION_ASSERT(res.completed, "profiling run failed");
    return core::compileProgram(prog, profile, config);
}

TEST(Equation1, CostShape)
{
    // Exact target size costs zero; deviation costs grow.
    EXPECT_DOUBLE_EQ(core::regionSizeCost(200, 200), 0.0);
    EXPECT_GT(core::regionSizeCost(20, 200),
              core::regionSizeCost(100, 200));
    EXPECT_GT(core::regionSizeCost(800, 200),
              core::regionSizeCost(300, 200));
    // Degenerate size clamps instead of dividing by zero.
    EXPECT_GT(core::regionSizeCost(0, 200), 0.0);
}

TEST(Algorithm2, LoopWeightSumsBlockWork)
{
    ir::Function f;
    f.name = "w";
    auto &a = f.newBlock();
    auto &b = f.newBlock();
    ir::Instr jump;
    jump.op = ir::Op::Jump;
    ir::Instr branch;
    branch.op = ir::Op::Branch;
    branch.srcs = {f.newVreg()};
    ir::Instr cst;
    cst.op = ir::Op::Const;
    cst.dst = 0;
    a.instrs = {cst, cst, jump};        // 3 ops
    a.succs = {b.id};
    a.succCount = {100};
    a.execCount = 100;
    b.instrs = {cst, branch};           // 2 ops
    b.succs = {a.id, a.id};
    b.succCount = {99, 1};
    b.execCount = 100;
    f.entry = a.id;

    ir::Loop loop;
    loop.header = a.id;
    loop.blocks = {a.id, b.id};
    EXPECT_DOUBLE_EQ(core::loopWeight(f, loop), 100 * 3 + 100 * 2);
}

TEST(Algorithm2, TraceDominantPathFollowsHotEdges)
{
    // entry -> A -> (B hot | C cold) -> D(ret)
    ir::Function f;
    f.name = "trace";
    const ir::Vreg v = f.newVreg();
    auto mk = [&](ir::Op op) {
        ir::Instr in;
        in.op = op;
        if (op == ir::Op::Branch)
            in.srcs = {v};
        if (op == ir::Op::Const)
            in.dst = v;
        return in;
    };
    auto &entry = f.newBlock();
    auto &a = f.newBlock();
    auto &b = f.newBlock();
    auto &c = f.newBlock();
    auto &d = f.newBlock();
    entry.instrs = {mk(ir::Op::Const), mk(ir::Op::Jump)};
    entry.succs = {a.id};
    entry.succCount = {100};
    entry.execCount = 100;
    a.instrs = {mk(ir::Op::Branch)};
    a.succs = {b.id, c.id};
    a.succCount = {97, 3};
    a.execCount = 100;
    b.instrs = {mk(ir::Op::Jump)};
    b.succs = {d.id};
    b.succCount = {97};
    b.execCount = 97;
    c.instrs = {mk(ir::Op::Jump)};
    c.succs = {d.id};
    c.succCount = {3};
    c.execCount = 3;
    d.instrs = {mk(ir::Op::Ret)};
    d.execCount = 100;
    f.entry = entry.id;

    const auto path = core::traceDominantPath(
        f, a.id, {entry.id, d.id});
    EXPECT_EQ(path, (std::vector<int>{entry.id, a.id, b.id, d.id}));
}

TEST(Algorithm1, SelectsHotLoopHeaders)
{
    const Program prog = addElementProgram(2000, 256);
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::OptContext ctx;
    ctx.profile = &profile;
    opt::optimizeModule(mod, ctx);

    ir::Function &main_fn = mod.funcs.at(prog.mainMethod);
    core::RegionConfig config;
    const auto selected = core::selectBoundaries(main_fn, config);
    EXPECT_FALSE(selected.empty());
    // At least one selected boundary is a loop header.
    const ir::DominatorTree doms(main_fn);
    const ir::LoopForest forest(main_fn, doms);
    bool header_selected = false;
    for (int b : selected) {
        for (const auto &loop : forest.loops())
            header_selected |= loop.header == b;
    }
    EXPECT_TRUE(header_selected);
}

TEST(Formation, StructuralInvariantsHold)
{
    const Program prog = addElementProgram(2000, 256);
    Profile profile(prog);
    core::Compiled compiled =
        compile(prog, core::CompilerConfig::atomic(), profile);
    EXPECT_GT(compiled.stats.regions.regionsFormed, 0);
    EXPECT_GT(compiled.stats.regions.assertsCreated, 0);

    for (const auto &[m, f] : compiled.mod.funcs) {
        ir::verifyOrDie(f);
        for (const auto &region : f.regions) {
            // Entry block: exactly [AtomicBegin, Jump], two succs,
            // exception edge = alt block.
            const ir::Block &begin = f.block(region.entryBlock);
            ASSERT_EQ(begin.instrs.size(), 2u);
            EXPECT_EQ(begin.instrs[0].op, ir::Op::AtomicBegin);
            EXPECT_EQ(begin.instrs[1].op, ir::Op::Jump);
            ASSERT_EQ(begin.succs.size(), 2u);
            EXPECT_EQ(begin.succs[1], region.altBlock);
            // The alt block is ordinary (non-region) code.
            EXPECT_EQ(f.block(region.altBlock).regionId, -1);
        }
        // No calls or nested begins inside region blocks.
        for (int b = 0; b < f.numBlocks(); ++b) {
            const ir::Block &blk = f.block(b);
            if (blk.regionId < 0)
                continue;
            for (size_t i = 0; i < blk.instrs.size(); ++i) {
                const auto op = blk.instrs[i].op;
                EXPECT_NE(op, ir::Op::CallStatic);
                EXPECT_NE(op, ir::Op::CallVirtual);
                if (i > 0) {
                    EXPECT_NE(op, ir::Op::AtomicBegin);
                }
            }
        }
    }
}

TEST(Formation, AtomicCompilationPreservesAllSamples)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        Profile profile(s.prog);
        core::Compiled compiled =
            compile(s.prog, core::CompilerConfig::atomic(), profile);

        Interpreter check(s.prog);
        ASSERT_TRUE(check.run().completed);

        ir::Evaluator eval(compiled.mod);
        const auto eres = eval.run();
        ASSERT_TRUE(eres.completed);
        EXPECT_EQ(eval.output(), check.output());
    }
}

TEST(Formation, ForcedAbortsDoNotChangeBehaviour)
{
    // Abort every 3rd region commit: outputs must still match, and
    // the abort path must actually be exercised.
    const Program prog = addElementProgram(1500, 256);
    Profile profile(prog);
    core::Compiled compiled =
        compile(prog, core::CompilerConfig::atomic(), profile);

    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    ir::Evaluator eval(compiled.mod);
    eval.forceAbortPeriod = 3;
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_GT(eres.regionAborts, 100u);
    EXPECT_EQ(eval.output(), check.output());
}

TEST(Formation, RandomProgramsSurviveAtomicCompilation)
{
    for (uint64_t seed = 100; seed < 115; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        RandomProgramGen gen(seed);
        const Program prog = gen.generate();
        Profile profile(prog);
        core::CompilerConfig config = core::CompilerConfig::atomic();
        config.region.loopPathThreshold = 20;   // form more regions
        config.region.targetSize = 40;
        core::Compiled compiled = compile(prog, config, profile);

        Interpreter check(prog);
        ASSERT_TRUE(check.run().completed);

        for (uint64_t force : {0ull, 2ull}) {
            ir::Evaluator eval(compiled.mod);
            eval.forceAbortPeriod = force;
            const auto eres = eval.run();
            ASSERT_TRUE(eres.completed);
            EXPECT_EQ(eval.output(), check.output());
        }
    }
}

TEST(Formation, RegionsReduceDynamicInstructions)
{
    const Program prog = addElementProgram(3000, 256);
    Profile profile(prog);

    core::Compiled base =
        compile(prog, core::CompilerConfig::baseline(), profile);
    Profile profile2(prog);
    core::Compiled atomic =
        compile(prog, core::CompilerConfig::atomic(), profile2);

    ir::Evaluator be(base.mod);
    const auto br = be.run();
    ASSERT_TRUE(br.completed);
    ir::Evaluator ae(atomic.mod);
    const auto ar = ae.run();
    ASSERT_TRUE(ar.completed);

    EXPECT_EQ(ae.output(), be.output());
    EXPECT_GT(ar.regionCommits, 0u);
    // The isolated hot path must be leaner.
    EXPECT_LT(ar.instrs, br.instrs);
}

TEST(Formation, PartialUnrollFusesIterations)
{
    // A small hot loop gets multiple iterations per region.
    const Program prog = arithLoopProgram();
    Profile profile(prog);
    core::CompilerConfig config = core::CompilerConfig::atomic();
    config.opt.unrollBodyLimit = 0;     // isolate region unrolling
    config.region.minRegionInstrs = 4;  // the loop body is tiny
    core::Compiled compiled = compile(prog, config, profile);
    EXPECT_GT(compiled.stats.regions.unrolledRegions, 0);

    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);
    ir::Evaluator eval(compiled.mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_EQ(eval.output(), check.output());
    // Fused iterations: commits fewer than loop iterations (40).
    EXPECT_GT(eres.regionCommits, 0u);
    EXPECT_LT(eres.regionCommits, 40u);
}

TEST(Sle, ElidesMonitorsInsideRegions)
{
    const Program prog = monitorProgram();
    Profile profile(prog);
    core::Compiled compiled =
        compile(prog, core::CompilerConfig::atomic(), profile);
    EXPECT_GT(compiled.stats.slePairsElided, 0);

    // Monitor ops must be gone from region blocks.
    for (const auto &[m, f] : compiled.mod.funcs) {
        for (int b = 0; b < f.numBlocks(); ++b) {
            const ir::Block &blk = f.block(b);
            if (blk.regionId < 0)
                continue;
            for (const auto &in : blk.instrs) {
                EXPECT_NE(in.op, ir::Op::MonitorEnter);
                EXPECT_NE(in.op, ir::Op::MonitorExit);
            }
        }
    }

    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);
    ir::Evaluator eval(compiled.mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_EQ(eval.output(), check.output());
}

TEST(Sle, HeldLockAbortsToNonSpeculativePath)
{
    // Main holds the accumulator's monitor around the hot loop; the
    // SLE assert must fire and the non-speculative path must produce
    // the correct (reentrant-locked) result.
    ProgramBuilder pb;
    const ClassId acc = pb.declareClass("Acc", {"total"});
    const int f_total = pb.fieldIndex(acc, "total");
    const MethodId add = pb.declareMethod("add", 2, /*sync=*/true);
    {
        auto f = pb.define(add);
        const Reg t = f.getField(f.self(), f_total);
        f.putField(f.self(), f_total, f.add(t, f.arg(1)));
        f.retVoid();
        f.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.newObject(acc);
    mb.monitorEnter(a);             // lock held across the hot loop
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(400);
    const Reg one = mb.constant(1);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    mb.callStaticVoid(add, {a, i});
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.monitorExit(a);
    mb.print(mb.getField(a, f_total));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Profile profile(prog);
    core::Compiled compiled =
        compile(prog, core::CompilerConfig::atomic(), profile);

    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);
    ir::Evaluator eval(compiled.mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_EQ(eval.output(), check.output());
    if (compiled.stats.slePairsElided > 0) {
        EXPECT_GT(eres.regionAborts, 0u);
    }
}

TEST(Adaptive, OverridesRemoveHotAsserts)
{
    // A branch that profiles cold (taken every 150th iteration in a
    // 6000-iteration loop -> ~0.7% bias) becomes an assert and
    // aborts at runtime; adaptive feedback must neutralise it.
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(6000);
    const Reg one = mb.constant(1);
    const Reg k = mb.constant(150);
    const Reg sum = mb.constant(0);
    const Label loop = mb.newLabel();
    const Label rare = mb.newLabel();
    const Label next = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    const Reg rem = mb.binop(Bc::Rem, i, k);
    const Reg zero = mb.constant(0);
    const Reg hit = mb.cmp(Bc::CmpEq, rem, zero);
    mb.branchIf(hit, rare);
    mb.binopTo(Bc::Add, sum, sum, i);
    mb.jump(next);
    mb.bind(rare);
    mb.binopTo(Bc::Add, sum, sum, one);
    mb.jump(next);
    mb.bind(next);
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Profile profile(prog);
    core::Compiled first =
        compile(prog, core::CompilerConfig::atomic(), profile);

    ir::Evaluator eval1(first.mod);
    const auto res1 = eval1.run();
    ASSERT_TRUE(res1.completed);
    ASSERT_GT(res1.regionAborts, 10u) << "test premise: aborts occur";

    // Build telemetry from the evaluator's abort records.
    core::AbortTelemetry telemetry;
    for (const auto &[key, count] : res1.abortCounts) {
        const auto &[method, assert_id] = key;
        const ir::Function &f = first.mod.funcs.at(method);
        for (const auto &region : f.regions) {
            if (region.abortOrigins.count(assert_id)) {
                auto &t = telemetry[{method, region.id}];
                t.entries = res1.regionEntries;
                t.abortsByAssert[assert_id] += count;
            }
        }
    }
    core::AdaptiveController controller;
    controller.abortRateThreshold = 0.001;
    controller.minEntries = 10;
    const auto overrides =
        controller.computeOverrides(first.mod, telemetry);
    ASSERT_FALSE(overrides.empty());

    // Recompile with warm overrides: the aborts must disappear.
    core::CompilerConfig config = core::CompilerConfig::atomic();
    config.region.warmOverrides = overrides;
    core::Compiled second = core::compileProgram(prog, profile,
                                                 config);
    ir::Evaluator eval2(second.mod);
    const auto res2 = eval2.run();
    ASSERT_TRUE(res2.completed);
    EXPECT_EQ(eval2.output(), eval1.output());
    EXPECT_LT(res2.regionAborts, res1.regionAborts / 5);
}

TEST(Postdom, RemovesSubsumedBoundsChecks)
{
    const Program prog = addElementProgram(2000, 256);
    Profile p1(prog), p2(prog);
    core::CompilerConfig plain = core::CompilerConfig::atomic();
    core::CompilerConfig with_pd = core::CompilerConfig::atomic();
    with_pd.postdomCheckElim = true;

    core::Compiled a = compile(prog, plain, p1);
    core::Compiled b = compile(prog, with_pd, p2);

    // The extension only ever removes additional checks.
    EXPECT_GE(countOpsModule(a.mod, ir::Op::BoundsCheck),
              countOpsModule(b.mod, ir::Op::BoundsCheck));

    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);
    ir::Evaluator eval(b.mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_EQ(eval.output(), check.output());
}

TEST(Compiler, ConfigFactoriesMatchPaperNames)
{
    EXPECT_EQ(core::CompilerConfig::baseline().name, "no-atomic");
    EXPECT_EQ(core::CompilerConfig::atomic().name, "atomic");
    EXPECT_TRUE(core::CompilerConfig::atomicAggressiveInline()
                    .atomicRegions);
    EXPECT_DOUBLE_EQ(
        core::CompilerConfig::baselineAggressiveInline()
            .inlineMultiplier, 5.0);
}

} // namespace
