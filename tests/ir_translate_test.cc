/**
 * @file
 * Translation tests: structure of the generated IR (checks inserted,
 * calls terminating blocks, synchronized wrapping, profile counts)
 * and full executor equivalence between the bytecode interpreter and
 * the IR evaluator over the shared sample programs.
 */

#include <gtest/gtest.h>

#include "ir/evaluator.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "programs.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;

int
countOps(const ir::Function &f, ir::Op op)
{
    int n = 0;
    for (int b = 0; b < f.numBlocks(); ++b) {
        for (const auto &in : f.block(b).instrs)
            n += in.op == op;
    }
    return n;
}

TEST(Translate, ChecksAreInserted)
{
    const Program prog = addElementProgram(100, 16);
    // addElement has 1 getfield-chain hot path: expect null checks
    // before every field/array access and bounds checks on stores.
    MethodId add = NO_METHOD;
    for (MethodId m = 0; m < prog.numMethods(); ++m) {
        if (prog.method(m).name == "addElement")
            add = m;
    }
    ASSERT_NE(add, NO_METHOD);
    const ir::Function f = ir::translate(prog, add);
    ir::verifyOrDie(f);
    EXPECT_GT(countOps(f, ir::Op::NullCheck), 4);
    EXPECT_GE(countOps(f, ir::Op::BoundsCheck), 2);
    EXPECT_GE(countOps(f, ir::Op::LoadRaw), 2);    // array lengths
}

TEST(Translate, CallsTerminateBlocks)
{
    const Program prog = fibProgram();
    MethodId fib = NO_METHOD;
    for (MethodId m = 0; m < prog.numMethods(); ++m) {
        if (prog.method(m).name == "fib")
            fib = m;
    }
    const ir::Function f = ir::translate(prog, fib);
    ir::verifyOrDie(f);
    for (int b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs;
        for (size_t i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == ir::Op::CallStatic) {
                // A call must be followed only by the terminator.
                EXPECT_EQ(i + 2, instrs.size())
                    << "call not at block end in b" << b;
            }
        }
    }
}

TEST(Translate, SynchronizedMethodsAreWrapped)
{
    const Program prog = monitorProgram();
    MethodId add = NO_METHOD;
    for (MethodId m = 0; m < prog.numMethods(); ++m) {
        if (prog.method(m).name == "add")
            add = m;
    }
    const ir::Function f = ir::translate(prog, add);
    ir::verifyOrDie(f);
    EXPECT_EQ(countOps(f, ir::Op::MonitorEnter), 1);
    EXPECT_EQ(countOps(f, ir::Op::MonitorExit), 1);
    // The prologue is the entry block.
    const auto &entry = f.block(f.entry);
    bool saw_enter = false;
    for (const auto &in : entry.instrs)
        saw_enter |= in.op == ir::Op::MonitorEnter;
    EXPECT_TRUE(saw_enter);
}

TEST(Translate, ProfileCountsAttachToBlocksAndEdges)
{
    const Program prog = arithLoopProgram();
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    const ir::Function f =
        ir::translate(prog, prog.mainMethod, &profile);
    ir::verifyOrDie(f);
    // The loop body executes 40 times; find a block with count 40.
    bool saw_loop_body = false;
    for (int b = 0; b < f.numBlocks(); ++b)
        saw_loop_body |= f.block(b).execCount == 40;
    EXPECT_TRUE(saw_loop_body);
    // Edge counts are conserved: for branch blocks, the two edge
    // counts sum to the block count.
    for (int b = 0; b < f.numBlocks(); ++b) {
        const auto &blk = f.block(b);
        if (blk.terminator().op == ir::Op::Branch &&
            blk.execCount > 0) {
            ASSERT_EQ(blk.succCount.size(), 2u);
            EXPECT_NEAR(blk.succCount[0] + blk.succCount[1],
                        blk.execCount, 1e-6);
        }
    }
}

TEST(Translate, InstanceOfLowersToSubtypeDiamond)
{
    const Program prog = dispatchProgram();
    const ir::Function f = ir::translate(prog, prog.mainMethod);
    ir::verifyOrDie(f);
    EXPECT_GE(countOps(f, ir::Op::LoadSubtype), 2);
    EXPECT_GE(countOps(f, ir::Op::TypeCheck), 1);   // checkcast
}

TEST(Equivalence, EvaluatorMatchesInterpreterOnAllSamples)
{
    for (const auto &sample : allSamplePrograms()) {
        SCOPED_TRACE(sample.name);
        Interpreter interp(sample.prog);
        const auto ires = interp.run();
        ASSERT_TRUE(ires.completed);

        const ir::Module mod = ir::translateProgram(sample.prog);
        for (const auto &[m, f] : mod.funcs)
            ir::verifyOrDie(f);
        ir::Evaluator eval(mod);
        const auto eres = eval.run();
        ASSERT_TRUE(eres.completed);
        EXPECT_EQ(eval.output(), interp.output());
    }
}

TEST(Equivalence, TrapsMatchBetweenExecutors)
{
    // Out-of-bounds store must trap identically in both executors.
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg n = mb.constant(4);
    const Reg arr = mb.newArray(n);
    const Reg idx = mb.constant(9);
    const Reg v = mb.constant(1);
    mb.astore(arr, idx, v);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Interpreter interp(prog);
    const auto ires = interp.run();
    ASSERT_TRUE(ires.trap.has_value());

    const ir::Module mod = ir::translateProgram(prog);
    ir::Evaluator eval(mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.trap.has_value());
    EXPECT_EQ(eres.trap->kind, ires.trap->kind);
}

} // namespace
