/**
 * @file
 * Regression tests for the paper's qualitative result shapes (so
 * future changes cannot silently break the reproduction):
 *
 *  - atomic+aggressive-inline wins on average; hsqldb and xalan win
 *    big; pmd loses in atomic (profile drift); jython loses in
 *    atomic but recovers with forced-monomorphic partial inlining;
 *  - average retired-uop reduction is positive and significant;
 *  - degraded region primitives (Figure 9) erase most of the win;
 *  - SLE is the dominant source of the monitor-heavy benchmarks'
 *    speedup.
 *
 * These run the real workloads and take a few seconds; they live in
 * their own binary so unit-test runs stay fast.
 */

#include <gtest/gtest.h>

#include "bench_common.hh"
#include "support/statistics.hh"

namespace {

using namespace aregion;
using namespace aregion::bench;

struct SuiteRuns
{
    std::map<std::string, WorkloadRuns> byWorkload;
};

const SuiteRuns &
suiteRuns()
{
    static const SuiteRuns runs = [] {
        SuiteRuns out;
        for (const auto &w : wl::dacapoSuite()) {
            out.byWorkload.emplace(
                w.name,
                runWorkload(w, paperConfigs(w.name == "jython")));
        }
        return out;
    }();
    return runs;
}

double
speedup(const std::string &workload, const std::string &config)
{
    const auto &runs = suiteRuns().byWorkload.at(workload);
    return speedupPct(runs.byConfig.at("no-atomic"),
                      runs.byConfig.at(config));
}

TEST(FigureShape, AtomicAggressiveWinsOnAverage)
{
    std::vector<double> speedups;
    for (const auto &w : wl::dacapoSuite())
        speedups.push_back(speedup(w.name, "atomic+aggr-inline"));
    EXPECT_GT(mean(speedups), 5.0);
}

TEST(FigureShape, HsqldbAndXalanWinBig)
{
    EXPECT_GT(speedup("hsqldb", "atomic+aggr-inline"), 10.0);
    EXPECT_GT(speedup("xalan", "atomic+aggr-inline"), 15.0);
}

TEST(FigureShape, PmdLosesUnderProfileDrift)
{
    EXPECT_LT(speedup("pmd", "atomic"), 0.0);
}

TEST(FigureShape, JythonLosesInAtomicButGreyBarRecovers)
{
    EXPECT_LT(speedup("jython", "atomic"), 0.0);
    EXPECT_GT(speedup("jython", "atomic+forced-mono"), 5.0);
    EXPECT_GT(speedup("jython", "atomic+aggr-inline"), 5.0);
}

TEST(FigureShape, UopReductionTracksFigure8)
{
    std::vector<double> reductions;
    for (const auto &w : wl::dacapoSuite()) {
        const auto &runs = suiteRuns().byWorkload.at(w.name);
        reductions.push_back(uopReductionPct(
            runs.byConfig.at("no-atomic"),
            runs.byConfig.at("atomic+aggr-inline")));
    }
    EXPECT_GT(mean(reductions), 3.0);
    // xalan and hsqldb individually shed a solid fraction.
    const auto &x = suiteRuns().byWorkload.at("hsqldb");
    EXPECT_GT(uopReductionPct(x.byConfig.at("no-atomic"),
                              x.byConfig.at("atomic+aggr-inline")),
              8.0);
}

TEST(FigureShape, DegradedPrimitivesEraseTheWin)
{
    // Figure 9 on the two biggest winners.
    for (const char *name : {"xalan", "hsqldb"}) {
        const auto &w = wl::workloadByName(name);
        const auto chk = runWorkload(
            w, {core::CompilerConfig::baseline(),
                core::CompilerConfig::atomicAggressiveInline()},
            hw::TimingConfig::baseline());
        const auto stall = runWorkload(
            w, {core::CompilerConfig::baseline(),
                core::CompilerConfig::atomicAggressiveInline()},
            hw::TimingConfig::stallBegin());
        const double s_chk = speedupPct(
            chk.byConfig.at("no-atomic"),
            chk.byConfig.at("atomic+aggr-inline"));
        const double s_stall = speedupPct(
            stall.byConfig.at("no-atomic"),
            stall.byConfig.at("atomic+aggr-inline"));
        EXPECT_LT(s_stall, s_chk / 2) << name;
    }
}

TEST(FigureShape, Table3CharacteristicsHold)
{
    for (const auto &w : wl::dacapoSuite()) {
        const auto &m = suiteRuns().byWorkload.at(w.name)
                            .byConfig.at("atomic+aggr-inline");
        SCOPED_TRACE(w.name);
        EXPECT_GT(m.uniqueRegions, 0);
        EXPECT_GT(m.coverage, 0.0);
        EXPECT_LE(m.coverage, 1.0);
        // abort rates stay in the "few percent" regime everywhere.
        EXPECT_LT(m.abortPct, 0.15);
    }
    // Relative coverage ordering: jython/xalan/hsqldb high, antlr low.
    const auto cov = [&](const char *n) {
        return suiteRuns().byWorkload.at(n)
            .byConfig.at("atomic+aggr-inline").coverage;
    };
    EXPECT_GT(cov("jython"), cov("antlr"));
    EXPECT_GT(cov("xalan"), cov("antlr"));
    EXPECT_GT(cov("hsqldb"), cov("pmd"));
}

TEST(FigureShape, OutputsIdenticalAcrossAllConfigs)
{
    for (const auto &w : wl::dacapoSuite()) {
        SCOPED_TRACE(w.name);
        const auto &runs = suiteRuns().byWorkload.at(w.name);
        const uint64_t want =
            runs.byConfig.at("no-atomic").outputChecksum;
        for (const auto &[name, m] : runs.byConfig)
            EXPECT_EQ(m.outputChecksum, want) << name;
    }
}

} // namespace
