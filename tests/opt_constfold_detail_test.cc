/**
 * @file
 * SCCP detail tests: the algebraic identity matrix, branch
 * elimination, check folding, assert-polarity awareness, and the
 * zero-initialised-register entry assumption.
 *
 * These scenarios carried over from the old constant-fold pass: the
 * sparse formulation must preserve its fold/identity/check semantics
 * exactly.
 */

#include <gtest/gtest.h>

#include "ir/evaluator.hh"
#include "ir/ssa.hh"
#include "ir/verifier.hh"
#include "opt/pass.hh"
#include "vm/builder.hh"

namespace {

using namespace aregion::ir;
namespace opt = aregion::opt;
namespace vm = aregion::vm;

struct MiniFunc
{
    MiniFunc()
    {
        block = &func.newBlock();
        func.entry = block->id;
    }

    Vreg
    constant(int64_t v)
    {
        const Vreg r = func.newVreg();
        Instr in;
        in.op = Op::Const;
        in.dst = r;
        in.imm = v;
        block->instrs.push_back(in);
        return r;
    }

    Vreg
    binop(Op op, Vreg a, Vreg b)
    {
        const Vreg r = func.newVreg();
        Instr in;
        in.op = op;
        in.dst = r;
        in.srcs = {a, b};
        block->instrs.push_back(in);
        return r;
    }

    void
    finish(std::vector<Vreg> keep)
    {
        for (Vreg v : keep) {
            Instr p;
            p.op = Op::Print;
            p.srcs = {v};
            block->instrs.push_back(p);
        }
        Instr ret;
        ret.op = Op::Ret;
        block->instrs.push_back(ret);
        verifyOrDie(func);
    }

    int
    count(Op op) const
    {
        int n = 0;
        for (int b : func.reversePostOrder()) {
            for (const auto &in : func.block(b).instrs)
                n += in.op == op;
        }
        return n;
    }

    Function func;
    Block *block;
};

/** SCCP on SSA form, lowering back out afterwards. (No trailing
 *  verify: some scenarios tag a bare block with a region id without
 *  registering a RegionInfo, which compact() then clears.) */
void
runSccp(Function &f)
{
    buildSSA(f);
    opt::sccp(f);
    destroySSA(f);
}

/** Identity sweep: (op, variable-side, const value, expect-gone). */
struct IdentityCase
{
    Op op;
    bool const_on_rhs;
    int64_t value;
    bool folds;
};

class IdentitySweep : public ::testing::TestWithParam<IdentityCase>
{
};

TEST_P(IdentitySweep, AlgebraicIdentities)
{
    const IdentityCase &c = GetParam();
    MiniFunc m;
    // A "variable": derived from an argument so it is not constant.
    m.func.numArgs = 1;
    m.func.ensureVregsAtLeast(1);
    const Vreg x = 0;
    const Vreg k = m.constant(c.value);
    const Vreg r = c.const_on_rhs ? m.binop(c.op, x, k)
                                  : m.binop(c.op, k, x);
    m.finish({r});
    runSccp(m.func);
    EXPECT_EQ(m.count(c.op), c.folds ? 0 : 1)
        << opName(c.op) << " value=" << c.value << " rhs="
        << c.const_on_rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Identities, IdentitySweep,
    ::testing::Values(
        IdentityCase{Op::Add, true, 0, true},
        IdentityCase{Op::Add, false, 0, true},
        IdentityCase{Op::Add, true, 5, false},
        IdentityCase{Op::Sub, true, 0, true},
        IdentityCase{Op::Sub, false, 0, false},   // 0 - x != x
        IdentityCase{Op::Mul, true, 1, true},
        IdentityCase{Op::Mul, false, 1, true},
        IdentityCase{Op::Mul, true, 0, true},     // -> const 0
        IdentityCase{Op::Mul, true, 2, false},
        IdentityCase{Op::And, true, 0, true},     // -> const 0
        IdentityCase{Op::Or, true, 0, true},
        IdentityCase{Op::Xor, true, 0, true},
        IdentityCase{Op::Shl, true, 0, true},
        IdentityCase{Op::Shr, true, 0, true},
        IdentityCase{Op::Shr, true, 3, false}));

TEST(SccpDetail, FullyConstantExpressionsCollapse)
{
    MiniFunc m;
    const Vreg a = m.constant(6);
    const Vreg b = m.constant(7);
    const Vreg p = m.binop(Op::Mul, a, b);
    const Vreg q = m.binop(Op::Add, p, p);
    m.finish({q});
    runSccp(m.func);
    opt::deadCodeElim(m.func);
    EXPECT_EQ(m.count(Op::Mul), 0);
    EXPECT_EQ(m.count(Op::Add), 0);

    // And the behaviour is preserved.
    Module mod;
    vm::ProgramBuilder pb;
    const auto mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    static vm::Program shell = pb.build();
    mod.prog = &shell;
    m.func.methodId = 0;
    mod.funcs.emplace(0, std::move(m.func));
    Evaluator eval(mod);
    const auto res = eval.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(eval.output(), std::vector<int64_t>{84});
}

TEST(SccpDetail, DivByZeroIsNeverFolded)
{
    MiniFunc m;
    const Vreg a = m.constant(10);
    const Vreg z = m.constant(0);
    const Vreg d = m.binop(Op::Div, a, z);
    m.finish({d});
    runSccp(m.func);
    EXPECT_EQ(m.count(Op::Div), 1);     // must trap at runtime
}

TEST(SccpDetail, UnwrittenRegistersAreZero)
{
    // Frames are zero-initialised; the folder may rely on it.
    MiniFunc m;
    const Vreg never_written = m.func.newVreg();
    const Vreg five = m.constant(5);
    const Vreg sum = m.binop(Op::Add, never_written, five);
    m.finish({sum});
    runSccp(m.func);
    opt::deadCodeElim(m.func);
    EXPECT_EQ(m.count(Op::Add), 0);     // folded to 5
}

TEST(SccpDetail, ArgumentsAreNotAssumedZero)
{
    MiniFunc m;
    m.func.numArgs = 1;
    m.func.ensureVregsAtLeast(1);
    const Vreg five = m.constant(5);
    const Vreg sum = m.binop(Op::Add, 0, five);
    m.finish({sum});
    runSccp(m.func);
    EXPECT_EQ(m.count(Op::Add), 1);
}

TEST(SccpDetail, ConstantBranchRemovesDeadArm)
{
    Function f;
    f.name = "br";
    auto &entry = f.newBlock();
    auto &live_arm = f.newBlock();
    auto &dead_arm = f.newBlock();
    auto &tail = f.newBlock();
    const Vreg c = f.newVreg();
    const Vreg out = f.newVreg();
    auto mk = [](Op op, Vreg dst, std::vector<Vreg> srcs,
                 int64_t imm = 0) {
        Instr in;
        in.op = op;
        in.dst = dst;
        in.srcs = std::move(srcs);
        in.imm = imm;
        return in;
    };
    entry.instrs = {mk(Op::Const, c, {}, 1),
                    mk(Op::Branch, NO_VREG, {c})};
    entry.succs = {live_arm.id, dead_arm.id};
    entry.succCount = {1, 0};
    live_arm.instrs = {mk(Op::Const, out, {}, 10),
                       mk(Op::Jump, NO_VREG, {})};
    live_arm.succs = {tail.id};
    live_arm.succCount = {1};
    dead_arm.instrs = {mk(Op::Const, out, {}, 20),
                       mk(Op::Jump, NO_VREG, {})};
    dead_arm.succs = {tail.id};
    dead_arm.succCount = {0};
    tail.instrs = {mk(Op::Print, NO_VREG, {out}),
                   mk(Op::Ret, NO_VREG, {})};
    f.entry = entry.id;
    verifyOrDie(f);

    const int before = f.numBlocks();
    buildSSA(f);
    opt::sccp(f);
    destroySSA(f);
    verifyOrDie(f);
    EXPECT_LT(f.numBlocks(), before);
    for (int b = 0; b < f.numBlocks(); ++b) {
        for (const auto &in : f.block(b).instrs)
            EXPECT_NE(in.op, Op::Branch);
    }
}

TEST(SccpDetail, ProvablyPassingChecksFold)
{
    MiniFunc m;
    const Vreg idx = m.constant(3);
    const Vreg len = m.constant(10);
    {
        Instr in;
        in.op = Op::BoundsCheck;
        in.srcs = {idx, len};
        m.block->instrs.push_back(in);
    }
    const Vreg d = m.constant(4);
    {
        Instr in;
        in.op = Op::DivCheck;
        in.srcs = {d};
        m.block->instrs.push_back(in);
    }
    m.finish({idx});
    runSccp(m.func);
    opt::deadCodeElim(m.func);
    EXPECT_EQ(m.count(Op::BoundsCheck), 0);
    EXPECT_EQ(m.count(Op::DivCheck), 0);
}

TEST(SccpDetail, FailingChecksAreKept)
{
    MiniFunc m;
    const Vreg idx = m.constant(12);
    const Vreg len = m.constant(10);
    {
        Instr in;
        in.op = Op::BoundsCheck;
        in.srcs = {idx, len};
        m.block->instrs.push_back(in);
    }
    m.finish({idx});
    runSccp(m.func);
    EXPECT_EQ(m.count(Op::BoundsCheck), 1);
}

TEST(SccpDetail, AssertPolarityRespected)
{
    for (int64_t imm : {0, 1}) {
        for (int64_t value : {0, 1}) {
            MiniFunc m;
            m.block->regionId = 0;
            const Vreg c = m.constant(value);
            Instr in;
            in.op = Op::Assert;
            in.srcs = {c};
            in.imm = imm;
            m.block->instrs.push_back(in);
            m.finish({});
            runSccp(m.func);
            // Fires when (imm ? value==0 : value!=0); only
            // never-firing asserts may be removed.
            const bool fires = imm ? value == 0 : value != 0;
            EXPECT_EQ(m.count(Op::Assert), fires ? 1 : 0)
                << "imm=" << imm << " value=" << value;
        }
    }
}

} // namespace
