/**
 * @file
 * A library of sample bytecode programs shared across test suites.
 *
 * Every factory returns a verified single- threaded program with
 * deterministic printed output, so executor-equivalence tests
 * (interpreter vs IR evaluator vs machine simulator, optimized or
 * not) can run over the whole set.
 */

#ifndef AREGION_TESTS_PROGRAMS_HH
#define AREGION_TESTS_PROGRAMS_HH

#include <functional>
#include <string>
#include <vector>

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::test {

using namespace aregion::vm;

struct SampleProgram
{
    std::string name;
    Program prog;
};

/** Arithmetic torture: chained ops over a loop, printing checksums. */
inline Program
arithLoopProgram()
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg acc = mb.constant(1);
    const Reg i = mb.constant(1);
    const Reg n = mb.constant(40);
    const Reg one = mb.constant(1);
    const Reg three = mb.constant(3);
    const Reg seven = mb.constant(7);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGt, i, n, done);
    mb.binopTo(Bc::Mul, acc, acc, three);
    mb.binopTo(Bc::Add, acc, acc, i);
    mb.binopTo(Bc::Rem, acc, acc, mb.constant(1000003));
    mb.binopTo(Bc::Xor, acc, acc, seven);
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.print(acc);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/** Recursion: fibonacci via two recursive calls. */
inline Program
fibProgram()
{
    ProgramBuilder pb;
    const MethodId fib = pb.declareMethod("fib", 1);
    {
        auto f = pb.define(fib);
        const Reg two = f.constant(2);
        const Label base = f.newLabel();
        f.branchCmp(Bc::CmpLt, f.arg(0), two, base);
        const Reg one = f.constant(1);
        const Reg a = f.callStatic(fib, {f.sub(f.arg(0), one)});
        const Reg b = f.callStatic(fib, {f.sub(f.arg(0), two)});
        f.ret(f.add(a, b));
        f.bind(base);
        f.ret(f.arg(0));
        f.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    mb.print(mb.callStatic(fib, {mb.constant(15)}));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/**
 * The paper's Figure 2 workload: SuballocatedIntVector.addElement,
 * inlined call pairs, hot path with null/bounds checks, cold path
 * allocating new chunks. Prints a checksum over the vector.
 */
inline Program
addElementProgram(int inserts = 3000, int chunk_size = 256)
{
    ProgramBuilder pb;
    const ClassId vec = pb.declareClass(
        "SuballocatedIntVector", {"chunks", "cached", "chunkIndex", "i"});
    const int f_chunks = pb.fieldIndex(vec, "chunks");
    const int f_cached = pb.fieldIndex(vec, "cached");
    const int f_chunk_index = pb.fieldIndex(vec, "chunkIndex");
    const int f_i = pb.fieldIndex(vec, "i");

    // addElement(this, x): hot path writes into the cached chunk;
    // cold path allocates the next chunk.
    const MethodId add = pb.declareMethod("addElement", 2);
    {
        auto f = pb.define(add);
        const Reg self = f.self();
        const Reg x = f.arg(1);
        const Reg cs = f.constant(chunk_size);
        const Label cold = f.newLabel();
        const Label done = f.newLabel();
        const Reg i = f.getField(self, f_i);
        f.branchCmp(Bc::CmpGe, i, cs, cold);
        // hot: cached[i] = x; ++i
        const Reg cached = f.getField(self, f_cached);
        f.astore(cached, i, x);
        const Reg one = f.constant(1);
        f.putField(self, f_i, f.add(i, one));
        f.jump(done);
        f.bind(cold);
        // cold: append a fresh chunk, reset i, store element at 0.
        const Reg fresh = f.newArray(cs);
        const Reg chunks = f.getField(self, f_chunks);
        const Reg ci = f.getField(self, f_chunk_index);
        const Reg one2 = f.constant(1);
        const Reg ci1 = f.add(ci, one2);
        f.astore(chunks, ci1, fresh);
        f.putField(self, f_chunk_index, ci1);
        f.putField(self, f_cached, fresh);
        const Reg zero = f.constant(0);
        f.astore(fresh, zero, x);
        f.putField(self, f_i, one2);
        f.bind(done);
        f.retVoid();
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg v = mb.newObject(vec);
    const Reg nchunks = mb.constant(2 + 2 * inserts / chunk_size);
    const Reg chunks = mb.newArray(nchunks);
    mb.putField(v, f_chunks, chunks);
    const Reg first = mb.newArray(mb.constant(chunk_size));
    const Reg zero = mb.constant(0);
    mb.astore(chunks, zero, first);
    mb.putField(v, f_cached, first);

    // The hottest call site calls addElement twice in a row (paper).
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(inserts);
    const Reg one = mb.constant(1);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    mb.callStaticVoid(add, {v, i});
    mb.callStaticVoid(add, {v, mb.add(i, one)});
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.print(mb.getField(v, f_i));
    mb.print(mb.getField(v, f_chunk_index));
    // Checksum the cached chunk.
    const Reg cached = mb.getField(v, f_cached);
    const Reg sum = mb.constant(0);
    const Reg j = mb.constant(0);
    const Reg len = mb.getField(v, f_i);
    const Label cloop = mb.newLabel();
    const Label cdone = mb.newLabel();
    mb.bind(cloop);
    mb.branchCmp(Bc::CmpGe, j, len, cdone);
    const Reg e = mb.aload(cached, j);
    mb.binopTo(Bc::Add, sum, sum, e);
    mb.binopTo(Bc::Add, j, j, one);
    mb.jump(cloop);
    mb.bind(cdone);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/** Virtual dispatch over a class hierarchy with a biased receiver. */
inline Program
dispatchProgram()
{
    ProgramBuilder pb;
    const ClassId shape = pb.declareClass("Shape", {"dim"});
    const int f_dim = pb.fieldIndex(shape, "dim");
    const ClassId square = pb.declareClass("Square", {}, shape);
    const ClassId circle = pb.declareClass("Circle", {}, shape);

    const MethodId area_sq = pb.declareVirtual(square, "area", 1);
    {
        auto f = pb.define(area_sq);
        const Reg d = f.getField(f.self(), f_dim);
        f.ret(f.mul(d, d));
    f.finish();
    }
    const MethodId area_ci = pb.declareVirtual(circle, "area", 1);
    {
        auto f = pb.define(area_ci);
        const Reg d = f.getField(f.self(), f_dim);
        const Reg three = f.constant(3);
        f.ret(f.mul(three, f.mul(d, d)));
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const int slot = pb.virtualSlot("area");
    const Reg sq = mb.newObject(square);
    const Reg ci = mb.newObject(circle);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(200);
    const Reg one = mb.constant(1);
    const Reg k31 = mb.constant(31);
    const Reg sum = mb.constant(0);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    const Label use_ci = mb.newLabel();
    const Label call = mb.newLabel();
    const Reg recv = mb.newReg();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    mb.putField(sq, f_dim, i);
    mb.putField(ci, f_dim, i);
    // every 31st iteration uses the circle (cold receiver)
    const Reg rem = mb.binop(Bc::Rem, i, k31);
    const Reg zero = mb.constant(0);
    const Reg is_cold = mb.cmp(Bc::CmpEq, rem, zero);
    mb.branchIf(is_cold, use_ci);
    mb.mov(recv, sq);
    mb.jump(call);
    mb.bind(use_ci);
    mb.mov(recv, ci);
    mb.bind(call);
    const Reg a = mb.callVirtual(slot, {recv});
    mb.binopTo(Bc::Add, sum, sum, a);
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.print(sum);
    // instanceof checks over both receivers
    mb.print(mb.instanceOf(sq, shape));
    mb.print(mb.instanceOf(ci, square));
    mb.checkCast(sq, shape);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/** Synchronized accumulator: monitor traffic on the hot path. */
inline Program
monitorProgram()
{
    ProgramBuilder pb;
    const ClassId acc = pb.declareClass("Acc", {"total"});
    const int f_total = pb.fieldIndex(acc, "total");
    const MethodId add = pb.declareMethod("add", 2, /*sync=*/true);
    {
        auto f = pb.define(add);
        const Reg t = f.getField(f.self(), f_total);
        f.putField(f.self(), f_total, f.add(t, f.arg(1)));
        f.retVoid();
        f.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.newObject(acc);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(500);
    const Reg one = mb.constant(1);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    mb.callStaticVoid(add, {a, i});
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.print(mb.getField(a, f_total));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/** Nested loops over a 2-D structure (array of arrays). */
inline Program
matrixProgram()
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg n = mb.constant(12);
    const Reg rows = mb.newArray(n);
    const Reg one = mb.constant(1);
    const Reg i = mb.constant(0);
    {
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        const Reg row = mb.newArray(n);
        mb.astore(rows, i, row);
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
    }
    // fill: rows[i][j] = i*13 + j, then checksum
    const Reg sum = mb.constant(0);
    const Reg k13 = mb.constant(13);
    mb.constTo(i, 0);
    {
        const Label iloop = mb.newLabel();
        const Label idone = mb.newLabel();
        mb.bind(iloop);
        mb.branchCmp(Bc::CmpGe, i, n, idone);
        const Reg row = mb.aload(rows, i);
        const Reg j = mb.constant(0);
        const Label jloop = mb.newLabel();
        const Label jdone = mb.newLabel();
        mb.bind(jloop);
        mb.branchCmp(Bc::CmpGe, j, n, jdone);
        const Reg v = mb.add(mb.mul(i, k13), j);
        mb.astore(row, j, v);
        mb.binopTo(Bc::Add, sum, sum, mb.aload(row, j));
        mb.binopTo(Bc::Add, j, j, one);
        mb.jump(jloop);
        mb.bind(jdone);
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(iloop);
        mb.bind(idone);
    }
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/** All sample programs (single-threaded, deterministic). */
inline std::vector<SampleProgram>
allSamplePrograms()
{
    std::vector<SampleProgram> samples;
    samples.push_back({"arith_loop", arithLoopProgram()});
    samples.push_back({"fib", fibProgram()});
    samples.push_back({"add_element", addElementProgram()});
    samples.push_back({"dispatch", dispatchProgram()});
    samples.push_back({"monitor", monitorProgram()});
    samples.push_back({"matrix", matrixProgram()});
    return samples;
}

} // namespace aregion::test

#endif // AREGION_TESTS_PROGRAMS_HH
