/**
 * @file
 * Parameterized property sweeps across the whole stack: for many
 * random programs, configurations, fault injections, and hardware
 * geometries, the compiled machine execution must match the
 * interpreter bit-for-bit.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "ir/evaluator.hh"
#include "programs.hh"
#include "random_program.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace core = aregion::core;
namespace hw = aregion::hw;

hw::MachineProgram
compileToMachine(const Program &prog,
                 const core::CompilerConfig &config)
{
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    interp.run();
    core::Compiled compiled =
        core::compileProgram(prog, profile, config);
    vm::Heap layout_heap(prog, 1 << 20);
    return hw::lowerModule(compiled.mod,
                           hw::LayoutInfo::fromHeap(layout_heap));
}

/** Sweep 1: random-program seeds x both compilers, full stack. */
class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, MachineMatchesInterpreter)
{
    RandomProgramGen gen(GetParam());
    const Program prog = gen.generate();
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    for (bool atomic : {false, true}) {
        core::CompilerConfig config =
            atomic ? core::CompilerConfig::atomic()
                   : core::CompilerConfig::baseline();
        config.region.loopPathThreshold = 20;
        config.region.targetSize = 40;
        config.region.minRegionInstrs = 4;
        const auto mp = compileToMachine(prog, config);
        hw::Machine machine(mp, hw::HwConfig{});
        const auto res = machine.run();
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.output, check.output())
            << (atomic ? "atomic" : "baseline");
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SeedSweep,
                         ::testing::Range<uint64_t>(300, 324));

/** Sweep 1b: object-oriented random programs (virtual dispatch,
 *  monitors, instanceof) through both compilers. */
class OoSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OoSeedSweep, MachineMatchesInterpreter)
{
    RandomProgramGen gen(GetParam());
    gen.withObjects = true;
    const Program prog = gen.generate();
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    for (bool atomic : {false, true}) {
        core::CompilerConfig config =
            atomic ? core::CompilerConfig::atomicAggressiveInline()
                   : core::CompilerConfig::baseline();
        config.region.loopPathThreshold = 20;
        config.region.targetSize = 40;
        config.region.minRegionInstrs = 4;
        const auto mp = compileToMachine(prog, config);
        hw::Machine machine(mp, hw::HwConfig{});
        const auto res = machine.run();
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.output, check.output())
            << (atomic ? "atomic" : "baseline");
    }
}

INSTANTIATE_TEST_SUITE_P(OoRandomPrograms, OoSeedSweep,
                         ::testing::Range<uint64_t>(500, 520));

/** Sweep 2: forced abort periods in the IR evaluator. */
class AbortPeriodSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AbortPeriodSweep, ForcedAbortsAreInvisible)
{
    const Program prog = addElementProgram(800, 128);
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    Profile profile(prog);
    Interpreter prof_run(prog, &profile);
    ASSERT_TRUE(prof_run.run().completed);
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::atomic());

    ir::Evaluator eval(compiled.mod);
    eval.forceAbortPeriod = GetParam();
    const auto res = eval.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(eval.output(), check.output());
    if (GetParam() > 0) {
        EXPECT_GT(res.regionAborts, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Periods, AbortPeriodSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 64));

/** Sweep 3: hostile hardware geometries (tiny speculative caches,
 *  aggressive interrupts) never change observable behaviour. */
struct HwGeometry
{
    int l1Lines;
    int l1Assoc;
    uint64_t interruptPeriod;
};

class GeometrySweep : public ::testing::TestWithParam<HwGeometry>
{
};

TEST_P(GeometrySweep, BestEffortHardwareIsTransparent)
{
    const Program prog = addElementProgram(1200, 128);
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    hw::HwConfig config;
    config.l1Lines = GetParam().l1Lines;
    config.l1Assoc = GetParam().l1Assoc;
    config.interruptPeriod = GetParam().interruptPeriod;
    hw::Machine machine(mp, config);
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, check.output());
    EXPECT_EQ(res.regionEntries,
              res.regionCommits + res.regionAborts);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(HwGeometry{512, 4, 4'000'000},
                      HwGeometry{64, 4, 4'000'000},
                      HwGeometry{16, 2, 4'000'000},
                      HwGeometry{8, 1, 4'000'000},
                      HwGeometry{512, 4, 500},
                      HwGeometry{512, 4, 97},
                      HwGeometry{16, 2, 333}));

/** Sweep 4: timing configurations only change cycle counts, never
 *  functional results, and cycles stay ordered by machine capability
 *  on a compute-heavy workload. */
class TimingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingSweep, TimingNeverChangesResults)
{
    RandomProgramGen gen(777);
    const Program prog = gen.generate();
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    hw::TimingConfig configs[5] = {
        hw::TimingConfig::baseline(), hw::TimingConfig::stallBegin(),
        hw::TimingConfig::singleInflight(),
        hw::TimingConfig::twoWide(), hw::TimingConfig::twoWideHalf()};
    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    hw::TimingModel timing(configs[GetParam()]);
    hw::Machine machine(mp, hw::HwConfig{}, &timing);
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, check.output());
    EXPECT_GT(timing.cycles(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, TimingSweep,
                         ::testing::Range(0, 5));

/** Sweep 5: all compiler feature combinations stay equivalent. */
class FeatureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FeatureSweep, FeatureCombinationsPreserveBehaviour)
{
    const int bits = GetParam();
    core::CompilerConfig config = core::CompilerConfig::atomic();
    config.sle = bits & 1;
    config.postdomCheckElim = bits & 2;
    config.elideSafepointsInRegions = bits & 4;
    config.inlineMultiplier = (bits & 8) ? 5.0 : 1.0;

    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        Interpreter check(s.prog);
        ASSERT_TRUE(check.run().completed);
        const auto mp = compileToMachine(s.prog, config);
        hw::Machine machine(mp, hw::HwConfig{});
        const auto res = machine.run();
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.output, check.output());
    }
}

INSTANTIATE_TEST_SUITE_P(Features, FeatureSweep,
                         ::testing::Range(0, 16));

} // namespace
