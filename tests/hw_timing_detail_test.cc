/**
 * @file
 * Timing-model detail tests on synthetic traces: ROB-occupancy
 * stalls, cache-latency effects, store-stream gating of locked
 * operations, single-inflight region spacing, and abort-flush
 * penalties.
 */

#include <gtest/gtest.h>

#include "hw/timing.hh"

namespace {

namespace hw = aregion::hw;

hw::TraceUop
alu(uint64_t seq, uint64_t dep = 0)
{
    hw::TraceUop u;
    u.seq = seq;
    u.pc = 0x100 + seq % 256;
    u.lat = hw::LatClass::Int;
    if (dep) {
        u.numSrcs = 1;
        u.srcSeq[0] = dep;
    }
    return u;
}

hw::TraceUop
load(uint64_t seq, uint64_t addr)
{
    hw::TraceUop u = alu(seq);
    u.lat = hw::LatClass::Load;
    u.isLoad = true;
    u.memAddr = addr;
    return u;
}

TEST(TimingDetail, RobOccupancyBoundsRuntimeDistance)
{
    // One very slow load followed by thousands of independent ALU
    // ops: dispatch must stall once the ROB fills behind the load.
    hw::TimingConfig cfg;
    cfg.prefetcher = false;
    hw::TimingModel tm(cfg);
    tm.uop(load(1, 0x900000));      // cold: memory latency
    for (uint64_t i = 2; i <= 2000; ++i)
        tm.uop(alu(i));
    // Without the ROB bound, 2000 uops at width 4 ~= 500 cycles; the
    // 400-cycle miss holding the ROB head forces > 700.
    EXPECT_GT(tm.cycles(), 700u);
}

TEST(TimingDetail, CacheHitsAreFastAfterWarmup)
{
    hw::TimingConfig cfg;
    cfg.prefetcher = false;
    hw::TimingModel cold(cfg);
    hw::TimingModel warm(cfg);
    // Cold: every load a new line. Warm: same line repeatedly.
    for (uint64_t i = 1; i <= 400; ++i) {
        cold.uop(load(i, 0x10000 + i * 8));
        warm.uop(load(i, 0x10000));
    }
    EXPECT_GT(cold.cycles(), 2 * warm.cycles());
    EXPECT_GT(cold.l1Misses(), warm.l1Misses() + 100);
}

TEST(TimingDetail, SerializingGatesMemoryNotAlu)
{
    // CAS followed by independent ALU ops is cheap; CAS followed by
    // independent loads pays the gate.
    auto run = [&](bool memory_after) {
        hw::TimingModel tm(hw::TimingConfig::baseline());
        uint64_t seq = 0;
        for (int rep = 0; rep < 100; ++rep) {
            hw::TraceUop cas = alu(++seq);
            cas.lat = hw::LatClass::Serial;
            cas.serializing = true;
            cas.isLoad = cas.isStore = true;
            cas.memAddr = 0x5000;
            tm.uop(cas);
            for (int i = 0; i < 10; ++i) {
                if (memory_after)
                    tm.uop(load(++seq, 0x5000));
                else
                    tm.uop(alu(++seq));
            }
        }
        return tm.cycles();
    };
    EXPECT_GT(run(true), run(false));
}

TEST(TimingDetail, SingleInflightSpacesRegions)
{
    auto run = [&](hw::TimingConfig cfg) {
        hw::TimingModel tm(cfg);
        uint64_t seq = 0;
        for (int region = 0; region < 200; ++region) {
            hw::TraceUop begin = alu(++seq);
            begin.region = hw::RegionEvent::Begin;
            tm.uop(begin);
            // A slow in-region load keeps the region "open" long.
            tm.uop(load(++seq, 0x800000 + static_cast<uint64_t>(
                                   region) * 4096));
            hw::TraceUop end = alu(++seq);
            end.region = hw::RegionEvent::End;
            tm.uop(end);
        }
        return tm.cycles();
    };
    hw::TimingConfig chk = hw::TimingConfig::baseline();
    chk.prefetcher = false;
    hw::TimingConfig single = hw::TimingConfig::singleInflight();
    single.prefetcher = false;
    EXPECT_GT(run(single), run(chk));
}

TEST(TimingDetail, BeginStallChargesPerRegion)
{
    auto run = [&](hw::TimingConfig cfg) {
        hw::TimingModel tm(cfg);
        uint64_t seq = 0;
        for (int region = 0; region < 500; ++region) {
            hw::TraceUop begin = alu(++seq);
            begin.region = hw::RegionEvent::Begin;
            tm.uop(begin);
            for (int i = 0; i < 4; ++i)
                tm.uop(alu(++seq));
            hw::TraceUop end = alu(++seq);
            end.region = hw::RegionEvent::End;
            tm.uop(end);
        }
        return tm.cycles();
    };
    const uint64_t chk = run(hw::TimingConfig::baseline());
    const uint64_t stall = run(hw::TimingConfig::stallBegin());
    // ~20 extra cycles per region.
    EXPECT_GT(stall, chk + 500 * 15);
}

TEST(TimingDetail, AbortFlushCostsAPipelineRefill)
{
    auto run = [&](int aborts) {
        hw::TimingModel tm(hw::TimingConfig::baseline());
        uint64_t seq = 0;
        for (int i = 0; i < 2000; ++i) {
            tm.uop(alu(++seq));
            if (aborts && i % (2000 / aborts) == 0)
                tm.abortFlush({hw::AbortCause::Explicit, 10, 0});
        }
        return tm.cycles();
    };
    const uint64_t clean = run(0);
    const uint64_t aborted = run(50);
    EXPECT_GT(aborted, clean + 50 * 10);
}

TEST(TimingDetail, RetireIsMonotone)
{
    hw::TimingModel tm(hw::TimingConfig::baseline());
    uint64_t last = 0;
    for (uint64_t i = 1; i <= 500; ++i) {
        tm.uop(alu(i, i > 1 ? i - 1 : 0));
        EXPECT_GE(tm.cycles(), last);
        last = tm.cycles();
    }
}

} // namespace
