/**
 * @file
 * Interpreter semantics tests: arithmetic, control flow, objects,
 * arrays, calls, checks/traps, and profiling.
 */

#include <gtest/gtest.h>

#include "vm_test_util.hh"

namespace {

using namespace aregion::vm;
using aregion::test::interpret;
using aregion::test::singleMethodProgram;

int64_t
evalBinop(Bc op, int64_t lhs, int64_t rhs)
{
    const Program prog = singleMethodProgram(
        [&](ProgramBuilder &, MethodBuilder &mb) {
            const Reg a = mb.constant(lhs);
            const Reg b = mb.constant(rhs);
            mb.print(mb.binop(op, a, b));
            mb.retVoid();
        });
    return interpret(prog).at(0);
}

TEST(InterpArith, BasicOps)
{
    EXPECT_EQ(evalBinop(Bc::Add, 2, 3), 5);
    EXPECT_EQ(evalBinop(Bc::Sub, 2, 3), -1);
    EXPECT_EQ(evalBinop(Bc::Mul, -4, 3), -12);
    EXPECT_EQ(evalBinop(Bc::Div, 7, 2), 3);
    EXPECT_EQ(evalBinop(Bc::Div, -7, 2), -3);   // truncation toward zero
    EXPECT_EQ(evalBinop(Bc::Rem, 7, 2), 1);
    EXPECT_EQ(evalBinop(Bc::Rem, -7, 2), -1);
    EXPECT_EQ(evalBinop(Bc::And, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(evalBinop(Bc::Or, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(evalBinop(Bc::Xor, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(evalBinop(Bc::Shl, 1, 10), 1024);
    EXPECT_EQ(evalBinop(Bc::Shr, -8, 1), -4);   // arithmetic shift
    EXPECT_EQ(evalBinop(Bc::Shl, 1, 64), 1);    // java-style masking
}

TEST(InterpArith, DivisionEdgeCases)
{
    EXPECT_EQ(evalBinop(Bc::Div, INT64_MIN, -1), INT64_MIN);
    EXPECT_EQ(evalBinop(Bc::Rem, INT64_MIN, -1), 0);
    EXPECT_THROW(evalBinop(Bc::Div, 1, 0), Trap);
    EXPECT_THROW(evalBinop(Bc::Rem, 1, 0), Trap);
}

TEST(InterpArith, Comparisons)
{
    EXPECT_EQ(evalBinop(Bc::CmpEq, 3, 3), 1);
    EXPECT_EQ(evalBinop(Bc::CmpNe, 3, 3), 0);
    EXPECT_EQ(evalBinop(Bc::CmpLt, 2, 3), 1);
    EXPECT_EQ(evalBinop(Bc::CmpLe, 3, 3), 1);
    EXPECT_EQ(evalBinop(Bc::CmpGt, 3, 2), 1);
    EXPECT_EQ(evalBinop(Bc::CmpGe, 2, 3), 0);
}

TEST(InterpControl, LoopComputesSum)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            const Reg sum = mb.constant(0);
            const Reg i = mb.constant(0);
            const Reg n = mb.constant(10);
            const Reg one = mb.constant(1);
            const Label loop = mb.newLabel();
            const Label done = mb.newLabel();
            mb.bind(loop);
            mb.branchCmp(Bc::CmpGe, i, n, done);
            mb.binopTo(Bc::Add, sum, sum, i);
            mb.binopTo(Bc::Add, i, i, one);
            mb.jump(loop);
            mb.bind(done);
            mb.print(sum);
            mb.retVoid();
        });
    EXPECT_EQ(interpret(prog), std::vector<int64_t>{45});
}

TEST(InterpObjects, FieldsRoundTrip)
{
    ProgramBuilder pb;
    const ClassId point = pb.declareClass("Point", {"x", "y"});
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg p = mb.newObject(point);
    const Reg v = mb.constant(17);
    mb.putField(p, pb.fieldIndex(point, "y"), v);
    mb.print(mb.getField(p, pb.fieldIndex(point, "y")));
    mb.print(mb.getField(p, pb.fieldIndex(point, "x"))); // zero-init
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);
    EXPECT_EQ(interpret(prog), (std::vector<int64_t>{17, 0}));
}

TEST(InterpArrays, StoreLoadLength)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            const Reg n = mb.constant(5);
            const Reg arr = mb.newArray(n);
            const Reg idx = mb.constant(3);
            const Reg val = mb.constant(99);
            mb.astore(arr, idx, val);
            mb.print(mb.aload(arr, idx));
            mb.print(mb.alength(arr));
            const Reg zero = mb.constant(0);
            mb.print(mb.aload(arr, zero));  // zero-init
            mb.retVoid();
        });
    EXPECT_EQ(interpret(prog), (std::vector<int64_t>{99, 5, 0}));
}

TEST(InterpTraps, NullPointerOnField)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            const Reg nil = mb.constant(0);
            mb.print(mb.getField(nil, 0));
            mb.retVoid();
        });
    try {
        interpret(prog);
        FAIL() << "expected NullPointer trap";
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind, TrapKind::NullPointer);
    }
}

TEST(InterpTraps, ArrayBoundsBothSides)
{
    for (int64_t bad : {-1, 5}) {
        const Program prog = singleMethodProgram(
            [&](ProgramBuilder &, MethodBuilder &mb) {
                const Reg n = mb.constant(5);
                const Reg arr = mb.newArray(n);
                const Reg idx = mb.constant(bad);
                mb.print(mb.aload(arr, idx));
                mb.retVoid();
            });
        try {
            interpret(prog);
            FAIL() << "expected ArrayBounds trap for index " << bad;
        } catch (const Trap &t) {
            EXPECT_EQ(t.kind, TrapKind::ArrayBounds);
        }
    }
}

TEST(InterpTraps, NegativeArraySize)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            const Reg n = mb.constant(-2);
            mb.newArray(n);
            mb.retVoid();
        });
    try {
        interpret(prog);
        FAIL() << "expected NegativeArraySize";
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind, TrapKind::NegativeArraySize);
    }
}

TEST(InterpCalls, StaticCallPassesArgsAndReturns)
{
    ProgramBuilder pb;
    const MethodId addm = pb.declareMethod("add", 2);
    auto add = pb.define(addm);
    add.ret(add.binop(Bc::Add, add.arg(0), add.arg(1)));
    add.finish();

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.constant(20);
    const Reg b = mb.constant(22);
    mb.print(mb.callStatic(addm, {a, b}));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);
    EXPECT_EQ(interpret(prog), std::vector<int64_t>{42});
}

TEST(InterpCalls, RecursionComputesFactorial)
{
    ProgramBuilder pb;
    const MethodId fact = pb.declareMethod("fact", 1);
    auto f = pb.define(fact);
    const Reg one = f.constant(1);
    const Label base = f.newLabel();
    f.branchCmp(Bc::CmpLe, f.arg(0), one, base);
    const Reg nm1 = f.sub(f.arg(0), one);
    const Reg rec = f.callStatic(fact, {nm1});
    f.ret(f.mul(f.arg(0), rec));
    f.bind(base);
    f.ret(one);
    f.finish();

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg n = mb.constant(10);
    mb.print(mb.callStatic(fact, {n}));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);
    EXPECT_EQ(interpret(prog), std::vector<int64_t>{3628800});
}

TEST(InterpCalls, VirtualDispatchPicksOverride)
{
    ProgramBuilder pb;
    const ClassId base = pb.declareClass("Base", {});
    const ClassId sub = pb.declareClass("Sub", {}, base);
    const MethodId bm = pb.declareVirtual(base, "tag", 1);
    const MethodId sm = pb.declareVirtual(sub, "tag", 1);
    {
        auto f = pb.define(bm);
        f.ret(f.constant(1));
        f.finish();
    }
    {
        auto f = pb.define(sm);
        f.ret(f.constant(2));
        f.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const int slot = pb.virtualSlot("tag");
    const Reg b = mb.newObject(base);
    const Reg s = mb.newObject(sub);
    mb.print(mb.callVirtual(slot, {b}));
    mb.print(mb.callVirtual(slot, {s}));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);
    EXPECT_EQ(interpret(prog), (std::vector<int64_t>{1, 2}));
}

TEST(InterpTypes, InstanceOfAndCheckCast)
{
    ProgramBuilder pb;
    const ClassId base = pb.declareClass("Base", {});
    const ClassId sub = pb.declareClass("Sub", {}, base);
    const ClassId other = pb.declareClass("Other", {});
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg s = mb.newObject(sub);
    const Reg o = mb.newObject(other);
    const Reg nil = mb.constant(0);
    mb.print(mb.instanceOf(s, base));   // 1: subclass
    mb.print(mb.instanceOf(o, base));   // 0: unrelated
    mb.print(mb.instanceOf(nil, base)); // 0: null
    mb.checkCast(s, base);              // ok
    mb.checkCast(nil, base);            // null passes
    mb.checkCast(o, base);              // traps
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);
    Interpreter interp(prog);
    const auto res = interp.run();
    ASSERT_TRUE(res.trap.has_value());
    EXPECT_EQ(res.trap->kind, TrapKind::ClassCast);
    EXPECT_EQ(interp.output(), (std::vector<int64_t>{1, 0, 0}));
}

TEST(InterpProfile, BranchBiasAndExecCounts)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(100);
    const Reg one = mb.constant(1);
    const Reg ten = mb.constant(10);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    const Label skip = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    // rare path: every 10th iteration
    const Reg rem = mb.binop(Bc::Rem, i, ten);
    const Reg zero = mb.constant(0);
    const Reg isRare = mb.cmp(Bc::CmpNe, rem, zero);
    mb.branchIf(isRare, skip);
    mb.print(i);
    mb.bind(skip);
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Profile profile(prog);
    Interpreter interp(prog, &profile);
    const auto res = interp.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(interp.output().size(), 10u);   // 0,10,...,90

    // Find the rare-path branch and check its bias is ~0.9 taken.
    const auto &code = prog.method(mm).code;
    int rare_branch_pc = -1;
    int exit_branch_pc = -1;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        if (code[pc].op != Bc::Branch)
            continue;
        if (exit_branch_pc == -1)
            exit_branch_pc = static_cast<int>(pc);
        else
            rare_branch_pc = static_cast<int>(pc);
    }
    ASSERT_GE(rare_branch_pc, 0);
    EXPECT_EQ(profile.execCount(mm, rare_branch_pc), 100u);
    EXPECT_NEAR(profile.takenBias(mm, rare_branch_pc), 0.9, 1e-9);
    EXPECT_NEAR(profile.takenBias(mm, exit_branch_pc), 1.0 / 101.0, 1e-3);
    EXPECT_EQ(profile.forMethod(mm).invocations, 1u);
}

TEST(InterpProfile, VirtualCallReceiversRecorded)
{
    ProgramBuilder pb;
    const ClassId a = pb.declareClass("A", {});
    const ClassId b = pb.declareClass("B", {}, a);
    const MethodId fa = pb.declareVirtual(a, "f", 1);
    {
        auto f = pb.define(fa);
        f.ret(f.constant(0));
        f.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const int slot = pb.virtualSlot("f");
    const Reg oa = mb.newObject(a);
    const Reg ob = mb.newObject(b);
    mb.callVirtual(slot, {oa});
    mb.callVirtual(slot, {oa});
    mb.callVirtual(slot, {ob});
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    uint64_t total = 0;
    int sites = 0;
    for (const auto &[pc, site] : profile.forMethod(mm).callSites) {
        ++sites;
        total += site.total;
    }
    EXPECT_EQ(sites, 3);
    EXPECT_EQ(total, 3u);
}

TEST(InterpMisc, MarkersAndChecksum)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            mb.marker(7);
            mb.print(mb.constant(5));
            mb.marker(7);
            mb.retVoid();
        });
    Interpreter interp(prog);
    ASSERT_TRUE(interp.run().completed);
    ASSERT_EQ(interp.markers().size(), 2u);
    EXPECT_EQ(interp.markers()[0].markerId, 7);
    EXPECT_LT(interp.markers()[0].instrCount,
              interp.markers()[1].instrCount);
    EXPECT_NE(interp.outputChecksum(), 0u);
}

TEST(InterpMisc, StepBudgetStopsInfiniteLoop)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            const Label spin = mb.newLabel();
            mb.bind(spin);
            mb.safepoint();
            mb.jump(spin);
            mb.retVoid();
        });
    Interpreter interp(prog);
    const auto res = interp.run(10000);
    EXPECT_FALSE(res.completed);
    EXPECT_FALSE(res.trap.has_value());
    EXPECT_GE(res.instructions, 10000u);
}

} // namespace
