/**
 * @file
 * Timing model tests: predictor learning, cache behaviour, and the
 * pipeline model's qualitative properties (width scaling,
 * dependence serialization, mispredict penalties, region-primitive
 * implementation costs from Figure 9).
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "support/random.hh"
#include "hw/branch_predictor.hh"
#include "hw/cache.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "programs.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace core = aregion::core;
namespace hw = aregion::hw;

TEST(Predictor, LearnsBiasedBranch)
{
    hw::BranchPredictor bp;
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        const bool taken = i % 100 != 0;    // 99% taken
        wrong += bp.predictTaken(0x400) != taken;
        bp.update(0x400, taken);
    }
    EXPECT_LT(wrong, 40);
}

TEST(Predictor, GshareLearnsAlternatingPattern)
{
    hw::BranchPredictor bp;
    int wrong_tail = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = i % 2 == 0;
        const bool predicted = bp.predictTaken(0x800);
        if (i > 1000)
            wrong_tail += predicted != taken;
        bp.update(0x800, taken);
    }
    EXPECT_LT(wrong_tail, 50);  // history-based component learns it
}

TEST(Predictor, IndirectTargetTable)
{
    hw::BranchPredictor bp;
    bp.updateTarget(0x1000, 0xabcd);
    EXPECT_EQ(bp.predictTarget(0x1000), 0xabcdu);
    bp.updateTarget(0x1000, 0xef01);
    EXPECT_EQ(bp.predictTarget(0x1000), 0xef01u);
}

TEST(Cache, HitsAfterInstall)
{
    hw::Cache cache(64, 4);
    EXPECT_FALSE(cache.access(10));
    EXPECT_TRUE(cache.access(10));
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_EQ(cache.hits, 1u);
}

TEST(Cache, LruEvictsWithinSet)
{
    hw::Cache cache(8, 2);      // 4 sets, 2 ways
    // Lines 0, 4, 8 map to set 0; capacity 2.
    cache.access(0);
    cache.access(4);
    cache.access(8);            // evicts 0
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(8));
}

TEST(CacheHierarchy, LatencyOrdering)
{
    hw::CacheHierarchy h(64, 4, 1024, 8, 4, 20, 400, false);
    const int miss = h.accessLatency(0x5000, 8);
    const int hit = h.accessLatency(0x5000, 8);
    EXPECT_EQ(miss, 400);
    EXPECT_EQ(hit, 4);
}

/** Feed a synthetic trace of independent ALU uops. */
uint64_t
cyclesForAluStream(int width, uint64_t count, bool dependent)
{
    hw::TimingConfig cfg;
    cfg.width = width;
    hw::TimingModel tm(cfg);
    for (uint64_t i = 1; i <= count; ++i) {
        hw::TraceUop u;
        u.seq = i;
        u.pc = 0x1000 + i % 64;
        u.lat = hw::LatClass::Int;
        if (dependent && i > 1) {
            u.numSrcs = 1;
            u.srcSeq[0] = i - 1;
        }
        tm.uop(u);
    }
    return tm.cycles();
}

TEST(Timing, WidthBoundsIndependentThroughput)
{
    const uint64_t c4 = cyclesForAluStream(4, 10000, false);
    const uint64_t c2 = cyclesForAluStream(2, 10000, false);
    // Independent stream: ~count/width cycles.
    EXPECT_NEAR(static_cast<double>(c4), 2500.0, 300.0);
    EXPECT_NEAR(static_cast<double>(c2), 5000.0, 500.0);
}

TEST(Timing, DependencyChainSerializesExecution)
{
    const uint64_t ilp = cyclesForAluStream(4, 5000, false);
    const uint64_t chain = cyclesForAluStream(4, 5000, true);
    EXPECT_GT(chain, 3 * ilp);  // one per cycle vs width per cycle
}

TEST(Timing, MispredictsCostPenalty)
{
    auto run = [&](bool predictable) {
        hw::TimingModel tm(hw::TimingConfig::baseline());
        Rng rng(7);
        for (uint64_t i = 1; i <= 4000; ++i) {
            hw::TraceUop u;
            u.seq = i;
            u.pc = 0x2000;
            u.lat = hw::LatClass::Branch;
            u.isBranch = true;
            u.taken = predictable ? true : rng.chance(0.5);
            tm.uop(u);
        }
        return tm.cycles();
    };
    const uint64_t good = run(true);
    const uint64_t bad = run(false);
    EXPECT_GT(bad, 2 * good);
}

TEST(Timing, SerializingUopsDrainThePipeline)
{
    auto run = [&](bool serial) {
        hw::TimingModel tm(hw::TimingConfig::baseline());
        for (uint64_t i = 1; i <= 2000; ++i) {
            hw::TraceUop u;
            u.seq = i;
            u.pc = 0x3000 + i % 16;
            if (serial && i % 10 == 0) {
                u.lat = hw::LatClass::Serial;
                u.serializing = true;
            }
            tm.uop(u);
        }
        return tm.cycles();
    };
    EXPECT_GT(run(true), 2 * run(false));
}

/** End-to-end: machine + timing on a compiled program. */
uint64_t
endToEndCycles(const Program &prog, const core::CompilerConfig &cc,
               const hw::TimingConfig &tc)
{
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    AREGION_ASSERT(interp.run().completed, "profile run");
    core::Compiled compiled = core::compileProgram(prog, profile, cc);
    vm::Heap layout_heap(prog, 1 << 20);
    const auto mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::TimingModel tm(tc);
    hw::Machine machine(mp, hw::HwConfig{}, &tm);
    const auto res = machine.run();
    AREGION_ASSERT(res.completed, "machine run");
    return tm.cycles();
}

TEST(TimingEndToEnd, RegionOverheadOrdering)
{
    // Figure 9's premise: checkpoint <= +20-cycle <= single-inflight
    // (on region-heavy code).
    const Program prog = addElementProgram(2500, 256);
    const auto atomic = core::CompilerConfig::atomic();
    const uint64_t chk = endToEndCycles(
        prog, atomic, hw::TimingConfig::baseline());
    const uint64_t stall = endToEndCycles(
        prog, atomic, hw::TimingConfig::stallBegin());
    const uint64_t single = endToEndCycles(
        prog, atomic, hw::TimingConfig::singleInflight());
    EXPECT_LE(chk, stall);
    EXPECT_LT(chk, single);
}

TEST(TimingEndToEnd, AtomicBeatsBaselineOnAddElement)
{
    const Program prog = addElementProgram(2500, 256);
    const uint64_t base = endToEndCycles(
        prog, core::CompilerConfig::baseline(),
        hw::TimingConfig::baseline());
    const uint64_t atomic = endToEndCycles(
        prog, core::CompilerConfig::atomic(),
        hw::TimingConfig::baseline());
    EXPECT_LT(atomic, base);
}

TEST(TimingEndToEnd, NarrowMachineIsSlower)
{
    const Program prog = matrixProgram();
    const auto cc = core::CompilerConfig::baseline();
    const uint64_t wide = endToEndCycles(
        prog, cc, hw::TimingConfig::baseline());
    const uint64_t narrow = endToEndCycles(
        prog, cc, hw::TimingConfig::twoWide());
    EXPECT_GT(narrow, wide);
}

TEST(TimingEndToEnd, MarkersRecordMonotoneCycles)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    mb.marker(1);
    const Reg sum = mb.constant(0);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(200);
    const Reg one = mb.constant(1);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    mb.binopTo(Bc::Add, sum, sum, i);
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.marker(2);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::baseline());
    vm::Heap layout_heap(prog, 1 << 20);
    const auto mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::TimingModel tm(hw::TimingConfig::baseline());
    hw::Machine machine(mp, hw::HwConfig{}, &tm);
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    ASSERT_EQ(tm.markerCycles.size(), 2u);
    EXPECT_EQ(tm.markerCycles[0].first, 1);
    EXPECT_EQ(tm.markerCycles[1].first, 2);
    EXPECT_LT(tm.markerCycles[0].second, tm.markerCycles[1].second);
    ASSERT_EQ(res.markers.size(), 2u);
    EXPECT_LT(res.markers[0].retiredUops, res.markers[1].retiredUops);
}

TEST(TimingConfigs, FactoriesMatchFigure9AndSection63)
{
    EXPECT_EQ(hw::TimingConfig::baseline().width, 4);
    EXPECT_EQ(hw::TimingConfig::baseline().robSize, 128);
    EXPECT_EQ(hw::TimingConfig::stallBegin().regionImpl,
              hw::TimingConfig::RegionImpl::StallBegin);
    EXPECT_EQ(hw::TimingConfig::singleInflight().regionImpl,
              hw::TimingConfig::RegionImpl::SingleInflight);
    EXPECT_EQ(hw::TimingConfig::twoWide().width, 2);
    EXPECT_EQ(hw::TimingConfig::twoWideHalf().l1Lines, 256);
}

} // namespace
