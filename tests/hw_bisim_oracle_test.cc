/**
 * @file
 * Deopt bisimulation oracle tests (hw/bisim.hh).
 *
 * The oracle re-executes every aborted region's alternate path
 * non-speculatively from the aregion_begin checkpoint and requires
 * the replay to reach exactly the observable state the hardware left
 * behind — registers, pc, heap effects, trap identity, allocation
 * watermark. These tests drive it three ways: a hostile injection
 * grid over random programs (must stay silent), a planted rollback
 * bug via the oracle.inject.divergence failpoint (must be flagged,
 * with the replay stamp attached), and direct tampered-state feeds
 * that pin the report cap and the per-component messages.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.hh"
#include "hw/bisim.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "random_program.hh"
#include "support/failpoint.hh"
#include "vm/builder.hh"
#include "vm/interpreter.hh"
#include "vm/layout.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace core = aregion::core;
namespace hw = aregion::hw;
namespace fp = aregion::failpoint;

hw::MachineProgram
compileToMachine(const Program &prog)
{
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    interp.run();
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::atomic());
    vm::Heap layout_heap(prog, 1 << 20);
    return hw::lowerModule(compiled.mod,
                           hw::LayoutInfo::fromHeap(layout_heap));
}

struct BisimRun
{
    hw::MachineResult result;
    uint64_t checks = 0;
    uint64_t replays = 0;
    uint64_t replayedUops = 0;
    std::vector<hw::Divergence> divergences;
};

/** Run one compiled program with the bisimulation oracle attached
 *  under the given failpoint configuration (empty = no injection). */
BisimRun
runWithBisim(const hw::MachineProgram &mp, const std::string &inject,
             uint64_t inject_seed, const hw::HwConfig &config)
{
    auto &fps = fp::Registry::global();
    fps.disarmAll();
    if (!inject.empty()) {
        fps.setSeed(inject_seed);
        std::string err;
        EXPECT_GE(fps.configure(inject, &err), 0) << err;
    }

    hw::BisimOracle bisim(mp);
    hw::Machine machine(mp, config);
    machine.setBisimOracle(&bisim);
    BisimRun run;
    run.result = machine.run();
    run.checks = bisim.checks();
    run.replays = bisim.replays();
    run.replayedUops = bisim.replayedUops();
    run.divergences = bisim.divergences();
    fps.disarmAll();
    return run;
}

class BisimOracleTest : public ::testing::Test
{
  protected:
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

/**
 * The acceptance grid: random program × failpoint seed × injection
 * mode. Every abort — interrupt, capacity squeeze, explicit assert —
 * must bisimulate: the non-speculative replay from the checkpoint
 * and the machine's own post-abort state must be indistinguishable.
 * In aggregate the grid must actually replay work (two replays per
 * abort), so the oracle is demonstrably exercised.
 */
TEST_F(BisimOracleTest, RandomProgramsBisimulateUnderInjectedAborts)
{
    const std::vector<std::string> injections = {
        "machine.interrupt:p0.05",
        "machine.capacity:n3",
        "machine.interrupt:p0.02,machine.capacity:p0.25,"
        "machine.assert:n5=117",
    };

    hw::HwConfig config;
    config.interruptPeriod = 20'000;

    uint64_t combos = 0;
    uint64_t total_checks = 0;
    uint64_t total_replayed = 0;
    uint64_t total_aborts = 0;

    for (uint64_t prog_seed = 1; prog_seed <= 14; ++prog_seed) {
        RandomProgramGen gen(prog_seed);
        gen.withObjects = prog_seed % 2 == 0;
        const Program prog = gen.generate();

        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed) << "seed " << prog_seed;
        const auto mp = compileToMachine(prog);

        for (size_t mode = 0; mode < injections.size(); ++mode) {
            for (uint64_t fp_seed : {11ull, 42ull}) {
                SCOPED_TRACE("prog_seed=" + std::to_string(prog_seed) +
                             " mode=" + std::to_string(mode) +
                             " fp_seed=" + std::to_string(fp_seed));
                const BisimRun run = runWithBisim(
                    mp, injections[mode], fp_seed, config);
                ++combos;
                ASSERT_TRUE(run.result.completed);
                EXPECT_EQ(run.result.output, ref.output());
                EXPECT_TRUE(run.divergences.empty())
                    << run.divergences.size() << " divergence(s), "
                    << "first: " << run.divergences.front().what;
                EXPECT_EQ(run.checks, run.result.regionAborts);
                EXPECT_EQ(run.replays, 2 * run.checks);
                total_checks += run.checks;
                total_replayed += run.replayedUops;
                total_aborts += run.result.regionAborts;
            }
        }
    }

    EXPECT_GE(combos, 80u);
    EXPECT_GT(total_aborts, 100u);
    EXPECT_GT(total_checks, 100u);
    EXPECT_GT(total_replayed, 0u);
}

/** Naturally occurring aborts (timer interrupts, overflow under a
 *  tiny speculative cache) bisimulate too — no injection armed. */
TEST_F(BisimOracleTest, NaturalAbortsBisimulate)
{
    hw::HwConfig config;
    config.interruptPeriod = 5'000;
    config.l1Lines = 16;
    config.l1Assoc = 2;

    for (uint64_t prog_seed : {3ull, 7ull, 12ull}) {
        RandomProgramGen gen(prog_seed);
        const Program prog = gen.generate();
        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed);
        const auto mp = compileToMachine(prog);
        const BisimRun run = runWithBisim(mp, "", 0, config);
        ASSERT_TRUE(run.result.completed);
        EXPECT_EQ(run.result.output, ref.output());
        EXPECT_TRUE(run.divergences.empty());
    }
}

/** The oracle is a pure observer: attaching it must not change any
 *  architectural observable of a run with real aborts. */
TEST_F(BisimOracleTest, OracleIsPureObserver)
{
    hw::HwConfig config;
    config.interruptPeriod = 20'000;
    for (uint64_t prog_seed : {2ull, 9ull}) {
        const Program prog = RandomProgramGen(prog_seed).generate();
        const auto mp = compileToMachine(prog);

        auto &fps = fp::Registry::global();
        fps.disarmAll();
        fps.setSeed(11);
        std::string err;
        ASSERT_GE(fps.configure("machine.interrupt:p0.05", &err), 0)
            << err;
        hw::Machine plain(mp, config);
        const hw::MachineResult base = plain.run();

        fps.setSeed(11);    // reset the failpoint hit stream
        const BisimRun run =
            runWithBisim(mp, "machine.interrupt:p0.05", 11, config);

        EXPECT_EQ(run.result.output, base.output);
        EXPECT_EQ(run.result.retiredUops, base.retiredUops);
        EXPECT_EQ(run.result.executedUops, base.executedUops);
        EXPECT_EQ(run.result.regionEntries, base.regionEntries);
        EXPECT_EQ(run.result.regionAborts, base.regionAborts);
        EXPECT_EQ(run.result.regionCommits, base.regionCommits);
    }
}

/** Hand-assemble a minimal abort program: an aborted speculative
 *  store must be invisible, and the alternate path prints the
 *  pre-region values. numRegs = 8, so the divergence failpoint's
 *  corruption target (regs.back() = r7) is a *dead* register — the
 *  case a state-equality oracle at the abort point cannot see but
 *  the bisimulation register-file comparison must. */
hw::MachineProgram
abortProgram(const vm::Program &shell)
{
    hw::MachineProgram mp;
    mp.prog = &shell;
    hw::MachineFunction f;
    f.methodId = 0;
    f.name = "abort_demo";
    f.numArgs = 0;
    f.numRegs = 8;
    auto uop = [](hw::MKind kind, hw::MReg dst,
                  std::vector<hw::MReg> srcs, int64_t imm, int aux,
                  int target) {
        hw::MUop u;
        u.kind = kind;
        u.dst = dst;
        u.srcs = std::move(srcs);
        u.imm = imm;
        u.aux = aux;
        u.target = target;
        return u;
    };
    using K = hw::MKind;
    constexpr int64_t ELEM = vm::layout::ARR_ELEM_BASE;
    f.code = {
        uop(K::Imm, 3, {}, 64, 0, -1),
        uop(K::Alloc, 1, {3}, 1, 0, -1),
        uop(K::Imm, 0, {}, 11, 0, -1),
        uop(K::Store, hw::NO_MREG, {1, 0}, ELEM, 0, -1),
        uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 8),
        uop(K::Imm, 0, {}, 99, 0, -1),
        uop(K::Store, hw::NO_MREG, {1, 0}, ELEM, 0, -1),
        uop(K::AAbort, hw::NO_MREG, {}, 0, 3, -1),
        // alt (offset 8):
        uop(K::Print, hw::NO_MREG, {0}, 0, 0, -1),
        uop(K::Load, 2, {1}, ELEM, 0, -1),
        uop(K::Print, hw::NO_MREG, {2}, 0, 0, -1),
        uop(K::Ret, hw::NO_MREG, {}, 0, 0, -1),
    };
    mp.funcs.emplace(0, std::move(f));
    return mp;
}

vm::Program
shellProgram()
{
    vm::ProgramBuilder pb;
    const vm::MethodId id = pb.declareMethod("m0", 0);
    auto mb = pb.define(id);
    mb.retVoid();
    mb.finish();
    pb.setMain(id);
    return pb.build();
}

/** Negative self-test: the oracle.inject.divergence failpoint
 *  corrupts one restored register after the checkpoint copy — a
 *  planted rollback bug. The bisimulation oracle must flag it even
 *  though the corrupted register is dead on the alternate path, and
 *  the report must carry the setReplayInfo stamp. */
TEST_F(BisimOracleTest, DetectsPlantedRollbackBug)
{
    const vm::Program shell = shellProgram();
    const hw::MachineProgram mp = abortProgram(shell);

    // Clean control: the planted bug absent, the abort bisimulates.
    {
        const BisimRun clean = runWithBisim(mp, "", 0, hw::HwConfig{});
        ASSERT_TRUE(clean.result.completed);
        EXPECT_EQ(clean.result.output,
                  (std::vector<int64_t>{11, 11}));
        ASSERT_EQ(clean.checks, 1u);
        EXPECT_TRUE(clean.divergences.empty());
    }

    auto &fps = fp::Registry::global();
    fps.disarmAll();
    fps.setSeed(5);
    std::string err;
    ASSERT_GE(fps.configure("oracle.inject.divergence:p1=7", &err), 0)
        << err;

    hw::BisimOracle bisim(mp);
    bisim.setReplayInfo(4242, "hw_bisim_oracle_test planted-bug demo");
    hw::Machine machine(mp, hw::HwConfig{});
    machine.setBisimOracle(&bisim);
    const hw::MachineResult res = machine.run();
    fps.disarmAll();

    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.injectedDivergences, 1u);
    ASSERT_FALSE(bisim.divergences().empty())
        << "planted register corruption not flagged";
    const std::string &what = bisim.divergences().front().what;
    EXPECT_NE(what.find("register"), std::string::npos) << what;
    EXPECT_NE(what.find("[seed=4242 ctx=0; replay: "
                        "hw_bisim_oracle_test planted-bug demo]"),
              std::string::npos)
        << what;
}

/** Direct tampered-state feed: mismatched post-abort registers at a
 *  trivial replay point (straight to Ret) must produce a register
 *  divergence, and repeated reports must saturate at maxReports with
 *  the overflow counted, not stored. */
TEST_F(BisimOracleTest, DirectTamperIsFlaggedAndReportsAreCapped)
{
    const vm::Program shell = shellProgram();
    const hw::MachineProgram mp = abortProgram(shell);
    vm::Heap heap(shell, 1 << 16);

    hw::BisimConfig cfg;
    cfg.maxReports = 3;
    hw::BisimOracle bisim(mp, cfg);
    const int ret_pc = 11;      // the Ret uop in abortProgram
    const std::vector<int64_t> checkpoint = {1, 2, 3};
    const std::vector<int64_t> tampered = {1, 9, 3};
    for (int i = 0; i < 5; ++i) {
        bisim.checkAbort(0, 0, checkpoint, ret_pc, tampered, ret_pc,
                         heap, hw::AbortCause::Explicit);
    }
    ASSERT_EQ(bisim.divergences().size(), 3u);
    EXPECT_EQ(bisim.suppressedReports(), 2u);
    EXPECT_NE(bisim.divergences().front().what.find("register"),
              std::string::npos)
        << bisim.divergences().front().what;

    // Identical states replay identically: no new divergence.
    hw::BisimOracle ok(mp);
    ok.checkAbort(0, 0, checkpoint, ret_pc, checkpoint, ret_pc, heap,
                  hw::AbortCause::Explicit);
    EXPECT_TRUE(ok.divergences().empty());
}

} // namespace
