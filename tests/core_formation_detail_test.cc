/**
 * @file
 * Structural detail tests for region formation: unroll chaining,
 * exit-block shape, warm overrides, formation bounds, boundary
 * tracing at calls and irrevocable operations, and SLE balance
 * rules.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "core/lock_elision.hh"
#include "core/region_formation.hh"
#include "ir/evaluator.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "opt/pass.hh"
#include "programs.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;
namespace core = aregion::core;

/** Profile + translate + optimize one program's main. */
ir::Module
prepare(const Program &prog, Profile &profile)
{
    Interpreter interp(prog, &profile);
    AREGION_ASSERT(interp.run().completed, "profile run failed");
    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::OptContext ctx;
    ctx.profile = &profile;
    opt::optimizeModule(mod, ctx);
    return mod;
}

TEST(FormationDetail, UnrolledCopiesChainWithoutIntermediateCommits)
{
    // A small hot loop: the region should contain K > 1 copies but
    // only the final copy exits through aregion_end.
    const Program prog = arithLoopProgram();
    Profile profile(prog);
    ir::Module mod = prepare(prog, profile);
    ir::Function &f = mod.funcs.at(prog.mainMethod);

    core::RegionConfig config;
    config.minRegionInstrs = 4;
    const auto stats = core::formRegions(f, config);
    ir::verifyOrDie(f);
    ASSERT_GT(stats.regionsFormed, 0);
    EXPECT_GT(stats.unrolledRegions, 0);

    // Count aregion_end per region: exits exist, and the number of
    // region blocks exceeds one copy's worth.
    for (const auto &region : f.regions) {
        int ends = 0;
        int blocks = 0;
        for (int b = 0; b < f.numBlocks(); ++b) {
            if (f.block(b).regionId != region.id)
                continue;
            ++blocks;
            for (const auto &in : f.block(b).instrs)
                ends += in.op == ir::Op::AtomicEnd;
        }
        EXPECT_GT(ends, 0);
        EXPECT_GT(blocks, 2);
    }
}

TEST(FormationDetail, ExitBlocksAreEndPlusJump)
{
    const Program prog = addElementProgram(1000, 128);
    Profile profile(prog);
    ir::Module mod = prepare(prog, profile);
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    core::formRegions(f, core::RegionConfig{});
    ir::verifyOrDie(f);

    for (int b = 0; b < f.numBlocks(); ++b) {
        const ir::Block &blk = f.block(b);
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            if (blk.instrs[i].op != ir::Op::AtomicEnd)
                continue;
            // aregion_end is followed only by the jump out.
            EXPECT_EQ(i + 2, blk.instrs.size());
            EXPECT_EQ(blk.terminator().op, ir::Op::Jump);
        }
    }
}

TEST(FormationDetail, WarmOverridesKeepBranches)
{
    const Program prog = addElementProgram(1500, 512);
    Profile profile(prog);

    // First formation: collect every assert origin.
    ir::Module mod1 = prepare(prog, profile);
    ir::Function &f1 = mod1.funcs.at(prog.mainMethod);
    const auto stats1 = core::formRegions(f1, core::RegionConfig{});
    ASSERT_GT(stats1.assertsCreated, 0);
    std::set<std::pair<int, int>> origins;
    for (const auto &r : f1.regions) {
        for (const auto &[id, origin] : r.abortOrigins)
            origins.insert(origin);
    }
    ASSERT_FALSE(origins.empty());

    // Second formation with every origin overridden: no asserts.
    ir::Module mod2 = prepare(prog, profile);
    ir::Function &f2 = mod2.funcs.at(prog.mainMethod);
    core::RegionConfig config;
    config.warmOverrides = origins;
    const auto stats2 = core::formRegions(f2, config);
    ir::verifyOrDie(f2);
    EXPECT_EQ(stats2.assertsCreated, 0);
}

TEST(FormationDetail, MinRegionInstrsSuppressesTinyRegions)
{
    const Program prog = arithLoopProgram();
    Profile profile(prog);
    ir::Module mod = prepare(prog, profile);
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    core::RegionConfig config;
    config.minRegionInstrs = 10000;     // nothing qualifies
    const auto stats = core::formRegions(f, config);
    EXPECT_EQ(stats.regionsFormed, 0);
    EXPECT_TRUE(f.regions.empty());
}

TEST(FormationDetail, MaxRegionBlocksBoundsReplication)
{
    const Program prog = dispatchProgram();
    Profile profile(prog);
    ir::Module mod = prepare(prog, profile);
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    core::RegionConfig config;
    config.maxRegionBlocks = 3;
    config.maxUnrollFactor = 1;
    const auto stats = core::formRegions(f, config);
    ir::verifyOrDie(f);
    for (const auto &region : f.regions) {
        int blocks = 0;
        for (int b = 0; b < f.numBlocks(); ++b)
            blocks += f.block(b).regionId == region.id;
        // entry + cloned hot set (<= bound) + exit blocks; the hot
        // set itself respects the bound.
        EXPECT_LE(blocks, 3 + 1 + 8) << "region " << region.id;
    }
    (void)stats;
}

TEST(FormationDetail, DisabledConfigFormsNothing)
{
    const Program prog = addElementProgram(500, 64);
    Profile profile(prog);
    ir::Module mod = prepare(prog, profile);
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    core::RegionConfig config;
    config.enabled = false;
    const auto stats = core::formRegions(f, config);
    EXPECT_EQ(stats.regionsFormed, 0);
}

TEST(FormationDetail, SleSkipsUnbalancedMonitors)
{
    // A region containing an enter without a matching exit must keep
    // its monitor instructions.
    ir::Function f;
    f.name = "unbalanced";
    const ir::Vreg obj = f.newVreg();
    auto &entry = f.newBlock();
    auto &body = f.newBlock();
    auto &exitb = f.newBlock();
    auto mk = [](ir::Op op, ir::Vreg dst, std::vector<ir::Vreg> srcs,
                 int aux = 0) {
        ir::Instr in;
        in.op = op;
        in.dst = dst;
        in.srcs = std::move(srcs);
        in.aux = aux;
        return in;
    };
    entry.instrs = {mk(ir::Op::AtomicBegin, ir::NO_VREG, {}, 0),
                    mk(ir::Op::Jump, ir::NO_VREG, {})};
    entry.succs = {body.id, exitb.id};
    entry.succCount = {1, 0};
    entry.regionId = 0;
    body.instrs = {mk(ir::Op::Const, obj, {}),
                   mk(ir::Op::MonitorEnter, ir::NO_VREG, {obj}),
                   mk(ir::Op::AtomicEnd, ir::NO_VREG, {}, 0),
                   mk(ir::Op::Jump, ir::NO_VREG, {})};
    body.instrs[0].imm = 100;
    body.succs = {exitb.id};
    body.succCount = {1};
    body.regionId = 0;
    exitb.instrs = {mk(ir::Op::Ret, ir::NO_VREG, {})};
    f.entry = entry.id;
    ir::RegionInfo region;
    region.id = 0;
    region.entryBlock = entry.id;
    region.altBlock = exitb.id;
    f.regions.push_back(region);

    const auto stats = core::elideLocks(f);
    EXPECT_EQ(stats.pairsElided, 0);
    int enters = 0;
    for (const auto &in : f.block(body.id).instrs)
        enters += in.op == ir::Op::MonitorEnter;
    EXPECT_EQ(enters, 1);
}

TEST(FormationDetail, RegionsNeverContainIrrevocableOps)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        Profile profile(s.prog);
        Interpreter interp(s.prog, &profile);
        ASSERT_TRUE(interp.run().completed);
        core::Compiled compiled = core::compileProgram(
            s.prog, profile, core::CompilerConfig::atomic());
        for (const auto &[m, f] : compiled.mod.funcs) {
            for (int b = 0; b < f.numBlocks(); ++b) {
                if (f.block(b).regionId < 0)
                    continue;
                for (const auto &in : f.block(b).instrs) {
                    EXPECT_NE(in.op, ir::Op::Print);
                    EXPECT_NE(in.op, ir::Op::Spawn);
                    EXPECT_NE(in.op, ir::Op::Marker);
                    EXPECT_NE(in.op, ir::Op::CallStatic);
                    EXPECT_NE(in.op, ir::Op::CallVirtual);
                }
            }
        }
    }
}

TEST(FormationDetail, AbortOriginsCoverEveryAssert)
{
    const Program prog = addElementProgram(1500, 512);
    Profile profile(prog);
    ir::Module mod = prepare(prog, profile);
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    core::formRegions(f, core::RegionConfig{});
    for (int b = 0; b < f.numBlocks(); ++b) {
        const ir::Block &blk = f.block(b);
        if (blk.regionId < 0)
            continue;
        const auto &origins =
            f.regions.at(static_cast<size_t>(blk.regionId))
                .abortOrigins;
        for (const auto &in : blk.instrs) {
            if (in.op == ir::Op::Assert) {
                EXPECT_TRUE(origins.count(in.aux))
                    << "assert " << in.aux << " lacks an origin";
            }
        }
    }
}

} // namespace
