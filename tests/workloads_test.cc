/**
 * @file
 * Workload validation: every DaCapo analog builds, verifies, runs to
 * completion under baseline and atomic compilation with identical
 * output, forms regions in atomic mode, and exhibits its targeted
 * structural behaviour (markers, samples, drift).
 */

#include <gtest/gtest.h>

#include "runtime/jit.hh"
#include "vm/interpreter.hh"
#include "vm/verifier.hh"
#include "workloads/workload.hh"

namespace {

using namespace aregion;
namespace rt = aregion::runtime;
namespace core = aregion::core;
namespace wl = aregion::workloads;

TEST(Workloads, SuiteHasSevenBenchmarksInPaperOrder)
{
    const auto &suite = wl::dacapoSuite();
    ASSERT_EQ(suite.size(), 7u);
    EXPECT_EQ(suite[0].name, "antlr");
    EXPECT_EQ(suite[1].name, "bloat");
    EXPECT_EQ(suite[2].name, "fop");
    EXPECT_EQ(suite[3].name, "hsqldb");
    EXPECT_EQ(suite[4].name, "jython");
    EXPECT_EQ(suite[5].name, "pmd");
    EXPECT_EQ(suite[6].name, "xalan");
    EXPECT_EQ(suite[0].paperSamples, 4);
    EXPECT_EQ(suite[2].paperSamples, 2);
    EXPECT_EQ(suite[6].paperSamples, 1);
}

TEST(Workloads, BothVariantsInterpretDeterministically)
{
    for (const auto &w : wl::dacapoSuite()) {
        SCOPED_TRACE(w.name);
        for (bool profile_variant : {true, false}) {
            const vm::Program prog = w.build(profile_variant);
            vm::Interpreter a(prog);
            vm::Interpreter b(prog);
            const auto ra = a.run(1ull << 30);
            const auto rb = b.run(1ull << 30);
            ASSERT_TRUE(ra.completed) << "variant " << profile_variant;
            ASSERT_TRUE(rb.completed);
            EXPECT_EQ(a.output(), b.output());
        }
    }
}

TEST(Workloads, BaselineAndAtomicAgreeOnOutput)
{
    for (const auto &w : wl::dacapoSuite()) {
        SCOPED_TRACE(w.name);
        const vm::Program profile_prog = w.build(true);
        const vm::Program measure_prog = w.build(false);

        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        const auto mb = rt::runExperiment(profile_prog, measure_prog,
                                          base, w.samples);
        ASSERT_TRUE(mb.completed);

        rt::ExperimentConfig atomic;
        atomic.compiler = core::CompilerConfig::atomicAggressiveInline();
        const auto ma = rt::runExperiment(profile_prog, measure_prog,
                                          atomic, w.samples);
        ASSERT_TRUE(ma.completed);

        EXPECT_EQ(ma.outputChecksum, mb.outputChecksum);
        EXPECT_GT(ma.uniqueRegions, 0) << "no regions formed";
        EXPECT_GT(ma.coverage, 0.0);

        // Every declared sample must resolve against the markers.
        EXPECT_EQ(ma.samples.size(), w.samples.size());
        for (const auto &s : ma.samples)
            EXPECT_GT(s.uops, 0u);
    }
}

TEST(Workloads, PmdDriftCausesAborts)
{
    const auto &w = wl::workloadByName("pmd");
    const vm::Program profile_prog = w.build(true);
    const vm::Program measure_prog = w.build(false);
    rt::ExperimentConfig atomic;
    atomic.compiler = core::CompilerConfig::atomicAggressiveInline();
    const auto m = rt::runExperiment(profile_prog, measure_prog,
                                     atomic, w.samples);
    ASSERT_TRUE(m.completed);
    // The drifted samples produce a noticeable abort rate.
    EXPECT_GT(m.abortPct, 0.005);
}

TEST(Workloads, XalanElidesMonitorPairs)
{
    const auto &w = wl::workloadByName("xalan");
    const vm::Program profile_prog = w.build(true);
    const vm::Program measure_prog = w.build(false);

    rt::ExperimentConfig base;
    base.compiler = core::CompilerConfig::baseline();
    const auto mb = rt::runExperiment(profile_prog, measure_prog,
                                      base, w.samples);
    rt::ExperimentConfig atomic;
    atomic.compiler = core::CompilerConfig::atomicAggressiveInline();
    const auto ma = rt::runExperiment(profile_prog, measure_prog,
                                      atomic, w.samples);
    ASSERT_TRUE(mb.completed);
    ASSERT_TRUE(ma.completed);
    // SLE removes CAS acquisitions from the hot path.
    EXPECT_LT(ma.monitorFastEnters, mb.monitorFastEnters / 2);
}

TEST(Workloads, JythonForcedMonomorphicBeatsPlainAtomic)
{
    const auto &w = wl::workloadByName("jython");
    const vm::Program profile_prog = w.build(true);
    const vm::Program measure_prog = w.build(false);

    rt::ExperimentConfig plain;
    plain.compiler = core::CompilerConfig::atomic();
    const auto mp = rt::runExperiment(profile_prog, measure_prog,
                                      plain, w.samples);
    rt::ExperimentConfig forced;
    forced.compiler = core::CompilerConfig::atomic();
    forced.compiler.forceMonomorphic = true;
    const auto mf = rt::runExperiment(profile_prog, measure_prog,
                                      forced, w.samples);
    ASSERT_TRUE(mp.completed);
    ASSERT_TRUE(mf.completed);
    EXPECT_EQ(mp.outputChecksum, mf.outputChecksum);
    EXPECT_LT(mf.weightedCycles, mp.weightedCycles);
}

} // namespace
