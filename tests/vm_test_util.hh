/**
 * @file
 * Shared helpers for VM-level tests: tiny program factories.
 */

#ifndef AREGION_TESTS_VM_TEST_UTIL_HH
#define AREGION_TESTS_VM_TEST_UTIL_HH

#include <functional>
#include <vector>

#include "vm/builder.hh"
#include "vm/interpreter.hh"
#include "vm/verifier.hh"

namespace aregion::test {

using namespace aregion::vm;

/** Build a single-method program whose body is supplied by `body`. */
inline Program
singleMethodProgram(const std::function<void(ProgramBuilder &,
                                             MethodBuilder &)> &body)
{
    ProgramBuilder pb;
    const MethodId main = pb.declareMethod("main", 0);
    MethodBuilder mb = pb.define(main);
    body(pb, mb);
    mb.finish();
    pb.setMain(main);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

/** Run a program in the interpreter and return its printed output. */
inline std::vector<int64_t>
interpret(const Program &prog, uint64_t max_steps = 1ull << 24)
{
    Interpreter interp(prog);
    const InterpResult res = interp.run(max_steps);
    if (res.trap)
        throw *res.trap;
    return interp.output();
}

} // namespace aregion::test

#endif // AREGION_TESTS_VM_TEST_UTIL_HH
