/**
 * @file
 * Contention torture subsystem tests.
 *
 * The invariant under test (ISSUE 6): post-abort state must be
 * indistinguishable from a non-speculative replay, and under
 * multi-context load the committed regions must admit a serial
 * order. The grid tests run the three shared-heap workloads
 * (src/workloads/contention/) across contention levels with the
 * cross-context rollback oracle attached — with and without forced
 * conflict injection — and additionally pin down the contention
 * governor's backoff/fairness/livelock arithmetic and the oracle's
 * replay stamping as isolated units.
 *
 * Every fixture name contains "Contention" on purpose: the TSan leg
 * (tools/check_sanitizers.sh) selects these tests by that substring.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hw/oracle.hh"
#include "runtime/resilience.hh"
#include "support/failpoint.hh"
#include "vm/heap.hh"
#include "workloads/contention/contention.hh"

namespace {

namespace ct = aregion::workloads::contention;
namespace hw = aregion::hw;
namespace rt = aregion::runtime;
namespace fp = aregion::failpoint;

/** Build the standard test grid: every workload at each level. */
std::vector<ct::GridCell>
makeGrid(const std::vector<int> &levels,
         const std::vector<uint64_t> &seeds)
{
    std::vector<ct::GridCell> cells;
    for (const int level : levels) {
        for (const uint64_t seed : seeds) {
            for (const ct::ContentionWorkload &w :
                 ct::contentionSuite()) {
                ct::ContentionRunConfig cfg;
                cfg.contexts = level;
                cfg.seed = seed;
                cells.push_back({&w, cfg});
            }
        }
    }
    return cells;
}

void
expectAllCellsClean(const std::vector<ct::CellResult> &results)
{
    for (const ct::CellResult &r : results) {
        SCOPED_TRACE(r.workload + "@" + std::to_string(r.contexts) +
                     " seed=" + std::to_string(r.seed));
        EXPECT_TRUE(r.completed);
        EXPECT_TRUE(r.outputMatches);
        for (const std::string &p : r.problems)
            ADD_FAILURE() << p;
        EXPECT_GT(r.regionEntries, 0u);
        EXPECT_GT(r.regionCommits, 0u);
    }
}

class ContentionGridTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::Registry::global().disarmAll(); }
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

/**
 * The acceptance grid: 2/4/8 contexts x 3 workloads x 2 seeds, no
 * injection. Every cell must complete with the interpreter's exact
 * output and zero oracle divergences, the oracle must demonstrably
 * run its cross-context checks, and — the headline number — genuine
 * conflict aborts must appear at >= 4 contexts.
 */
TEST_F(ContentionGridTest, GridIsSerializableWithoutInjection)
{
    const auto cells = makeGrid({2, 4, 8}, {1, 2});
    const auto results = ct::runContentionGrid(cells);
    ASSERT_EQ(results.size(), cells.size());
    expectAllCellsClean(results);

    uint64_t conflicts_at_4plus = 0;
    uint64_t oracle_checks = 0;
    for (const ct::CellResult &r : results) {
        if (r.contexts >= 4)
            conflicts_at_4plus += r.conflictAborts;
        oracle_checks +=
            r.oracleCommitChecks + r.oracleConflictHeapChecks;
        // No injection armed: nothing may be attributed to it.
        EXPECT_EQ(r.injectedConflicts, 0u);
        EXPECT_EQ(r.injectedCommitStalls, 0u);
    }
    EXPECT_GT(conflicts_at_4plus, 0u)
        << "contention workloads no longer collide; "
           "machine.abort.conflict stayed at zero";
    EXPECT_GT(oracle_checks, 0u)
        << "oracle attached but never exercised";
}

/**
 * Same grid under forced conflicts and held-open commit windows.
 * Arming is grid-scoped (the registry is process-global). Injection
 * must provoke extra aborts somewhere, yet every cell still
 * completes, matches the interpreter, and shows zero divergences —
 * aborts are survivable, not just countable.
 */
TEST_F(ContentionGridTest, GridSurvivesForcedConflictInjection)
{
    auto &fps = fp::Registry::global();
    fps.setSeed(7);
    std::string err;
    ASSERT_GE(
        fps.configure(
            "machine.conflict:p0.02,machine.commit_stall:p0.05=64",
            &err),
        0)
        << err;

    const auto cells = makeGrid({2, 4, 8}, {7});
    const auto results = ct::runContentionGrid(cells);
    fps.disarmAll();

    ASSERT_EQ(results.size(), cells.size());
    expectAllCellsClean(results);

    uint64_t injected = 0;
    for (const ct::CellResult &r : results)
        injected += r.injectedConflicts + r.injectedCommitStalls;
    EXPECT_GT(injected, 0u) << "injection armed but never fired";
}

/** Randomized commit interleavings: different seeds jitter the
 *  governor differently, but the architectural outcome (completion,
 *  output, serializability) is seed-invariant, and any single seed
 *  replays to the identical abort history. */
TEST_F(ContentionGridTest, OutcomeIsSeedInvariantAndReplayable)
{
    const ct::ContentionWorkload &w =
        ct::contentionWorkloadByName("counters");
    ct::ContentionRunConfig cfg;
    cfg.contexts = 6;
    std::vector<ct::CellResult> runs;
    for (const uint64_t seed : {3ull, 9ull, 3ull}) {
        cfg.seed = seed;
        runs.push_back(ct::runContentionCell(w, cfg));
    }
    for (const ct::CellResult &r : runs) {
        EXPECT_TRUE(r.completed);
        EXPECT_TRUE(r.outputMatches);
        EXPECT_TRUE(r.problems.empty());
    }
    // Same seed => bit-identical abort/backoff history.
    EXPECT_EQ(runs[0].conflictAborts, runs[2].conflictAborts);
    EXPECT_EQ(runs[0].backoffSteps, runs[2].backoffSteps);
    EXPECT_EQ(runs[0].regionCommits, runs[2].regionCommits);
}

class ContentionGovernorTest : public ::testing::Test
{
};

/** Conflict backoff doubles per consecutive conflict and resets on
 *  commit; jitter keeps each stall within [2^k*base, 2^(k+1)*base). */
TEST_F(ContentionGovernorTest, BackoffGrowsExponentiallyAndResets)
{
    rt::ContentionPolicy policy;
    policy.baseStall = 8;
    policy.maxStall = 1024;
    policy.livelockWindow = 1000;   // keep the breaker out of frame
    policy.fairnessWindow = 1000;
    rt::ContentionGovernor gov(policy);

    uint64_t floor = policy.baseStall;
    for (int streak = 1; streak <= 5; ++streak) {
        const uint64_t stall =
            gov.onAbort(0, hw::AbortCause::Conflict);
        EXPECT_GE(stall, floor) << "streak " << streak;
        EXPECT_LT(stall, 2 * floor) << "streak " << streak;
        floor *= 2;
    }

    // A commit resets the streak: the next conflict draws from the
    // base bucket again.
    gov.onCommit(0);
    const uint64_t stall = gov.onAbort(0, hw::AbortCause::Conflict);
    EXPECT_GE(stall, policy.baseStall);
    EXPECT_LT(stall, 2 * policy.baseStall);
    EXPECT_GT(gov.backoffSteps(), 0u);
}

/** The growth is capped at maxStall (plus jitter < maxStall). */
TEST_F(ContentionGovernorTest, BackoffIsCappedAtMaxStall)
{
    rt::ContentionPolicy policy;
    policy.baseStall = 8;
    policy.maxStall = 64;
    policy.livelockWindow = 10000;
    policy.fairnessWindow = 10000;
    rt::ContentionGovernor gov(policy);
    for (int i = 0; i < 200; ++i) {
        const uint64_t stall =
            gov.onAbort(0, hw::AbortCause::Conflict);
        EXPECT_LT(stall, 2 * policy.maxStall);
    }
}

/** Only conflicts are contention: capacity, interrupt, and explicit
 *  aborts have their own remediation and draw no backoff. */
TEST_F(ContentionGovernorTest, NonConflictAbortsDrawNoBackoff)
{
    rt::ContentionGovernor gov(rt::ContentionPolicy{});
    EXPECT_EQ(gov.onAbort(0, hw::AbortCause::Overflow), 0u);
    EXPECT_EQ(gov.onAbort(0, hw::AbortCause::Interrupt), 0u);
    EXPECT_EQ(gov.onAbort(0, hw::AbortCause::Explicit), 0u);
    EXPECT_EQ(gov.backoffSteps(), 0u);
}

/** Fairness guard: a context lapped fairnessWindow times by the rest
 *  of the machine retries immediately (backoff immunity) until its
 *  own next commit. */
TEST_F(ContentionGovernorTest, StarvingContextGetsBackoffImmunity)
{
    rt::ContentionPolicy policy;
    policy.fairnessWindow = 4;
    policy.livelockWindow = 1000;
    rt::ContentionGovernor gov(policy);

    // Not starving yet: a conflict draws a real stall.
    EXPECT_GT(gov.onAbort(0, hw::AbortCause::Conflict), 0u);

    // The rest of the machine laps context 0 four times.
    for (int i = 0; i < 4; ++i)
        gov.onCommit(1);

    EXPECT_EQ(gov.onAbort(0, hw::AbortCause::Conflict), 0u);
    EXPECT_EQ(gov.starvationBoosts(), 1u);
    // Still starving: immunity persists (and is counted once).
    EXPECT_EQ(gov.onAbort(0, hw::AbortCause::Conflict), 0u);
    EXPECT_EQ(gov.starvationBoosts(), 1u);

    // Its own commit clears the flag; backoff applies again.
    gov.onCommit(0);
    EXPECT_GT(gov.onAbort(0, hw::AbortCause::Conflict), 0u);
}

/** Livelock breaker: livelockWindow conflicts with zero intervening
 *  commits switch every stall to id-staggered (lowest id wins the
 *  next race outright, no jitter); any commit clears the mode. */
TEST_F(ContentionGovernorTest, MutualAbortLivelockStaggersById)
{
    rt::ContentionPolicy policy;
    policy.baseStall = 8;
    policy.livelockWindow = 4;
    policy.fairnessWindow = 1000;
    rt::ContentionGovernor gov(policy);

    // Three mutual conflicts: breaker not yet engaged.
    gov.onAbort(0, hw::AbortCause::Conflict);
    gov.onAbort(1, hw::AbortCause::Conflict);
    gov.onAbort(0, hw::AbortCause::Conflict);
    EXPECT_EQ(gov.livelockBreaks(), 0u);

    // The fourth engages staggered mode for this abort already.
    EXPECT_EQ(gov.onAbort(1, hw::AbortCause::Conflict),
              policy.baseStall);
    EXPECT_EQ(gov.livelockBreaks(), 1u);

    // Staggered stalls are exact multiples of baseStall by id.
    EXPECT_EQ(gov.onAbort(0, hw::AbortCause::Conflict), 0u);
    EXPECT_EQ(gov.onAbort(2, hw::AbortCause::Conflict),
              2 * policy.baseStall);

    // Any commit ends the episode; jittered backoff resumes.
    gov.onCommit(0);
    const uint64_t stall = gov.onAbort(1, hw::AbortCause::Conflict);
    EXPECT_NE(stall, 5 * policy.baseStall);
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(gov.livelockBreaks(), 1u);
}

/** All governor decisions are pure functions of (policy, history):
 *  two governors with the same policy replay identical stalls. */
TEST_F(ContentionGovernorTest, JitterIsDeterministicInPolicySeed)
{
    rt::ContentionPolicy policy;
    policy.seed = 42;
    policy.livelockWindow = 1000;
    policy.fairnessWindow = 1000;
    rt::ContentionGovernor a(policy), b(policy);
    std::vector<uint64_t> sa, sb;
    for (int i = 0; i < 32; ++i) {
        const int ctx = i % 3;
        sa.push_back(a.onAbort(ctx, hw::AbortCause::Conflict));
        sb.push_back(b.onAbort(ctx, hw::AbortCause::Conflict));
    }
    EXPECT_EQ(sa, sb);
}

class ContentionBisimTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::Registry::global().disarmAll(); }
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

/**
 * Cross-context bisimulation (ISSUE 9 tentpole): at 2 and 8 contexts
 * every abort in the three shared-heap workloads — including genuine
 * conflict aborts — must replay to an equivalent observable state
 * from the aregion_begin checkpoint. cfg.bisim is the default, so
 * this pins what the whole grid surface already runs with; the
 * explicit matrix makes the 2-vs-8 coverage non-negotiable and
 * checks the oracle demonstrably replayed work.
 */
TEST_F(ContentionBisimTest, CrossContextAbortsBisimulateAt2And8)
{
    const auto cells = makeGrid({2, 8}, {1, 2});
    const auto results = ct::runContentionGrid(cells);
    ASSERT_EQ(results.size(), cells.size());
    expectAllCellsClean(results);

    uint64_t checks = 0;
    uint64_t replayed_uops = 0;
    uint64_t conflicts_at_8 = 0;
    for (const ct::CellResult &r : results) {
        checks += r.bisimChecks;
        replayed_uops += r.bisimReplayedUops;
        if (r.contexts == 8)
            conflicts_at_8 += r.conflictAborts;
    }
    EXPECT_GT(checks, 0u)
        << "bisim oracle attached but no abort was ever checked";
    EXPECT_GT(replayed_uops, 0u);
    EXPECT_GT(conflicts_at_8, 0u)
        << "no conflict abort reached the bisimulation oracle";
}

/**
 * Seeded conflict-abort storm: forced cross-context conflicts at a
 * rate that dwarfs the natural collision rate, all under the
 * bisimulation oracle. Every cell must still complete, match the
 * interpreter, and show zero divergences — each of the hundreds of
 * storm aborts replayed to an equivalent state.
 */
TEST_F(ContentionBisimTest, SeededConflictAbortStormBisimulates)
{
    auto &fps = fp::Registry::global();
    fps.setSeed(13);
    std::string err;
    ASSERT_GE(fps.configure("machine.conflict:p0.2", &err), 0) << err;

    const auto cells = makeGrid({8}, {5});
    const auto results = ct::runContentionGrid(cells);
    fps.disarmAll();

    ASSERT_EQ(results.size(), cells.size());
    expectAllCellsClean(results);

    uint64_t injected = 0;
    uint64_t checks = 0;
    for (const ct::CellResult &r : results) {
        injected += r.injectedConflicts;
        checks += r.bisimChecks;
    }
    EXPECT_GT(injected, 0u) << "storm armed but never fired";
    EXPECT_GT(checks, injected)
        << "storm aborts were not bisimulation-checked";
}

/** cfg.bisim=false detaches the oracle completely: zero checks, and
 *  the architectural outcome is unchanged (pure observer). */
TEST_F(ContentionBisimTest, DisabledBisimIsInertAndUncounted)
{
    const ct::ContentionWorkload &w =
        ct::contentionWorkloadByName("counters");
    ct::ContentionRunConfig cfg;
    cfg.contexts = 8;
    cfg.seed = 3;
    cfg.bisim = false;
    const ct::CellResult off = ct::runContentionCell(w, cfg);
    cfg.bisim = true;
    const ct::CellResult on = ct::runContentionCell(w, cfg);

    EXPECT_TRUE(off.completed);
    EXPECT_TRUE(off.problems.empty());
    EXPECT_EQ(off.bisimChecks, 0u);
    EXPECT_EQ(off.bisimReplayedUops, 0u);
    EXPECT_GT(on.bisimChecks, 0u);
    // Same seed, same machine history, oracle attached or not.
    EXPECT_EQ(on.regionCommits, off.regionCommits);
    EXPECT_EQ(on.conflictAborts, off.conflictAborts);
    EXPECT_EQ(on.backoffSteps, off.backoffSteps);
}

class ContentionOracleTest : public ::testing::Test
{
};

/**
 * Satellite: oracle failures carry their reproduction coordinates.
 * A tampered abort state must produce a divergence whose message
 * names the seed, the context id, and a one-line replay command —
 * exactly what runContentionCell stamps via setReplayInfo.
 */
TEST_F(ContentionOracleTest, DivergenceMessagesCarryReplayCommand)
{
    const aregion::vm::Program prog =
        ct::makeStripedCounters().build(2, /*profile_variant=*/true);
    aregion::vm::Heap heap(prog, 1 << 16);

    hw::RollbackOracle oracle;
    oracle.setReplayInfo(
        7, ct::replayCommand("counters", 4, 7, /*injected=*/false));

    std::vector<int64_t> regs = {1, 2, 3};
    oracle.captureBegin(2, 4, regs, 10, heap);
    oracle.checkAbort(2, 4, regs, 11, heap);    // wrong resume pc

    ASSERT_EQ(oracle.divergences().size(), 1u);
    const std::string &what = oracle.divergences()[0].what;
    EXPECT_EQ(oracle.divergences()[0].ctxId, 2);
    EXPECT_NE(what.find("seed=7"), std::string::npos) << what;
    EXPECT_NE(what.find("ctx=2"), std::string::npos) << what;
    EXPECT_NE(what.find("replay: bench_contention --workload "
                        "counters --contexts 4 --seed 7"),
              std::string::npos)
        << what;
}

/** Without setReplayInfo the message is unstamped — the oracle must
 *  not invent coordinates it was never given. */
TEST_F(ContentionOracleTest, UnstampedOracleOmitsReplayCoordinates)
{
    const aregion::vm::Program prog =
        ct::makeStripedCounters().build(2, /*profile_variant=*/true);
    aregion::vm::Heap heap(prog, 1 << 16);

    hw::RollbackOracle oracle;
    std::vector<int64_t> regs = {4};
    oracle.captureBegin(0, 1, regs, 3, heap);
    oracle.checkAbort(0, 1, regs, 5, heap);

    ASSERT_EQ(oracle.divergences().size(), 1u);
    EXPECT_EQ(oracle.divergences()[0].what.find("replay:"),
              std::string::npos);
}

} // namespace
