/**
 * @file
 * Inliner detail tests: splice structure, profile scaling, budget
 * enforcement, devirtualization guard shape, partial-inlining
 * criteria (encapsulatable callees), and recursion safety.
 */

#include <gtest/gtest.h>

#include "ir/evaluator.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "opt/pass.hh"
#include "programs.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;
namespace opt = aregion::opt;

int
countCalls(const ir::Function &f)
{
    int n = 0;
    for (int b : f.reversePostOrder()) {
        for (const auto &in : f.block(b).instrs) {
            n += in.op == ir::Op::CallStatic ||
                 in.op == ir::Op::CallVirtual;
        }
    }
    return n;
}

/** Program: main calls a small callee in a hot loop. */
Program
callerProgram(int callee_pad)
{
    ProgramBuilder pb;
    const MethodId callee = pb.declareMethod("callee", 1);
    {
        auto f = pb.define(callee);
        Reg acc = f.arg(0);
        for (int i = 0; i < callee_pad; ++i) {
            const Reg k = f.constant(i + 1);
            acc = f.add(acc, k);
        }
        f.ret(acc);
        f.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(500);
    const Reg one = mb.constant(1);
    const Reg sum = mb.constant(0);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    const Reg r = mb.callStatic(callee, {i});
    mb.binopTo(Bc::Add, sum, sum, r);
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(loop);
    mb.bind(done);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

ir::Module
inlineWith(const Program &prog, opt::OptContext &ctx,
           Profile &profile)
{
    Interpreter interp(prog, &profile);
    AREGION_ASSERT(interp.run().completed, "profile run failed");
    ctx.profile = &profile;
    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::inlineCalls(mod, ctx);
    for (const auto &[m, f] : mod.funcs)
        ir::verifyOrDie(f);
    return mod;
}

TEST(InlinerDetail, SmallCalleesAreSpliced)
{
    const Program prog = callerProgram(4);
    opt::OptContext ctx;
    Profile profile_ctx(prog);
    ir::Module mod = inlineWith(prog, ctx, profile_ctx);
    EXPECT_EQ(countCalls(mod.funcs.at(prog.mainMethod)), 0);
}

TEST(InlinerDetail, CalleeSizeBudgetIsRespected)
{
    const Program prog = callerProgram(200);    // way over budget
    opt::OptContext ctx;
    Profile profile_ctx(prog);
    ir::Module mod = inlineWith(prog, ctx, profile_ctx);
    EXPECT_EQ(countCalls(mod.funcs.at(prog.mainMethod)), 1);
}

TEST(InlinerDetail, PartialInlineLimitAdmitsEncapsulatableCallees)
{
    const Program prog = callerProgram(60);     // over 40, under 140
    opt::OptContext plain;
    Profile profile_plain(prog);
    ir::Module without = inlineWith(prog, plain, profile_plain);
    EXPECT_EQ(countCalls(without.funcs.at(prog.mainMethod)), 1);

    opt::OptContext partial;
    partial.partialInlineLimit = 140;
    Profile profile_partial(prog);
    ir::Module with = inlineWith(prog, partial, profile_partial);
    EXPECT_EQ(countCalls(with.funcs.at(prog.mainMethod)), 0);
}

TEST(InlinerDetail, RecursiveCalleesAreNotSelfInlined)
{
    const Program prog = fibProgram();
    opt::OptContext ctx;
    Profile profile_ctx(prog);
    ir::Module mod = inlineWith(prog, ctx, profile_ctx);
    // fib may be inlined into main, and fib's body may inline one
    // level of itself only through repeated sweeps; the function
    // must still contain recursive calls (no infinite expansion).
    for (const auto &[m, f] : mod.funcs) {
        if (f.name == "fib")
            EXPECT_GT(countCalls(f), 0);
    }
}

TEST(InlinerDetail, ProfileScalingTransfersHeat)
{
    const Program prog = callerProgram(4);
    opt::OptContext ctx;
    Profile profile_ctx(prog);
    ir::Module mod = inlineWith(prog, ctx, profile_ctx);
    const ir::Function &f = mod.funcs.at(prog.mainMethod);
    // The inlined body executes ~500 times: some block besides the
    // entry must carry that heat.
    bool saw_hot = false;
    for (int b : f.reversePostOrder())
        saw_hot |= f.block(b).execCount > 400;
    EXPECT_TRUE(saw_hot);
}

TEST(InlinerDetail, DevirtualizationGuardShape)
{
    const Program prog = dispatchProgram();
    opt::OptContext ctx;
    ctx.devirtBias = 0.90;
    Profile profile_g(prog);
    ir::Module mod = inlineWith(prog, ctx, profile_g);
    const ir::Function &f = mod.funcs.at(prog.mainMethod);
    // Guard = LoadRaw(classid) feeding CmpNe feeding a Branch whose
    // cold arm holds the residual call.
    bool saw_guard = false;
    for (int b : f.reversePostOrder()) {
        const auto &ins = f.block(b).instrs;
        for (size_t i = 0; i + 2 < ins.size(); ++i) {
            if (ins[i].op == ir::Op::LoadRaw &&
                ins[i].imm == vm::layout::HDR_CLASS &&
                ins[i + 2].op == ir::Op::CmpNe) {
                saw_guard = true;
            }
        }
    }
    EXPECT_TRUE(saw_guard);
    // Residual virtual calls are tagged so they are not re-devirted.
    int residual = 0;
    for (int b : f.reversePostOrder()) {
        for (const auto &in : f.block(b).instrs) {
            if (in.op == ir::Op::CallVirtual && in.imm == 1)
                ++residual;
        }
    }
    EXPECT_GE(residual, 1);
}

TEST(InlinerDetail, InliningPreservesSemantics)
{
    for (int pad : {2, 20, 60}) {
        SCOPED_TRACE(pad);
        const Program prog = callerProgram(pad);
        Interpreter check(prog);
        ASSERT_TRUE(check.run().completed);

        opt::OptContext ctx;
        ctx.partialInlineLimit = 140;
        Profile profile(prog);
        Interpreter prof_run(prog, &profile);
        ASSERT_TRUE(prof_run.run().completed);
        ctx.profile = &profile;
        ir::Module mod = ir::translateProgram(prog, &profile);
        opt::inlineCalls(mod, ctx);
        opt::optimizeModule(mod, ctx);
        ir::Evaluator eval(mod);
        const auto res = eval.run();
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(eval.output(), check.output());
    }
}

} // namespace
