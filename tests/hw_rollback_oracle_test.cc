/**
 * @file
 * Rollback consistency oracle tests.
 *
 * Differential check of the paper's core contract (Sections 3.1–3.2):
 * under hostile abort injection, every abort must restore exact
 * architectural state, and the program must still produce the same
 * output as the reference interpreter. The oracle (hw/oracle.hh)
 * snapshots registers + heap at every aregion_begin with its own
 * mechanism and cross-checks after every abort, so a rollback bug in
 * the machine cannot mask itself.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/oracle.hh"
#include "random_program.hh"
#include "support/failpoint.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace core = aregion::core;
namespace hw = aregion::hw;
namespace fp = aregion::failpoint;

hw::MachineProgram
compileToMachine(const Program &prog)
{
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    interp.run();
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::atomic());
    vm::Heap layout_heap(prog, 1 << 20);
    return hw::lowerModule(compiled.mod,
                           hw::LayoutInfo::fromHeap(layout_heap));
}

struct OracleRun
{
    hw::MachineResult result;
    uint64_t checks = 0;
    uint64_t heapChecks = 0;
    std::vector<hw::Divergence> divergences;
};

/** Run one compiled program under the oracle with the given
 *  failpoint configuration (empty = no injection). */
OracleRun
runWithOracle(const hw::MachineProgram &mp, const std::string &inject,
              uint64_t inject_seed, const hw::HwConfig &config)
{
    auto &fps = fp::Registry::global();
    fps.disarmAll();
    if (!inject.empty()) {
        fps.setSeed(inject_seed);
        std::string err;
        EXPECT_GE(fps.configure(inject, &err), 0) << err;
    }

    hw::RollbackOracle oracle;
    hw::Machine machine(mp, config);
    machine.setOracle(&oracle);
    OracleRun run;
    run.result = machine.run();
    run.checks = oracle.checks();
    run.heapChecks = oracle.heapChecks();
    run.divergences = oracle.divergences();
    fps.disarmAll();
    return run;
}

class RollbackOracleTest : public ::testing::Test
{
  protected:
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

/**
 * The acceptance grid: random program × failpoint seed × injection
 * mode, > 100 combinations. Every combination must complete with the
 * interpreter's exact output and zero architectural divergences, and
 * in aggregate the injections must actually provoke aborts (so the
 * oracle is demonstrably exercised, not vacuously green).
 */
TEST_F(RollbackOracleTest, RandomProgramsSurviveInjectedAborts)
{
    const std::vector<std::string> injections = {
        // Spurious context switches at random speculative uops.
        "machine.interrupt:p0.05",
        // Every third region squeezed to one way's worth of lines.
        "machine.capacity:n3",
        // All three at once, asserts with a payload id.
        "machine.interrupt:p0.02,machine.capacity:p0.25,"
        "machine.assert:n5=117",
    };

    // Small interrupt period so natural timer aborts join in.
    hw::HwConfig config;
    config.interruptPeriod = 20'000;

    uint64_t combos = 0;
    uint64_t total_checks = 0;
    uint64_t total_heap_checks = 0;
    uint64_t total_aborts = 0;

    for (uint64_t prog_seed = 1; prog_seed <= 18; ++prog_seed) {
        RandomProgramGen gen(prog_seed);
        gen.withObjects = prog_seed % 2 == 0;
        const Program prog = gen.generate();

        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed) << "seed " << prog_seed;
        const auto mp = compileToMachine(prog);

        for (size_t mode = 0; mode < injections.size(); ++mode) {
            for (uint64_t fp_seed : {11ull, 42ull}) {
                SCOPED_TRACE("prog_seed=" + std::to_string(prog_seed) +
                             " mode=" + std::to_string(mode) +
                             " fp_seed=" + std::to_string(fp_seed));
                const OracleRun run = runWithOracle(
                    mp, injections[mode], fp_seed, config);
                ++combos;
                ASSERT_TRUE(run.result.completed);
                EXPECT_EQ(run.result.output, ref.output());
                EXPECT_TRUE(run.divergences.empty())
                    << run.divergences.size() << " divergence(s), "
                    << "first: " << run.divergences.front().what;
                total_checks += run.checks;
                total_heap_checks += run.heapChecks;
                total_aborts += run.result.regionAborts;
            }
        }
    }

    EXPECT_GE(combos, 100u);
    // The grid must have exercised real rollbacks, including full
    // heap comparisons (random programs are single-context).
    EXPECT_GT(total_aborts, 100u);
    EXPECT_GT(total_checks, 100u);
    EXPECT_GT(total_heap_checks, 100u);
}

/** Injection disabled + oracle attached: still zero divergences on
 *  naturally occurring aborts (interrupts, overflow). */
TEST_F(RollbackOracleTest, NaturalAbortsAreConsistent)
{
    hw::HwConfig config;
    config.interruptPeriod = 5'000;
    config.l1Lines = 16;    // tiny footprint bound: overflow aborts
    config.l1Assoc = 2;

    for (uint64_t prog_seed : {3ull, 7ull, 12ull}) {
        RandomProgramGen gen(prog_seed);
        const Program prog = gen.generate();
        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed);
        const auto mp = compileToMachine(prog);
        const OracleRun run = runWithOracle(mp, "", 0, config);
        ASSERT_TRUE(run.result.completed);
        EXPECT_EQ(run.result.output, ref.output());
        EXPECT_TRUE(run.divergences.empty());
    }
}

/** The oracle itself must detect violations — feed it a mismatched
 *  abort state directly and expect divergences for each component. */
TEST_F(RollbackOracleTest, OracleDetectsTamperedState)
{
    const Program prog = RandomProgramGen(1).generate();
    vm::Heap heap(prog, 1 << 16);
    const uint64_t obj = heap.allocObject(0);

    hw::RollbackOracle oracle;
    std::vector<int64_t> regs = {1, 2, 3};
    oracle.captureBegin(0, 1, regs, 10, heap);

    // Tamper with everything the contract protects.
    std::vector<int64_t> bad_regs = {1, 99, 3};
    heap.store(obj + 2, 12345);     // a "leaked" speculative store
    oracle.checkAbort(0, 1, bad_regs, 11, heap);

    ASSERT_EQ(oracle.divergences().size(), 3u);
    EXPECT_NE(oracle.divergences()[0].what.find("pc"),
              std::string::npos);
    EXPECT_NE(oracle.divergences()[1].what.find("register"),
              std::string::npos);
    EXPECT_NE(oracle.divergences()[2].what.find("heap"),
              std::string::npos);
}

/** Commit must clear the pending snapshot: an abort of a later
 *  region checks against its own begin, and a commit-then-abort
 *  without a begin is itself flagged. */
TEST_F(RollbackOracleTest, OracleTracksBeginAbortPairing)
{
    const Program prog = RandomProgramGen(1).generate();
    vm::Heap heap(prog, 1 << 16);

    hw::RollbackOracle oracle;
    std::vector<int64_t> regs = {5};
    oracle.captureBegin(0, 1, regs, 4, heap);
    oracle.onCommit(0);
    oracle.checkAbort(0, 1, regs, 4, heap);
    ASSERT_EQ(oracle.divergences().size(), 1u);
    EXPECT_NE(oracle.divergences()[0].what.find("without"),
              std::string::npos);
}

/** Forced assert failpoints surface as explicit aborts with the
 *  payload id recorded per region, like a real compiler assert.
 *  Whether a given generated program enters regions depends on the
 *  generator's evolution, so scan seeds until the injection fires. */
TEST_F(RollbackOracleTest, InjectedAssertsLookExplicit)
{
    bool fired = false;
    for (uint64_t seed = 1; seed <= 30 && !fired; ++seed) {
        const Program prog = RandomProgramGen(seed).generate();
        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed) << "seed " << seed;
        const auto mp = compileToMachine(prog);

        const OracleRun run = runWithOracle(
            mp, "machine.assert:n2=931", 7, hw::HwConfig{});
        ASSERT_TRUE(run.result.completed) << "seed " << seed;
        EXPECT_EQ(run.result.output, ref.output()) << "seed " << seed;
        EXPECT_TRUE(run.divergences.empty()) << "seed " << seed;
        if (run.result.injectedAsserts == 0)
            continue;
        fired = true;

        uint64_t explicit_aborts = 0;
        uint64_t by_id = 0;
        for (const auto &[key, stats] : run.result.regions) {
            explicit_aborts += stats.abortsByCause[static_cast<int>(
                hw::AbortCause::Explicit)];
            const auto it = stats.abortsByAssert.find(931);
            if (it != stats.abortsByAssert.end())
                by_id += it->second;
        }
        EXPECT_EQ(explicit_aborts, run.result.injectedAsserts);
        EXPECT_EQ(by_id, run.result.injectedAsserts);
    }
    EXPECT_TRUE(fired) << "no seed in range enters a region";
}

/** Injected interrupts are indistinguishable from timer aborts in
 *  the cause register and leave no architectural residue. */
TEST_F(RollbackOracleTest, InjectedInterruptsAbortAsInterrupts)
{
    bool fired = false;
    for (uint64_t seed = 1; seed <= 30 && !fired; ++seed) {
        const Program prog = RandomProgramGen(seed).generate();
        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed) << "seed " << seed;
        const auto mp = compileToMachine(prog);

        const OracleRun run = runWithOracle(
            mp, "machine.interrupt:p0.1", 3, hw::HwConfig{});
        ASSERT_TRUE(run.result.completed) << "seed " << seed;
        EXPECT_EQ(run.result.output, ref.output()) << "seed " << seed;
        EXPECT_TRUE(run.divergences.empty()) << "seed " << seed;
        if (run.result.injectedInterrupts == 0)
            continue;
        fired = true;

        uint64_t interrupt_aborts = 0;
        for (const auto &[key, stats] : run.result.regions) {
            interrupt_aborts += stats.abortsByCause[static_cast<int>(
                hw::AbortCause::Interrupt)];
        }
        EXPECT_GE(interrupt_aborts, run.result.injectedInterrupts);
    }
    EXPECT_TRUE(fired) << "no seed in range enters a region";
}

/** Capacity squeezes convert into genuine overflow aborts. */
TEST_F(RollbackOracleTest, InjectedCapacityForcesOverflow)
{
    bool forced = false;
    for (uint64_t seed = 1; seed <= 30 && !forced; ++seed) {
        RandomProgramGen gen(seed);
        gen.withObjects = true;     // heap traffic -> wide footprints
        const Program prog = gen.generate();
        Interpreter ref(prog);
        ASSERT_TRUE(ref.run().completed) << "seed " << seed;
        const auto mp = compileToMachine(prog);

        const OracleRun baseline =
            runWithOracle(mp, "", 0, hw::HwConfig{});
        ASSERT_TRUE(baseline.result.completed) << "seed " << seed;
        uint64_t base_overflow = 0;
        for (const auto &[key, stats] : baseline.result.regions) {
            base_overflow += stats.abortsByCause[static_cast<int>(
                hw::AbortCause::Overflow)];
        }

        // Squeeze every region to a 2-line budget.
        const OracleRun run = runWithOracle(
            mp, "machine.capacity:p1=2", 5, hw::HwConfig{});
        ASSERT_TRUE(run.result.completed) << "seed " << seed;
        EXPECT_EQ(run.result.output, ref.output()) << "seed " << seed;
        EXPECT_TRUE(run.divergences.empty()) << "seed " << seed;
        if (run.result.injectedCapacity == 0)
            continue;

        uint64_t overflow_aborts = 0;
        for (const auto &[key, stats] : run.result.regions) {
            overflow_aborts += stats.abortsByCause[static_cast<int>(
                hw::AbortCause::Overflow)];
        }
        forced = overflow_aborts > base_overflow;
    }
    EXPECT_TRUE(forced)
        << "no seed in range converts a squeeze into overflow";
}

/**
 * Livelock guard: with every region entry forced to abort, the
 * machine still completes with correct output, trips the guard, and
 * routes subsequent entries down the non-speculative path.
 */
TEST_F(RollbackOracleTest, LivelockGuardKeepsForwardProgress)
{
    const Program prog = RandomProgramGen(8).generate();
    Interpreter ref(prog);
    ASSERT_TRUE(ref.run().completed);
    const auto mp = compileToMachine(prog);

    hw::HwConfig config;
    config.maxConsecutiveAborts = 4;
    const OracleRun run =
        runWithOracle(mp, "machine.assert:p1", 0, config);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.output, ref.output());
    EXPECT_TRUE(run.divergences.empty());
    if (run.result.regionEntries > 0) {
        EXPECT_GE(run.result.livelockTrips, 1u);
        EXPECT_GT(run.result.specSuppressedEntries, 0u);
        // The guard bounds wasted speculation: suppressed entries
        // never open a region, so entries + suppressions together
        // cover every aregion_begin executed.
        EXPECT_EQ(run.result.regionCommits, 0u);
    }
}

/** Without the guard the same storm still completes (aborts fall
 *  through to the software path), just with more wasted entries —
 *  the guard must not be load-bearing for correctness. */
TEST_F(RollbackOracleTest, StormCompletesEvenWithoutGuard)
{
    const Program prog = RandomProgramGen(8).generate();
    Interpreter ref(prog);
    ASSERT_TRUE(ref.run().completed);
    const auto mp = compileToMachine(prog);

    const OracleRun run =
        runWithOracle(mp, "machine.assert:p1", 0, hw::HwConfig{});
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.output, ref.output());
    EXPECT_TRUE(run.divergences.empty());
    EXPECT_EQ(run.result.livelockTrips, 0u);
    EXPECT_EQ(run.result.specSuppressedEntries, 0u);
}

} // namespace
