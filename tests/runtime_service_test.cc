/**
 * @file
 * Compile-service tests (runtime/service/): content-addressed cache
 * behaviour (determinism, LRU eviction under a byte budget), the
 * sharded queue (in-flight dedup, bounded-depth rejection, hot-tenant
 * isolation), and the admission state machine driven by real
 * machine.conflict abort storms (Healthy -> Cooling -> Blacklisted ->
 * non-speculative compiles that still produce correct output).
 *
 * Suite names contain "Service" so tools/check_sanitizers.sh can
 * select them for the tsan leg.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "programs.hh"
#include "runtime/service/service.hh"
#include "support/failpoint.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "testing/random_program.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
namespace svc = aregion::runtime::service;
namespace fp = aregion::failpoint;
namespace keys = aregion::telemetry::keys;

/** A compile input: immutable program + trained profile. */
struct Method
{
    std::shared_ptr<const vm::Program> program;
    std::shared_ptr<const vm::Profile> profile;
    uint64_t interpChecksum = 0;
};

Method
fromProgram(vm::Program &&prog)
{
    Method m;
    auto owned = std::make_shared<vm::Program>(std::move(prog));
    auto profile = std::make_shared<vm::Profile>(*owned);
    vm::Interpreter interp(*owned, profile.get());
    const vm::InterpResult r = interp.run();
    EXPECT_TRUE(r.completed);
    m.interpChecksum = interp.outputChecksum();
    m.program = std::move(owned);
    m.profile = std::move(profile);
    return m;
}

/** Distinct terminating programs from the fuzzing generator. */
Method
randomMethod(uint64_t seed)
{
    aregion::testing::RandomProgramGen gen(
        seed, aregion::testing::kLegacyScalar);
    return fromProgram(
        aregion::testing::renderProgram(gen.generate()));
}

svc::CompileRequest
requestFor(const Method &m, int tenant,
           const core::CompilerConfig &config, bool recompile = false)
{
    svc::CompileRequest rq;
    rq.tenant = tenant;
    rq.method = "m";
    rq.program = m.program;
    rq.profile = m.profile;
    rq.config = config;
    rq.recompile = recompile;
    return rq;
}

/** Execute compiled code on the machine (the jit.cc stage-3 flow). */
hw::MachineResult
runOnMachine(const core::Compiled &compiled, const vm::Program &prog)
{
    vm::Heap layout_heap(prog, 1 << 16);
    const hw::MachineProgram mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::Machine machine(mp, hw::HwConfig{});
    return machine.run();
}

/** Fake cache entry of a given size (cache unit tests only). */
std::shared_ptr<const svc::CachedCode>
fakeEntry(uint64_t key, size_t bytes)
{
    auto code = std::make_shared<svc::CachedCode>();
    code->key = key;
    code->sizeBytes = bytes;
    return code;
}

class ServiceTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::Registry::global().disarmAll(); }
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

// ---------------------------------------------------------------
// Content addressing.
// ---------------------------------------------------------------

TEST_F(ServiceTest, CacheKeyReflectsEveryInput)
{
    const Method a = randomMethod(1);
    const Method b = randomMethod(2);
    const core::CompilerConfig atomic = core::CompilerConfig::atomic();
    const core::CompilerConfig baseline =
        core::CompilerConfig::baseline();

    const uint64_t key_a =
        svc::cacheKey(*a.program, *a.profile, atomic);
    // Deterministic: same inputs, same key.
    EXPECT_EQ(key_a, svc::cacheKey(*a.program, *a.profile, atomic));
    // Different bytecode -> different key.
    EXPECT_NE(key_a, svc::cacheKey(*b.program, *b.profile, atomic));
    // Different compiler config -> different key.
    EXPECT_NE(key_a,
              svc::cacheKey(*a.program, *a.profile, baseline));
    // Different profile -> different key (profiles drive region
    // formation, so they are part of the content address).
    EXPECT_NE(key_a,
              svc::cacheKey(*a.program, *b.profile, atomic));
}

// ---------------------------------------------------------------
// CodeCache unit behaviour.
// ---------------------------------------------------------------

TEST_F(ServiceTest, CacheEvictsLruUnderByteBudget)
{
    svc::CodeCache cache(1000);
    cache.insert(fakeEntry(1, 400));
    cache.insert(fakeEntry(2, 400));
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.bytes(), 800u);

    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_EQ(cache.insert(fakeEntry(3, 400)), 1u);
    EXPECT_EQ(cache.peek(2), nullptr);
    EXPECT_NE(cache.peek(1), nullptr);
    EXPECT_NE(cache.peek(3), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_LE(cache.bytes(), cache.byteBudget());

    EXPECT_EQ(cache.lookup(2), nullptr);    // counted miss
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(ServiceTest, CacheKeepsOversizedNewestEntry)
{
    svc::CodeCache cache(100);
    // An entry larger than the whole budget still serves its
    // requesters; only the next insert displaces it.
    EXPECT_EQ(cache.insert(fakeEntry(1, 400)), 0u);
    EXPECT_NE(cache.peek(1), nullptr);
    EXPECT_EQ(cache.insert(fakeEntry(2, 400)), 1u);
    EXPECT_EQ(cache.peek(1), nullptr);
    EXPECT_NE(cache.peek(2), nullptr);
}

TEST_F(ServiceTest, CacheInvalidateDropsEntry)
{
    svc::CodeCache cache(1 << 20);
    cache.insert(fakeEntry(7, 100));
    cache.invalidate(7);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
    cache.invalidate(7);    // idempotent on absent keys
}

// ---------------------------------------------------------------
// Service: determinism, dedup, bounded queues.
// ---------------------------------------------------------------

TEST_F(ServiceTest, ServiceCompileMatchesDirectCompile)
{
    const Method m = randomMethod(3);
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::CompileService service(svc::ServiceConfig{});

    const svc::CompileResponse first =
        service.submitSync(requestFor(m, 0, config));
    ASSERT_EQ(first.status, svc::CompileStatus::Compiled);
    ASSERT_NE(first.code, nullptr);

    // Oracle: cached code is byte-identical (printed-IR checksum) to
    // a direct compileProgram of the same inputs.
    const core::Compiled direct =
        core::compileProgram(*m.program, *m.profile, config);
    EXPECT_EQ(first.code->codeChecksum, svc::codeChecksum(direct));

    // Replay from any tenant hits the shared entry.
    const svc::CompileResponse second =
        service.submitSync(requestFor(m, 9, config));
    EXPECT_EQ(second.status, svc::CompileStatus::CacheHit);
    EXPECT_EQ(second.code.get(), first.code.get());
    EXPECT_EQ(service.cache().hits(), 1u);
    EXPECT_EQ(service.stats().compiles, 1u);
}

TEST_F(ServiceTest, ServiceRecompileInvalidatesAndRebuilds)
{
    const Method m = randomMethod(4);
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::CompileService service(svc::ServiceConfig{});

    const svc::CompileResponse first =
        service.submitSync(requestFor(m, 0, config));
    ASSERT_EQ(first.status, svc::CompileStatus::Compiled);
    const svc::CompileResponse again = service.submitSync(
        requestFor(m, 0, config, /*recompile=*/true));
    EXPECT_EQ(again.status, svc::CompileStatus::Compiled);
    EXPECT_EQ(again.code->codeChecksum, first.code->codeChecksum);
    EXPECT_EQ(service.stats().compiles, 2u);
}

TEST_F(ServiceTest, ServiceCoalescesIdenticalInFlightRequests)
{
    const Method m = randomMethod(5);
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::ServiceConfig cfg;
    cfg.shards = 1;
    svc::CompileService service(cfg);

    // Freeze the worker so all five requests pile onto one job.
    service.pauseWorkers();
    std::vector<std::future<svc::CompileResponse>> futures;
    for (int tenant = 0; tenant < 5; ++tenant)
        futures.push_back(
            service.submit(requestFor(m, tenant, config)));
    EXPECT_EQ(service.stats().coalesced, 4u);
    service.resumeWorkers();

    int compiled = 0, coalesced = 0;
    uint64_t checksum = 0;
    for (auto &f : futures) {
        const svc::CompileResponse r = f.get();
        ASSERT_NE(r.code, nullptr);
        if (checksum == 0)
            checksum = r.code->codeChecksum;
        EXPECT_EQ(r.code->codeChecksum, checksum);
        if (r.status == svc::CompileStatus::Compiled)
            compiled++;
        else if (r.status == svc::CompileStatus::Coalesced)
            coalesced++;
    }
    EXPECT_EQ(compiled, 1);
    EXPECT_EQ(coalesced, 4);
    EXPECT_EQ(service.stats().compiles, 1u);
}

TEST_F(ServiceTest, ServiceBoundedQueueRejectsWhenFull)
{
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::ServiceConfig cfg;
    cfg.shards = 1;
    cfg.shardQueueDepth = 2;
    svc::CompileService service(cfg);

    service.pauseWorkers();
    std::vector<std::future<svc::CompileResponse>> accepted;
    accepted.push_back(
        service.submit(requestFor(randomMethod(10), 0, config)));
    accepted.push_back(
        service.submit(requestFor(randomMethod(11), 1, config)));
    // Third distinct key: the only shard's queue is full.
    const svc::CompileResponse rejected = service
        .submit(requestFor(randomMethod(12), 2, config))
        .get();
    EXPECT_EQ(rejected.status,
              svc::CompileStatus::RejectedQueueFull);
    EXPECT_EQ(rejected.code, nullptr);
    EXPECT_EQ(service.admission().queueRejections(), 1u);

    service.resumeWorkers();
    for (auto &f : accepted)
        EXPECT_EQ(f.get().status, svc::CompileStatus::Compiled);
}

TEST_F(ServiceTest, ServiceIsolatesHotTenantBySkewedPendingCap)
{
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    constexpr int kHotMethods = 12;
    constexpr int kColdTenants = 8;
    constexpr size_t kPendingCap = 4;

    std::vector<Method> hot_methods, cold_methods;
    for (int i = 0; i < kHotMethods; ++i)
        hot_methods.push_back(randomMethod(100 + i));
    for (int i = 0; i < kColdTenants; ++i)
        cold_methods.push_back(randomMethod(200 + i));

    svc::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.admission.maxPendingPerTenant = kPendingCap;
    svc::CompileService service(cfg);
    service.pauseWorkers();

    // The hot tenant floods distinct methods; only kPendingCap may
    // be in flight, the rest bounce without touching any queue.
    std::vector<std::future<svc::CompileResponse>> hot;
    int hot_rejected = 0;
    for (const Method &m : hot_methods)
        hot.push_back(service.submit(requestFor(m, 0, config)));

    // Cold tenants arrive after the flood and must all be admitted.
    std::vector<std::future<svc::CompileResponse>> cold;
    for (int t = 0; t < kColdTenants; ++t)
        cold.push_back(service.submit(
            requestFor(cold_methods[t], 1 + t, config)));

    service.resumeWorkers();
    for (auto &f : hot) {
        const svc::CompileResponse r = f.get();
        if (r.status == svc::CompileStatus::RejectedQueueFull)
            hot_rejected++;
        else
            EXPECT_EQ(r.status, svc::CompileStatus::Compiled);
    }
    EXPECT_EQ(hot_rejected,
              kHotMethods - static_cast<int>(kPendingCap));
    for (auto &f : cold)
        EXPECT_EQ(f.get().status, svc::CompileStatus::Compiled);

    // The admitted work spread across shards (keys are hashes, so
    // with 12 distinct methods a single-shard pileup would indicate
    // a broken shard map).
    const svc::ServiceStats stats = service.stats();
    int shards_used = 0;
    for (const auto &s : stats.shards)
        shards_used += s.compiles > 0 ? 1 : 0;
    EXPECT_GE(shards_used, 2);
    EXPECT_EQ(stats.compiles,
              static_cast<uint64_t>(kPendingCap) + kColdTenants);
}

TEST_F(ServiceTest, ServiceShutdownCompletesQueuedJobs)
{
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::ServiceConfig cfg;
    cfg.shards = 1;
    svc::CompileService service(cfg);
    service.pauseWorkers();
    auto f1 = service.submit(requestFor(randomMethod(20), 0, config));
    auto f2 = service.submit(requestFor(randomMethod(21), 1, config));
    service.stop();
    for (auto *f : {&f1, &f2}) {
        const svc::CompileResponse r = f->get();
        // A worker may have grabbed the front job between pause and
        // stop; queued-but-unstarted jobs must resolve as Shutdown.
        EXPECT_TRUE(r.status == svc::CompileStatus::Shutdown ||
                    r.status == svc::CompileStatus::Compiled);
        if (r.status == svc::CompileStatus::Shutdown) {
            EXPECT_EQ(r.code, nullptr);
        }
    }
}

TEST_F(ServiceTest, ServicePublishTelemetryIsDeltaBased)
{
    const Method m = randomMethod(6);
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::CompileService service(svc::ServiceConfig{});
    service.submitSync(requestFor(m, 0, config));
    service.submitSync(requestFor(m, 0, config));

    auto &reg = telemetry::Registry::global();
    const uint64_t base_compiles =
        reg.counterValue(keys::kServiceCompiles);
    const uint64_t base_hits =
        reg.counterValue(keys::kServiceCacheHits);
    service.publishTelemetry();
    service.publishTelemetry();     // second call must add nothing
    EXPECT_EQ(reg.counterValue(keys::kServiceCompiles),
              base_compiles + 1);
    EXPECT_EQ(reg.counterValue(keys::kServiceCacheHits),
              base_hits + 1);
    EXPECT_EQ(reg.gaugeValue(keys::kServiceCacheEntries), 1.0);
}

/**
 * Gate 3 (ISSUE 9 satellite): per-tenant compile-time quota. A
 * tenant whose wall-clock compile spend reaches the per-round budget
 * has further submits rejected — even for cached keys — until the
 * next report round, and other tenants are unaffected. Spend is
 * charged via noteCompileTime directly because a trivial program can
 * legitimately compile in 0 µs, which would make a wall-clock-driven
 * test flaky.
 */
TEST_F(ServiceTest, ServiceQuotaBoundsPerTenantCompileSpend)
{
    const Method a = randomMethod(21);
    const Method b = randomMethod(22);
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::ServiceConfig cfg;
    cfg.admission.compileUsQuotaPerRound = 1;
    svc::CompileService service(cfg);

    // Spend starts at zero, so the first submit is admitted.
    const svc::CompileResponse first =
        service.submitSync(requestFor(a, 0, config));
    ASSERT_EQ(first.status, svc::CompileStatus::Compiled);
    service.admission().noteCompileTime(0, 5);  // exhausts the budget

    const svc::CompileResponse over =
        service.submitSync(requestFor(b, 0, config));
    EXPECT_EQ(over.status, svc::CompileStatus::RejectedQuota);
    EXPECT_STREQ(svc::statusName(over.status), "rejected_quota");
    EXPECT_EQ(over.code, nullptr);
    EXPECT_EQ(service.admission().quotaRejections(), 1u);

    // The budget is per tenant: tenant 1 compiles the same method.
    const svc::CompileResponse other =
        service.submitSync(requestFor(b, 1, config));
    EXPECT_EQ(other.status, svc::CompileStatus::Compiled);

    // A report round advances the clock and re-admits the tenant
    // (the content-addressed entry tenant 1 built serves the hit).
    hw::MachineResult ok;
    ok.completed = true;
    service.reportExecution(0, first.key, ok);
    const svc::CompileResponse after =
        service.submitSync(requestFor(b, 0, config));
    EXPECT_EQ(after.status, svc::CompileStatus::CacheHit);

    // The rejection reaches the `service.rejected.quota` counter.
    auto &reg = telemetry::Registry::global();
    const uint64_t base =
        reg.counterValue(keys::kServiceRejectedQuota);
    service.publishTelemetry();
    EXPECT_EQ(reg.counterValue(keys::kServiceRejectedQuota),
              base + 1);
}

// ---------------------------------------------------------------
// Admission under a machine.conflict abort storm.
// ---------------------------------------------------------------

TEST_F(ServiceTest, ServiceAdmissionRidesOutConflictStorm)
{
    // A region-forming workload (the paper's addElement loop),
    // shrunk for test time.
    Method m = fromProgram(test::addElementProgram(600, 64));
    const core::CompilerConfig config = core::CompilerConfig::atomic();
    svc::CompileService service(svc::ServiceConfig{});

    const svc::CompileResponse spec =
        service.submitSync(requestFor(m, 0, config));
    ASSERT_EQ(spec.status, svc::CompileStatus::Compiled);
    ASSERT_GT(spec.code->compiled.stats.regions.regionsFormed, 0);

    // Force a conflict abort storm: nearly every aregion_end aborts.
    auto &fps = fp::Registry::global();
    fps.setSeed(7);
    ASSERT_GE(fps.configure("machine.conflict:p0.9"), 0);
    const hw::MachineResult stormy =
        runOnMachine(spec.code->compiled, *m.program);
    fps.disarmAll();

    // Aborted regions fall back to the non-speculative path, so the
    // run still completes with correct output (the paper's
    // correctness story) — it is just slow and abort-ridden.
    EXPECT_TRUE(stormy.completed);
    EXPECT_EQ(stormy.outputChecksum(), m.interpChecksum);
    ASSERT_GE(stormy.regionEntries, 16u);
    ASSERT_GE(static_cast<double>(stormy.regionAborts),
              0.5 * static_cast<double>(stormy.regionEntries));

    // Strike 1: the report trips storm detection -> Cooling, and a
    // recompile during the cooldown bounces.
    EXPECT_TRUE(service.admission().reportExecution(0, spec.key,
                                                    stormy));
    EXPECT_EQ(service.admission().state(0, spec.key),
              svc::AdmissionState::Cooling);
    const svc::CompileResponse backoff = service.submitSync(
        requestFor(m, 0, config, /*recompile=*/true));
    EXPECT_EQ(backoff.status, svc::CompileStatus::RejectedBackoff);
    EXPECT_EQ(service.admission().backoffRejections(), 1u);

    // Strikes 2..4 exhaust the budget (maxRecompiles = 3).
    for (int s = 0; s < 3; ++s)
        service.reportExecution(0, spec.key, stormy);
    EXPECT_EQ(service.admission().state(0, spec.key),
              svc::AdmissionState::Blacklisted);

    // Blacklisted: compiles are accepted but non-speculative, and
    // the result runs clean (no regions to storm).
    const svc::CompileResponse nonspec =
        service.submitSync(requestFor(m, 0, config));
    ASSERT_EQ(nonspec.status, svc::CompileStatus::CompiledNonSpec);
    EXPECT_TRUE(nonspec.code->nonSpeculative);
    EXPECT_EQ(nonspec.code->compiled.stats.regions.regionsFormed, 0);
    const hw::MachineResult calm =
        runOnMachine(nonspec.code->compiled, *m.program);
    EXPECT_TRUE(calm.completed);
    EXPECT_EQ(calm.regionEntries, 0u);
    EXPECT_EQ(calm.outputChecksum(), m.interpChecksum);

    // Cross-tenant isolation: another tenant still gets the shared
    // speculative entry for the same content key.
    const svc::CompileResponse other =
        service.submitSync(requestFor(m, 1, config));
    EXPECT_EQ(other.status, svc::CompileStatus::CacheHit);
    EXPECT_FALSE(other.code->nonSpeculative);
}

} // namespace
