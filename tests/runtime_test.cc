/**
 * @file
 * Runtime pipeline and sampling tests.
 */

#include <gtest/gtest.h>

#include "programs.hh"
#include "runtime/jit.hh"
#include "runtime/sampling.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace rt = aregion::runtime;
namespace core = aregion::core;
namespace hw = aregion::hw;

TEST(Jit, PipelineProducesConsistentMetrics)
{
    const Program prog = addElementProgram(2000, 256);
    rt::ExperimentConfig config;
    config.compiler = core::CompilerConfig::atomic();
    const auto metrics = rt::runExperiment(prog, prog, config);
    ASSERT_TRUE(metrics.completed);
    EXPECT_GT(metrics.cycles, 0u);
    EXPECT_GT(metrics.retiredUops, 0u);
    EXPECT_GE(metrics.executedUops, metrics.retiredUops);
    EXPECT_GT(metrics.coverage, 0.0);
    EXPECT_LE(metrics.coverage, 1.0);
    EXPECT_GT(metrics.uniqueRegions, 0);
    EXPECT_GT(metrics.avgRegionSize, 0.0);
}

TEST(Jit, ChecksumStableAcrossConfigs)
{
    const Program prog = addElementProgram(1500, 256);
    uint64_t checksum = 0;
    for (int i = 0; i < 4; ++i) {
        rt::ExperimentConfig config;
        switch (i) {
          case 0:
            config.compiler = core::CompilerConfig::baseline();
            break;
          case 1:
            config.compiler = core::CompilerConfig::atomic();
            break;
          case 2:
            config.compiler =
                core::CompilerConfig::baselineAggressiveInline();
            break;
          case 3:
            config.compiler =
                core::CompilerConfig::atomicAggressiveInline();
            break;
        }
        const auto metrics = rt::runExperiment(prog, prog, config);
        ASSERT_TRUE(metrics.completed);
        if (i == 0)
            checksum = metrics.outputChecksum;
        else
            EXPECT_EQ(metrics.outputChecksum, checksum);
    }
}

TEST(Jit, AdaptiveRecompileReducesAborts)
{
    // A drifting program (cold branch at profile time, warm at
    // measurement): adaptive recompilation must fire and cut aborts.
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(8000);
    const Reg one = mb.constant(1);
    const Reg k = mb.constant(30);      // 3.3% "cold" path
    const Reg sum = mb.constant(0);
    const Label loop = mb.newLabel();
    const Label rare = mb.newLabel();
    const Label next = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    const Reg rem = mb.binop(Bc::Rem, i, k);
    const Reg zero = mb.constant(0);
    const Reg hit = mb.cmp(Bc::CmpEq, rem, zero);
    mb.branchIf(hit, rare);
    mb.binopTo(Bc::Add, sum, sum, i);
    mb.jump(next);
    mb.bind(rare);
    mb.binopTo(Bc::Add, sum, sum, one);
    mb.jump(next);
    mb.bind(next);
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program measure = pb.build();
    verifyOrDie(measure);

    // Profile variant: same code, rare path at 1/300 (cold).
    ProgramBuilder pb2;
    const MethodId mm2 = pb2.declareMethod("main", 0);
    auto m2 = pb2.define(mm2);
    {
        const Reg i2 = m2.constant(0);
        const Reg n2 = m2.constant(8000);
        const Reg one2 = m2.constant(1);
        const Reg k2 = m2.constant(300);
        const Reg sum2 = m2.constant(0);
        const Label loop2 = m2.newLabel();
        const Label rare2 = m2.newLabel();
        const Label next2 = m2.newLabel();
        const Label done2 = m2.newLabel();
        m2.bind(loop2);
        m2.branchCmp(Bc::CmpGe, i2, n2, done2);
        const Reg rem2 = m2.binop(Bc::Rem, i2, k2);
        const Reg zero2 = m2.constant(0);
        const Reg hit2 = m2.cmp(Bc::CmpEq, rem2, zero2);
        m2.branchIf(hit2, rare2);
        m2.binopTo(Bc::Add, sum2, sum2, i2);
        m2.jump(next2);
        m2.bind(rare2);
        m2.binopTo(Bc::Add, sum2, sum2, one2);
        m2.jump(next2);
        m2.bind(next2);
        m2.binopTo(Bc::Add, i2, i2, one2);
        m2.safepoint();
        m2.jump(loop2);
        m2.bind(done2);
        m2.print(sum2);
        m2.retVoid();
        m2.finish();
    }
    pb2.setMain(mm2);
    const Program profile_prog = pb2.build();
    verifyOrDie(profile_prog);

    rt::ExperimentConfig no_adapt;
    no_adapt.compiler = core::CompilerConfig::atomic();
    const auto before = rt::runExperiment(profile_prog, measure,
                                          no_adapt);
    ASSERT_TRUE(before.completed);
    ASSERT_GT(before.regionAborts, 50u)
        << "premise: drift causes aborts";

    rt::ExperimentConfig adapt = no_adapt;
    adapt.adaptiveRecompile = true;
    const auto after = rt::runExperiment(profile_prog, measure, adapt);
    ASSERT_TRUE(after.completed);
    EXPECT_TRUE(after.recompiled);
    EXPECT_LT(after.regionAborts, before.regionAborts / 4);
    EXPECT_LT(after.cycles, before.cycles);
    EXPECT_EQ(after.outputChecksum, before.outputChecksum);
}

TEST(Sampling, ClassifiesTwoPhaseTrace)
{
    // 30 intervals of method A-heavy, then 30 of method B-heavy.
    std::vector<vm::MethodId> trace;
    for (int i = 0; i < 30 * 100; ++i)
        trace.push_back(i % 10 == 0 ? 2 : 0);
    for (int i = 0; i < 30 * 100; ++i)
        trace.push_back(i % 10 == 0 ? 3 : 1);
    const auto phases = rt::classifyPhases(trace, 4, 100, 4);
    EXPECT_GE(phases.numPhases, 2);
    // The first and last intervals land in different phases.
    EXPECT_NE(phases.intervalPhase.front(),
              phases.intervalPhase.back());
    // Weights sum to ~1.
    double total = 0;
    for (double w : phases.phaseWeight)
        total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Marker methods are the infrequent ones (2 and 3, not 0/1).
    for (vm::MethodId m : phases.markerMethod)
        EXPECT_TRUE(m == 2 || m == 3);
}

TEST(Sampling, SinglePhaseCollapses)
{
    std::vector<vm::MethodId> trace(5000, 1);
    const auto phases = rt::classifyPhases(trace, 2, 500, 4);
    EXPECT_EQ(phases.numPhases, 1);
    EXPECT_NEAR(phases.phaseWeight[0], 1.0, 1e-9);
}

TEST(Sampling, InterpreterInvocationLogFeedsClassifier)
{
    const Program prog = fibProgram();
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    interp.logInvocations = true;
    ASSERT_TRUE(interp.run().completed);
    ASSERT_FALSE(interp.invocationLog.empty());
    const auto phases = rt::classifyPhases(
        interp.invocationLog, prog.numMethods(), 64, 4);
    EXPECT_GE(phases.numPhases, 1);
}

} // namespace
