/**
 * @file
 * Golden-value safety net for functional-simulator refactors: every
 * workload's architectural results — output checksum, retired uops,
 * region entry/commit/abort tallies, and a fingerprint over the
 * per-static-region statistics — must reproduce the values recorded
 * from the seed simulator bit-for-bit. The interpreter runs the same
 * input as an independent cross-check of the output stream.
 *
 * Performance work on the machine hot loop (flat speculative state,
 * frame pooling, trace batching) must never move these numbers; an
 * intentional architectural change regenerates the table with
 * tools/golden_gen.
 */

#include <gtest/gtest.h>

#include "golden_harness.hh"

namespace {

using aregion::test::GoldenRow;

struct GoldenEntry
{
    const char *workload;
    uint64_t outputChecksum;
    uint64_t interpChecksum;
    uint64_t retiredUops;
    uint64_t regionEntries;
    uint64_t regionCommits;
    uint64_t regionAborts;
    uint64_t regionFingerprint;
};

/**
 * Recorded by tools/golden_gen. Regenerated when the optimizer moved
 * to SSA form (sparse SCCP/GVN/DCE): checksums, region tallies and
 * fingerprints were byte-identical to the seed; only retired-uop
 * counts shifted (antlr +2.7% .. jython -1.3%) because phi-web
 * coalescing in out-of-SSA lowering emits different copy sequences
 * than the old copy-propagation pass. See docs/PERFORMANCE.md.
 */
constexpr GoldenEntry kGolden[] = {
    {"antlr", 0xe537396aa2456226ull, 0xe537396aa2456226ull,
     2286668ull, 4616ull, 4614ull, 2ull, 0xc4b45b6b1fb0d136ull},
    {"bloat", 0x347910dea1e75a8dull, 0x347910dea1e75a8dull,
     878513ull, 15325ull, 14649ull, 676ull, 0x52fab2877415cde6ull},
    {"fop", 0xd583eb162fb52291ull, 0xd583eb162fb52291ull,
     787945ull, 26169ull, 26169ull, 0ull, 0x5dda5709f0bdec87ull},
    {"hsqldb", 0x938a803d9de71a01ull, 0x938a803d9de71a01ull,
     522897ull, 9001ull, 8930ull, 71ull, 0x5e030149a6dc4db6ull},
    {"jython", 0xcccadb78262fa42cull, 0xcccadb78262fa42cull,
     3117428ull, 17377ull, 17241ull, 136ull, 0x7f1a3f03ada0166dull},
    {"pmd", 0x3ffad97f43b44b1dull, 0x3ffad97f43b44b1dull,
     352818ull, 1863ull, 1713ull, 150ull, 0xe503c0f0986aa508ull},
    {"xalan", 0x171515e7d6be1452ull, 0x171515e7d6be1452ull,
     2163574ull, 12034ull, 11957ull, 77ull, 0x8db6627425f58b8eull},
};

class GoldenWorkload : public ::testing::TestWithParam<GoldenEntry>
{
};

TEST_P(GoldenWorkload, ArchitecturalResultsMatchSeed)
{
    const GoldenEntry &expect = GetParam();
    const GoldenRow row = aregion::test::runGoldenPipeline(
        aregion::workloads::workloadByName(expect.workload));

    // The machine's observable output must match the interpreter's
    // for the same input (independent of the recorded goldens).
    EXPECT_EQ(row.outputChecksum, row.interpChecksum)
        << "machine output diverged from the interpreter";

    EXPECT_EQ(row.outputChecksum, expect.outputChecksum);
    EXPECT_EQ(row.interpChecksum, expect.interpChecksum);
    EXPECT_EQ(row.retiredUops, expect.retiredUops);
    EXPECT_EQ(row.regionEntries, expect.regionEntries);
    EXPECT_EQ(row.regionCommits, expect.regionCommits);
    EXPECT_EQ(row.regionAborts, expect.regionAborts);
    EXPECT_EQ(row.regionFingerprint, expect.regionFingerprint)
        << "per-region commit/abort tallies moved; regenerate with "
           "tools/golden_gen only for intentional changes";
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, GoldenWorkload, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenEntry> &info) {
        return std::string(info.param.workload);
    });

} // namespace
