/**
 * @file
 * Legacy shim over the first-class generator in src/testing/.
 *
 * The original test-local generator was promoted to
 * testing/random_program.hh (feature masks, trapping constructs,
 * structural minimization). This header keeps the old call sites
 * compiling: the legacy profiles map onto the kLegacyScalar /
 * kLegacyObjects feature masks, which generate only terminating,
 * trap-free, single-threaded programs — the contract the property
 * sweeps and the rollback-oracle grid rely on.
 */

#ifndef AREGION_TESTS_RANDOM_PROGRAM_HH
#define AREGION_TESTS_RANDOM_PROGRAM_HH

#include "testing/random_program.hh"

namespace aregion::test {

using namespace aregion::vm;

class RandomProgramGen
{
  public:
    explicit RandomProgramGen(uint64_t seed) : seed(seed) {}

    /** Enable object-oriented constructs (virtual calls, monitors,
     *  instanceof) in the generated programs. */
    bool withObjects = false;

    Program
    generate()
    {
        const uint32_t mask = withObjects ? testing::kLegacyObjects
                                          : testing::kLegacyScalar;
        testing::RandomProgramGen gen(seed, mask);
        return testing::renderProgram(gen.generate());
    }

  private:
    uint64_t seed;
};

} // namespace aregion::test

#endif // AREGION_TESTS_RANDOM_PROGRAM_HH
