/**
 * @file
 * Random (but always terminating and trap-free) program generator
 * for property-based testing: any optimization configuration must
 * leave the printed output unchanged.
 */

#ifndef AREGION_TESTS_RANDOM_PROGRAM_HH
#define AREGION_TESTS_RANDOM_PROGRAM_HH

#include <vector>

#include "support/random.hh"
#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::test {

using namespace aregion::vm;

/** Generates structured random programs from a seed. */
class RandomProgramGen
{
  public:
    explicit RandomProgramGen(uint64_t seed) : rng(seed) {}

    /** Enable object-oriented constructs (virtual calls, monitors,
     *  instanceof) in the generated programs. */
    bool withObjects = false;

    Program
    generate()
    {
        ProgramBuilder pb;
        cls = pb.declareClass("Box", {"f0", "f1", "f2", "f3"});
        if (withObjects) {
            subA = pb.declareClass("BoxA", {}, cls);
            subB = pb.declareClass("BoxB", {}, cls);
            const MethodId ga = pb.declareVirtual(subA, "get", 1);
            {
                auto f = pb.define(ga);
                f.ret(f.getField(f.self(), 0));
                f.finish();
            }
            const MethodId gb = pb.declareVirtual(subB, "get", 1);
            {
                auto f = pb.define(gb);
                const Reg v = f.getField(f.self(), 1);
                const Reg k = f.constant(3);
                f.ret(f.mul(v, k));
                f.finish();
            }
            slotGet = pb.virtualSlot("get");
            syncBump = pb.declareMethod("bump", 2, /*sync=*/true);
            {
                auto f = pb.define(syncBump);
                const Reg t = f.getField(f.self(), 2);
                f.putField(f.self(), 2, f.add(t, f.arg(1)));
                f.ret(f.getField(f.self(), 2));
                f.finish();
            }
        }

        // A few helper methods main can call.
        std::vector<MethodId> helpers;
        const int num_helpers = static_cast<int>(rng.range(1, 3));
        for (int h = 0; h < num_helpers; ++h) {
            const MethodId m = pb.declareMethod(
                "helper" + std::to_string(h), 2);
            auto mb = pb.define(m);
            std::vector<Reg> vals{mb.arg(0), mb.arg(1)};
            emitStatements(pb, mb, vals, helpers, 4, 1);
            mb.ret(pick(vals));
            mb.finish();
            helpers.push_back(m);
        }

        const MethodId mm = pb.declareMethod("main", 0);
        auto mb = pb.define(mm);
        std::vector<Reg> vals;
        vals.push_back(mb.constant(rng.range(-50, 50)));
        vals.push_back(mb.constant(rng.range(1, 100)));
        emitStatements(pb, mb, vals, helpers, 10, 2);
        for (Reg v : vals)
            mb.print(v);
        mb.retVoid();
        mb.finish();
        pb.setMain(mm);
        Program prog = pb.build();
        verifyOrDie(prog);
        return prog;
    }

  private:
    Reg
    pick(const std::vector<Reg> &vals)
    {
        return vals[rng.below(vals.size())];
    }

    /** idx <- nonneg(v) % len, always in [0, len). */
    Reg
    boundedIndex(MethodBuilder &mb, Reg v, Reg len)
    {
        const Reg r = mb.binop(Bc::Rem, v, len);
        const Reg r2 = mb.add(r, len);
        return mb.binop(Bc::Rem, r2, len);
    }

    void
    emitStatements(ProgramBuilder &pb, MethodBuilder &mb,
                   std::vector<Reg> &vals,
                   const std::vector<MethodId> &helpers, int count,
                   int depth)
    {
        for (int s = 0; s < count; ++s) {
            const uint64_t kinds =
                (depth > 0 ? 8u : 6u) + (withObjects ? 3u : 0u);
            uint64_t pick_kind = rng.below(kinds);
            if (pick_kind >= (depth > 0 ? 8u : 6u))
                pick_kind += 8u - (depth > 0 ? 8u : 6u);
            switch (pick_kind) {
              case 0: {       // binop
                static const Bc ops[] = {Bc::Add, Bc::Sub, Bc::Mul,
                                         Bc::And, Bc::Or, Bc::Xor,
                                         Bc::CmpLt, Bc::CmpEq};
                const Bc op = ops[rng.below(8)];
                vals.push_back(mb.binop(op, pick(vals), pick(vals)));
                break;
              }
              case 1: {       // constant
                vals.push_back(mb.constant(rng.range(-100, 100)));
                break;
              }
              case 2: {       // array round trip with safe index
                const Reg len = mb.constant(rng.range(2, 9));
                const Reg arr = mb.newArray(len);
                const Reg idx = boundedIndex(mb, pick(vals), len);
                mb.astore(arr, idx, pick(vals));
                vals.push_back(mb.aload(arr, idx));
                vals.push_back(mb.alength(arr));
                break;
              }
              case 3: {       // object field round trip
                const Reg obj = mb.newObject(cls);
                const int field = static_cast<int>(rng.below(4));
                mb.putField(obj, field, pick(vals));
                vals.push_back(mb.getField(obj, field));
                break;
              }
              case 4: {       // if/else diamond
                const Label els = mb.newLabel();
                const Label done = mb.newLabel();
                const Reg out = mb.newReg();
                mb.branchCmp(Bc::CmpLt, pick(vals), pick(vals), els);
                mb.mov(out, pick(vals));
                mb.jump(done);
                mb.bind(els);
                mb.mov(out, pick(vals));
                mb.bind(done);
                vals.push_back(out);
                break;
              }
              case 5: {       // call a helper
                if (helpers.empty()) {
                    vals.push_back(mb.constant(7));
                } else {
                    const MethodId callee =
                        helpers[rng.below(helpers.size())];
                    vals.push_back(mb.callStatic(
                        callee, {pick(vals), pick(vals)}));
                }
                break;
              }
              case 6: {       // bounded counted loop
                const Reg i = mb.constant(0);
                const Reg n = mb.constant(rng.range(1, 12));
                const Reg one = mb.constant(1);
                const Reg acc = mb.constant(0);
                const Label loop = mb.newLabel();
                const Label done = mb.newLabel();
                mb.bind(loop);
                mb.branchCmp(Bc::CmpGe, i, n, done);
                std::vector<Reg> inner{pick(vals), i, acc};
                emitStatements(pb, mb, inner, helpers,
                               static_cast<int>(rng.range(1, 3)),
                               depth - 1);
                mb.binopTo(Bc::Add, acc, acc, inner.back());
                mb.binopTo(Bc::Add, i, i, one);
                mb.jump(loop);
                mb.bind(done);
                vals.push_back(acc);
                break;
              }
              case 7: {       // print a live value (observability)
                mb.print(pick(vals));
                break;
              }
              case 8: {       // virtual dispatch over two classes
                const ClassId which =
                    rng.chance(0.5) ? subA : subB;
                const Reg obj = mb.newObject(which);
                mb.putField(obj, 0, pick(vals));
                mb.putField(obj, 1, pick(vals));
                vals.push_back(mb.callVirtual(slotGet, {obj}));
                vals.push_back(mb.instanceOf(obj, subA));
                break;
              }
              case 9: {       // synchronized accumulator traffic
                const Reg obj = mb.newObject(cls);
                vals.push_back(
                    mb.callStatic(syncBump, {obj, pick(vals)}));
                vals.push_back(
                    mb.callStatic(syncBump, {obj, pick(vals)}));
                break;
              }
              case 10: {      // explicit monitor block
                const Reg obj = mb.newObject(cls);
                mb.monitorEnter(obj);
                mb.putField(obj, 3, pick(vals));
                vals.push_back(mb.getField(obj, 3));
                mb.monitorExit(obj);
                break;
              }
            }
        }
    }

    Rng rng;
    ClassId cls = NO_CLASS;
    ClassId subA = NO_CLASS;
    ClassId subB = NO_CLASS;
    int slotGet = -1;
    MethodId syncBump = NO_METHOD;
};

} // namespace aregion::test

#endif // AREGION_TESTS_RANDOM_PROGRAM_HH
