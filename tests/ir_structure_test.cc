/**
 * @file
 * Tests for IR containers, RPO, dominators, post-dominators, loops,
 * and the IR verifier, on hand-constructed CFGs.
 */

#include <gtest/gtest.h>

#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

namespace {

using namespace aregion::ir;

Instr
mkJump()
{
    Instr in;
    in.op = Op::Jump;
    return in;
}

Instr
mkBranch(Vreg cond)
{
    Instr in;
    in.op = Op::Branch;
    in.srcs = {cond};
    return in;
}

Instr
mkRet()
{
    Instr in;
    in.op = Op::Ret;
    return in;
}

Instr
mkConst(Vreg dst, int64_t value)
{
    Instr in;
    in.op = Op::Const;
    in.dst = dst;
    in.imm = value;
    return in;
}

/**
 * Build the classic diamond-with-loop CFG:
 *
 *      0 (entry)
 *      |
 *      1 <------+
 *     / \       |
 *    2   3      |
 *     \ /       |
 *      4 -------+   (back edge 4->1)
 *      |
 *      5 (exit)
 */
Function
diamondLoop()
{
    Function f;
    f.name = "diamond";
    const Vreg c = f.newVreg();
    for (int i = 0; i < 6; ++i)
        f.newBlock();
    auto link = [&](int b, std::vector<int> succs, Instr term) {
        Block &blk = f.block(b);
        if (blk.instrs.empty())
            blk.instrs.push_back(mkConst(c, 1));
        blk.instrs.push_back(std::move(term));
        blk.succCount.assign(succs.size(), 1.0);
        blk.succs = std::move(succs);
    };
    link(0, {1}, mkJump());
    link(1, {2, 3}, mkBranch(c));
    link(2, {4}, mkJump());
    link(3, {4}, mkJump());
    link(4, {1, 5}, mkBranch(c));
    link(5, {}, mkRet());
    f.entry = 0;
    return f;
}

TEST(IrStructure, ReversePostOrderStartsAtEntry)
{
    const Function f = diamondLoop();
    const auto rpo = f.reversePostOrder();
    ASSERT_EQ(rpo.size(), 6u);
    EXPECT_EQ(rpo.front(), 0);
    // Every block appears exactly once.
    std::vector<int> sorted = rpo;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(IrStructure, PredsMatchSuccs)
{
    const Function f = diamondLoop();
    const auto preds = f.computePreds();
    EXPECT_EQ(preds[1], (std::vector<int>{0, 4}));
    EXPECT_EQ(preds[4], (std::vector<int>{2, 3}));
    EXPECT_TRUE(preds[0].empty());
}

TEST(Dominators, DiamondLoop)
{
    const Function f = diamondLoop();
    const DominatorTree doms(f);
    EXPECT_EQ(doms.idom(0), -1);
    EXPECT_EQ(doms.idom(1), 0);
    EXPECT_EQ(doms.idom(2), 1);
    EXPECT_EQ(doms.idom(3), 1);
    EXPECT_EQ(doms.idom(4), 1);    // joins 2 and 3
    EXPECT_EQ(doms.idom(5), 4);
    EXPECT_TRUE(doms.dominates(1, 5));
    EXPECT_TRUE(doms.dominates(4, 4));
    EXPECT_FALSE(doms.dominates(2, 4));
    EXPECT_FALSE(doms.dominates(5, 4));
}

TEST(Dominators, PostDominatorsOfDiamondLoop)
{
    const Function f = diamondLoop();
    const DominatorTree pdoms(f, /*post=*/true);
    // 4 post-dominates everything inside the loop; 5 post-dominates
    // all blocks.
    EXPECT_TRUE(pdoms.dominates(4, 1));
    EXPECT_TRUE(pdoms.dominates(4, 2));
    EXPECT_TRUE(pdoms.dominates(4, 3));
    EXPECT_TRUE(pdoms.dominates(5, 0));
    EXPECT_FALSE(pdoms.dominates(2, 1));
}

TEST(Dominators, UnreachableBlocksAreFlagged)
{
    Function f = diamondLoop();
    Block &orphan = f.newBlock();
    orphan.instrs.push_back(mkRet());
    const DominatorTree doms(f);
    EXPECT_FALSE(doms.reachable(orphan.id));
    EXPECT_FALSE(doms.dominates(0, orphan.id));
}

TEST(Loops, DetectsNaturalLoop)
{
    const Function f = diamondLoop();
    const DominatorTree doms(f);
    const LoopForest forest(f, doms);
    ASSERT_EQ(forest.numLoops(), 1);
    const Loop &loop = forest.loops()[0];
    EXPECT_EQ(loop.header, 1);
    EXPECT_EQ(loop.backEdgeSources, std::vector<int>{4});
    std::vector<int> blocks = loop.blocks;
    std::sort(blocks.begin(), blocks.end());
    EXPECT_EQ(blocks, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(forest.loopOf(2), 0);
    EXPECT_EQ(forest.loopOf(5), -1);
}

TEST(Loops, ExitEdgesAndEntryPreds)
{
    const Function f = diamondLoop();
    const DominatorTree doms(f);
    const LoopForest forest(f, doms);
    const auto exits = forest.exitEdges(f, 0);
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0], std::make_pair(4, 5));
    EXPECT_EQ(forest.entryPreds(f, 0), std::vector<int>{0});
}

TEST(Loops, NestedLoopsGetDepths)
{
    // 0 -> 1 -> 2 -> 1 (inner), 2 -> 0? No: build
    // 0 -> 1; 1 -> 2; 2 -> {2 inner self loop? use proper}:
    //   outer: 1..3 with back edge 3->1; inner: 2 with self edge.
    Function f;
    f.name = "nested";
    const Vreg c = f.newVreg();
    for (int i = 0; i < 5; ++i)
        f.newBlock();
    auto link = [&](int b, std::vector<int> succs, Instr term) {
        Block &blk = f.block(b);
        blk.instrs.push_back(mkConst(c, 1));
        blk.instrs.push_back(std::move(term));
        blk.succCount.assign(succs.size(), 1.0);
        blk.succs = std::move(succs);
    };
    link(0, {1}, mkJump());
    link(1, {2}, mkJump());
    link(2, {2, 3}, mkBranch(c));   // inner self-loop
    link(3, {1, 4}, mkBranch(c));   // outer back edge
    link(4, {}, mkRet());
    f.entry = 0;

    const DominatorTree doms(f);
    const LoopForest forest(f, doms);
    ASSERT_EQ(forest.numLoops(), 2);
    const auto order = forest.postOrder();
    // Innermost first.
    EXPECT_EQ(forest.loops()[static_cast<size_t>(order[0])].header, 2);
    EXPECT_EQ(forest.loops()[static_cast<size_t>(order[1])].header, 1);
    EXPECT_EQ(forest.loops()[static_cast<size_t>(order[0])].depth, 2);
    EXPECT_EQ(forest.loopOf(2), order[0]);
}

TEST(IrVerifier, AcceptsDiamond)
{
    const Function f = diamondLoop();
    EXPECT_TRUE(verify(f).empty());
}

TEST(IrVerifier, RejectsMissingTerminator)
{
    Function f = diamondLoop();
    f.block(5).instrs.pop_back();
    f.block(5).instrs.push_back(mkConst(0, 3));
    EXPECT_FALSE(verify(f).empty());
}

TEST(IrVerifier, RejectsBadSuccessorArity)
{
    Function f = diamondLoop();
    f.block(0).succs.push_back(2);  // jump with two successors
    EXPECT_FALSE(verify(f).empty());
}

TEST(IrVerifier, RejectsOutOfRangeVreg)
{
    Function f = diamondLoop();
    f.block(0).instrs.insert(f.block(0).instrs.begin(),
                             mkConst(99, 1));
    EXPECT_FALSE(verify(f).empty());
}

TEST(IrPrinter, MentionsBlocksAndOps)
{
    const Function f = diamondLoop();
    const std::string s = toString(f);
    EXPECT_NE(s.find("function diamond"), std::string::npos);
    EXPECT_NE(s.find("b4"), std::string::npos);
    EXPECT_NE(s.find("branch"), std::string::npos);
}

} // namespace
