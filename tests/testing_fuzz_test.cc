/**
 * @file
 * Tests for the differential fuzzing subsystem (src/testing/,
 * docs/FUZZING.md): generator determinism and feature gating, corpus
 * round-trips, minimizer shrinking power, harness agreement on known
 * shapes, and the trap-attribution parity contract — trap kind,
 * originating bytecode method, and pc must be bit-identical across
 * the interpreter, the IR evaluator at every pipeline prefix, and
 * the machine, even when the fault sits inside an inlined callee.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/corpus.hh"
#include "testing/diff_harness.hh"
#include "testing/minimizer.hh"
#include "testing/random_program.hh"
#include "vm/builder.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion::testing;
namespace vm = aregion::vm;

// ---------------------------------------------------------------
// Generator
// ---------------------------------------------------------------

TEST(Generator, SameSeedSameMaskIsDeterministic)
{
    for (uint64_t seed : {1ull, 17ull, 923ull}) {
        RandomProgramGen a(seed, kAllFeatures);
        RandomProgramGen b(seed, kAllFeatures);
        EXPECT_EQ(serializeGenProgram(a.generate()),
                  serializeGenProgram(b.generate()))
            << "seed " << seed;
    }
}

TEST(Generator, FeatureMaskGatesShapes)
{
    // Scalar-only seeds must never spawn threads or render trapping
    // statements; the full mask must produce both somewhere.
    bool any_threads = false;
    bool any_traps = false;
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        RandomProgramGen scalar(seed, kArrays);
        const GenProgram sp = scalar.generate();
        EXPECT_FALSE(usesThreads(sp)) << "seed " << seed;
        EXPECT_FALSE(mayTrap(sp)) << "seed " << seed;

        RandomProgramGen full(seed, kAllFeatures);
        const GenProgram fp = full.generate();
        any_threads = any_threads || usesThreads(fp);
        any_traps = any_traps || mayTrap(fp);
    }
    EXPECT_TRUE(any_threads);
    EXPECT_TRUE(any_traps);
}

TEST(Generator, EveryCanonicalMaskRendersAndRuns)
{
    for (uint32_t mask : canonicalMasks()) {
        RandomProgramGen gen(42, mask);
        const GenProgram gp = gen.generate();
        const vm::Program prog = renderProgram(gp);
        vm::Interpreter interp(prog);
        const vm::InterpResult res = interp.run(1ull << 22);
        EXPECT_TRUE(res.completed || res.trap.has_value())
            << "mask " << maskName(mask);
    }
}

// ---------------------------------------------------------------
// Corpus format
// ---------------------------------------------------------------

TEST(Corpus, SerializeParseRoundTripsExactly)
{
    for (uint64_t seed : {3ull, 77ull, 501ull}) {
        RandomProgramGen gen(seed, kAllFeatures);
        const GenProgram gp = gen.generate();
        const std::string text = serializeGenProgram(gp);

        GenProgram back;
        std::string err;
        ASSERT_TRUE(parseGenProgram(text, back, &err)) << err;
        EXPECT_EQ(serializeGenProgram(back), text);
        // The round-tripped structure renders to the same program.
        EXPECT_EQ(renderedMainSize(back), renderedMainSize(gp));
    }
}

TEST(Corpus, ParseRejectsGarbage)
{
    GenProgram out;
    std::string err;
    EXPECT_FALSE(parseGenProgram("not a corpus entry", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseGenProgram(
        "seed 1\nfeatures 3\nmain {\n  frobnicate 0 0 0 0\n}\n", out,
        &err));
}

// ---------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------

TEST(Minimizer, ShrinksPlantedFaultToTenInstructions)
{
    // Plant a "divergence": the predicate is any property the
    // harness could flag — here, the rendered program traps with
    // DivideByZero. Starting from a large random program that
    // happens to satisfy it, the minimizer must strip everything
    // incidental and land at a near-minimal reproducer.
    auto divides_by_zero = [](const GenProgram &candidate) {
        const vm::Program prog = renderProgram(candidate);
        vm::Interpreter interp(prog);
        const vm::InterpResult res = interp.run(1ull << 22);
        return res.trap.has_value() &&
            res.trap->kind == vm::TrapKind::DivideByZero;
    };

    // Plant the fault inside a deliberately fat program: two
    // helpers and a main full of incidental arithmetic, loops, and
    // allocation around one unguarded division whose divisor is
    // main's first seed constant — zero.
    using K = GenStmt::K;
    auto st = [](K k, uint32_t a, uint32_t b, uint32_t c,
                 int64_t imm) {
        GenStmt s;
        s.kind = k;
        s.a = a;
        s.b = b;
        s.c = c;
        s.imm = imm;
        return s;
    };
    GenProgram fat;
    fat.seed = 999;
    fat.features = kAllFeatures;
    fat.seedA = 0;
    fat.seedB = 7;
    fat.helpers.push_back({st(K::Binop, 0, 1, 0, 2),
                           st(K::ConstVal, 0, 0, 0, 11),
                           st(K::Binop, 1, 2, 0, 0)});
    fat.helpers.push_back({st(K::FieldTrip, 0, 0, 0, 1),
                           st(K::Binop, 0, 0, 0, 5)});
    for (int i = 0; i < 6; ++i) {
        fat.main.push_back(st(K::ConstVal, 0, 0, 0, 10 + i));
        fat.main.push_back(st(K::Binop, i, i + 1, 0, i % 8));
        fat.main.push_back(st(K::CallHelper, i % 2, i, i + 2, 0));
    }
    GenStmt loop = st(K::Loop, 1, 0, 0, 4);
    loop.body.push_back(st(K::Binop, 1, 2, 0, 0));
    loop.body.push_back(st(K::ArraySafe, 0, 1, 0, 5));
    fat.main.push_back(loop);
    fat.main.push_back(st(K::FieldTrip, 3, 0, 0, 2));
    fat.main.push_back(st(K::DivMaybe, 0, 0, 0, 0));
    fat.main.push_back(st(K::PrintVal, 1, 0, 0, 0));
    fat.main.push_back(st(K::ArraySafe, 2, 4, 0, 6));
    ASSERT_GE(fat.countStmts(), 25u);
    ASSERT_TRUE(divides_by_zero(fat));

    MinimizeStats stats;
    const GenProgram slim =
        minimizeProgram(fat, divides_by_zero, &stats);
    EXPECT_TRUE(divides_by_zero(slim));
    EXPECT_LT(stats.stmtsAfter, stats.stmtsBefore);
    EXPECT_GT(stats.predicateCalls, 0u);
    // The acceptance bar: a planted fault shrinks to a handful of
    // rendered main-method instructions.
    EXPECT_LE(renderedMainSize(slim), 10u)
        << serializeGenProgram(slim);

    // Determinism: minimizing again reproduces the same bytes.
    const GenProgram again =
        minimizeProgram(fat, divides_by_zero, nullptr);
    EXPECT_EQ(serializeGenProgram(again), serializeGenProgram(slim));
}

// ---------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------

TEST(DiffHarness, CleanSeedsAcrossMasksDoNotDiverge)
{
    for (uint32_t mask : canonicalMasks()) {
        RandomProgramGen gen(7, mask);
        const DiffReport report = runDiff(gen.generate());
        EXPECT_FALSE(report.diverged())
            << "mask " << maskName(mask) << ": " << report.summary();
    }
}

TEST(DiffHarness, FlagsReflectProgramShape)
{
    // The report must classify a trapping program and a threaded
    // program, and still agree everywhere. With `threads` and
    // `multi` on, most seeds spawn workers, so hunt the trapping
    // single-threaded shape with those bits masked off.
    bool saw_trap = false;
    const uint32_t no_threads =
        kAllFeatures & ~(kContention | kMultiContext);
    for (uint64_t seed = 1; seed <= 100 && !saw_trap; ++seed) {
        RandomProgramGen gen(seed, no_threads);
        const DiffReport report = runDiff(gen.generate());
        EXPECT_FALSE(report.diverged()) << report.summary();
        if (report.skipped)
            continue;
        EXPECT_FALSE(report.threaded);
        saw_trap = saw_trap || report.trapped;
    }
    EXPECT_TRUE(saw_trap);

    bool saw_threads = false;
    for (uint64_t seed = 1; seed <= 100 && !saw_threads; ++seed) {
        RandomProgramGen gen(seed, kAllFeatures);
        const DiffReport report = runDiff(gen.generate());
        EXPECT_FALSE(report.diverged()) << report.summary();
        if (report.skipped)
            continue;
        saw_threads = saw_threads || report.threaded;
    }
    EXPECT_TRUE(saw_threads);
}

// ---------------------------------------------------------------
// Trap-attribution parity (the contract the fuzzer enforces)
// ---------------------------------------------------------------

namespace {

/**
 * Build a program whose fault sits inside a hot helper that the
 * inliner folds into main: warm iterations pass benign values, the
 * final one faults. Every executor must attribute the trap to the
 * *helper's* method id and pc even though, post-inlining, the
 * executing function is main.
 */
struct TrapCase
{
    std::string name;
    vm::TrapKind kind;
    vm::Program prog;
    vm::MethodId helper;
};

TrapCase
makeTrapCase(const std::string &name, vm::TrapKind kind)
{
    using vm::Bc;
    vm::ProgramBuilder pb;
    const vm::ClassId box = pb.declareClass("Box", {"f"});
    const vm::ClassId other = pb.declareClass("Other", {});
    const vm::MethodId helper = pb.declareMethod("helper", 1);
    {
        auto mb = pb.define(helper);
        const vm::Reg x = mb.arg(0);
        switch (kind) {
          case vm::TrapKind::NullPointer: {
            // x: a Box ref for warm calls, null for the last.
            mb.ret(mb.getField(x, 0));
            break;
          }
          case vm::TrapKind::ArrayBounds: {
            // x: index into a fresh 4-element array.
            const vm::Reg len = mb.constant(4);
            const vm::Reg arr = mb.newArray(len);
            mb.ret(mb.aload(arr, x));
            break;
          }
          case vm::TrapKind::NegativeArraySize: {
            const vm::Reg arr = mb.newArray(x);
            mb.ret(mb.alength(arr));
            break;
          }
          case vm::TrapKind::DivideByZero: {
            const vm::Reg num = mb.constant(100);
            mb.ret(mb.binop(Bc::Div, num, x));
            break;
          }
          case vm::TrapKind::ClassCast: {
            // x: a Box ref for warm calls, an Other for the last.
            mb.checkCast(x, box);
            mb.ret(mb.constant(1));
            break;
          }
          default:
            ADD_FAILURE() << "unsupported kind";
            mb.ret(x);
            break;
        }
        mb.finish();
    }
    const vm::MethodId mm = pb.declareMethod("main", 0);
    {
        auto mb = pb.define(mm);
        const bool ref_arg = kind == vm::TrapKind::NullPointer ||
            kind == vm::TrapKind::ClassCast;
        const vm::Reg benign = ref_arg
            ? mb.newObject(box)
            : mb.constant(kind == vm::TrapKind::DivideByZero ? 5 : 2);
        // Warm loop: enough calls for the profile to mark the
        // helper hot so the inliner folds it into main.
        const vm::Reg i = mb.constant(0);
        const vm::Reg limit = mb.constant(64);
        const vm::Reg one = mb.constant(1);
        const vm::Label loop = mb.newLabel();
        const vm::Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, limit, done);
        mb.print(mb.callStatic(helper, {benign}));
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
        int64_t fatal_val = -3;                  // negative array size
        if (kind == vm::TrapKind::ArrayBounds)
            fatal_val = 9;                       // past length 4
        if (kind == vm::TrapKind::DivideByZero)
            fatal_val = 0;
        const vm::Reg fatal = ref_arg
            ? (kind == vm::TrapKind::ClassCast ? mb.newObject(other)
                                               : mb.constant(0))
            : mb.constant(fatal_val);
        mb.print(mb.callStatic(helper, {fatal}));
        mb.retVoid();
        mb.finish();
    }
    pb.setMain(mm);
    return {name, kind, pb.build(), helper};
}

} // namespace

TEST(TrapParity, InlinedHelperKeepsTrapMethodAndPcEverywhere)
{
    const std::vector<std::pair<std::string, vm::TrapKind>> kinds = {
        {"null", vm::TrapKind::NullPointer},
        {"bounds", vm::TrapKind::ArrayBounds},
        {"negsize", vm::TrapKind::NegativeArraySize},
        {"divzero", vm::TrapKind::DivideByZero},
        {"cast", vm::TrapKind::ClassCast},
    };
    for (const auto &[name, kind] : kinds) {
        const TrapCase tc = makeTrapCase(name, kind);

        // Reference semantics: the interpreter blames the helper.
        vm::Interpreter interp(tc.prog);
        const vm::InterpResult res = interp.run(1ull << 22);
        ASSERT_TRUE(res.trap.has_value()) << name;
        EXPECT_EQ(res.trap->kind, kind) << name;
        ASSERT_EQ(res.trap->method, tc.helper)
            << name << ": fault must originate inside the helper "
            << "or this case does not exercise inlined attribution";

        // The harness holds every other executor (evaluator at all
        // prefixes, machine with/without timing, hostile geometry)
        // to the same kind/method/pc — this is the regression test
        // for the evaluator formerly reporting the inlined caller.
        const DiffReport report = runDiff(tc.prog, false);
        EXPECT_TRUE(report.trapped) << name;
        EXPECT_FALSE(report.skipped) << name;
        EXPECT_FALSE(report.diverged())
            << name << ": " << report.summary();
    }
}

} // namespace
