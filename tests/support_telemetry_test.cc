/**
 * @file
 * Telemetry registry tests: round-trip of counters/gauges/histograms,
 * byte-stable JSON export, zero-cost disabled tracing, agreement
 * between the machine-published `machine.abort.*` counters and
 * RegionRuntime::abortsByCause on a known aborting program, and the
 * runtime half of the docs enforcement triangle (registered keys ⊆
 * catalog ⊆ docs/TELEMETRY.md).
 */

#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "programs.hh"
#include "runtime/jit.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace core = aregion::core;
namespace hw = aregion::hw;
namespace rt = aregion::runtime;
namespace telemetry = aregion::telemetry;
namespace keys = aregion::telemetry::keys;

TEST(Registry, CounterGaugeHistogramRoundTrip)
{
    telemetry::Registry reg;
    auto &c = reg.counter("a.count");
    EXPECT_EQ(c, 0u);
    c += 3;
    reg.add("a.count", 2);
    EXPECT_EQ(reg.counterValue("a.count"), 5u);
    EXPECT_EQ(reg.counterValue("never.registered"), 0u);

    reg.set("a.gauge", 1.25);
    reg.set("a.gauge", 2.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("a.gauge"), 2.5);

    Histogram &h = reg.histogram("a.hist");
    h.add(10);
    h.add(20, 3);
    EXPECT_EQ(reg.histogram("a.hist").count(), 4u);

    EXPECT_TRUE(reg.has("a.count"));
    EXPECT_TRUE(reg.has("a.gauge"));
    EXPECT_TRUE(reg.has("a.hist"));
    EXPECT_FALSE(reg.has("a.missing"));
    EXPECT_EQ(reg.keys().size(), 3u);
}

TEST(Registry, ResetZeroesInPlaceAndKeepsReferences)
{
    telemetry::Registry reg;
    auto &c = reg.counter("x");
    Histogram &h = reg.histogram("y");
    c = 42;
    h.add(7);
    reg.reset();
    // Values are zeroed but the slots (and cached references) stay.
    EXPECT_EQ(c, 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(reg.has("x"));
    EXPECT_TRUE(reg.has("y"));
    c = 9;                                  // ref still writes through
    EXPECT_EQ(reg.counterValue("x"), 9u);
}

TEST(Registry, JsonExportIsByteStable)
{
    telemetry::Registry reg;
    // Register deliberately out of order; std::map iteration sorts.
    reg.add("z.last", 1);
    reg.add("a.first", 2);
    reg.set("m.gauge", 0.5);
    reg.histogram("h.hist").add(3);

    const std::string once = reg.toJson();
    const std::string twice = reg.toJson();
    EXPECT_EQ(once, twice);
    EXPECT_LT(once.find("\"a.first\""), once.find("\"z.last\""));
    EXPECT_NE(once.find("\"counters\""), std::string::npos);
    EXPECT_NE(once.find("\"gauges\""), std::string::npos);
    EXPECT_NE(once.find("\"histograms\""), std::string::npos);
    EXPECT_NE(once.find("\"spans\""), std::string::npos);
}

TEST(Registry, EmptyHistogramExportsNullNotZero)
{
    telemetry::Registry reg;
    reg.histogram("h.empty");
    reg.histogram("h.full").add(4);

    // A registered-but-never-fed histogram must not masquerade as a
    // series whose minimum is 0.0; the JSON carries nulls and the
    // table says empty.
    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"h.empty\": {\"count\": 0, "
                        "\"mean\": null, \"min\": null, "
                        "\"max\": null, \"p95\": null}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"h.full\": {\"count\": 1"),
              std::string::npos);
    EXPECT_EQ(json.find("\"h.full\": {\"count\": 1, "
                        "\"mean\": null"),
              std::string::npos);

    const std::string table = reg.toTable();
    EXPECT_NE(table.find("n=0 (empty)"), std::string::npos) << table;
}

TEST(Tracing, DisabledSpansAreNoOps)
{
    telemetry::Registry reg;
    ASSERT_FALSE(reg.tracingEnabled());
    {
        telemetry::ScopedSpan outer("outer", reg);
        telemetry::ScopedSpan inner("inner", reg);
    }
    EXPECT_EQ(reg.spansRecorded(), 0u);
    EXPECT_TRUE(reg.spans().empty());
}

TEST(Tracing, EnabledSpansRecordNesting)
{
    telemetry::Registry reg;
    reg.enableTracing(16);
    {
        telemetry::ScopedSpan outer("outer", reg);
        { telemetry::ScopedSpan inner("inner", reg); }
    }
    reg.disableTracing();
    const auto spans = reg.spans();
    ASSERT_EQ(spans.size(), 2u);
    // Spans close inner-first.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0);
    EXPECT_LE(spans[0].beginUs, spans[0].endUs);
}

TEST(Tracing, RingBufferKeepsNewestSpans)
{
    telemetry::Registry reg;
    reg.enableTracing(4);
    for (int i = 0; i < 10; ++i)
        telemetry::ScopedSpan span("s", reg);
    EXPECT_EQ(reg.spansRecorded(), 10u);
    EXPECT_EQ(reg.spans().size(), 4u);
}

/** The machine-published abort counters must agree with the per-
 *  region cause registers on a program known to abort (interrupts
 *  every 1,000 cycles force Interrupt aborts; Section 3.2). */
TEST(MachineTelemetry, AbortCountersMatchRegionRuntime)
{
    auto &reg = telemetry::Registry::global();
    reg.reset();

    const Program prog = addElementProgram(2000, 256);
    Profile profile(prog);
    {
        Interpreter interp(prog, &profile);
        interp.run();
    }
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::atomic());
    vm::Heap layout_heap(prog, 1 << 20);
    const hw::MachineProgram mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));

    hw::HwConfig config;
    config.interruptPeriod = 1000;
    hw::Machine machine(mp, config);
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);

    uint64_t by_cause[6] = {0, 0, 0, 0, 0, 0};
    uint64_t total = 0;
    for (const auto &[key, stats] : res.regions) {
        for (int c = 0; c < 6; ++c) {
            by_cause[c] += stats.abortsByCause[c];
            total += stats.abortsByCause[c];
        }
    }
    ASSERT_GT(by_cause[static_cast<int>(hw::AbortCause::Interrupt)],
              0u)
        << "expected interrupt aborts with a 1,000-cycle period";

    for (int c = 0; c < 6; ++c) {
        EXPECT_EQ(reg.counterValue(keys::kMachineAbortByCause[c]),
                  by_cause[c])
            << keys::kMachineAbortByCause[c];
        // Even never-fired causes are registered (schema at zero).
        EXPECT_TRUE(reg.has(keys::kMachineAbortByCause[c]));
    }
    EXPECT_EQ(reg.counterValue(keys::kMachineAbortTotal), total);
    EXPECT_EQ(reg.counterValue(keys::kMachineRegionCommits),
              res.regionCommits);
    EXPECT_EQ(reg.counterValue(keys::kMachineUopsRetired),
              res.retiredUops);
}

/** Regression: compileProgram itself owns the jit.compile_us
 *  aggregate. The bench harnesses call compileProgram directly
 *  (bypassing runExperiment), and the aggregate used to live in a
 *  runtime-layer wrapper — so BENCH_simulator.json exported
 *  jit.compile_us=0 next to non-zero per-pass timers. The aggregate
 *  must cover at least the sum of every per-pass timer it breaks
 *  down into. */
TEST(CompileTelemetry, AggregateCoversPerPassTimers)
{
    auto &reg = telemetry::Registry::global();
    reg.reset();

    const Program prog = addElementProgram(2000, 256);
    Profile profile(prog);
    {
        Interpreter interp(prog, &profile);
        interp.run();
    }
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::atomic());
    ASSERT_GT(compiled.stats.totalInstrs, 0);

    const uint64_t total = reg.counterValue(keys::kJitCompileUs);
    uint64_t pass_sum = 0;
    for (const char *key :
         {keys::kJitPassSsaUs, keys::kJitPassSimplifyCfgUs,
          keys::kJitPassSccpUs, keys::kJitPassGvnUs,
          keys::kJitPassDceUs, keys::kJitPassInlineUs,
          keys::kJitPassUnrollUs}) {
        pass_sum += reg.counterValue(key);
    }
    EXPECT_GT(total, 0u) << "direct compileProgram calls must feed "
                            "the jit.compile_us aggregate";
    EXPECT_GE(total, pass_sum)
        << "aggregate compile time cannot be less than the sum of "
           "the per-pass timers it decomposes into";
}

/** Runtime half of the enforcement triangle: after a full pipeline
 *  run every registered key must be in the catalog, and the catalog
 *  must be documented (the docs half is also `ctest -R verify_docs`,
 *  which reports missing keys by name). */
TEST(Catalog, RuntimeKeysAreCataloguedAndDocumented)
{
    auto &reg = telemetry::Registry::global();
    reg.reset();

    const Program prog = addElementProgram(2000, 256);
    rt::ExperimentConfig config;
    config.compiler = core::CompilerConfig::atomic();
    const auto metrics = rt::runExperiment(prog, prog, config);
    ASSERT_TRUE(metrics.completed);

    const auto catalog = keys::catalog();
    const std::set<std::string> catalogued(catalog.begin(),
                                           catalog.end());
    for (const std::string &key : reg.keys()) {
        EXPECT_TRUE(catalogued.count(key))
            << "runtime key not in telemetry_keys.hh catalog: "
            << key;
    }
    // The acceptance-critical keys must actually register.
    EXPECT_TRUE(reg.has(keys::kRegionFormed));
    EXPECT_TRUE(reg.has(keys::kJitPassGvnUs));
    EXPECT_TRUE(reg.has(keys::kTimingCycles));

    std::ifstream docs(AREGION_SOURCE_DIR "/docs/TELEMETRY.md");
    ASSERT_TRUE(docs.good()) << "docs/TELEMETRY.md missing";
    std::ostringstream buf;
    buf << docs.rdbuf();
    const std::string text = buf.str();
    for (const std::string &key : catalog) {
        EXPECT_NE(text.find(key), std::string::npos)
            << "catalog key undocumented in docs/TELEMETRY.md: "
            << key;
    }
}

} // namespace
