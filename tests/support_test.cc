/**
 * @file
 * Unit tests for the support library: RNG determinism, statistics
 * containers, and table rendering.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/statistics.hh"
#include "support/table.hh"

namespace {

using namespace aregion;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceIsCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, PickWeightedRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 40000; ++i)
        counts[rng.pickWeighted(weights)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.2);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, Merge)
{
    RunningStat a, b;
    a.add(1.0);
    b.add(3.0);
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, PercentilesAndFractions)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.50), 50);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(1.00), 100);
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(10), 0.10);
    EXPECT_EQ(h.countAbove(90), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 100);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h;
    h.add(5, 10);
    h.add(50, 90);
    EXPECT_EQ(h.percentile(0.05), 5);
    EXPECT_EQ(h.percentile(0.5), 50);
}

TEST(Statistics, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Statistics, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"bench", "speedup"});
    t.addRow({"antlr", "17.0%"});
    t.addRow({"hsqldb", "56.0%"});
    const std::string out = t.render();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("56.0%"), std::string::npos);
    // Numeric cells right-align: both % cells end at the same column.
    const auto line1 = out.find("antlr");
    const auto line2 = out.find("hsqldb");
    EXPECT_NE(line1, std::string::npos);
    EXPECT_NE(line2, std::string::npos);
}

TEST(TextTable, FormatHelpers)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.125, 1), "12.5%");
}

TEST(TextTable, RowArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(AREGION_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(AREGION_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(AREGION_ASSERT(false, "nope"), std::logic_error);
}

} // namespace
