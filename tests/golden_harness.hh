/**
 * @file
 * Shared pipeline for the golden-value regression net: runs one
 * workload through the profile -> compile -> functional-machine
 * pipeline (no timing sink) and condenses the architectural results
 * into a small comparable row. Used by tests/hw_machine_golden_test.cc
 * (compares against checked-in values) and tools/golden_gen (prints a
 * fresh table to paste after an *intentional* behaviour change).
 */

#ifndef AREGION_TESTS_GOLDEN_HARNESS_HH
#define AREGION_TESTS_GOLDEN_HARNESS_HH

#include <cstdint>
#include <string>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "vm/interpreter.hh"
#include "workloads/workload.hh"

namespace aregion::test {

/** Condensed architectural results of one workload run. */
struct GoldenRow
{
    std::string workload;
    uint64_t outputChecksum = 0;    ///< MachineResult::outputChecksum
    uint64_t interpChecksum = 0;    ///< interpreter's output, same hash
    uint64_t retiredUops = 0;
    uint64_t regionEntries = 0;
    uint64_t regionCommits = 0;
    uint64_t regionAborts = 0;
    /** FNV-1a over every static region's (method, regionId, entries,
     *  commits, abortsByCause[0..5]) tuple, in map order. */
    uint64_t regionFingerprint = 0;
};

inline uint64_t
goldenMix(uint64_t h, uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

inline uint64_t
goldenChecksum(const std::vector<int64_t> &output)
{
    uint64_t h = 1469598103934665603ULL;
    for (int64_t v : output)
        h = goldenMix(h, static_cast<uint64_t>(v));
    return h;
}

/** Profile on the profiling input, compile the measurement input
 *  with atomic+aggressive-inline, run the functional machine, and
 *  run the interpreter on the same input for cross-validation. */
inline GoldenRow
runGoldenPipeline(const workloads::Workload &w)
{
    const vm::Program profile_prog = w.build(true);
    const vm::Program measure_prog = w.build(false);

    vm::Profile profile(profile_prog);
    {
        vm::Interpreter interp(profile_prog, &profile);
        interp.run();
    }
    core::Compiled compiled = core::compileProgram(
        measure_prog, profile,
        core::CompilerConfig::atomicAggressiveInline());
    vm::Heap layout_heap(measure_prog, 1 << 16);
    const hw::MachineProgram mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));

    hw::Machine machine(mp, hw::HwConfig{});
    const hw::MachineResult res = machine.run();

    GoldenRow row;
    row.workload = w.name;
    row.outputChecksum = res.outputChecksum();
    row.retiredUops = res.retiredUops;
    row.regionEntries = res.regionEntries;
    row.regionCommits = res.regionCommits;
    row.regionAborts = res.regionAborts;
    uint64_t h = 1469598103934665603ULL;
    for (const auto &[key, stats] : res.regions) {
        h = goldenMix(h, static_cast<uint64_t>(key.first));
        h = goldenMix(h, static_cast<uint64_t>(key.second));
        h = goldenMix(h, stats.entries);
        h = goldenMix(h, stats.commits);
        for (uint64_t c : stats.abortsByCause)
            h = goldenMix(h, c);
    }
    row.regionFingerprint = h;

    vm::Interpreter interp(measure_prog);
    interp.run();
    row.interpChecksum = goldenChecksum(interp.output());
    return row;
}

} // namespace aregion::test

#endif // AREGION_TESTS_GOLDEN_HARNESS_HH
