/**
 * @file
 * Fine-grained hardware tests: conflict-detection directions, commit
 * visibility, speculative line tracking and overflow boundaries,
 * monitor uop semantics (CAS/TidWord/LockSlow recursion), trace
 * dependency annotations, and heap rollback.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "programs.hh"
#include "vm/interpreter.hh"
#include "vm/layout.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace hw = aregion::hw;
namespace core = aregion::core;

/** Hand-assemble a machine program around a main function. */
struct Assembler
{
    explicit Assembler(const vm::Program &prog) : progRef(prog)
    {
        mp.prog = &prog;
    }

    hw::MachineFunction &
    func(vm::MethodId m, int num_args, int num_regs)
    {
        hw::MachineFunction f;
        f.methodId = m;
        f.name = "asm" + std::to_string(m);
        f.numArgs = num_args;
        f.numRegs = num_regs;
        auto [it, ok] = mp.funcs.emplace(m, std::move(f));
        (void)ok;
        return it->second;
    }

    static hw::MUop
    uop(hw::MKind kind, hw::MReg dst = hw::NO_MREG,
        std::vector<hw::MReg> srcs = {}, int64_t imm = 0,
        int aux = 0, int target = -1)
    {
        hw::MUop u;
        u.kind = kind;
        u.dst = dst;
        u.srcs = std::move(srcs);
        u.imm = imm;
        u.aux = aux;
        u.target = target;
        return u;
    }

    const vm::Program &progRef;
    hw::MachineProgram mp;
};

/** A minimal two-method program shell (bodies are hand-assembled). */
vm::Program
shellProgram(int methods)
{
    vm::ProgramBuilder pb;
    pb.declareClass("C", {"f0", "f1"});
    std::vector<vm::MethodId> ids;
    for (int m = 0; m < methods; ++m) {
        const vm::MethodId id =
            pb.declareMethod("m" + std::to_string(m), 0);
        auto mb = pb.define(id);
        mb.retVoid();
        mb.finish();
        ids.push_back(id);
    }
    pb.setMain(ids[0]);
    return pb.build();
}

TEST(HwDetail, AbortRestoresRegistersAndMemory)
{
    const vm::Program prog = shellProgram(1);
    Assembler as(prog);
    auto &f = as.func(0, 0, 8);
    using K = hw::MKind;
    constexpr int64_t ELEM = vm::layout::ARR_ELEM_BASE;
    // r1 = alloc(64); r0 = 11; mem[r1] = r0; begin; r0 = 99;
    // mem[r1] = r0; abort; alt: print r0; print mem[r1]; ret
    f.code = {
        Assembler::uop(K::Imm, 3, {}, 64),
        Assembler::uop(K::Alloc, 1, {3}, 1),
        Assembler::uop(K::Imm, 0, {}, 11),
        Assembler::uop(K::Store, hw::NO_MREG, {1, 0}, ELEM),
        Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 8),
        Assembler::uop(K::Imm, 0, {}, 99),
        Assembler::uop(K::Store, hw::NO_MREG, {1, 0}, ELEM),
        Assembler::uop(K::AAbort, hw::NO_MREG, {}, 0, 3),
        // alt (offset 8):
        Assembler::uop(K::Print, hw::NO_MREG, {0}),
        Assembler::uop(K::Load, 2, {1}, ELEM),
        Assembler::uop(K::Print, hw::NO_MREG, {2}),
        Assembler::uop(K::Ret),
    };
    hw::Machine machine(as.mp, hw::HwConfig{});
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, (std::vector<int64_t>{11, 11}));
    EXPECT_EQ(res.regionAborts, 1u);
    const auto &stats = res.regions.at({0, 0});
    EXPECT_EQ(stats.abortsByAssert.at(3), 1u);
}

TEST(HwDetail, CommitPublishesBufferedStores)
{
    const vm::Program prog = shellProgram(1);
    Assembler as(prog);
    auto &f = as.func(0, 0, 8);
    using K = hw::MKind;
    constexpr int64_t ELEM = vm::layout::ARR_ELEM_BASE;
    f.code = {
        Assembler::uop(K::Imm, 3, {}, 64),
        Assembler::uop(K::Alloc, 1, {3}, 1),
        Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 7),
        Assembler::uop(K::Imm, 0, {}, 42),
        Assembler::uop(K::Store, hw::NO_MREG, {1, 0}, ELEM),
        Assembler::uop(K::AEnd, hw::NO_MREG, {}, 0, 0),
        Assembler::uop(K::Jmp, hw::NO_MREG, {}, 0, 0, 7),
        // offset 7:
        Assembler::uop(K::Load, 2, {1}, ELEM),
        Assembler::uop(K::Print, hw::NO_MREG, {2}),
        Assembler::uop(K::Ret),
    };
    hw::Machine machine(as.mp, hw::HwConfig{});
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, std::vector<int64_t>{42});
    EXPECT_EQ(res.regionCommits, 1u);
}

TEST(HwDetail, SpeculativeStoresInvisibleToOtherContexts)
{
    // Context 1 spins reading a flag that context 0 only writes
    // speculatively before spinning on a release variable; the flag
    // must remain invisible until commit.
    const vm::Program prog = shellProgram(2);
    Assembler as(prog);
    using K = hw::MKind;
    constexpr int64_t ELEM = vm::layout::ARR_ELEM_BASE;
    auto &m0 = as.func(0, 0, 8);
    m0.code = {
        Assembler::uop(K::Imm, 3, {}, 64),
        Assembler::uop(K::Alloc, 1, {3}, 1),    // shared array
        Assembler::uop(K::Spawn, hw::NO_MREG, {1}, 0, 1),
        Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 8),
        Assembler::uop(K::Imm, 0, {}, 1),
        Assembler::uop(K::Store, hw::NO_MREG, {1, 0}, ELEM),
        Assembler::uop(K::Imm, 2, {}, 400),     // in-region filler
        Assembler::uop(K::AEnd, hw::NO_MREG, {}, 0, 0),
        // offset 8: wait for ack at element 16 (other line).
        Assembler::uop(K::Load, 5, {1}, ELEM + 16),
        Assembler::uop(K::Br, hw::NO_MREG, {5}, 0, 0, 8),
        Assembler::uop(K::Ret),
    };
    m0.code[9].brIfZero = true;     // loop until ack != 0
    auto &m1 = as.func(1, 1, 8);    // arg0 = shared array
    m1.code = {
        // Peek the flag 50 times, count sightings, then ack.
        Assembler::uop(K::Imm, 1, {}, 0),   // sightings
        Assembler::uop(K::Imm, 2, {}, 50),  // remaining
        Assembler::uop(K::Imm, 3, {}, 1),
        // loop (offset 3):
        Assembler::uop(K::Load, 4, {0}, ELEM),
        Assembler::uop(K::Alu, 1, {1, 4}),          // += flag value
        Assembler::uop(K::Alu, 2, {2, 3}),          // -= 1 (Sub)
        Assembler::uop(K::Br, hw::NO_MREG, {2}, 0, 0, 3),
        Assembler::uop(K::Print, hw::NO_MREG, {1}),
        Assembler::uop(K::Store, hw::NO_MREG, {0, 3}, ELEM + 16),
        Assembler::uop(K::Ret),
    };
    m1.code[5].alu = hw::AluOp::Sub;
    hw::Machine machine(as.mp, hw::HwConfig{});
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    ASSERT_EQ(res.output.size(), 1u);
    // Context 0's region either committed before any peek (flag
    // visible -> counted) or the peeks all saw 0. The invariant:
    // if the region was still open during the peeks, they saw 0;
    // conflict detection may have aborted ctx0's region (reads do
    // not conflict, so it should commit exactly once).
    EXPECT_EQ(res.regionCommits + res.regionAborts, res.regionEntries);
    EXPECT_GE(res.regionCommits, 1u);
}

TEST(HwDetail, ConflictingStoreAbortsSpeculativeReader)
{
    // Ctx0 reads a line inside its region and loops inside the
    // region until ctx1 stores to that line -> conflict abort.
    const vm::Program prog = shellProgram(2);
    Assembler as(prog);
    using K = hw::MKind;
    constexpr int64_t ELEM = vm::layout::ARR_ELEM_BASE;
    auto &m0 = as.func(0, 0, 8);
    m0.code = {
        Assembler::uop(K::Imm, 4, {}, 64),
        Assembler::uop(K::Alloc, 1, {4}, 1),
        Assembler::uop(K::Spawn, hw::NO_MREG, {1}, 0, 1),
        Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 8),
        // loop: read shared until it becomes nonzero (it never will
        // inside this region: the write conflicts first).
        Assembler::uop(K::Load, 2, {1}, ELEM),
        Assembler::uop(K::Br, hw::NO_MREG, {2}, 0, 0, 4),
        Assembler::uop(K::AEnd, hw::NO_MREG, {}, 0, 0),
        Assembler::uop(K::Jmp, hw::NO_MREG, {}, 0, 0, 10),
        // alt (offset 8): aborted -> print marker value 77
        Assembler::uop(K::Imm, 3, {}, 77),
        Assembler::uop(K::Print, hw::NO_MREG, {3}),
        Assembler::uop(K::Ret),
    };
    m0.code[5].brIfZero = true;     // loop while zero
    auto &m1 = as.func(1, 1, 8);
    m1.code = {
        Assembler::uop(K::Imm, 1, {}, 1),
        Assembler::uop(K::Store, hw::NO_MREG, {0, 1}, ELEM),
        Assembler::uop(K::Ret),
    };
    hw::Machine machine(as.mp, hw::HwConfig{});
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, std::vector<int64_t>{77});
    const auto &stats = res.regions.at({0, 0});
    EXPECT_GE(stats.abortsByCause[
                  static_cast<int>(hw::AbortCause::Conflict)], 1u);
}

TEST(HwDetail, OverflowAbortsAtWayLimit)
{
    // Touch assoc+1 lines mapping to one set inside a region.
    const vm::Program prog = shellProgram(1);
    Assembler as(prog);
    using K = hw::MKind;
    hw::HwConfig config;
    config.l1Lines = 16;
    config.l1Assoc = 2;             // 8 sets; stride 8 lines = 1 set
    const int line_words = config.lineWords;
    const int num_sets = config.l1Lines / config.l1Assoc;
    auto &m0 = as.func(0, 0, 8);
    m0.code = {Assembler::uop(K::ABegin, hw::NO_MREG, {}, 0, 0, 8)};
    for (int i = 0; i < 3; ++i) {   // 3 lines in one set, assoc 2
        const uint64_t addr = 4096 +
            static_cast<uint64_t>(i * num_sets * line_words);
        m0.code.push_back(Assembler::uop(K::Imm, 1, {},
                                         static_cast<int64_t>(addr)));
        m0.code.push_back(Assembler::uop(K::Load, 2, {1}, 0));
    }
    m0.code.push_back(Assembler::uop(K::AEnd, hw::NO_MREG, {}, 0, 0));
    // offset 8 = alt: print 5; ret (commit path also lands here).
    m0.code.push_back(Assembler::uop(K::Imm, 3, {}, 5));
    m0.code.push_back(Assembler::uop(K::Print, hw::NO_MREG, {3}));
    m0.code.push_back(Assembler::uop(K::Ret));
    hw::Machine machine(as.mp, config);
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    const auto &stats = res.regions.at({0, 0});
    EXPECT_EQ(stats.abortsByCause[
                  static_cast<int>(hw::AbortCause::Overflow)], 1u);
}

TEST(HwDetail, MonitorFastPathAndRecursionViaCompiledCode)
{
    // Compiled monitor code: recursive enter goes to LockSlow and
    // unlock keeps the depth straight.
    ProgramBuilder pb;
    const ClassId c = pb.declareClass("C", {"x"});
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg o = mb.newObject(c);
    mb.monitorEnter(o);
    mb.monitorEnter(o);     // recursive -> slow path
    const Reg v = mb.constant(5);
    mb.putField(o, 0, v);
    mb.monitorExit(o);      // depth 2 -> 1 (slow)
    mb.monitorExit(o);      // depth 1 -> 0 (fast)
    mb.print(mb.getField(o, 0));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);
    core::Compiled compiled = core::compileProgram(
        prog, profile, core::CompilerConfig::baseline());
    vm::Heap layout_heap(prog, 1 << 16);
    const auto mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::Machine machine(mp, hw::HwConfig{});
    const auto res = machine.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, std::vector<int64_t>{5});
}

TEST(HwDetail, TraceDependenciesNameProducers)
{
    // r0 = 1; r1 = 2; r2 = r0 + r1: the Alu uop's sources must name
    // the two Imm uops' sequence numbers.
    const vm::Program prog = shellProgram(1);
    Assembler as(prog);
    using K = hw::MKind;
    auto &m0 = as.func(0, 0, 4);
    m0.code = {
        Assembler::uop(K::Imm, 0, {}, 1),
        Assembler::uop(K::Imm, 1, {}, 2),
        Assembler::uop(K::Alu, 2, {0, 1}),
        Assembler::uop(K::Ret),
    };
    struct Sink : hw::TraceSink
    {
        std::vector<hw::TraceUop> uops;
        void uop(const hw::TraceUop &u) override { uops.push_back(u); }
    } sink;
    hw::Machine machine(as.mp, hw::HwConfig{}, &sink);
    ASSERT_TRUE(machine.run().completed);
    ASSERT_EQ(sink.uops.size(), 4u);
    EXPECT_EQ(sink.uops[2].numSrcs, 2);
    EXPECT_EQ(sink.uops[2].srcSeq[0], sink.uops[0].seq);
    EXPECT_EQ(sink.uops[2].srcSeq[1], sink.uops[1].seq);
}

TEST(HwDetail, HeapAllocResetZeroesReclaimedRange)
{
    vm::ProgramBuilder pb;
    const vm::MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const vm::Program prog = pb.build();
    vm::Heap heap(prog, 1 << 16);
    const uint64_t mark = heap.allocMark();
    const uint64_t arr = heap.allocArray(8);
    heap.store(arr + vm::layout::ARR_ELEM_BASE, 1234);
    heap.allocReset(mark);
    const uint64_t arr2 = heap.allocArray(8);
    EXPECT_EQ(arr2, arr);   // same address reused
    EXPECT_EQ(heap.load(arr2 + vm::layout::ARR_ELEM_BASE), 0);
}

TEST(HwDetail, GlobalPcRoundTrips)
{
    const uint64_t pc = hw::globalPc(1234, 567);
    EXPECT_EQ(hw::pcMethod(pc), 1234);
    EXPECT_EQ(hw::pcOffset(pc), 567);
}

} // namespace
