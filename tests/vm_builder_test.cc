/**
 * @file
 * Tests for the program builder and the bytecode verifier.
 */

#include <gtest/gtest.h>

#include "vm_test_util.hh"

namespace {

using namespace aregion::vm;
using aregion::test::singleMethodProgram;

TEST(Builder, LabelsResolveForwardsAndBackwards)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            const Label loop = mb.newLabel();
            const Label done = mb.newLabel();
            const Reg i = mb.constant(0);
            const Reg limit = mb.constant(3);
            mb.bind(loop);
            mb.branchCmp(Bc::CmpGe, i, limit, done);
            const Reg one = mb.constant(1);
            mb.binopTo(Bc::Add, i, i, one);
            mb.jump(loop);
            mb.bind(done);
            mb.retVoid();
        });
    // Back edge jumps to a pc before itself; forward branch after it.
    const auto &code = prog.method(prog.mainMethod).code;
    bool saw_back = false, saw_forward = false;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        if (code[pc].op == Bc::Jump && code[pc].imm < int64_t(pc))
            saw_back = true;
        if (code[pc].op == Bc::Branch && code[pc].imm > int64_t(pc))
            saw_forward = true;
    }
    EXPECT_TRUE(saw_back);
    EXPECT_TRUE(saw_forward);
}

TEST(Builder, FieldIndexResolvesInheritedFields)
{
    ProgramBuilder pb;
    const ClassId base = pb.declareClass("Base", {"x", "y"});
    const ClassId sub = pb.declareClass("Sub", {"z"}, base);
    EXPECT_EQ(pb.fieldIndex(sub, "x"), 0);
    EXPECT_EQ(pb.fieldIndex(sub, "y"), 1);
    EXPECT_EQ(pb.fieldIndex(sub, "z"), 2);
    EXPECT_EQ(pb.programRef().cls(sub).numFields(), 3);
}

TEST(Builder, VirtualSlotNamespaceIsStable)
{
    ProgramBuilder pb;
    const int a = pb.virtualSlot("run");
    const int b = pb.virtualSlot("size");
    EXPECT_EQ(pb.virtualSlot("run"), a);
    EXPECT_NE(a, b);
}

TEST(Builder, VirtualResolutionWalksSuperclassChain)
{
    ProgramBuilder pb;
    const ClassId base = pb.declareClass("Base", {});
    const ClassId sub = pb.declareClass("Sub", {}, base);
    const MethodId m = pb.declareVirtual(base, "f", 1);
    auto mb = pb.define(m);
    mb.ret(mb.self());
    mb.finish();
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    EXPECT_EQ(prog.resolveVirtual(sub, pb.virtualSlot("f")), m);
}

TEST(Builder, OverrideShadowsBaseMethod)
{
    ProgramBuilder pb;
    const ClassId base = pb.declareClass("Base", {});
    const ClassId sub = pb.declareClass("Sub", {}, base);
    const MethodId bm = pb.declareVirtual(base, "f", 1);
    const MethodId sm = pb.declareVirtual(sub, "f", 1);
    for (MethodId m : {bm, sm}) {
        auto mb = pb.define(m);
        mb.ret(mb.self());
        mb.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    EXPECT_EQ(prog.resolveVirtual(sub, pb.virtualSlot("f")), sm);
    EXPECT_EQ(prog.resolveVirtual(base, pb.virtualSlot("f")), bm);
}

TEST(Builder, UndefinedMethodPanicsAtBuild)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    pb.declareMethod("ghost", 0);
    EXPECT_THROW(pb.build(), std::logic_error);
}

TEST(Builder, UnboundLabelPanicsAtFinish)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    const Label never = main.newLabel();
    main.jump(never);
    main.retVoid();
    EXPECT_THROW(main.finish(), std::logic_error);
}

TEST(Verifier, AcceptsWellFormedProgram)
{
    const Program prog = singleMethodProgram(
        [](ProgramBuilder &, MethodBuilder &mb) {
            mb.print(mb.constant(1));
            mb.retVoid();
        });
    EXPECT_TRUE(verify(prog).empty());
}

TEST(Verifier, RejectsMissingTerminator)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    main.constant(1);
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    prog.methodMutable(mm).code.pop_back();    // drop the retvoid
    EXPECT_FALSE(verify(prog).empty());
}

TEST(Verifier, RejectsOutOfRangeRegister)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    prog.methodMutable(mm).code.insert(
        prog.methodMutable(mm).code.begin(),
        BcInstr{Bc::Mov, 100, 101, 0, 0, {}});
    EXPECT_FALSE(verify(prog).empty());
}

TEST(Verifier, RejectsBadBranchTarget)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    const Reg c = main.constant(0);
    const Label end = main.newLabel();
    main.branchIf(c, end);
    main.bind(end);
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    for (auto &in : prog.methodMutable(mm).code) {
        if (in.op == Bc::Branch)
            in.imm = 999;
    }
    EXPECT_FALSE(verify(prog).empty());
}

TEST(Verifier, RejectsCallArityMismatch)
{
    ProgramBuilder pb;
    const MethodId callee = pb.declareMethod("f", 2);
    auto f = pb.define(callee);
    f.ret(f.arg(0));
    f.finish();
    const MethodId mm = pb.declareMethod("main", 0);
    auto main = pb.define(mm);
    const Reg x = main.constant(1);
    main.callStatic(callee, {x});   // f wants 2 args
    main.retVoid();
    main.finish();
    pb.setMain(mm);
    EXPECT_FALSE(verify(pb.build()).empty());
}

} // namespace
