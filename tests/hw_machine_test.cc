/**
 * @file
 * Functional machine simulator tests: codegen structure, executor
 * equivalence with the interpreter (baseline and atomic compiles,
 * including interrupt- and overflow-induced aborts), monitor
 * semantics across contexts, SLE conflict aborts, and region
 * runtime statistics.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "ir/translate.hh"
#include "programs.hh"
#include "random_program.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;
namespace core = aregion::core;
namespace hw = aregion::hw;

/** Compile to machine code under a config. */
hw::MachineProgram
compileToMachine(const Program &prog, const core::CompilerConfig &config)
{
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    interp.run();   // trapping programs still produce a profile
    core::Compiled compiled =
        core::compileProgram(prog, profile, config);
    vm::Heap layout_heap(prog, 1 << 20);
    return hw::lowerModule(compiled.mod,
                           hw::LayoutInfo::fromHeap(layout_heap));
}

hw::MachineResult
runMachine(const hw::MachineProgram &mp,
           const hw::HwConfig &config = {})
{
    hw::Machine machine(mp, config);
    return machine.run();
}

TEST(Codegen, RegionPrimitivesAreLowered)
{
    const Program prog = addElementProgram(2000, 256);
    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    int begins = 0, ends = 0, aborts = 0;
    for (const auto &[m, f] : mp.funcs) {
        for (const auto &uop : f.code) {
            if (uop.kind == hw::MKind::ABegin) {
                ++begins;
                EXPECT_GE(uop.target, 0);
                EXPECT_LT(uop.target,
                          static_cast<int>(f.code.size()));
            }
            ends += uop.kind == hw::MKind::AEnd;
            aborts += uop.kind == hw::MKind::AAbort;
        }
    }
    EXPECT_GT(begins, 0);
    EXPECT_GT(ends, 0);
    EXPECT_GT(aborts, 0);
}

TEST(Codegen, ChecksBecomeTrapStubs)
{
    const Program prog = matrixProgram();
    const auto mp = compileToMachine(
        prog, core::CompilerConfig::baseline());
    int traps = 0, branches = 0;
    for (const auto &[m, f] : mp.funcs) {
        for (const auto &uop : f.code) {
            traps += uop.kind == hw::MKind::Trap;
            branches += uop.kind == hw::MKind::Br;
        }
    }
    EXPECT_GT(traps, 0);
    EXPECT_GT(branches, 0);
}

TEST(MachineEquiv, BaselineCompileMatchesInterpreter)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        Interpreter check(s.prog);
        ASSERT_TRUE(check.run().completed);
        const auto mp = compileToMachine(
            s.prog, core::CompilerConfig::baseline());
        const auto res = runMachine(mp);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.output, check.output());
    }
}

TEST(MachineEquiv, AtomicCompileMatchesInterpreter)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        Interpreter check(s.prog);
        ASSERT_TRUE(check.run().completed);
        const auto mp = compileToMachine(
            s.prog, core::CompilerConfig::atomic());
        const auto res = runMachine(mp);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.output, check.output());
    }
}

TEST(MachineEquiv, InterruptAbortsPreserveBehaviour)
{
    const Program prog = addElementProgram(2000, 256);
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    hw::HwConfig config;
    config.interruptPeriod = 1000;      // aggressive timer
    const auto res = runMachine(mp, config);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, check.output());

    uint64_t interrupt_aborts = 0;
    for (const auto &[key, stats] : res.regions) {
        interrupt_aborts += stats.abortsByCause[
            static_cast<int>(hw::AbortCause::Interrupt)];
    }
    EXPECT_GT(interrupt_aborts, 0u);
}

TEST(MachineEquiv, OverflowAbortsPreserveBehaviour)
{
    const Program prog = addElementProgram(2000, 256);
    Interpreter check(prog);
    ASSERT_TRUE(check.run().completed);

    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    hw::HwConfig config;
    config.l1Lines = 16;                // tiny speculative capacity
    config.l1Assoc = 2;
    const auto res = runMachine(mp, config);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, check.output());

    uint64_t overflow_aborts = 0;
    for (const auto &[key, stats] : res.regions) {
        overflow_aborts += stats.abortsByCause[
            static_cast<int>(hw::AbortCause::Overflow)];
    }
    EXPECT_GT(overflow_aborts, 0u);
}

TEST(MachineEquiv, RandomProgramsUnderBothCompilers)
{
    for (uint64_t seed = 200; seed < 212; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        RandomProgramGen gen(seed);
        const Program prog = gen.generate();
        Interpreter check(prog);
        ASSERT_TRUE(check.run().completed);

        for (bool atomic : {false, true}) {
            core::CompilerConfig config =
                atomic ? core::CompilerConfig::atomic()
                       : core::CompilerConfig::baseline();
            config.region.loopPathThreshold = 20;
            config.region.targetSize = 40;
            const auto mp = compileToMachine(prog, config);
            const auto res = runMachine(mp);
            ASSERT_TRUE(res.completed);
            EXPECT_EQ(res.output, check.output())
                << (atomic ? "atomic" : "baseline");
        }
    }
}

TEST(MachineThreads, LockedCounterIsExactAcrossContexts)
{
    // Reuse the synchronized-increment shape from the VM tests.
    ProgramBuilder pb;
    const ClassId shared = pb.declareClass("S", {"count", "done"});
    const int f_count = pb.fieldIndex(shared, "count");
    const int f_done = pb.fieldIndex(shared, "done");
    const MethodId worker = pb.declareMethod("worker", 1);
    {
        auto w = pb.define(worker);
        const Reg i = w.constant(0);
        const Reg n = w.constant(300);
        const Reg one = w.constant(1);
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        w.monitorEnter(w.arg(0));
        const Reg c = w.getField(w.arg(0), f_count);
        w.putField(w.arg(0), f_count, w.add(c, one));
        w.monitorExit(w.arg(0));
        w.binopTo(Bc::Add, i, i, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(w.arg(0));
        const Reg d = w.getField(w.arg(0), f_done);
        w.putField(w.arg(0), f_done, w.add(d, one));
        w.monitorExit(w.arg(0));
        w.retVoid();
        w.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg obj = mb.newObject(shared);
    mb.spawn(worker, {obj});
    mb.spawn(worker, {obj});
    const Reg two = mb.constant(2);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    mb.safepoint();
    const Reg d = mb.getField(obj, f_done);
    mb.branchCmp(Bc::CmpGe, d, two, ready);
    mb.jump(wait);
    mb.bind(ready);
    mb.print(mb.getField(obj, f_count));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    for (bool atomic : {false, true}) {
        SCOPED_TRACE(atomic ? "atomic" : "baseline");
        const auto mp = compileToMachine(
            prog, atomic ? core::CompilerConfig::atomic()
                         : core::CompilerConfig::baseline());
        const auto res = runMachine(mp);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.output, std::vector<int64_t>{600});
    }
}

TEST(MachineRegions, StatsTrackEntriesCommitsFootprints)
{
    const Program prog = addElementProgram(3000, 256);
    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    const auto res = runMachine(mp);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.regionEntries, 0u);
    EXPECT_GT(res.regionCommits, 0u);
    EXPECT_EQ(res.regionEntries,
              res.regionCommits + res.regionAborts);
    EXPECT_GT(res.regionUopsRetired, 0u);
    EXPECT_LE(res.regionUopsRetired, res.retiredUops);

    // Footprints stay far below the 512-line L1 (Section 6.2).
    for (const auto &[key, stats] : res.regions) {
        if (stats.footprintLines.count() > 0) {
            EXPECT_LE(stats.footprintLines.max(), 100);
        }
    }
}

TEST(MachineRegions, AtomicRetiresFewerUopsThanBaseline)
{
    const Program prog = addElementProgram(3000, 256);
    const auto base = runMachine(compileToMachine(
        prog, core::CompilerConfig::baseline()));
    const auto atomic = runMachine(compileToMachine(
        prog, core::CompilerConfig::atomic()));
    ASSERT_TRUE(base.completed);
    ASSERT_TRUE(atomic.completed);
    EXPECT_EQ(base.output, atomic.output);
    EXPECT_LT(atomic.retiredUops, base.retiredUops);
}

TEST(MachineSle, ContendedElisionAbortsAndRecovers)
{
    // Two workers hammer a synchronized accumulator; with SLE inside
    // regions, conflicts on the lock word or the data must abort and
    // fall back, but the total stays exact.
    ProgramBuilder pb;
    const ClassId acc = pb.declareClass("Acc", {"total", "done"});
    const int f_total = pb.fieldIndex(acc, "total");
    const int f_done = pb.fieldIndex(acc, "done");
    const MethodId add = pb.declareMethod("add", 2, /*sync=*/true);
    {
        auto f = pb.define(add);
        const Reg t = f.getField(f.self(), f_total);
        f.putField(f.self(), f_total, f.add(t, f.arg(1)));
        f.retVoid();
        f.finish();
    }
    const MethodId worker = pb.declareMethod("worker", 1);
    {
        auto w = pb.define(worker);
        const Reg i = w.constant(0);
        const Reg n = w.constant(250);
        const Reg one = w.constant(1);
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        w.callStaticVoid(add, {w.arg(0), one});
        w.binopTo(Bc::Add, i, i, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(w.arg(0));
        const Reg d = w.getField(w.arg(0), f_done);
        w.putField(w.arg(0), f_done, w.add(d, one));
        w.monitorExit(w.arg(0));
        w.retVoid();
        w.finish();
    }
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg obj = mb.newObject(acc);
    mb.spawn(worker, {obj});
    mb.spawn(worker, {obj});
    const Reg two = mb.constant(2);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    mb.safepoint();
    const Reg d = mb.getField(obj, f_done);
    mb.branchCmp(Bc::CmpGe, d, two, ready);
    mb.jump(wait);
    mb.bind(ready);
    mb.print(mb.getField(obj, f_total));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    const auto mp = compileToMachine(
        prog, core::CompilerConfig::atomic());
    const auto res = runMachine(mp);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.output, std::vector<int64_t>{500});
}

TEST(MachineTraps, TrapsMatchInterpreter)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg n = mb.constant(4);
    const Reg arr = mb.newArray(n);
    const Reg idx = mb.constant(7);
    mb.print(mb.aload(arr, idx));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    Interpreter check(prog);
    const auto ires = check.run();
    ASSERT_TRUE(ires.trap.has_value());

    const auto mp = compileToMachine(
        prog, core::CompilerConfig::baseline());
    const auto res = runMachine(mp);
    ASSERT_TRUE(res.trap.has_value());
    EXPECT_EQ(res.trap->kind, ires.trap->kind);
}

} // namespace
