/**
 * @file
 * Abort-storm resilience tests (runtime/resilience.hh): storm
 * detection, exponential backoff, method blacklisting, and the
 * end-to-end guarantee that a permanently-aborting region still
 * lets the program finish with correct output.
 */

#include <gtest/gtest.h>

#include "programs.hh"
#include "runtime/jit.hh"
#include "runtime/resilience.hh"
#include "support/failpoint.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace rt = aregion::runtime;
namespace core = aregion::core;
namespace hw = aregion::hw;
namespace fp = aregion::failpoint;
namespace keys = aregion::telemetry::keys;

uint64_t
counter(const char *key)
{
    return telemetry::Registry::global().counterValue(key);
}

class ResilienceTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::Registry::global().disarmAll(); }
    void TearDown() override { fp::Registry::global().disarmAll(); }
};

// ---------------------------------------------------------------
// Tracker unit tests (no machine involved).
// ---------------------------------------------------------------

hw::MachineResult
resultWithRegion(int mid, int rid, uint64_t entries, uint64_t aborts)
{
    hw::MachineResult res;
    auto &stats = res.regions[{mid, rid}];
    stats.entries = entries;
    stats.commits = entries - aborts;
    stats.abortsByCause[static_cast<size_t>(hw::AbortCause::Explicit)] =
        aborts;
    return res;
}

TEST_F(ResilienceTest, TrackerDetectsOnlyRealStorms)
{
    rt::ResiliencePolicy policy;
    policy.stormAbortRate = 0.5;
    policy.minEntries = 16;
    rt::ResilienceTracker tracker(policy);

    // Too few entries: not a storm regardless of rate.
    EXPECT_TRUE(tracker
                    .stormingRegions(resultWithRegion(1, 0, 8, 8))
                    .empty());
    // Plenty of entries, low abort rate: healthy.
    EXPECT_TRUE(tracker
                    .stormingRegions(resultWithRegion(1, 0, 100, 10))
                    .empty());
    // High rate with evidence: storming.
    const auto storms =
        tracker.stormingRegions(resultWithRegion(1, 0, 100, 80));
    ASSERT_EQ(storms.size(), 1u);
    EXPECT_EQ(*storms.begin(), (std::pair<int, int>{1, 0}));
}

TEST_F(ResilienceTest, TrackerBacksOffThenBlacklists)
{
    rt::ResiliencePolicy policy;
    policy.maxRecompiles = 2;
    rt::ResilienceTracker tracker(policy);
    const auto res = resultWithRegion(7, 0, 100, 100);

    // Drive rounds with no fresh overrides (an unfixable storm):
    // attempts burn through the budget under exponential cooldowns,
    // then the method lands on the blacklist.
    bool blacklisted = false;
    int rounds = 0;
    for (; rounds < tracker.roundCap(); ++rounds) {
        const auto storms = tracker.stormingRegions(res);
        if (storms.empty())
            break;
        const auto d = tracker.decide(storms, false);
        if (d.blacklistGrew) {
            blacklisted = true;
            break;
        }
        EXPECT_FALSE(d.recompile)
            << "no overrides -> no useful recompile";
    }
    EXPECT_TRUE(blacklisted);
    EXPECT_EQ(tracker.blacklisted().count(7), 1u);
    EXPECT_GT(tracker.backoffs(), 0u);
    // Cooldowns 2 and 4 plus the action rounds: blacklist lands
    // well within the cap but not immediately.
    EXPECT_GE(rounds, policy.maxRecompiles);
    EXPECT_LT(rounds, tracker.roundCap());
    // Once blacklisted the region no longer reads as storming.
    EXPECT_TRUE(tracker.stormingRegions(res).empty());
}

TEST_F(ResilienceTest, TrackerSpendsRecompilesWhenOverridesExist)
{
    rt::ResiliencePolicy policy;
    policy.maxRecompiles = 3;
    rt::ResilienceTracker tracker(policy);
    const auto res = resultWithRegion(3, 1, 64, 60);

    const auto d =
        tracker.decide(tracker.stormingRegions(res), true);
    EXPECT_TRUE(d.recompile);
    EXPECT_FALSE(d.blacklistGrew);
    EXPECT_TRUE(tracker.blacklisted().empty());

    // Immediately after an attempt the region is cooling down: the
    // next round must be a backoff, not another recompile.
    const uint64_t backoffs_before = tracker.backoffs();
    const auto d2 =
        tracker.decide(tracker.stormingRegions(res), true);
    EXPECT_FALSE(d2.recompile);
    EXPECT_GT(tracker.backoffs(), backoffs_before);
}

// ---------------------------------------------------------------
// End-to-end pipeline tests.
// ---------------------------------------------------------------

TEST_F(ResilienceTest, QuietRunMatchesLegacyPipeline)
{
    const Program prog = addElementProgram(1500, 256);
    rt::ExperimentConfig plain;
    plain.compiler = core::CompilerConfig::atomic();
    const auto base = rt::runExperiment(prog, prog, plain);
    ASSERT_TRUE(base.completed);

    rt::ExperimentConfig guarded = plain;
    guarded.resilience.enabled = true;
    const auto with = rt::runExperiment(prog, prog, guarded);
    ASSERT_TRUE(with.completed);
    // No storm: no recompilation, identical execution and output.
    EXPECT_FALSE(with.recompiled);
    EXPECT_EQ(with.outputChecksum, base.outputChecksum);
    EXPECT_EQ(with.cycles, base.cycles);
    EXPECT_EQ(with.regionEntries, base.regionEntries);
}

TEST_F(ResilienceTest, PermanentStormIsBlacklistedAndCompletes)
{
    // A clean reference run for the expected output.
    const Program prog = addElementProgram(2500, 256);
    rt::ExperimentConfig plain;
    plain.compiler = core::CompilerConfig::atomic();
    const auto clean = rt::runExperiment(prog, prog, plain);
    ASSERT_TRUE(clean.completed);
    ASSERT_GT(clean.regionEntries, 0u);

    // Inject an unconditional explicit abort at every region entry
    // with an assert id the compiler never emitted: the adaptive
    // controller has no site to override, so only blacklisting can
    // end the storm.
    auto &fps = fp::Registry::global();
    fps.setSeed(1234);
    ASSERT_EQ(fps.configure("machine.assert:p1=977"), 1);

    rt::ExperimentConfig storm = plain;
    storm.resilience.enabled = true;
    storm.resilience.maxRecompiles = 2;
    storm.resilience.minEntries = 8;
    storm.resilience.livelockBound = 16;

    const uint64_t storms0 = counter(keys::kResilienceStorms);
    const uint64_t black0 = counter(keys::kResilienceBlacklisted);
    const uint64_t recomp0 = counter(keys::kResilienceRecompiles);
    const uint64_t backoff0 = counter(keys::kResilienceBackoffs);
    const uint64_t trips0 = counter(keys::kMachineLivelockTrips);

    const auto metrics = rt::runExperiment(prog, prog, storm);
    fps.disarmAll();

    // Forward progress with correct output despite a region that
    // can never commit.
    ASSERT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.outputChecksum, clean.outputChecksum);
    EXPECT_TRUE(metrics.recompiled);

    // The storm was observed, backed off on, and resolved by
    // blacklisting at least one method.
    EXPECT_GT(counter(keys::kResilienceStorms), storms0);
    EXPECT_GT(counter(keys::kResilienceBackoffs), backoff0);
    EXPECT_GE(counter(keys::kResilienceBlacklisted), black0 + 1);
    EXPECT_GE(counter(keys::kResilienceRecompiles), recomp0 + 1);

    // The livelock guard (armed via livelockBound) tripped during
    // the storming runs, bounding wasted speculative work.
    EXPECT_GT(counter(keys::kMachineLivelockTrips), trips0);

    // The final, measured run no longer speculates in the
    // blacklisted method, so it suffers no injected aborts there.
    EXPECT_LT(metrics.regionEntries, clean.regionEntries);
}

TEST_F(ResilienceTest, DriftStormIsCuredByOverridesNotBlacklist)
{
    // Profile says a branch is cold; the measured program takes it
    // ~10% of the time. With a storm threshold below that abort
    // rate, resilience must repair the region through the adaptive
    // controller's warm overrides — not condemn the method.
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(8000);
    const Reg one = mb.constant(1);
    const Reg k = mb.constant(10);      // 10% "cold" path
    const Reg sum = mb.constant(0);
    const Label loop = mb.newLabel();
    const Label rare = mb.newLabel();
    const Label next = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    const Reg rem = mb.binop(Bc::Rem, i, k);
    const Reg zero = mb.constant(0);
    const Reg hit = mb.cmp(Bc::CmpEq, rem, zero);
    mb.branchIf(hit, rare);
    mb.binopTo(Bc::Add, sum, sum, i);
    mb.jump(next);
    mb.bind(rare);
    mb.binopTo(Bc::Add, sum, sum, one);
    mb.jump(next);
    mb.bind(next);
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program measure = pb.build();
    verifyOrDie(measure);

    ProgramBuilder pb2;
    const MethodId mm2 = pb2.declareMethod("main", 0);
    auto m2 = pb2.define(mm2);
    {
        const Reg i2 = m2.constant(0);
        const Reg n2 = m2.constant(8000);
        const Reg one2 = m2.constant(1);
        const Reg k2 = m2.constant(400);    // cold at profile time
        const Reg sum2 = m2.constant(0);
        const Label loop2 = m2.newLabel();
        const Label rare2 = m2.newLabel();
        const Label next2 = m2.newLabel();
        const Label done2 = m2.newLabel();
        m2.bind(loop2);
        m2.branchCmp(Bc::CmpGe, i2, n2, done2);
        const Reg rem2 = m2.binop(Bc::Rem, i2, k2);
        const Reg zero2 = m2.constant(0);
        const Reg hit2 = m2.cmp(Bc::CmpEq, rem2, zero2);
        m2.branchIf(hit2, rare2);
        m2.binopTo(Bc::Add, sum2, sum2, i2);
        m2.jump(next2);
        m2.bind(rare2);
        m2.binopTo(Bc::Add, sum2, sum2, one2);
        m2.jump(next2);
        m2.bind(next2);
        m2.binopTo(Bc::Add, i2, i2, one2);
        m2.safepoint();
        m2.jump(loop2);
        m2.bind(done2);
        m2.print(sum2);
        m2.retVoid();
        m2.finish();
    }
    pb2.setMain(mm2);
    const Program profile_prog = pb2.build();
    verifyOrDie(profile_prog);

    rt::ExperimentConfig plain;
    plain.compiler = core::CompilerConfig::atomic();
    const auto before =
        rt::runExperiment(profile_prog, measure, plain);
    ASSERT_TRUE(before.completed);
    ASSERT_GT(before.regionAborts, 100u)
        << "premise: drift causes an abort storm";

    rt::ExperimentConfig resil = plain;
    resil.resilience.enabled = true;
    resil.resilience.stormAbortRate = 0.05;
    resil.resilience.minEntries = 16;

    const uint64_t black0 = counter(keys::kResilienceBlacklisted);
    const auto after =
        rt::runExperiment(profile_prog, measure, resil);
    ASSERT_TRUE(after.completed);
    EXPECT_TRUE(after.recompiled);
    EXPECT_EQ(after.outputChecksum, before.outputChecksum);
    // Cured by overrides: aborts collapse, speculation survives.
    EXPECT_LT(after.regionAborts, before.regionAborts / 4);
    EXPECT_GT(after.regionEntries, 0u);
    EXPECT_EQ(counter(keys::kResilienceBlacklisted), black0);
}

TEST_F(ResilienceTest, BlacklistedMethodSkipsRegionFormation)
{
    const Program prog = addElementProgram(800, 128);
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        ASSERT_TRUE(interp.run().completed);
    }
    core::CompilerConfig cfg = core::CompilerConfig::atomic();
    const auto normal = core::compileProgram(prog, profile, cfg);
    ASSERT_GT(normal.stats.regions.regionsFormed, 0);
    ASSERT_EQ(normal.stats.funcsBlacklisted, 0);

    // Blacklist every method: no regions may form anywhere.
    for (int m = 0; m < prog.numMethods(); ++m)
        cfg.region.blacklistMethods.insert(m);
    const auto gated = core::compileProgram(prog, profile, cfg);
    EXPECT_EQ(gated.stats.regions.regionsFormed, 0);
    EXPECT_GT(gated.stats.funcsBlacklisted, 0);
}

} // namespace
