/**
 * @file
 * Wraparound/tombstone stress tests for the machine's epoch-tagged
 * speculative-state containers (hw/spec_state.hh) and for the timing
 * model's 32-bit ring offsets near the rebaseRings boundary
 * (hw/timing.cc).
 *
 * A full machine run rarely reaches these corners: the store buffer
 * seldom grows mid-epoch, probe chains seldom wrap the table mask,
 * and a natural ring rebase needs 2^32 simulated cycles. Here the
 * containers are driven directly, and the rebase path is forced with
 * the TimingConfig::startCycle knob — the model is shift-invariant,
 * so a run started just below the 32-bit boundary must reproduce the
 * zero-start run exactly, offset by the start cycle.
 */

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "hw/spec_state.hh"
#include "hw/timing.hh"

using namespace aregion::hw;

namespace {

/** Addresses whose home slot is `slot` in a table of size 2^bits. */
std::vector<uint64_t>
addrsForSlot(uint64_t slot, int bits, size_t count)
{
    const uint64_t mask = (1ull << bits) - 1;
    std::vector<uint64_t> out;
    for (uint64_t a = 1; out.size() < count; ++a) {
        if ((specHashMix(a) & mask) == slot)
            out.push_back(a);
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------
// StoreBuffer
// ---------------------------------------------------------------

TEST(StoreBuffer, ProbeWrapsAroundMaskBoundary)
{
    StoreBuffer sb;
    sb.init(8);
    sb.beginEpoch();

    // Four addresses all hashing to the last slot: the probe chain
    // must wrap 7 -> 0 -> 1 -> 2 and stay findable.
    const std::vector<uint64_t> addrs = addrsForSlot(7, 3, 4);
    for (size_t i = 0; i < addrs.size(); ++i)
        sb.put(addrs[i], static_cast<int64_t>(100 + i));

    for (size_t i = 0; i < addrs.size(); ++i) {
        const int64_t *v = sb.lookup(addrs[i]);
        ASSERT_NE(v, nullptr) << "addr " << addrs[i];
        EXPECT_EQ(*v, static_cast<int64_t>(100 + i));
    }

    // Overwrite through the wrapped chain.
    sb.put(addrs.back(), -7);
    EXPECT_EQ(*sb.lookup(addrs.back()), -7);
    EXPECT_EQ(*sb.lookup(addrs.front()), 100);
}

TEST(StoreBuffer, GrowMidEpochPreservesLiveEntries)
{
    StoreBuffer sb;
    sb.init(8);
    sb.beginEpoch();

    // 200 distinct addresses force several doublings (grow fires
    // above 3/4 load). Every entry must survive each rehash.
    for (uint64_t a = 1; a <= 200; ++a)
        sb.put(a * 0x10001ull, static_cast<int64_t>(a));

    EXPECT_GE(sb.slots.size(), 256u);
    EXPECT_EQ(sb.live.size(), 200u);
    for (uint64_t a = 1; a <= 200; ++a) {
        const int64_t *v = sb.lookup(a * 0x10001ull);
        ASSERT_NE(v, nullptr) << "addr " << a * 0x10001ull;
        EXPECT_EQ(*v, static_cast<int64_t>(a));
    }
    EXPECT_EQ(sb.lookup(0xdeadull), nullptr);
}

TEST(StoreBuffer, StaleEpochSlotsActAsTombstones)
{
    StoreBuffer sb;
    sb.init(8);
    sb.beginEpoch();

    const std::vector<uint64_t> addrs = addrsForSlot(7, 3, 3);
    for (uint64_t a : addrs)
        sb.put(a, 1);

    // New epoch: the old chain is dead, and a fresh entry claiming
    // the home slot must not resurrect the stale tail behind it.
    sb.beginEpoch();
    sb.put(addrs[0], 2);
    EXPECT_EQ(*sb.lookup(addrs[0]), 2);
    EXPECT_EQ(sb.lookup(addrs[1]), nullptr);
    EXPECT_EQ(sb.lookup(addrs[2]), nullptr);

    // The stale slots are reusable storage for this epoch.
    sb.put(addrs[1], 3);
    EXPECT_EQ(*sb.lookup(addrs[1]), 3);
    EXPECT_EQ(sb.lookup(addrs[2]), nullptr);
}

TEST(StoreBuffer, RandomizedModelCheckAcrossEpochs)
{
    StoreBuffer sb;
    sb.init(8);

    std::mt19937_64 rng(0xA11CE5ull);
    for (int epoch = 0; epoch < 50; ++epoch) {
        sb.beginEpoch();
        std::unordered_map<uint64_t, int64_t> model;
        const int writes = 1 + static_cast<int>(rng() % 120);
        for (int i = 0; i < writes; ++i) {
            // Small address space -> heavy collisions and frequent
            // same-address overwrites.
            const uint64_t addr = rng() % 64;
            const int64_t value = static_cast<int64_t>(rng());
            sb.put(addr, value);
            model[addr] = value;
        }
        for (uint64_t addr = 0; addr < 64; ++addr) {
            const int64_t *v = sb.lookup(addr);
            auto it = model.find(addr);
            if (it == model.end()) {
                EXPECT_EQ(v, nullptr) << "epoch " << epoch
                                      << " addr " << addr;
            } else {
                ASSERT_NE(v, nullptr) << "epoch " << epoch
                                      << " addr " << addr;
                EXPECT_EQ(*v, it->second);
            }
        }
        // `live` holds exactly the distinct addresses written.
        EXPECT_EQ(sb.live.size(), model.size());
        std::unordered_set<uint64_t> live_addrs;
        for (uint32_t idx : sb.live)
            live_addrs.insert(sb.slots[idx].addr);
        EXPECT_EQ(live_addrs.size(), model.size());
    }
}

TEST(StoreBuffer, GrowTriggersExactlyAtThreeQuarterLoad)
{
    StoreBuffer sb;
    sb.init(8);
    sb.beginEpoch();

    // The resize boundary is live*4 > slots*3: an 8-slot table
    // tolerates exactly 6 live entries, the 7th doubles it; the
    // 16-slot table tolerates 12, the 13th doubles again. Pinning
    // the exact crossing catches off-by-ones that a bulk fill
    // (GrowMidEpochPreservesLiveEntries) glides over.
    for (uint64_t a = 1; a <= 6; ++a) {
        sb.put(a * 0x9e37ull, static_cast<int64_t>(a));
        EXPECT_EQ(sb.slots.size(), 8u) << "after entry " << a;
    }
    sb.put(7 * 0x9e37ull, 7);
    EXPECT_EQ(sb.slots.size(), 16u);
    EXPECT_EQ(sb.mask, 15u);
    EXPECT_EQ(sb.live.size(), 7u);

    for (uint64_t a = 8; a <= 12; ++a) {
        sb.put(a * 0x9e37ull, static_cast<int64_t>(a));
        EXPECT_EQ(sb.slots.size(), 16u) << "after entry " << a;
    }
    sb.put(13 * 0x9e37ull, 13);
    EXPECT_EQ(sb.slots.size(), 32u);

    // Overwrites at the boundary are not insertions and must never
    // advance the load factor.
    const size_t live_before = sb.live.size();
    sb.put(1 * 0x9e37ull, -1);
    EXPECT_EQ(sb.live.size(), live_before);
    EXPECT_EQ(sb.slots.size(), 32u);

    for (uint64_t a = 1; a <= 13; ++a) {
        const int64_t *v = sb.lookup(a * 0x9e37ull);
        ASSERT_NE(v, nullptr) << "addr " << a;
        EXPECT_EQ(*v, a == 1 ? -1 : static_cast<int64_t>(a));
    }
}

TEST(StoreBuffer, WrappedChainSurvivesResizeBoundary)
{
    StoreBuffer sb;
    sb.init(8);
    sb.beginEpoch();

    // Seven addresses all homed at the last slot: the probe chain
    // wraps 7 -> 0 -> ... and the 7th insertion crosses the resize
    // boundary mid-chain, so grow() must rehash a fully wrapped
    // chain into the doubled table without losing or aliasing an
    // entry.
    const std::vector<uint64_t> addrs = addrsForSlot(7, 3, 7);
    for (size_t i = 0; i < addrs.size(); ++i)
        sb.put(addrs[i], static_cast<int64_t>(1000 + i));
    EXPECT_EQ(sb.slots.size(), 16u);
    EXPECT_EQ(sb.live.size(), 7u);

    for (size_t i = 0; i < addrs.size(); ++i) {
        const int64_t *v = sb.lookup(addrs[i]);
        ASSERT_NE(v, nullptr) << "addr " << addrs[i];
        EXPECT_EQ(*v, static_cast<int64_t>(1000 + i));
    }
    EXPECT_EQ(sb.lookup(0xbeefcafeull), nullptr);

    // Overwrite through the rehashed chain, then churn epochs: the
    // grown table's stale slots must tombstone exactly like the
    // original's.
    sb.put(addrs[3], -3);
    EXPECT_EQ(*sb.lookup(addrs[3]), -3);
    sb.beginEpoch();
    for (const uint64_t a : addrs)
        EXPECT_EQ(sb.lookup(a), nullptr) << "addr " << a;
    sb.put(addrs[5], 5);
    EXPECT_EQ(*sb.lookup(addrs[5]), 5);
    EXPECT_EQ(sb.lookup(addrs[6]), nullptr);
}

// ---------------------------------------------------------------
// LineSet
// ---------------------------------------------------------------

TEST(LineSet, WrappedChainAtFixedCapacity)
{
    // Machine geometry: l1Lines=16 -> capacity next_pow2(32) = 32,
    // and the overflow abort bounds the set to 16 members (half
    // load). Fill to that bound with lines homing to the last slot.
    LineSet ls;
    ls.init(32);
    ls.beginEpoch();

    const std::vector<uint64_t> lines = addrsForSlot(31, 5, 16);
    for (uint64_t l : lines)
        ls.insert(l);
    EXPECT_EQ(ls.size(), 16u);
    for (uint64_t l : lines)
        EXPECT_TRUE(ls.contains(l)) << "line " << l;
    EXPECT_FALSE(ls.contains(lines.back() + 1));

    // Duplicate inserts stay idempotent even through the wrap.
    for (uint64_t l : lines)
        ls.insert(l);
    EXPECT_EQ(ls.size(), 16u);
}

TEST(LineSet, EpochResetAndZeroKey)
{
    LineSet ls;
    ls.init(32);
    ls.beginEpoch();

    // Line 0 aliases the zero-initialized key array; only the epoch
    // tag distinguishes "present" from "never written".
    EXPECT_FALSE(ls.contains(0));
    ls.insert(0);
    EXPECT_TRUE(ls.contains(0));
    ls.insert(5);
    EXPECT_EQ(ls.size(), 2u);

    ls.beginEpoch();
    EXPECT_FALSE(ls.contains(0));
    EXPECT_FALSE(ls.contains(5));
    EXPECT_EQ(ls.size(), 0u);
    ls.insert(5);
    EXPECT_TRUE(ls.contains(5));
    EXPECT_EQ(ls.size(), 1u);
}

TEST(LineSet, RandomizedModelCheckAcrossEpochs)
{
    LineSet ls;
    ls.init(32);
    std::mt19937_64 rng(0xBEEFull);
    for (int epoch = 0; epoch < 50; ++epoch) {
        ls.beginEpoch();
        std::unordered_set<uint64_t> model;
        // At most 16 distinct lines: the machine's overflow abort
        // keeps the set at half load, mirrored here.
        while (model.size() < 16) {
            const uint64_t line = rng() % 24;
            ls.insert(line);
            model.insert(line);
        }
        for (uint64_t line = 0; line < 24; ++line)
            EXPECT_EQ(ls.contains(line), model.count(line) > 0)
                << "epoch " << epoch << " line " << line;
        EXPECT_EQ(ls.size(), model.size());
    }
}

TEST(LineSet, OverflowBoundaryWithCollisionHeavyKeys)
{
    LineSet ls;
    ls.init(32);

    // The machine's overflow abort bounds each set to l1Lines
    // distinct lines in a table of 2*l1Lines — half load is the
    // designed-for worst case, so drive it with keys that all home
    // into two adjacent slots: a single 16-deep wrapped probe chain
    // at exactly the occupancy the machine permits.
    const std::vector<uint64_t> a = addrsForSlot(31, 5, 8);
    const std::vector<uint64_t> b = addrsForSlot(0, 5, 8);
    for (int epoch = 0; epoch < 8; ++epoch) {
        ls.beginEpoch();
        for (size_t i = 0; i < 8; ++i) {
            ls.insert(a[i]);
            ls.insert(b[i]);
        }
        EXPECT_EQ(ls.size(), 16u);
        for (const uint64_t line : a)
            EXPECT_TRUE(ls.contains(line)) << "line " << line;
        for (const uint64_t line : b)
            EXPECT_TRUE(ls.contains(line)) << "line " << line;
        // Re-inserting the whole chain at the bound is idempotent:
        // `items` must not pick up duplicates for the commit walk.
        for (const uint64_t line : a)
            ls.insert(line);
        EXPECT_EQ(ls.size(), 16u);
        // A miss probing through the full wrapped chain terminates
        // at the first stale/empty slot.
        EXPECT_FALSE(ls.contains(0x5eedull));
    }
}

TEST(LineSet, ConcurrentEpochChurnAcrossContexts)
{
    // One LineSet per hardware context, epochs advancing at
    // different rates — the concurrent-region picture during a
    // contention run. Each set's membership must be exactly its own
    // current epoch's inserts, no matter how the neighbours churn
    // (they share nothing, but a stray static or epoch-tag aliasing
    // bug would surface exactly here).
    constexpr int kCtxs = 4;
    LineSet sets[kCtxs];
    std::unordered_set<uint64_t> models[kCtxs];
    for (int c = 0; c < kCtxs; ++c) {
        sets[c].init(32);
        sets[c].beginEpoch();
    }

    std::mt19937_64 rng(0xC0FFEEull);
    for (int step = 0; step < 4000; ++step) {
        const int c = static_cast<int>(rng() % kCtxs);
        // Context c re-enters a region (fresh epoch) at a rate that
        // differs per context, so epoch counters drift far apart.
        if (rng() % (4u + static_cast<unsigned>(c) * 7u) == 0) {
            sets[c].beginEpoch();
            models[c].clear();
        }
        if (models[c].size() < 16) {
            const uint64_t line = rng() % 24;
            sets[c].insert(line);
            models[c].insert(line);
        }
        // Spot-check the context touched this step plus one other.
        for (const int v : {c, (c + 1) % kCtxs}) {
            for (uint64_t line = 0; line < 24; ++line)
                EXPECT_EQ(sets[v].contains(line),
                          models[v].count(line) > 0)
                    << "step " << step << " ctx " << v << " line "
                    << line;
            EXPECT_EQ(sets[v].size(), models[v].size());
        }
    }
}

// ---------------------------------------------------------------
// SetOccupancy
// ---------------------------------------------------------------

TEST(SetOccupancy, LazyPerSetEpochReset)
{
    SetOccupancy occ;
    occ.init(4);
    occ.beginEpoch();
    EXPECT_EQ(occ.increment(2), 1);
    EXPECT_EQ(occ.increment(2), 2);
    EXPECT_EQ(occ.increment(0), 1);

    // Set 2's stale count must not leak into the new epoch, even
    // though beginEpoch never touches the per-set arrays.
    occ.beginEpoch();
    EXPECT_EQ(occ.increment(2), 1);
    EXPECT_EQ(occ.increment(3), 1);
    EXPECT_EQ(occ.increment(2), 2);
}

// ---------------------------------------------------------------
// Timing rings near the rebase boundary
// ---------------------------------------------------------------

namespace {

/** One scripted timing-model event. */
struct Ev
{
    enum Kind { Uop, Abort, Marker } kind = Uop;
    TraceUop u;
    AbortEvent abort{AbortCause::Explicit, 0, 0};
    int64_t marker = 0;
};

/**
 * Deterministic synthetic trace exercising every model path: all
 * latency classes, dependences across the HIST window, branch and
 * indirect mispredicts, serializing ops, region begin/end/abort,
 * and periodic markers.
 */
std::vector<Ev>
makeScript(size_t n)
{
    std::vector<Ev> script;
    script.reserve(n + n / 500);
    std::mt19937_64 rng(0x5EEDull);
    uint64_t seq = 0;
    bool open = false;
    for (size_t i = 0; i < n; ++i) {
        Ev ev;
        TraceUop &u = ev.u;
        u.seq = ++seq;
        const uint64_t r = rng();
        switch (r % 16) {
          case 6:
            u.lat = LatClass::Mul;
            break;
          case 7:
            u.lat = LatClass::Div;
            break;
          case 8:
          case 9:
          case 10:
            u.lat = LatClass::Load;
            u.isLoad = true;
            break;
          case 11:
          case 12:
            u.lat = LatClass::Store;
            u.isStore = true;
            break;
          case 13:
          case 14:
            u.lat = LatClass::Branch;
            u.isBranch = true;
            u.taken = (r >> 20) & 1;
            break;
          case 15:
            u.lat = LatClass::Serial;
            u.serializing = true;
            u.isStore = true;
            break;
          default:
            u.lat = LatClass::Int;
            break;
        }
        if (u.isLoad || u.isStore) {
            // Hot set plus a streaming tail for L1/L2 misses.
            u.memAddr = (r >> 8) % 3 == 0
                ? (r >> 16) % 64
                : 4096 + (static_cast<uint64_t>(i) * 8) % 300000;
        }
        u.pc = static_cast<uint32_t>((r >> 32) % 509);
        if (!u.isBranch && r % 97 == 0) {
            u.indirect = true;
            u.targetPc = static_cast<uint32_t>((r >> 40) % 31);
        }
        u.numSrcs = static_cast<int8_t>(r % 3);
        for (int s = 0; s < u.numSrcs; ++s) {
            const uint64_t back = 1 + (rng() % 9000);  // spans HIST
            u.srcSeq[s] = seq > back ? seq - back : 0;
        }
        if (!open && r % 61 == 0) {
            u.region = RegionEvent::Begin;
            u.regionId = 1;
            open = true;
        } else if (open && r % 41 == 0) {
            u.region = RegionEvent::End;
            u.regionId = 1;
            open = false;
        }
        script.push_back(ev);
        if (open && r % 577 == 0) {
            Ev ab;
            ab.kind = Ev::Abort;
            ab.abort = {AbortCause::Conflict, 5, 0};
            script.push_back(ab);
            open = false;
        }
        if (i % 1000 == 999) {
            Ev mk;
            mk.kind = Ev::Marker;
            mk.marker = static_cast<int64_t>(i);
            script.push_back(mk);
        }
    }
    return script;
}

struct RunResult
{
    uint64_t cycles = 0;
    uint64_t rebases = 0;
    std::vector<uint64_t> counters;
    std::vector<std::pair<int64_t, uint64_t>> markers;
};

RunResult
runScript(const std::vector<Ev> &script, uint64_t start_cycle)
{
    TimingConfig cfg = TimingConfig::singleInflight();
    cfg.startCycle = start_cycle;
    TimingModel model(cfg);
    for (const Ev &ev : script) {
        switch (ev.kind) {
          case Ev::Uop:
            model.uop(ev.u);
            break;
          case Ev::Abort:
            model.abortFlush(ev.abort);
            break;
          case Ev::Marker:
            model.marker(ev.marker);
            break;
        }
    }
    RunResult res;
    res.cycles = model.cycles();
    res.rebases = model.ringRebases;
    res.counters = {model.uopCount,         model.branches,
                    model.mispredicts,      model.indirects,
                    model.indirectMispredicts,
                    model.serializations,   model.regionBegins,
                    model.abortFlushes,     model.stallRob,
                    model.stallSched,       model.stallFetch,
                    model.stallSerial,      model.stallRegion,
                    model.l1Misses(),       model.l2Misses()};
    res.markers = model.markerCycles;
    return res;
}

void
expectShifted(const RunResult &base, const RunResult &shifted,
              uint64_t shift)
{
    EXPECT_EQ(shifted.cycles - base.cycles, shift);
    EXPECT_EQ(shifted.counters, base.counters);
    ASSERT_EQ(shifted.markers.size(), base.markers.size());
    for (size_t i = 0; i < base.markers.size(); ++i) {
        EXPECT_EQ(shifted.markers[i].first, base.markers[i].first);
        EXPECT_EQ(shifted.markers[i].second - base.markers[i].second,
                  shift)
            << "marker " << base.markers[i].first;
    }
}

} // namespace

TEST(TimingRings, RebaseWithLiveEntriesIsShiftExact)
{
    // Start just below the 32-bit offset boundary: the rings fill
    // with offsets near 0xffffffff, then the first completion past
    // the boundary rebases while HIST live entries are in flight.
    // Shift-invariance of the model makes the zero-start run the
    // oracle: every cycle observable must differ by exactly the
    // start cycle, every count must be identical.
    const std::vector<Ev> script = makeScript(50000);
    const RunResult base = runScript(script, 0);
    ASSERT_EQ(base.rebases, 0u);

    const uint64_t shift = (1ull << 32) - 1000;
    const RunResult near = runScript(script, shift);
    EXPECT_GE(near.rebases, 1u);
    expectShifted(base, near, shift);
}

TEST(TimingRings, ImmediateRebaseFarPastBoundaryIsShiftExact)
{
    // Start two full wraps past the boundary: the very first uop's
    // completion triggers a rebase against all-stale (zero) ring
    // slots, exercising the clamp path.
    const std::vector<Ev> script = makeScript(20000);
    const RunResult base = runScript(script, 0);

    const uint64_t shift = 1ull << 33;
    const RunResult far = runScript(script, shift);
    EXPECT_GE(far.rebases, 1u);
    expectShifted(base, far, shift);
}
