/**
 * @file
 * Optimization pass tests: targeted transformations plus
 * executor-equivalence properties over sample and random programs.
 *
 * The scalar passes (sccp, gvn, dce) run on SSA form; targeted tests
 * wrap them in buildSSA/destroySSA so the counted shapes are what the
 * rest of the compiler sees (conventional form).
 */

#include <gtest/gtest.h>

#include "ir/evaluator.hh"
#include "ir/ssa.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "opt/pass.hh"
#include "programs.hh"
#include "random_program.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;
namespace opt = aregion::opt;

int
countOps(const ir::Function &f, ir::Op op)
{
    int n = 0;
    for (int b : f.reversePostOrder()) {
        for (const auto &in : f.block(b).instrs)
            n += in.op == op;
    }
    return n;
}

/** Run `passes` on SSA form, lowering back out afterwards. */
void
inSsa(ir::Function &f,
      const std::function<void(ir::Function &)> &passes)
{
    ir::buildSSA(f);
    passes(f);
    ir::destroySSA(f);
}

/** Run `transform` on the module and check output equivalence. */
void
checkEquivalence(const Program &prog,
                 const std::function<void(ir::Module &)> &transform)
{
    Interpreter interp(prog);
    const auto ires = interp.run();
    ASSERT_TRUE(ires.completed);

    ir::Module mod = ir::translateProgram(prog);
    transform(mod);
    for (const auto &[m, f] : mod.funcs)
        ir::verifyOrDie(f);
    ir::Evaluator eval(mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_EQ(eval.output(), interp.output());
}

TEST(OptSimplifyCfg, PreservesBehaviourOnAllSamples)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        checkEquivalence(s.prog, [](ir::Module &mod) {
            for (auto &[m, f] : mod.funcs)
                opt::simplifyCfg(f);
        });
    }
}

TEST(OptSimplifyCfg, PreservesBehaviourOnAllSamplesInSsaForm)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        checkEquivalence(s.prog, [](ir::Module &mod) {
            for (auto &[m, f] : mod.funcs)
                inSsa(f, [](ir::Function &fn) {
                    opt::simplifyCfg(fn);
                });
        });
    }
}

TEST(OptSimplifyCfg, MergesStraightLineBlocks)
{
    const Program prog = arithLoopProgram();
    ir::Function f = ir::translate(prog, prog.mainMethod);
    const int before = f.numBlocks();
    opt::simplifyCfg(f);
    EXPECT_LE(f.numBlocks(), before);
    ir::verifyOrDie(f);
}

/**
 * Regression (minimized from a random-program pipeline failure):
 * jump-threading both arms of a branch through trivial jump blocks
 * into the same phi-carrying join used to give one predecessor two
 * phi slots holding different values — an edge distinction the
 * representation cannot express — and the same-target branch
 * collapse then dropped one slot arbitrarily, flipping the merged
 * value. Threading must refuse the second arm instead.
 */
TEST(OptSimplifyCfg, ThreadingNeverLeavesAmbiguousPhiEdges)
{
    // Host program: the Evaluator sizes its heap from a vm::Program;
    // the hand-built IR below replaces the trivial bytecode main.
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();

    //   b0: cond=1; a=10; b=20; branch cond -> t1, t2
    //   t1: jump join          t2: jump join
    //   join: m = phi [a, t1], [b, t2]; print m; ret
    auto diamond = [&]() {
        ir::Function f;
        f.name = "main";
        f.methodId = prog.mainMethod;
        f.ssaForm = true;
        ir::Block &b0 = f.newBlock();
        ir::Block &t1 = f.newBlock();
        ir::Block &t2 = f.newBlock();
        ir::Block &join = f.newBlock();
        f.entry = b0.id;
        const ir::Vreg cond = f.newVreg();
        const ir::Vreg a = f.newVreg();
        const ir::Vreg b = f.newVreg();
        const ir::Vreg m = f.newVreg();
        auto emit = [](ir::Block &blk, ir::Op op, ir::Vreg dst,
                       std::vector<ir::Vreg> srcs,
                       int64_t imm = 0) -> ir::Instr & {
            ir::Instr in;
            in.op = op;
            in.dst = dst;
            in.srcs = std::move(srcs);
            in.imm = imm;
            blk.instrs.push_back(std::move(in));
            return blk.instrs.back();
        };
        emit(b0, ir::Op::Const, cond, {}, 1);
        emit(b0, ir::Op::Const, a, {}, 10);
        emit(b0, ir::Op::Const, b, {}, 20);
        emit(b0, ir::Op::Branch, ir::NO_VREG, {cond});
        b0.succs = {t1.id, t2.id};
        emit(t1, ir::Op::Jump, ir::NO_VREG, {});
        t1.succs = {join.id};
        emit(t2, ir::Op::Jump, ir::NO_VREG, {});
        t2.succs = {join.id};
        ir::Instr &phi = emit(join, ir::Op::Phi, m, {a, b});
        phi.phiBlocks = {t1.id, t2.id};
        emit(join, ir::Op::Print, ir::NO_VREG, {m});
        emit(join, ir::Op::Ret, ir::NO_VREG, {});
        ir::verifyOrDie(f);
        return f;
    };

    ir::Module ref;
    ref.prog = &prog;
    ref.funcs.emplace(prog.mainMethod, diamond());
    ir::destroySSA(ref.funcs.at(prog.mainMethod));
    ir::Evaluator ref_eval(ref);
    ASSERT_TRUE(ref_eval.run().completed);
    ASSERT_EQ(ref_eval.output(), (std::vector<int64_t>{10}));

    ir::Module mod;
    mod.prog = &prog;
    mod.funcs.emplace(prog.mainMethod, diamond());
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    opt::simplifyCfg(f);
    ir::verifyOrDie(f);
    // No predecessor may hold two phi slots with different values.
    for (int bid : f.reversePostOrder()) {
        for (const auto &in : f.block(bid).instrs) {
            if (in.op != ir::Op::Phi)
                continue;
            std::map<int, ir::Vreg> seen;
            for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
                auto [it, fresh] =
                    seen.emplace(in.phiBlocks[k], in.srcs[k]);
                EXPECT_TRUE(fresh || it->second == in.srcs[k])
                    << "ambiguous phi slots for pred b"
                    << in.phiBlocks[k];
            }
        }
    }
    ir::destroySSA(f);
    ir::Evaluator eval(mod);
    ASSERT_TRUE(eval.run().completed);
    EXPECT_EQ(eval.output(), ref_eval.output());
}

TEST(OptSccp, FoldsConstantChains)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.constant(6);
    const Reg b = mb.constant(7);
    const Reg c = mb.mul(a, b);
    const Reg d = mb.addImm(c, 0);     // identity
    mb.print(d);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    ir::Function f = ir::translate(prog, prog.mainMethod);
    inSsa(f, [](ir::Function &fn) { opt::sccp(fn); });
    // The multiply must be folded away.
    EXPECT_EQ(countOps(f, ir::Op::Mul), 0);
    checkEquivalence(prog, [](ir::Module &mod) {
        for (auto &[m, fn] : mod.funcs)
            inSsa(fn, [](ir::Function &g) { opt::sccp(g); });
    });
}

TEST(OptSccp, EliminatesConstantBranches)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.constant(1);
    const Reg b = mb.constant(2);
    const Label unreachable = mb.newLabel();
    const Label done = mb.newLabel();
    mb.branchCmp(Bc::CmpGt, a, b, unreachable);  // never taken
    mb.print(mb.constant(10));
    mb.jump(done);
    mb.bind(unreachable);
    mb.print(mb.constant(20));
    mb.bind(done);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    ir::Function f = ir::translate(prog, prog.mainMethod);
    const int blocks_before = f.numBlocks();
    inSsa(f, [](ir::Function &fn) { opt::sccp(fn); });
    EXPECT_EQ(countOps(f, ir::Op::Branch), 0);
    EXPECT_LT(f.numBlocks(), blocks_before);    // dead arm removed
}

TEST(OptGvn, RemovesRedundantLoadsAndChecks)
{
    // Two back-to-back getfields of the same field: the second load
    // and null check must go after GVN + cleanup.
    ProgramBuilder pb;
    const ClassId c = pb.declareClass("C", {"f"});
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg o = mb.newObject(c);
    const Reg v = mb.constant(5);
    mb.putField(o, 0, v);
    const Reg x = mb.getField(o, 0);
    const Reg y = mb.getField(o, 0);
    mb.print(mb.add(x, y));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    ir::Function f = ir::translate(prog, prog.mainMethod);
    opt::simplifyCfg(f);
    EXPECT_EQ(countOps(f, ir::Op::LoadField), 2);
    EXPECT_EQ(countOps(f, ir::Op::NullCheck), 3);
    inSsa(f, [](ir::Function &fn) {
        opt::gvn(fn);
        opt::deadCodeElim(fn);
    });
    ir::verifyOrDie(f);
    // Store-to-load forwarding removes BOTH loads; null checks
    // collapse to one.
    EXPECT_EQ(countOps(f, ir::Op::LoadField), 0);
    EXPECT_EQ(countOps(f, ir::Op::NullCheck), 1);

    checkEquivalence(prog, [](ir::Module &mod) {
        for (auto &[m, fn] : mod.funcs) {
            inSsa(fn, [](ir::Function &g) {
                opt::gvn(g);
                opt::deadCodeElim(g);
            });
        }
    });
}

TEST(OptGvn, ColdJoinBlocksEliminationButAssertWouldNot)
{
    // A diamond recomputing the same expression in the tail: with a
    // join from the cold arm (which does not compute it), AVAIL
    // intersection blocks reuse of the hot arm's computation. This
    // documents the baseline limitation the paper addresses.
    ir::Function f;
    f.name = "diamond";
    const ir::Vreg a = f.newVreg();
    const ir::Vreg b = f.newVreg();
    const ir::Vreg t1 = f.newVreg();
    const ir::Vreg t2 = f.newVreg();
    auto &entry = f.newBlock();
    auto &hot = f.newBlock();
    auto &cold = f.newBlock();
    auto &tail = f.newBlock();
    auto mk = [](ir::Op op, ir::Vreg dst, std::vector<ir::Vreg> srcs,
                 int64_t imm = 0) {
        ir::Instr in;
        in.op = op;
        in.dst = dst;
        in.srcs = std::move(srcs);
        in.imm = imm;
        return in;
    };
    entry.instrs = {mk(ir::Op::Const, a, {}, 3),
                    mk(ir::Op::Const, b, {}, 4),
                    mk(ir::Op::Branch, ir::NO_VREG, {a})};
    entry.succs = {hot.id, cold.id};
    entry.succCount = {1, 0};
    hot.instrs = {mk(ir::Op::Add, t1, {a, b}),
                  mk(ir::Op::Jump, ir::NO_VREG, {})};
    hot.succs = {tail.id};
    hot.succCount = {1};
    cold.instrs = {mk(ir::Op::Jump, ir::NO_VREG, {})};
    cold.succs = {tail.id};
    cold.succCount = {0};
    tail.instrs = {mk(ir::Op::Add, t2, {a, b}),
                   mk(ir::Op::Print, ir::NO_VREG, {t2}),
                   mk(ir::Op::Print, ir::NO_VREG, {t1}),
                   mk(ir::Op::Ret, ir::NO_VREG, {})};
    f.entry = entry.id;
    ir::verifyOrDie(f);

    const int entry_id = entry.id;
    const int hot_id = hot.id;
    inSsa(f, [](ir::Function &fn) { opt::gvn(fn); });
    // Both Adds must survive: the cold path kills availability.
    EXPECT_EQ(countOps(f, ir::Op::Add), 2);

    // Remove the cold join edge (as region formation does) and the
    // same pass now eliminates the recomputation.
    f.block(entry_id).succs = {hot_id};
    f.block(entry_id).succCount = {1};
    f.block(entry_id).instrs.back() =
        mk(ir::Op::Jump, ir::NO_VREG, {});
    f.compact();
    inSsa(f, [](ir::Function &fn) {
        opt::gvn(fn);
        opt::deadCodeElim(fn);
    });
    EXPECT_EQ(countOps(f, ir::Op::Add), 1);
}

TEST(OptSccp, ForwardsThroughMovChains)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.constant(11);
    const Reg b = mb.newReg();
    const Reg c = mb.newReg();
    mb.mov(b, a);
    mb.mov(c, b);
    mb.print(c);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    ir::Function f = ir::translate(prog, prog.mainMethod);
    inSsa(f, [](ir::Function &fn) {
        opt::sccp(fn);
        opt::deadCodeElim(fn);
    });
    EXPECT_EQ(countOps(f, ir::Op::Mov), 0);
}

TEST(OptDce, KeepsChecksAndEffects)
{
    const Program prog = addElementProgram(50, 8);
    ir::Module mod = ir::translateProgram(prog);
    for (auto &[m, f] : mod.funcs) {
        const int checks_before = countOps(f, ir::Op::NullCheck) +
                                  countOps(f, ir::Op::BoundsCheck);
        opt::deadCodeElim(f);
        const int checks_after = countOps(f, ir::Op::NullCheck) +
                                 countOps(f, ir::Op::BoundsCheck);
        EXPECT_EQ(checks_before, checks_after);
    }
}

TEST(OptDce, RemovesDeadArithmetic)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.constant(1);
    const Reg b = mb.constant(2);
    mb.add(a, b);               // dead
    mb.mul(a, b);               // dead
    mb.print(a);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    ir::Function f = ir::translate(prog, prog.mainMethod);
    opt::deadCodeElim(f);
    EXPECT_EQ(countOps(f, ir::Op::Add), 0);
    EXPECT_EQ(countOps(f, ir::Op::Mul), 0);
}

TEST(OptDce, RemovesDeadPhiCyclesInSsaForm)
{
    // A loop-carried counter nobody reads: under backward liveness
    // the phi and its increment keep each other alive; mark-sweep
    // from essential roots removes both.
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg dead = mb.constant(0);
    const Reg lim = mb.constant(10);
    const Reg one = mb.constant(1);
    const Reg three = mb.constant(3);
    const Label head = mb.newLabel();
    const Label out = mb.newLabel();
    mb.bind(head);
    mb.branchCmp(Bc::CmpGe, i, lim, out);
    mb.binopTo(Bc::Add, dead, dead, three);  // never observed
    mb.binopTo(Bc::Add, i, i, one);
    mb.jump(head);
    mb.bind(out);
    mb.print(i);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    const Program prog = pb.build();
    verifyOrDie(prog);

    ir::Function f = ir::translate(prog, prog.mainMethod);
    ir::buildSSA(f);
    opt::deadCodeElim(f);
    ir::verifyOrDie(f);
    // Only the live increment survives: i += 1 (plus the compare).
    EXPECT_EQ(countOps(f, ir::Op::Add), 1);
    ir::destroySSA(f);
    ir::verifyOrDie(f);
}

TEST(OptInliner, InlinesSmallStaticCallees)
{
    const Program prog = fibProgram();
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::OptContext ctx;
    ctx.profile = &profile;
    opt::inlineCalls(mod, ctx);
    // fib calls inside fib get (partially) inlined: main's call count
    // unchanged or reduced, fib grows.
    for (const auto &[m, f] : mod.funcs)
        ir::verifyOrDie(f);
    checkEquivalence(prog, [&](ir::Module &m2) {
        opt::inlineCalls(m2, ctx);
    });
}

TEST(OptInliner, DevirtualizesMonomorphicSites)
{
    const Program prog = dispatchProgram();
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::OptContext ctx;
    ctx.profile = &profile;
    ctx.devirtBias = 0.90;      // receiver is ~97% Square
    opt::inlineCalls(mod, ctx);
    ir::Function &main_fn = mod.funcs.at(prog.mainMethod);
    ir::verifyOrDie(main_fn);
    // The residual (slow-path) virtual call is tagged imm=1.
    int residual = 0;
    for (int b : main_fn.reversePostOrder()) {
        for (const auto &in : main_fn.block(b).instrs) {
            if (in.op == ir::Op::CallVirtual)
                residual += in.imm == 1;
        }
    }
    EXPECT_GE(residual, 1);

    checkEquivalence(prog, [&](ir::Module &m2) {
        opt::inlineCalls(m2, ctx);
    });
}

TEST(OptUnroll, DuplicatesHotLoopBodies)
{
    const Program prog = arithLoopProgram();
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::OptContext ctx;
    ctx.profile = &profile;
    ir::Function &f = mod.funcs.at(prog.mainMethod);
    opt::simplifyCfg(f);
    const int before = f.countInstrs();
    const bool changed = opt::unrollLoops(f, ctx);
    EXPECT_TRUE(changed);
    EXPECT_GT(f.countInstrs(), before);
    ir::verifyOrDie(f);

    checkEquivalence(prog, [&](ir::Module &m2) {
        for (auto &[mid, fn] : m2.funcs) {
            opt::simplifyCfg(fn);
            opt::unrollLoops(fn, ctx);
        }
    });
}

TEST(OptPipeline, FullOptimizationPreservesAllSamples)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        Profile profile(s.prog);
        Interpreter interp(s.prog, &profile);
        ASSERT_TRUE(interp.run().completed);
        opt::OptContext ctx;
        ctx.profile = &profile;
        checkEquivalence(s.prog, [&](ir::Module &mod) {
            opt::optimizeModule(mod, ctx);
        });
    }
}

TEST(OptPipeline, LeavesConventionalForm)
{
    // Everything downstream of the pipeline (region formation,
    // machine-code emission) expects phis to be gone.
    const Program prog = arithLoopProgram();
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);
    opt::OptContext ctx;
    ctx.profile = &profile;
    ir::Module mod = ir::translateProgram(prog, &profile);
    opt::optimizeModule(mod, ctx);
    for (const auto &[m, f] : mod.funcs) {
        EXPECT_FALSE(f.ssaForm);
        EXPECT_EQ(countOps(f, ir::Op::Phi), 0);
    }
}

TEST(OptPipeline, ReducesDynamicInstructionCount)
{
    const Program prog = addElementProgram(400, 32);
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    ASSERT_TRUE(interp.run().completed);

    ir::Module base = ir::translateProgram(prog, &profile);
    ir::Evaluator base_eval(base);
    const auto base_res = base_eval.run();
    ASSERT_TRUE(base_res.completed);

    ir::Module optimized = ir::translateProgram(prog, &profile);
    opt::OptContext ctx;
    ctx.profile = &profile;
    opt::optimizeModule(optimized, ctx);
    ir::Evaluator opt_eval(optimized);
    const auto opt_res = opt_eval.run();
    ASSERT_TRUE(opt_res.completed);

    EXPECT_EQ(opt_eval.output(), base_eval.output());
    EXPECT_LT(opt_res.instrs, base_res.instrs);
}

TEST(OptProperty, RandomProgramsSurviveFullPipeline)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        RandomProgramGen gen(seed);
        const Program prog = gen.generate();
        Profile profile(prog);
        Interpreter interp(prog, &profile);
        const auto ires = interp.run();
        ASSERT_TRUE(ires.completed);

        opt::OptContext ctx;
        ctx.profile = &profile;
        ir::Module mod = ir::translateProgram(prog, &profile);
        opt::optimizeModule(mod, ctx);
        for (const auto &[m, f] : mod.funcs)
            ir::verifyOrDie(f);
        ir::Evaluator eval(mod);
        const auto eres = eval.run();
        ASSERT_TRUE(eres.completed);
        EXPECT_EQ(eval.output(), interp.output());
    }
}

} // namespace
