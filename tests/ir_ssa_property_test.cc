/**
 * @file
 * Property tests for SSA construction and destruction.
 *
 * Phi placement: on random CFGs with one variable, the blocks that
 * receive a phi must be exactly the liveness-pruned iterated
 * dominance frontier of the definition sites (the textbook
 * definition, computed naively here).
 *
 * Round trip: buildSSA followed by destroySSA preserves observable
 * behaviour on every sample program and on random generated
 * programs, and does not grow the instruction stream (coalescing
 * must absorb every phi the pruned construction introduces for
 * unoptimized translate output).
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/dominators.hh"
#include "ir/evaluator.hh"
#include "ir/ssa.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "programs.hh"
#include "random_program.hh"
#include "support/random.hh"
#include "vm/interpreter.hh"

namespace {

using namespace aregion;
using namespace aregion::test;
namespace ir = aregion::ir;

/**
 * Random CFG over one variable v: block 0 is a dedicated entry (no
 * incoming edges), a random subset of blocks assigns v, every Branch
 * tests v and every Ret returns it.
 */
ir::Function
randomVarCfg(uint64_t seed, int n, std::vector<int> &defBlocksOut)
{
    Rng rng(seed);
    ir::Function f;
    f.name = "ssarand" + std::to_string(seed);
    const ir::Vreg v = f.newVreg();
    for (int i = 0; i < n; ++i)
        f.newBlock();
    auto interior = [&] {
        return 1 + static_cast<int>(
                       rng.below(static_cast<uint64_t>(n - 1)));
    };
    for (int b = 0; b < n; ++b) {
        ir::Block &blk = f.block(b);
        if (b > 0 && rng.toDouble() < 0.4) {
            ir::Instr cst;
            cst.op = ir::Op::Const;
            cst.dst = v;
            cst.imm = static_cast<int64_t>(b);
            blk.instrs.push_back(cst);
        }
        ir::Instr term;
        const double roll = rng.toDouble();
        if (b > 0 && (roll < 0.2 || b == n - 1)) {
            term.op = ir::Op::Ret;
            term.srcs = {v};
            blk.instrs.push_back(term);
        } else if (b == 0 || roll < 0.55) {
            term.op = ir::Op::Jump;
            blk.instrs.push_back(term);
            blk.succs = {interior()};
            blk.succCount = {1};
        } else {
            term.op = ir::Op::Branch;
            term.srcs = {v};
            blk.instrs.push_back(term);
            blk.succs = {interior(), interior()};
            blk.succCount = {1, 1};
        }
    }
    f.entry = 0;
    f.compact();    // ids become RPO positions; buildSSA re-compacts
                    // to the identity mapping
    defBlocksOut.clear();
    for (int b = 0; b < f.numBlocks(); ++b) {
        for (const ir::Instr &in : f.block(b).instrs) {
            if (in.dst == v)
                defBlocksOut.push_back(b);
        }
    }
    return f;
}

/** Naive boolean liveness of the single variable v = vreg 0. */
std::vector<bool>
naiveLiveIn(const ir::Function &f)
{
    const int n = f.numBlocks();
    std::vector<bool> liveIn(static_cast<size_t>(n), false);
    std::vector<bool> upUse(static_cast<size_t>(n), false);
    std::vector<bool> defs(static_cast<size_t>(n), false);
    for (int b = 0; b < n; ++b) {
        for (const ir::Instr &in : f.block(b).instrs) {
            const bool uses =
                std::count(in.srcs.begin(), in.srcs.end(), 0) > 0;
            if (uses && !defs[static_cast<size_t>(b)])
                upUse[static_cast<size_t>(b)] = true;
            if (in.dst == 0)
                defs[static_cast<size_t>(b)] = true;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; --b) {
            bool out = false;
            for (int s : f.block(b).succs)
                out = out || liveIn[static_cast<size_t>(s)];
            const bool in =
                upUse[static_cast<size_t>(b)] ||
                (out && !defs[static_cast<size_t>(b)]);
            if (in != liveIn[static_cast<size_t>(b)]) {
                liveIn[static_cast<size_t>(b)] = in;
                changed = true;
            }
        }
    }
    return liveIn;
}

class SsaPhiSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SsaPhiSweep, IrPhiPlacementMatchesPrunedIdf)
{
    std::vector<int> defBlocks;
    ir::Function f = randomVarCfg(GetParam(), 12, defBlocks);
    const int numBlocks = f.numBlocks();

    // Reference: liveness-pruned iterated dominance frontier.
    const ir::DominatorTree doms(f);
    const auto df = ir::dominanceFrontiers(f, doms);
    const auto liveIn = naiveLiveIn(f);
    std::set<int> expected;
    std::vector<int> worklist = defBlocks;
    std::set<int> queued(worklist.begin(), worklist.end());
    while (!worklist.empty()) {
        const int b = worklist.back();
        worklist.pop_back();
        for (int j : df[static_cast<size_t>(b)]) {
            if (expected.count(j) || !liveIn[static_cast<size_t>(j)])
                continue;
            expected.insert(j);
            if (queued.insert(j).second)
                worklist.push_back(j);
        }
    }

    ir::buildSSA(f);
    ASSERT_EQ(f.numBlocks(), numBlocks)
        << "buildSSA changed the CFG of a normalized function";
    std::set<int> actual;
    for (int b = 0; b < f.numBlocks(); ++b) {
        int phis = 0;
        for (const ir::Instr &in : f.block(b).instrs)
            phis += in.op == ir::Op::Phi;
        ASSERT_LE(phis, 1) << "two phis for one variable in b" << b;
        if (phis)
            actual.insert(b);
    }
    EXPECT_EQ(actual, expected) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomCfgs, SsaPhiSweep,
                         ::testing::Range<uint64_t>(1, 60));

/** Round-trip a whole module and check behaviour and size. */
void
checkRoundTrip(const Program &prog)
{
    Interpreter interp(prog);
    const auto ires = interp.run();
    ASSERT_TRUE(ires.completed);

    ir::Module mod = ir::translateProgram(prog);
    for (auto &[m, f] : mod.funcs) {
        const int before = f.countInstrs();
        ir::buildSSA(f);
        ir::destroySSA(f);
        ir::verifyOrDie(f);
        EXPECT_LE(f.countInstrs(), before)
            << "round trip grew " << f.name;
    }
    ir::Evaluator eval(mod);
    const auto eres = eval.run();
    ASSERT_TRUE(eres.completed);
    EXPECT_EQ(eval.output(), interp.output());
}

TEST(SsaRoundTrip, IrPreservesBehaviourOnAllSamples)
{
    for (const auto &s : allSamplePrograms()) {
        SCOPED_TRACE(s.name);
        checkRoundTrip(s.prog);
    }
}

TEST(SsaRoundTrip, IrPreservesBehaviourOnRandomScalarPrograms)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        RandomProgramGen gen(seed);
        checkRoundTrip(gen.generate());
    }
}

TEST(SsaRoundTrip, IrPreservesBehaviourOnRandomObjectPrograms)
{
    for (uint64_t seed = 100; seed <= 120; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        RandomProgramGen gen(seed);
        gen.withObjects = true;
        checkRoundTrip(gen.generate());
    }
}

} // namespace
