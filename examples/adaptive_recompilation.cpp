/**
 * @file
 * Adaptive recompilation (paper Section 7).
 *
 * A branch that profiles cold becomes an assert; when the program's
 * behaviour drifts, the assert fires constantly, and every firing
 * pays an abort plus a non-speculative re-execution. The hardware's
 * abort-diagnosis registers (cause + responsible pc) let the runtime
 * map aborts back to the offending compiler assertion; the adaptive
 * controller recompiles with that edge treated as warm.
 */

#include <cstdio>

#include "core/adaptive.hh"
#include "core/compiler.hh"
#include "runtime/jit.hh"
#include "vm/builder.hh"
#include "vm/interpreter.hh"
#include "vm/verifier.hh"

using namespace aregion;
using namespace aregion::vm;

namespace {

/** A filter loop whose "match" rate is `one_in_n`. */
Program
buildFilter(int one_in_n)
{
    ProgramBuilder pb;
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(30000);
    const Reg one = mb.constant(1);
    const Reg k = mb.constant(one_in_n);
    const Reg matches = mb.constant(0);
    const Reg acc = mb.constant(0);
    const Label loop = mb.newLabel();
    const Label match = mb.newLabel();
    const Label next = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    const Reg rem = mb.binop(Bc::Rem, i, k);
    const Reg zero = mb.constant(0);
    const Reg hit = mb.cmp(Bc::CmpEq, rem, zero);
    mb.branchIf(hit, match);
    mb.binopTo(Bc::Add, acc, acc, i);
    mb.jump(next);
    mb.bind(match);     // "rare" while profiling
    mb.binopTo(Bc::Add, matches, matches, one);
    mb.jump(next);
    mb.bind(next);
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.print(acc);
    mb.print(matches);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

int
main()
{
    // Profiling input matches 1/500 (cold); production input 1/25.
    const Program profile_prog = buildFilter(500);
    const Program measure_prog = buildFilter(25);

    runtime::ExperimentConfig static_cfg;
    static_cfg.compiler = core::CompilerConfig::atomic();
    const auto before = runtime::runExperiment(
        profile_prog, measure_prog, static_cfg);

    runtime::ExperimentConfig adaptive_cfg = static_cfg;
    adaptive_cfg.adaptiveRecompile = true;
    adaptive_cfg.controller.abortRateThreshold = 0.01;
    const auto after = runtime::runExperiment(
        profile_prog, measure_prog, adaptive_cfg);

    std::printf("static compile  : %8llu cycles, %6llu aborts "
                "(%.1f%% of region entries)\n",
                static_cast<unsigned long long>(before.cycles),
                static_cast<unsigned long long>(before.regionAborts),
                before.abortPct * 100);
    std::printf("adaptive compile: %8llu cycles, %6llu aborts "
                "(recompiled: %s)\n",
                static_cast<unsigned long long>(after.cycles),
                static_cast<unsigned long long>(after.regionAborts),
                after.recompiled ? "yes" : "no");
    std::printf("recovered: %.1f%% faster than the static atomic "
                "compile\n",
                (static_cast<double>(before.cycles) /
                     static_cast<double>(after.cycles) - 1.0) * 100);
    AREGION_ASSERT(before.outputChecksum == after.outputChecksum,
                   "adaptive recompilation changed behaviour");
    return 0;
}
