/**
 * @file
 * Region explorer: compile any of the evaluation workloads with
 * atomic regions and dump the formed region structure (the Figure
 * 1(d) / Figure 5(b) view) plus runtime region statistics.
 *
 * Usage: region_explorer [workload] [--ir]
 *   workload: antlr bloat fop hsqldb jython pmd xalan (default xalan)
 *   --ir:     also print the full IR of every function with regions
 */

#include <cstdio>
#include <cstring>

#include "core/compiler.hh"
#include "hw/trace.hh"
#include "ir/printer.hh"
#include "runtime/jit.hh"
#include "vm/interpreter.hh"
#include "workloads/workload.hh"

using namespace aregion;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 && argv[1][0] != '-' ? argv[1]
                                                     : "xalan";
    bool dump_ir = false;
    for (int i = 1; i < argc; ++i)
        dump_ir |= std::strcmp(argv[i], "--ir") == 0;

    const auto &w = workloads::workloadByName(name);
    const vm::Program profile_prog = w.build(true);
    const vm::Program measure_prog = w.build(false);

    vm::Profile profile(profile_prog);
    {
        vm::Interpreter interp(profile_prog, &profile);
        interp.run();
    }
    core::Compiled compiled = core::compileProgram(
        measure_prog, profile,
        core::CompilerConfig::atomicAggressiveInline());

    std::printf("workload %s: %d region(s) formed, %d asserts, "
                "%d blocks replicated, %d SLE pairs elided\n\n",
                name, compiled.stats.regions.regionsFormed,
                compiled.stats.regions.assertsCreated,
                compiled.stats.regions.blocksReplicated,
                compiled.stats.slePairsElided);

    for (const auto &[m, f] : compiled.mod.funcs) {
        if (f.regions.empty())
            continue;
        std::printf("function %s: %zu region(s)\n", f.name.c_str(),
                    f.regions.size());
        for (const auto &region : f.regions) {
            int blocks = 0;
            int instrs = 0;
            int asserts = 0;
            for (int b = 0; b < f.numBlocks(); ++b) {
                if (f.block(b).regionId != region.id)
                    continue;
                ++blocks;
                instrs += static_cast<int>(
                    f.block(b).instrs.size());
                for (const auto &in : f.block(b).instrs)
                    asserts += in.op == ir::Op::Assert;
            }
            std::printf("  region %d: entry=b%d alt=b%d  "
                        "%d blocks, %d instrs, %d asserts\n",
                        region.id, region.entryBlock,
                        region.altBlock, blocks, instrs, asserts);
        }
        if (dump_ir)
            std::printf("%s\n", ir::toString(f).c_str());
    }

    // Runtime statistics under the default machine.
    runtime::ExperimentConfig config;
    config.compiler = core::CompilerConfig::atomicAggressiveInline();
    const auto metrics = runtime::runExperiment(
        profile_prog, measure_prog, config, w.samples);
    std::printf("\nruntime: coverage %.0f%%, %d unique regions, "
                "avg size %.0f uops,\n         abort %.2f%% of "
                "entries (%.3f per 1k uops)\n",
                metrics.coverage * 100, metrics.uniqueRegions,
                metrics.avgRegionSize, metrics.abortPct * 100,
                metrics.abortsPer1kUops);
    for (const auto &[key, stats] : metrics.machine.regions) {
        if (stats.entries == 0)
            continue;
        std::printf("  (method %d, region %d): %llu entries, "
                    "%llu commits",
                    key.first, key.second,
                    static_cast<unsigned long long>(stats.entries),
                    static_cast<unsigned long long>(stats.commits));
        if (stats.totalAborts() > 0) {
            std::printf(", aborts:");
            for (int c = 0; c < 6; ++c) {
                if (stats.abortsByCause[c]) {
                    std::printf(" %s=%llu",
                                hw::abortCauseName(
                                    static_cast<hw::AbortCause>(c)),
                                static_cast<unsigned long long>(
                                    stats.abortsByCause[c]));
                }
            }
        }
        std::printf("\n");
    }
    return 0;
}
