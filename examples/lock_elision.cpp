/**
 * @file
 * Speculative lock elision (paper Section 4).
 *
 * A synchronized accumulator is hammered by the main thread. Inside
 * an atomic region, the balanced monitor pair reduces to a single
 * load of the lock word plus an assert that it is free; the region's
 * read-set entry on the lock word turns any concurrent acquisition
 * into a conflict abort, so atomic commit keeps the elision safe.
 *
 * The example then spawns a second hardware context to contend on
 * the same lock and shows the fallback: conflict/contention aborts
 * rise, the non-speculative path takes over, and the total is still
 * exact.
 */

#include <cstdio>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "vm/builder.hh"
#include "vm/interpreter.hh"
#include "vm/verifier.hh"

using namespace aregion;
using namespace aregion::vm;

namespace {

Program
buildProgram(bool contended)
{
    ProgramBuilder pb;
    const ClassId acc = pb.declareClass("Account",
                                        {"balance", "done"});
    const int f_balance = pb.fieldIndex(acc, "balance");
    const int f_done = pb.fieldIndex(acc, "done");

    const MethodId deposit = pb.declareMethod("deposit", 2,
                                              /*sync=*/true);
    {
        auto f = pb.define(deposit);
        const Reg b = f.getField(f.self(), f_balance);
        f.putField(f.self(), f_balance, f.add(b, f.arg(1)));
        f.retVoid();
        f.finish();
    }

    const MethodId worker = pb.declareMethod("worker", 1);
    {
        auto w = pb.define(worker);
        const Reg i = w.constant(0);
        const Reg n = w.constant(2000);
        const Reg one = w.constant(1);
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        w.callStaticVoid(deposit, {w.arg(0), one});
        w.binopTo(Bc::Add, i, i, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(w.arg(0));
        const Reg d = w.getField(w.arg(0), f_done);
        w.putField(w.arg(0), f_done, w.add(d, one));
        w.monitorExit(w.arg(0));
        w.retVoid();
        w.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg a = mb.newObject(acc);
    if (contended)
        mb.spawn(worker, {a});
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(6000);
    const Reg one = mb.constant(1);
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    mb.callStaticVoid(deposit, {a, one});
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    if (contended) {
        const Reg want = mb.constant(1);
        const Label wait = mb.newLabel();
        const Label ready = mb.newLabel();
        mb.bind(wait);
        mb.safepoint();
        const Reg d = mb.getField(a, f_done);
        mb.branchCmp(Bc::CmpGe, d, want, ready);
        mb.jump(wait);
        mb.bind(ready);
    }
    mb.print(mb.getField(a, f_balance));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

void
report(const char *label, const Program &prog,
       const core::CompilerConfig &config)
{
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        interp.run();
    }
    core::Compiled compiled =
        core::compileProgram(prog, profile, config);
    vm::Heap layout_heap(prog, 1 << 16);
    const hw::MachineProgram mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::TimingModel timing(hw::TimingConfig::baseline());
    hw::Machine machine(mp, hw::HwConfig{}, &timing);
    const auto res = machine.run();
    AREGION_ASSERT(res.completed, "machine run failed");

    uint64_t conflict_aborts = 0;
    uint64_t exception_aborts = 0;
    for (const auto &[key, stats] : res.regions) {
        conflict_aborts += stats.abortsByCause[
            static_cast<int>(hw::AbortCause::Conflict)];
        exception_aborts += stats.abortsByCause[
            static_cast<int>(hw::AbortCause::Exception)];
    }
    std::printf("%-28s balance=%lld cycles=%8llu "
                "CAS-acquires=%5llu pairs-elided=%d "
                "conflict-aborts=%llu\n",
                label,
                static_cast<long long>(res.output.empty()
                                           ? -1 : res.output[0]),
                static_cast<unsigned long long>(timing.cycles()),
                static_cast<unsigned long long>(
                    res.monitorFastEnters),
                compiled.stats.slePairsElided,
                static_cast<unsigned long long>(
                    conflict_aborts + exception_aborts));
}

} // namespace

int
main()
{
    std::printf("Uncontended (single context):\n");
    {
        const Program prog = buildProgram(false);
        core::CompilerConfig no_sle = core::CompilerConfig::atomic();
        no_sle.sle = false;
        report("  atomic, SLE off", prog, no_sle);
        report("  atomic, SLE on", prog,
               core::CompilerConfig::atomic());
    }
    std::printf("\nContended (two contexts on one lock):\n");
    {
        const Program prog = buildProgram(true);
        report("  atomic, SLE on", prog,
               core::CompilerConfig::atomic());
    }
    std::printf("\nWith SLE the CAS fast-path acquisitions vanish "
                "from the hot path; under\ncontention the region "
                "aborts (conflict on the lock-word line) and the\n"
                "non-speculative path preserves exactness.\n");
    return 0;
}
