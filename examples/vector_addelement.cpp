/**
 * @file
 * The paper's Figure 2/3 example, end to end.
 *
 * SuballocatedIntVector.addElement has a 99%+ biased hot path that
 * writes into a cached chunk, and a cold path that allocates the
 * next chunk. Called twice in sequence at its hottest call site and
 * inlined, the second call's null check and length load are
 * redundant with the first's — but the cold join blocks the
 * baseline's redundancy elimination, and removing them speculatively
 * would require compensation code.
 *
 * With atomic regions, the cold paths become asserts and the SAME
 * non-speculative CSE removes the redundancy with no compensation
 * code. This example prints the optimized hot region so you can see
 * the transformation, then measures both compilers.
 */

#include <cstdio>

#include "core/compiler.hh"
#include "ir/printer.hh"
#include "runtime/jit.hh"
#include "vm/interpreter.hh"

// The addElement program factory shared with the test suite.
#include "programs.hh"

using namespace aregion;
using aregion::test::addElementProgram;

int
main()
{
    const vm::Program prog = addElementProgram(3000, 512);
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        interp.run();
    }

    core::Compiled atomic = core::compileProgram(
        prog, profile, core::CompilerConfig::atomic());

    std::printf("=== the compiled main with its atomic regions "
                "===\n\n");
    const ir::Function &f = atomic.mod.funcs.at(prog.mainMethod);
    // Print only the region code (the interesting part).
    for (const ir::RegionInfo &region : f.regions) {
        std::printf("-- region %d (alternate = b%d) --\n", region.id,
                    region.altBlock);
        for (int b = 0; b < f.numBlocks(); ++b) {
            if (f.block(b).regionId != region.id)
                continue;
            std::printf("b%d:\n", b);
            for (const auto &in : f.block(b).instrs)
                std::printf("    %s\n", in.toString().c_str());
        }
        std::printf("\n");
    }
    std::printf("(note: one null check and one length load per "
                "unrolled pair of inserts,\n where the baseline "
                "needs one per insert)\n\n");

    // Measure.
    runtime::ExperimentConfig base;
    base.compiler = core::CompilerConfig::baseline();
    const auto mb = runtime::runExperiment(prog, prog, base);
    runtime::ExperimentConfig ar;
    ar.compiler = core::CompilerConfig::atomic();
    const auto ma = runtime::runExperiment(prog, prog, ar);

    std::printf("baseline: %.0f cycles, %.0f uops\n",
                mb.weightedCycles, mb.weightedUops);
    std::printf("atomic  : %.0f cycles, %.0f uops  "
                "(coverage %.0f%%, abort %.2f%%)\n",
                ma.weightedCycles, ma.weightedUops,
                ma.coverage * 100, ma.abortPct * 100);
    std::printf("speedup : %.1f%%\n",
                (mb.weightedCycles / ma.weightedCycles - 1) * 100);
    return 0;
}
