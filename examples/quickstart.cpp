/**
 * @file
 * Quickstart: the whole pipeline in one file.
 *
 * 1. Build a small managed program with vm::ProgramBuilder (a hot
 *    loop with a cold path and safety checks).
 * 2. Profile it in the interpreter.
 * 3. Compile it twice: baseline, and with hardware atomic regions.
 * 4. Run both on the simulated checkpoint-substrate machine with the
 *    Table 1 timing model, and compare.
 * 5. Dump the process-wide telemetry registry: every subsystem
 *    (profiler, region formation, machine, timing model) publishes
 *    counters under hierarchical keys (see docs/TELEMETRY.md).
 *
 * Build: cmake -B build -G Ninja && cmake --build build
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/builder.hh"
#include "vm/interpreter.hh"
#include "vm/verifier.hh"

using namespace aregion;
using namespace aregion::vm;

namespace {

/** A histogram-building loop: bounds-checked array updates with a
 *  cold resize path — classic managed-code structure. */
Program
buildProgram()
{
    ProgramBuilder pb;
    const ClassId hist = pb.declareClass("Histogram",
                                         {"bins", "total", "spills"});
    const int f_bins = pb.fieldIndex(hist, "bins");
    const int f_total = pb.fieldIndex(hist, "total");
    const int f_spills = pb.fieldIndex(hist, "spills");

    // add(h, value): hot path bumps a bin; cold path (value out of
    // range, <1%) counts a spill.
    const MethodId add = pb.declareMethod("add", 2);
    {
        auto f = pb.define(add);
        const Reg h = f.arg(0);
        const Reg v = f.arg(1);
        const Reg bins = f.getField(h, f_bins);
        const Reg nbins = f.alength(bins);
        const Label spill = f.newLabel();
        f.branchCmp(Bc::CmpGe, v, nbins, spill);
        const Reg old = f.aload(bins, v);
        const Reg one = f.constant(1);
        f.astore(bins, v, f.add(old, one));
        const Reg t = f.getField(h, f_total);
        f.putField(h, f_total, f.add(t, one));
        f.retVoid();
        f.bind(spill);      // cold
        const Reg s = f.getField(h, f_spills);
        const Reg one2 = f.constant(1);
        f.putField(h, f_spills, f.add(s, one2));
        f.retVoid();
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg h = mb.newObject(hist);
    mb.putField(h, f_bins, mb.newArray(mb.constant(128)));
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(20000);
    const Reg one = mb.constant(1);
    const Reg m131 = mb.constant(131);   // 128..130 spill (~2.3%)? no:
    const Label loop = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    const Reg v = mb.binop(Bc::Rem, mb.mul(i, mb.constant(2654435761LL)),
                           m131);
    mb.callStaticVoid(add, {h, v});
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.print(mb.getField(h, f_total));
    mb.print(mb.getField(h, f_spills));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

struct Run
{
    uint64_t cycles;
    uint64_t uops;
    uint64_t regions;
    uint64_t aborts;
};

Run
runConfig(const Program &prog, const Profile &profile,
          const core::CompilerConfig &config)
{
    core::Compiled compiled =
        core::compileProgram(prog, profile, config);
    vm::Heap layout_heap(prog, 1 << 16);
    const hw::MachineProgram mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::TimingModel timing(hw::TimingConfig::baseline());
    hw::Machine machine(mp, hw::HwConfig{}, &timing);
    const auto res = machine.run();
    AREGION_ASSERT(res.completed, "machine run failed");
    timing.publishTelemetry();
    return {timing.cycles(), res.retiredUops, res.regionCommits,
            res.regionAborts};
}

} // namespace

int
main()
{
    const Program prog = buildProgram();

    // Reference + profiling run.
    Profile profile(prog);
    Interpreter interp(prog, &profile);
    const auto iresult = interp.run();
    std::printf("interpreter: %llu bytecodes, output:",
                static_cast<unsigned long long>(
                    iresult.instructions));
    for (int64_t v : interp.output())
        std::printf(" %lld", static_cast<long long>(v));
    std::printf("\n\n");

    const Run base = runConfig(prog, profile,
                               core::CompilerConfig::baseline());
    const Run atomic = runConfig(prog, profile,
                                 core::CompilerConfig::atomic());

    std::printf("baseline      : %8llu cycles, %8llu uops\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(base.uops));
    std::printf("atomic regions: %8llu cycles, %8llu uops "
                "(%llu commits, %llu aborts)\n",
                static_cast<unsigned long long>(atomic.cycles),
                static_cast<unsigned long long>(atomic.uops),
                static_cast<unsigned long long>(atomic.regions),
                static_cast<unsigned long long>(atomic.aborts));
    std::printf("speedup: %.1f%%   uop reduction: %.1f%%\n",
                (static_cast<double>(base.cycles) /
                     static_cast<double>(atomic.cycles) - 1.0) * 100,
                (1.0 - static_cast<double>(atomic.uops) /
                           static_cast<double>(base.uops)) * 100);

    // Everything the pipeline recorded along the way, one registry.
    // Both configs ran in this process, so counters are cumulative
    // across the two machine runs.
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    std::printf("\ntelemetry snapshot (see docs/TELEMETRY.md):\n%s",
                reg.toTable().c_str());
    std::printf("\nabort breakdown:");
    for (int c = 0; c < 6; ++c) {
        std::printf(" %s=%llu", keys::kMachineAbortByCause[c],
                    static_cast<unsigned long long>(reg.counterValue(
                        keys::kMachineAbortByCause[c])));
    }
    std::printf("\n");
    return 0;
}
