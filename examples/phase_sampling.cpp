/**
 * @file
 * The paper's Section 5 sampling methodology, demonstrated: record a
 * method-invocation trace, classify execution phases SimPoint-style
 * (interval frequency vectors + k-means), pick an infrequent marker
 * method per phase, and report phase weights — the machinery behind
 * Table 2's per-benchmark sample counts.
 */

#include <cstdio>

#include "runtime/sampling.hh"
#include "vm/interpreter.hh"
#include "workloads/workload.hh"

using namespace aregion;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "bloat";
    const auto &w = workloads::workloadByName(name);
    const vm::Program prog = w.build(true);    // profiling input

    vm::Interpreter interp(prog);
    interp.logInvocations = true;
    const auto res = interp.run();
    AREGION_ASSERT(res.completed, "run failed");

    std::printf("workload %s: %zu method invocations recorded\n",
                name, interp.invocationLog.size());

    const size_t interval =
        std::max<size_t>(64, interp.invocationLog.size() / 40);
    const auto phases = runtime::classifyPhases(
        interp.invocationLog, prog.numMethods(), interval, 4);

    std::printf("classified %d phase(s) over %zu-invocation "
                "intervals:\n", phases.numPhases, interval);
    for (int p = 0; p < phases.numPhases; ++p) {
        const vm::MethodId marker =
            phases.markerMethod[static_cast<size_t>(p)];
        std::printf("  phase %d: weight %.2f, representative "
                    "interval %d, marker method '%s'\n",
                    p, phases.phaseWeight[static_cast<size_t>(p)],
                    phases.representative[static_cast<size_t>(p)],
                    marker == vm::NO_METHOD
                        ? "<none>"
                        : prog.method(marker).name.c_str());
    }

    std::printf("\ninterval -> phase: ");
    for (size_t i = 0; i < phases.intervalPhase.size(); ++i)
        std::printf("%d", phases.intervalPhase[i]);
    std::printf("\n\nThe paper instruments the chosen marker "
                "methods' prologues and uses three\ndynamic "
                "crossings to bound warm-up and measurement; the "
                "workloads in this\nrepository place equivalent "
                "markers at their phase boundaries (Table 2's\n"
                "sample counts).\n");
    return 0;
}
