#!/bin/sh
# Refresh a host-performance snapshot: run one of the bench binaries
# and write its --json export (tables + telemetry + bench.* gauges)
# to the matching BENCH_*.json at the repo root.
#
# Usage:
#   tools/perf_snapshot.sh [binary] [out.json]   # explicit pair
#   tools/perf_snapshot.sh --simulator           # BENCH_simulator.json
#   tools/perf_snapshot.sh --contention          # BENCH_contention.json
#   tools/perf_snapshot.sh --service             # BENCH_service.json
#   tools/perf_snapshot.sh --all                 # all of the above
#
# No arguments defaults to --simulator (the historical behaviour).
# Each mode assumes the standard build directory layout; the cmake
# targets bench-perf / bench-contention / bench-service call the
# explicit form with the freshly built binary.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"

snapshot() {
    bin="$1"
    out="$2"
    if [ ! -x "$bin" ]; then
        echo "perf_snapshot: $bin not built (cmake --build build --target $(basename "$bin"))" >&2
        exit 1
    fi
    "$bin" --json "$out"
    echo "perf_snapshot: wrote $out"
}

case "${1:-}" in
--simulator)
    snapshot "$root/build/bench/simulator_throughput" \
        "$root/BENCH_simulator.json"
    ;;
--contention)
    snapshot "$root/build/bench/bench_contention" \
        "$root/BENCH_contention.json"
    ;;
--service)
    snapshot "$root/build/bench/bench_service" \
        "$root/BENCH_service.json"
    ;;
--all)
    snapshot "$root/build/bench/simulator_throughput" \
        "$root/BENCH_simulator.json"
    snapshot "$root/build/bench/bench_contention" \
        "$root/BENCH_contention.json"
    snapshot "$root/build/bench/bench_service" \
        "$root/BENCH_service.json"
    ;;
--*)
    echo "perf_snapshot: unknown mode $1" >&2
    exit 2
    ;;
*)
    snapshot "${1:-$root/build/bench/simulator_throughput}" \
        "${2:-$root/BENCH_simulator.json}"
    ;;
esac
