#!/bin/sh
# Refresh the host-performance snapshot: run the simulator_throughput
# microbenchmarks and write their --json export (tables + telemetry +
# the bench.simulator_throughput.*_per_sec gauges) to
# BENCH_simulator.json at the repo root.
#
# Usage: tools/perf_snapshot.sh [simulator_throughput-binary] [out.json]
# Defaults assume the standard build directory layout.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
bin="${1:-$root/build/bench/simulator_throughput}"
out="${2:-$root/BENCH_simulator.json}"

if [ ! -x "$bin" ]; then
    echo "perf_snapshot: $bin not built (cmake --build build --target simulator_throughput)" >&2
    exit 1
fi

"$bin" --json "$out"
echo "perf_snapshot: wrote $out"
