#!/bin/sh
# Refresh a host-performance snapshot: run one of the bench binaries
# and write its --json export (tables + telemetry + bench.* gauges)
# to the matching BENCH_*.json at the repo root.
#
# Usage:
#   tools/perf_snapshot.sh [binary] [out.json]   # explicit pair
#   tools/perf_snapshot.sh --simulator           # BENCH_simulator.json
#   tools/perf_snapshot.sh --contention          # BENCH_contention.json
#   tools/perf_snapshot.sh --service             # BENCH_service.json
#   tools/perf_snapshot.sh --all                 # all of the above
#   tools/perf_snapshot.sh --check-compile-telemetry [snapshot.json]
#       Validate compile-time telemetry in an existing snapshot
#       (default BENCH_simulator.json): fails when an aggregate
#       counter is zero while its components are non-zero — the
#       shape of the jit.compile_us=0 / jit.pass.*_us>0 aggregation
#       bug — or when jit.compile_us < the sum of the per-pass
#       timers it must cover.
#
# No arguments defaults to --simulator (the historical behaviour).
# Each mode assumes the standard build directory layout; the cmake
# targets bench-perf / bench-contention / bench-service call the
# explicit form with the freshly built binary.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"

snapshot() {
    bin="$1"
    out="$2"
    if [ ! -x "$bin" ]; then
        echo "perf_snapshot: $bin not built (cmake --build build --target $(basename "$bin"))" >&2
        exit 1
    fi
    "$bin" --json "$out"
    echo "perf_snapshot: wrote $out"
}

# Sum + aggregate consistency checks over an existing snapshot. Pure
# POSIX sh + awk so the mode works anywhere the snapshots do.
check_compile_telemetry() {
    snap="$1"
    if [ ! -r "$snap" ]; then
        echo "perf_snapshot: $snap not found (run a snapshot mode first)" >&2
        exit 1
    fi
    awk '
    # Collect every "key": value counter in the snapshot.
    {
        line = $0
        while (match(line, /"[a-z][a-z0-9_.]*": *-?[0-9]+/)) {
            kv = substr(line, RSTART, RLENGTH)
            line = substr(line, RSTART + RLENGTH)
            sep = index(kv, "\":")
            key = substr(kv, 2, sep - 2)
            val = substr(kv, sep + 2) + 0
            counters[key] = val
        }
    }
    END {
        status = 0
        pass_sum = 0
        pass_nonzero = 0
        for (k in counters) {
            if (k ~ /^jit\.pass\./) {
                pass_sum += counters[k]
                if (counters[k] > 0)
                    pass_nonzero++
            }
        }
        compile = counters["jit.compile_us"]
        if (pass_nonzero > 0 && compile == 0) {
            print "check-compile-telemetry: jit.compile_us is 0 while " \
                  pass_nonzero " jit.pass.* timers are non-zero" > "/dev/stderr"
            status = 1
        }
        if (compile < pass_sum) {
            print "check-compile-telemetry: jit.compile_us (" compile \
                  ") < sum of jit.pass.*_us (" pass_sum ")" > "/dev/stderr"
            status = 1
        }
        if (counters["profile.bytecodes"] > 0 && \
            counters["profile.invocations"] == 0) {
            print "check-compile-telemetry: profile.invocations is 0 " \
                  "while profile.bytecodes is non-zero" > "/dev/stderr"
            status = 1
        }
        if (status == 0)
            print "check-compile-telemetry: " FILENAME " OK " \
                  "(jit.compile_us=" compile " >= pass sum " pass_sum ")"
        exit status
    }' "$snap"
}

case "${1:-}" in
--check-compile-telemetry)
    check_compile_telemetry "${2:-$root/BENCH_simulator.json}"
    ;;
--simulator)
    snapshot "$root/build/bench/simulator_throughput" \
        "$root/BENCH_simulator.json"
    ;;
--contention)
    snapshot "$root/build/bench/bench_contention" \
        "$root/BENCH_contention.json"
    ;;
--service)
    snapshot "$root/build/bench/bench_service" \
        "$root/BENCH_service.json"
    ;;
--all)
    snapshot "$root/build/bench/simulator_throughput" \
        "$root/BENCH_simulator.json"
    snapshot "$root/build/bench/bench_contention" \
        "$root/BENCH_contention.json"
    snapshot "$root/build/bench/bench_service" \
        "$root/BENCH_service.json"
    ;;
--*)
    echo "perf_snapshot: unknown mode $1" >&2
    exit 2
    ;;
*)
    snapshot "${1:-$root/build/bench/simulator_throughput}" \
        "${2:-$root/BENCH_simulator.json}"
    ;;
esac
