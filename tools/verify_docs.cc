/**
 * @file
 * Docs-coverage checker for the telemetry catalog.
 *
 * Usage: verify_docs <path/to/docs>
 *
 * Three checks, all of which must pass:
 *
 *  1. docs/TELEMETRY.md contains every key in
 *     telemetry::keys::catalog() verbatim (the reference page covers
 *     the whole catalog).
 *  2. docs/SERVICE.md contains every `service.*` catalog key (the
 *     compile-service contract documents its own telemetry family in
 *     full).
 *  3. Reverse doc-rot: every dotted telemetry-key-shaped token in
 *     code spans of any docs page whose first segment is a known
 *     telemetry family must exist in the catalog. A doc referencing
 *     `service.cache.hitz` (or a key that was since renamed) fails
 *     the build instead of silently rotting.
 *
 * This is one side of the enforcement triangle described in
 * telemetry_keys.hh — the other side (runtime keys ⊆ catalog) lives
 * in tests/support_telemetry_test.cc. Exit status 0 on full
 * coverage, 1 with a per-key report otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/telemetry_keys.hh"

namespace fs = std::filesystem;

namespace {

/// Families whose dotted tokens in docs must resolve to catalog
/// keys. Tokens under other prefixes (e.g. the dynamic `bench.*`
/// gauges or plain file names) are ignored.
const std::set<std::string> kFamilies = {
    "machine", "driver",  "timing", "jit",        "runtime",
    "region",  "profile", "fuzz",   "contention", "service",
    "oracle",
};

/// Failpoint names (support/failpoint.hh) share the dotted notation
/// with telemetry keys but are not telemetry; docs may cite them.
/// `oracle.inject.divergence` and `machine.inject.leak` are *both* —
/// failpoint name and the telemetry key counting its firings — so
/// they resolve either way.
const std::set<std::string> kFailpoints = {
    "machine.interrupt", "machine.capacity",     "machine.assert",
    "machine.conflict",  "machine.commit_stall", "timing.mispredict",
    "oracle.inject.divergence", "machine.inject.leak",
};

/// Tokens whose final segment is a file extension are file names
/// (`jit.cc`, `tools/perf_snapshot.sh`), not telemetry keys.
const std::set<std::string> kFileExtensions = {
    "cc", "hh", "md", "sh", "json", "txt", "csv", "py", "cmake", "html",
};

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "verify_docs: cannot open %s\n",
                     path.string().c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
isIdent(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
           c == '_';
}

/// Extract the concatenated code spans of a markdown document:
/// inline `...` spans plus fenced ``` blocks. Non-code prose is
/// dropped so sentence punctuation never parses as a dotted token.
std::string
codeSpans(const std::string &doc)
{
    std::string out;
    bool fenced = false;
    bool inline_code = false;
    for (size_t i = 0; i < doc.size(); ++i) {
        if (doc.compare(i, 3, "```") == 0) {
            fenced = !fenced;
            inline_code = false;
            i += 2;
            out += ' ';
            continue;
        }
        if (!fenced && doc[i] == '`') {
            inline_code = !inline_code;
            out += ' ';
            continue;
        }
        out += (fenced || inline_code) ? doc[i] : ' ';
    }
    return out;
}

/// Dotted lowercase tokens (>= 2 segments) found in `text`. A token
/// must not be preceded by an identifier character, '.', '/', ':',
/// or '-' (paths, namespaces, flags), must not be a call
/// (`machine.run()`), and a trailing `.*` marks a family wildcard
/// rather than a concrete key.
std::vector<std::string>
dottedTokens(const std::string &text)
{
    std::vector<std::string> tokens;
    size_t i = 0;
    const size_t n = text.size();
    while (i < n) {
        char c = text[i];
        if (!(c >= 'a' && c <= 'z')) {
            ++i;
            continue;
        }
        if (i > 0) {
            char p = text[i - 1];
            if (isIdent(p) || (p >= 'A' && p <= 'Z') || p == '.' ||
                p == '/' || p == ':' || p == '-') {
                while (i < n && (isIdent(text[i]) ||
                                 (text[i] >= 'A' && text[i] <= 'Z')))
                    ++i;
                continue;
            }
        }
        size_t start = i;
        size_t segments = 1;
        while (i < n && isIdent(text[i]))
            ++i;
        while (i + 1 < n && text[i] == '.' && text[i + 1] >= 'a' &&
               text[i + 1] <= 'z') {
            ++i;
            ++segments;
            while (i < n && isIdent(text[i]))
                ++i;
        }
        if (segments < 2)
            continue;
        if (i < n && text[i] == '(')
            continue; // method call, not a key
        if (i + 1 < n && text[i] == '.' && text[i + 1] == '*')
            continue; // family wildcard like service.cache.*
        tokens.push_back(text.substr(start, i - start));
    }
    return tokens;
}

bool
isFileName(const std::string &token)
{
    size_t dot = token.rfind('.');
    return dot != std::string::npos &&
           kFileExtensions.count(token.substr(dot + 1)) > 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <docs-dir>\n", argv[0]);
        return 2;
    }
    const fs::path docs(argv[1]);
    if (!fs::is_directory(docs)) {
        std::fprintf(stderr, "verify_docs: %s is not a directory\n",
                     argv[1]);
        return 2;
    }

    const auto &catalog = aregion::telemetry::keys::catalog();
    const std::set<std::string> known(catalog.begin(), catalog.end());
    std::vector<std::string> errors;

    // Check 1: the telemetry reference covers the whole catalog.
    const std::string telemetry = slurp(docs / "TELEMETRY.md");
    for (const std::string &key : catalog) {
        if (telemetry.find(key) == std::string::npos)
            errors.push_back("TELEMETRY.md: catalog key undocumented: " +
                             key);
    }

    // Check 2: the service contract covers its own family in full.
    if (!fs::exists(docs / "SERVICE.md")) {
        errors.push_back(
            "SERVICE.md: missing (the compile-service contract is an "
            "enforced document)");
    } else {
        const std::string service = slurp(docs / "SERVICE.md");
        for (const std::string &key : catalog) {
            if (key.rfind("service.", 0) == 0 &&
                service.find(key) == std::string::npos)
                errors.push_back(
                    "SERVICE.md: service.* key undocumented: " + key);
        }
    }

    // Check 3: reverse doc-rot — dotted family tokens in any doc's
    // code spans must name real catalog keys (or failpoints).
    std::vector<fs::path> pages;
    for (const auto &entry : fs::directory_iterator(docs)) {
        if (entry.path().extension() == ".md")
            pages.push_back(entry.path());
    }
    std::sort(pages.begin(), pages.end());
    size_t scanned_tokens = 0;
    for (const fs::path &page : pages) {
        const std::string code = codeSpans(slurp(page));
        for (const std::string &token : dottedTokens(code)) {
            if (isFileName(token))
                continue;
            const std::string family =
                token.substr(0, token.find('.'));
            if (kFamilies.count(family) == 0)
                continue;
            if (kFailpoints.count(token) > 0)
                continue;
            ++scanned_tokens;
            if (known.count(token) == 0)
                errors.push_back(page.filename().string() +
                                 ": references unknown telemetry "
                                 "key: " +
                                 token);
        }
    }

    if (!errors.empty()) {
        std::fprintf(stderr, "verify_docs: %zu problem(s):\n",
                     errors.size());
        for (const std::string &err : errors)
            std::fprintf(stderr, "  %s\n", err.c_str());
        return 1;
    }
    std::printf("verify_docs: %zu catalog keys documented, %zu doc "
                "references checked, %zu pages scanned\n",
                catalog.size(), scanned_tokens, pages.size());
    return 0;
}
