/**
 * @file
 * Docs-coverage checker for the telemetry catalog.
 *
 * Usage: verify_docs <path/to/TELEMETRY.md>
 *
 * Reads the markdown file and requires that every key in
 * telemetry::keys::catalog() appears in it verbatim. This is half of
 * the enforcement triangle described in telemetry_keys.hh — the
 * other half (runtime keys ⊆ catalog) lives in
 * tests/support_telemetry_test.cc. Exit status 0 on full coverage,
 * 1 with a per-key report otherwise.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/telemetry_keys.hh"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <TELEMETRY.md>\n", argv[0]);
        return 2;
    }
    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "verify_docs: cannot open %s\n",
                     argv[1]);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();

    std::vector<std::string> missing;
    for (const std::string &key :
         aregion::telemetry::keys::catalog()) {
        if (doc.find(key) == std::string::npos)
            missing.push_back(key);
    }
    if (!missing.empty()) {
        std::fprintf(stderr,
                     "verify_docs: %zu catalog key(s) missing from "
                     "%s:\n",
                     missing.size(), argv[1]);
        for (const std::string &key : missing)
            std::fprintf(stderr, "  %s\n", key.c_str());
        return 1;
    }
    std::printf("verify_docs: all %zu catalog keys documented in "
                "%s\n",
                aregion::telemetry::keys::catalog().size(), argv[1]);
    return 0;
}
