#!/bin/sh
# Build the repo under the asan-ubsan preset (CMakePresets.json) and
# run the full tier-1 ctest suite with AddressSanitizer +
# UndefinedBehaviorSanitizer armed. Any sanitizer report fails the
# offending test (-fno-sanitize-recover=all aborts on the first
# finding), so a green run means the suite is clean under both.
#
# Usage: tools/check_sanitizers.sh [extra ctest args...]
#   e.g. tools/check_sanitizers.sh -R Failpoint
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-asan"

cmake --preset asan-ubsan -S "$root"
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error keeps reports fatal even where the recover flag is
# not honoured; detect_leaks stays on (the default) to catch leaked
# allocations in the simulator hot paths.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$build" --output-on-failure \
          -j "$(nproc 2>/dev/null || echo 4)" "$@"

# Differential fuzz smoke (docs/FUZZING.md) under the sanitizers,
# run explicitly so a filtered ctest invocation (-R ...) still
# covers it: random program shapes probe the interpreter, evaluator,
# and machine for memory errors as well as semantic drift.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    "$build/tools/fuzz_diff" --seeds 200 --masks canonical --quiet

echo "check_sanitizers: tier-1 suite + fuzz smoke clean under ASan+UBSan"
