#!/bin/sh
# Build the repo under the asan-ubsan preset (CMakePresets.json) and
# run the full tier-1 ctest suite with AddressSanitizer +
# UndefinedBehaviorSanitizer armed, then rebuild under the tsan
# preset and run the contention torture tests (multi-context
# workloads driving the shared failpoint/telemetry registries from
# parallel grid workers) plus the fuzz smoke under ThreadSanitizer.
# Any sanitizer report fails the offending test
# (-fno-sanitize-recover=all aborts on the first finding), so a
# green run means the suite is clean under all three.
#
# Usage: tools/check_sanitizers.sh [extra ctest args...]
#   e.g. tools/check_sanitizers.sh -R Failpoint
# Extra args apply to the ASan+UBSan leg; the TSan leg's filter is
# fixed. AREGION_SKIP_TSAN=1 skips the TSan leg (for quick loops).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-asan"
build_tsan="$root/build-tsan"

cmake --preset asan-ubsan -S "$root"
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error keeps reports fatal even where the recover flag is
# not honoured; detect_leaks stays on (the default) to catch leaked
# allocations in the simulator hot paths.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$build" --output-on-failure \
          -j "$(nproc 2>/dev/null || echo 4)" "$@"

# Differential fuzz smoke (docs/FUZZING.md) under the sanitizers,
# run explicitly so a filtered ctest invocation (-R ...) still
# covers it: random program shapes probe the interpreter, evaluator,
# and machine for memory errors as well as semantic drift.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    "$build/tools/fuzz_diff" --seeds 200 --masks canonical --quiet

# IR/opt leg, run explicitly so a filtered invocation still covers
# the SSA round-trip and the sparse scalar passes: buildSSA/destroySSA
# splice and free phi instructions aggressively, and the pass
# verifier (AREGION_VERIFY_PASSES) re-walks the full IR after every
# stage — prime territory for use-after-free and indexing errors.
AREGION_VERIFY_PASSES=1 \
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$build" --output-on-failure \
          -j "$(nproc 2>/dev/null || echo 4)" -R 'Ir|Opt'

# Bisimulation-oracle + leakage-observer leg (docs/RESILIENCE.md),
# run explicitly for the same reason as the smoke above: a filtered
# invocation must still exercise the abort-replay machinery (every
# replay walks raw heap words through the copy-on-write HeapView)
# and the leak observer's footprint bookkeeping under the sanitizers.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$build" --output-on-failure \
          -j "$(nproc 2>/dev/null || echo 4)" -R 'Bisim|Leak'

echo "check_sanitizers: tier-1 suite + fuzz smoke + bisim/leak clean under ASan+UBSan"

if [ "${AREGION_SKIP_TSAN:-0}" = "1" ]; then
    echo "check_sanitizers: TSan leg skipped (AREGION_SKIP_TSAN=1)"
    exit 0
fi

# ThreadSanitizer leg. TSan cannot be combined with ASan, so it gets
# its own preset/build dir. The filter selects the contention
# torture suite (grid cells run on parallel::runGrid host workers at
# 2/4/8 hardware contexts, hammering the process-global failpoint
# and telemetry registries), the compile-service suite (persistent
# worker threads racing submit/coalesce/stop against the shared code
# cache and admission controller), the differential fuzz smoke, and
# the bisimulation-oracle / leakage-observer suites (the bisim
# replayer reads the shared heap while other contexts' state sits in
# the same Machine) — the paths where host-thread races can live.
# The Ir|Opt leg rides along: compiles run concurrently on service
# worker threads and grid cells, so the SSA passes' shared telemetry
# writes belong under TSan too.
cmake --preset tsan -S "$root"
cmake --build "$build_tsan" -j "$(nproc 2>/dev/null || echo 4)"

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$build_tsan" --output-on-failure \
          -j "$(nproc 2>/dev/null || echo 4)" \
          -R 'Contention|Service|fuzz-smoke|Bisim|Leak|Ir|Opt'

echo "check_sanitizers: contention + service + ir/opt + bisim/leak suites + fuzz smoke clean under TSan"
