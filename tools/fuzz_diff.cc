/**
 * @file
 * Differential fuzzing driver (docs/FUZZING.md).
 *
 * Sweeps seeds across feature masks, runs every generated program
 * through the three-way differential harness (interpreter vs IR
 * evaluator at every pass-pipeline prefix vs machine simulator with
 * and without timing, rollback oracle armed), minimizes any
 * diverging seed, and writes the minimized reproducer to a corpus
 * directory. Also replays existing corpus entries.
 *
 * Exit status: 0 = no divergence, 1 = divergence found (or a corpus
 * entry failed to replay cleanly), 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "support/parallel.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "testing/corpus.hh"
#include "testing/diff_harness.hh"
#include "testing/minimizer.hh"
#include "testing/random_program.hh"

using namespace aregion;
using namespace aregion::testing;
namespace keys = aregion::telemetry::keys;

namespace {

struct Args
{
    uint64_t seeds = 2000;
    uint64_t start = 1;
    std::vector<uint32_t> masks;
    std::string corpusDir;
    std::string replayPath;
    bool json = false;
    bool quiet = false;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: fuzz_diff [options]\n"
                 "  --seeds N        seeds per feature mask "
                 "(default 2000)\n"
                 "  --start S        first seed (default 1)\n"
                 "  --masks SPEC     comma list of masks: canonical, "
                 "all, legacy,\n"
                 "                   name+name (e.g. traps+arrays), "
                 "or a number\n"
                 "  --corpus-dir D   minimize divergences and write "
                 "*.case files to D\n"
                 "  --replay PATH    replay a corpus .case file or "
                 "directory, then exit\n"
                 "  --json           dump the telemetry registry as "
                 "JSON on exit\n"
                 "  --quiet          suppress per-divergence detail\n");
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fuzz_diff: %s needs a value\n",
                             what);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            const char *v = need("--seeds");
            if (!v)
                return false;
            args.seeds = strtoull(v, nullptr, 0);
        } else if (arg == "--start") {
            const char *v = need("--start");
            if (!v)
                return false;
            args.start = strtoull(v, nullptr, 0);
        } else if (arg == "--masks") {
            const char *v = need("--masks");
            if (!v)
                return false;
            std::string spec = v;
            size_t pos = 0;
            while (pos <= spec.size()) {
                size_t next = spec.find(',', pos);
                if (next == std::string::npos)
                    next = spec.size();
                const std::string word = spec.substr(pos, next - pos);
                if (word == "canonical") {
                    for (uint32_t m : canonicalMasks())
                        args.masks.push_back(m);
                } else {
                    uint32_t mask = 0;
                    if (!parseMask(word, mask)) {
                        std::fprintf(stderr,
                                     "fuzz_diff: bad mask '%s'\n",
                                     word.c_str());
                        return false;
                    }
                    args.masks.push_back(mask);
                }
                pos = next + 1;
            }
        } else if (arg == "--corpus-dir") {
            const char *v = need("--corpus-dir");
            if (!v)
                return false;
            args.corpusDir = v;
        } else if (arg == "--replay") {
            const char *v = need("--replay");
            if (!v)
                return false;
            args.replayPath = v;
        } else if (arg == "--json") {
            args.json = true;
        } else if (arg == "--quiet") {
            args.quiet = true;
        } else {
            std::fprintf(stderr, "fuzz_diff: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return false;
        }
    }
    if (args.masks.empty())
        args.masks = canonicalMasks();
    return true;
}

void
recordReport(telemetry::Registry &reg, const DiffReport &report)
{
    reg.add(keys::kFuzzSeeds);
    if (report.skipped)
        reg.add(keys::kFuzzSkipped);
    if (report.trapped)
        reg.add(keys::kFuzzTrapped);
    if (report.threaded)
        reg.add(keys::kFuzzThreaded);
    reg.add(keys::kFuzzExecutorRuns,
            static_cast<uint64_t>(report.executorRuns));
    reg.add(keys::kFuzzPrefixes,
            static_cast<uint64_t>(report.prefixesRun));
    reg.add(keys::kFuzzDivergences, report.divergences.size());
}

int
replay(const Args &args)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    if (fs::is_directory(args.replayPath)) {
        files = listCorpusFiles(args.replayPath);
    } else {
        files.push_back(args.replayPath);
    }
    if (files.empty()) {
        std::fprintf(stderr, "fuzz_diff: no .case files in %s\n",
                     args.replayPath.c_str());
        return 2;
    }
    telemetry::Registry &reg = telemetry::Registry::global();
    int bad = 0;
    for (const std::string &path : files) {
        GenProgram gp;
        std::string err;
        if (!readCorpusFile(path, gp, &err)) {
            std::fprintf(stderr, "fuzz_diff: %s: %s\n", path.c_str(),
                         err.c_str());
            ++bad;
            continue;
        }
        const DiffReport report = runDiff(gp);
        recordReport(reg, report);
        if (report.diverged()) {
            ++bad;
            std::printf("DIVERGED %s\n%s\n", path.c_str(),
                        report.summary().c_str());
        } else if (!args.quiet) {
            std::printf("ok %s (%s)\n", path.c_str(),
                        report.summary().c_str());
        }
    }
    if (args.json)
        std::printf("%s\n", reg.toJson().c_str());
    std::printf("replayed %zu corpus entries, %d diverging\n",
                files.size(), bad);
    return bad ? 1 : 0;
}

struct Divergence
{
    uint32_t mask;
    uint64_t seed;
    DiffReport report;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        return 2;
    }
    if (!args.replayPath.empty())
        return replay(args);

    telemetry::Registry &reg = telemetry::Registry::global();
    const size_t total =
        args.masks.size() * static_cast<size_t>(args.seeds);

    std::mutex mu;
    std::vector<Divergence> diverging;
    Histogram mainSizes;

    parallel::runGrid(total, [&](size_t cell) {
        const uint32_t mask =
            args.masks[cell / static_cast<size_t>(args.seeds)];
        const uint64_t seed =
            args.start + cell % static_cast<size_t>(args.seeds);
        RandomProgramGen gen(seed, mask);
        const GenProgram gp = gen.generate();
        const DiffReport report = runDiff(gp);
        recordReport(reg, report);
        if (report.diverged()) {
            std::lock_guard<std::mutex> lock(mu);
            diverging.push_back({mask, seed, report});
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            mainSizes.add(
                static_cast<double>(renderedMainSize(gp)));
        }
    });
    reg.merge(keys::kFuzzMainBytecodes, mainSizes);

    for (const Divergence &d : diverging) {
        std::printf("DIVERGED mask=%s seed=%llu\n%s\n",
                    maskName(d.mask).c_str(),
                    static_cast<unsigned long long>(d.seed),
                    d.report.summary().c_str());
        if (args.corpusDir.empty())
            continue;
        RandomProgramGen gen(d.seed, d.mask);
        const GenProgram gp = gen.generate();
        MinimizeStats stats;
        const GenProgram minimal = minimizeProgram(
            gp,
            [](const GenProgram &candidate) {
                return runDiff(candidate).diverged();
            },
            &stats);
        reg.add(keys::kFuzzMinimized);
        reg.add(keys::kFuzzMinimizerCalls, stats.predicateCalls);
        std::filesystem::create_directories(args.corpusDir);
        const std::string path = args.corpusDir + "/mask" +
            std::to_string(d.mask) + "_seed" +
            std::to_string(d.seed) + ".case";
        const std::string comment =
            "fuzz_diff divergence, mask=" + maskName(d.mask) +
            " seed=" + std::to_string(d.seed) + "\n" +
            "minimized " + std::to_string(stats.stmtsBefore) +
            " -> " + std::to_string(stats.stmtsAfter) +
            " statements (" + std::to_string(renderedMainSize(minimal)) +
            " main bytecodes)\n" + runDiff(minimal).summary();
        writeCorpusFile(path, minimal, comment);
        std::printf("  minimized reproducer: %s\n", path.c_str());
    }

    if (args.json)
        std::printf("%s\n", reg.toJson().c_str());

    std::printf(
        "fuzz_diff: %zu seeds (%zu masks x %llu), %llu skipped, "
        "%llu trapped, %zu diverging\n",
        total, args.masks.size(),
        static_cast<unsigned long long>(args.seeds),
        static_cast<unsigned long long>(
            reg.counterValue(keys::kFuzzSkipped)),
        static_cast<unsigned long long>(
            reg.counterValue(keys::kFuzzTrapped)),
        diverging.size());
    return diverging.empty() ? 0 : 1;
}
