/**
 * @file
 * Regenerates Figure 1's motivation numbers on the jython analog:
 * the hottest loop's dynamic path executes hundreds of instructions
 * and many conditional branches per iteration under the baseline
 * compiler (the paper: 109 branches, > 600 instructions), and
 * isolating the hot path in atomic regions removes a large fraction
 * of them (the paper's manual analysis: more than two thirds).
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig1_motivation", argc, argv);
    const auto &w = wl::workloadByName("jython");
    const WorkloadRuns runs = runWorkload(
        w, {core::CompilerConfig::baseline(),
            core::CompilerConfig::atomicAggressiveInline()});
    const auto &base = runs.byConfig.at("no-atomic");
    const auto &atomic = runs.byConfig.at("atomic+aggr-inline");

    // The dispatch loop executes 130 passes over a 128-op program.
    const double passes = 130;
    const double base_per_pass = base.weightedUops / passes;
    const double atomic_per_pass = atomic.weightedUops / passes;

    std::printf("Figure 1: the cost of control flow on the hottest "
                "loop (jython analog)\n\n");
    TextTable table({"metric", "baseline", "atomic regions",
                     "paper"});
    table.addRow({"uops per dispatch-loop pass",
                  TextTable::fmt(base_per_pass, 0),
                  TextTable::fmt(atomic_per_pass, 0),
                  ">600 -> ~1/3 kept"});
    table.addRow({"mispredicted branches (run)",
                  std::to_string(base.mispredicts),
                  std::to_string(atomic.mispredicts), "-"});
    table.addRow({"reduction in loop uops", "-",
                  TextTable::pct(1.0 - atomic_per_pass /
                                           base_per_pass, 1),
                  "up to 2/3 (manual)"});
    table.addRow({"unique atomic regions", "-",
                  std::to_string(atomic.uniqueRegions), "-"});
    table.addRow({"avg dynamic region size", "-",
                  TextTable::fmt(atomic.avgRegionSize, 0), "227"});
    std::printf("%s\n", table.render().c_str());
    std::printf("The CFG shapes of Figure 1(a)-(d) are demonstrated "
                "structurally by\nbench/fig5_formation and "
                "examples/region_explorer.\n");
    report.addTable("fig1", table);
    return report.finish();
}
