/**
 * @file
 * Regenerates Figure 9: sensitivity of the atomic+aggressive-inline
 * configuration to the hardware implementation of the atomic
 * primitives. All runs use the same code on three machines:
 * the non-stalling checkpoint substrate, a 20-cycle pipeline stall
 * at every aregion_begin, and a single-in-flight-region decode
 * stall. The paper's finding: both degraded implementations erase
 * nearly all of the benefit, except for antlr (sparse region use).
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig9_sensitivity", argc, argv);
    // Paper Figure 9 (eyeballed; % speedup over baseline binary).
    const std::map<std::string, std::vector<double>> paper{
        {"antlr", {22, 18, 15}},  {"bloat", {32, 5, -5}},
        {"fop", {5, 0, -2}},      {"hsqldb", {56, 10, 2}},
        {"jython", {35, 3, -8}},  {"pmd", {2, -6, -10}},
        {"xalan", {25, 2, -10}},
    };

    std::printf("Figure 9: sensitivity to the hardware atomic "
                "primitive implementation\n");
    std::printf("(%% speedup of atomic+aggr-inline code over the "
                "baseline binary; paper in parens)\n\n");

    TextTable table({"bench", "chkpt", "(p)", "+20-cycle", "(p)",
                     "single-inflight", "(p)"});
    const std::vector<hw::TimingConfig> machines{
        hw::TimingConfig::baseline(), hw::TimingConfig::stallBegin(),
        hw::TimingConfig::singleInflight()};

    // Grid: workload × machine × {baseline, atomic+aggr-inline}.
    // The timing model varies per cell, so this binary builds
    // GridCells directly instead of going through runSuiteGrid.
    const std::vector<BuiltWorkload> built =
        buildPrograms(suitePointers());
    std::vector<GridCell> cells;
    for (size_t wi = 0; wi < built.size(); ++wi) {
        for (const hw::TimingConfig &machine : machines) {
            for (const core::CompilerConfig &cc :
                 {core::CompilerConfig::baseline(),
                  core::CompilerConfig::atomicAggressiveInline()}) {
                rt::ExperimentConfig config;
                config.compiler = cc;
                config.timing = machine;
                cells.push_back({wi, std::move(config)});
            }
        }
    }
    const std::vector<rt::RunMetrics> slots =
        runCellGrid(built, cells);

    std::map<int, std::vector<double>> averages;
    size_t slot = 0;
    for (const BuiltWorkload &b : built) {
        const std::string &name = b.workload->name;
        std::vector<std::string> row{name};
        for (size_t m = 0; m < machines.size(); ++m) {
            const rt::RunMetrics &base = slots[slot++];
            const rt::RunMetrics &atomic = slots[slot++];
            const double measured = speedupPct(base, atomic);
            row.push_back(TextTable::fmt(measured, 1) + "%");
            row.push_back("(" +
                          TextTable::fmt(
                              paper.at(name)[m], 0) + "%)");
            averages[static_cast<int>(m)].push_back(measured);
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg{"average"};
    for (size_t m = 0; m < machines.size(); ++m) {
        avg.push_back(TextTable::fmt(
            mean(averages[static_cast<int>(m)]), 1) + "%");
        avg.push_back("(-)");
    }
    table.addRow(std::move(avg));
    std::printf("%s\n", table.render().c_str());
    std::printf("Both degraded primitives must erase most of the "
                "benefit (the paper's Section 6.3 finding).\n");
    report.addTable("fig9", table);
    return report.finish();
}
