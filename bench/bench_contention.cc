/**
 * @file
 * Contention torture bench: abort-rate vs contention-level curves.
 *
 * Runs the three shared-heap contention workloads
 * (src/workloads/contention/) at 2–32 worker contexts with the
 * cross-context rollback oracle and the contention governor
 * attached, and reports — per (workload, contexts) cell — region
 * entries/commits, conflict aborts (the counter every single-context
 * figure leaves at zero), aborts per 1k commits, and governor
 * activity. `tools/perf_snapshot.sh` snapshots the JSON export to
 * BENCH_contention.json (the `bench-contention` target).
 *
 * Flags (beyond the shared --json):
 *   --workload <name>   run one workload instead of the suite
 *   --contexts <n>      run one contention level instead of the curve
 *   --seed <n>          governor/injection seed (default 1)
 *   --inject            arm machine.conflict + machine.commit_stall
 *
 * The oracle stamps failing cells with exactly these flags, so any
 * reported divergence is a one-line replay.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "support/table.hh"
#include "workloads/contention/contention.hh"

namespace {

namespace bench = aregion::bench;
namespace ct = aregion::workloads::contention;
namespace failpoint = aregion::failpoint;

/** Forced-contention spec for --inject: rare forced conflicts at
 *  aregion_end plus held-open commits that widen the overlap
 *  windows. Probabilities are deliberately mild — injected cells
 *  must still complete. */
constexpr const char *kInjectSpec =
    "machine.conflict:p0.02,machine.commit_stall:p0.05=64";

} // namespace

int
main(int argc, char **argv)
{
    // Strip this binary's own flags before BenchReport parses the
    // remainder (it owns --json; its --inject/--seed grammar differs
    // from ours, so they must never reach it).
    std::string only_workload;
    int only_contexts = 0;
    uint64_t seed = 1;
    bool inject = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc) {
            only_workload = argv[++i];
        } else if (arg == "--contexts" && i + 1 < argc) {
            only_contexts = std::atoi(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--inject") {
            inject = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    bench::BenchReport report("contention", argc, argv);

    std::vector<int> levels{2, 4, 8, 16, 32};
    if (only_contexts > 0)
        levels = {only_contexts};
    std::vector<const ct::ContentionWorkload *> suite;
    if (only_workload.empty()) {
        for (const ct::ContentionWorkload &w : ct::contentionSuite())
            suite.push_back(&w);
    } else {
        suite.push_back(&ct::contentionWorkloadByName(only_workload));
    }

    // Injection is grid-scoped: the registry is process-global, so
    // arming must finish before any machine starts evaluating.
    if (inject) {
        auto &fps = failpoint::Registry::global();
        fps.setSeed(seed);
        std::string err;
        if (fps.configure(kInjectSpec, &err) < 0) {
            std::fprintf(stderr, "inject spec: %s\n", err.c_str());
            return 2;
        }
    }

    std::vector<ct::GridCell> cells;
    for (const int level : levels) {
        for (const ct::ContentionWorkload *w : suite) {
            ct::ContentionRunConfig cfg;
            cfg.contexts = level;
            cfg.seed = seed;
            cells.push_back({w, cfg});
        }
    }
    const std::vector<ct::CellResult> results =
        ct::runContentionGrid(cells);
    if (inject)
        failpoint::Registry::global().disarmAll();

    aregion::TextTable table({"workload", "contexts", "entries",
                              "commits", "aborts", "conflicts",
                              "inj.conflicts", "aborts/1k commits",
                              "backoff steps", "livelock breaks",
                              "ok"});
    int problems = 0;
    uint64_t total_conflicts = 0;
    for (const ct::CellResult &r : results) {
        const double per1k =
            r.regionCommits
                ? 1000.0 * static_cast<double>(r.totalAborts) /
                      static_cast<double>(r.regionCommits)
                : 0.0;
        const bool ok = r.completed && r.outputMatches &&
            r.problems.empty();
        table.addRow({r.workload, std::to_string(r.contexts),
                      std::to_string(r.regionEntries),
                      std::to_string(r.regionCommits),
                      std::to_string(r.totalAborts),
                      std::to_string(r.conflictAborts),
                      std::to_string(r.injectedConflicts),
                      aregion::TextTable::fmt(per1k, 2),
                      std::to_string(r.backoffSteps),
                      std::to_string(r.livelockBreaks),
                      ok ? "yes" : "NO"});
        total_conflicts += r.conflictAborts;
        if (!ok) {
            problems++;
            for (const std::string &p : r.problems)
                std::fprintf(stderr, "FAIL %s@%d: %s\n",
                             r.workload.c_str(), r.contexts,
                             p.c_str());
        }
    }
    std::printf("%s\n", table.render().c_str());

    report.addTable("contention", table);
    report.addMetric("conflict_aborts",
                     static_cast<double>(total_conflicts));
    report.addMetric("cells", static_cast<double>(results.size()));
    report.addMetric("failed_cells", problems);
    report.setContentionLevel(levels.back());

    const int json_rc = report.finish();
    return problems ? 1 : json_rc;
}
