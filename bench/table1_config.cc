/**
 * @file
 * Regenerates Table 1: the baseline processor parameters, as
 * actually configured in the timing and functional models, next to
 * the paper's values.
 */

#include <cstdio>

#include "bench_common.hh"
#include "hw/timing.hh"
#include "support/table.hh"

using namespace aregion;

int
main(int argc, char **argv)
{
    bench::BenchReport report("table1_config", argc, argv);
    const hw::TimingConfig t = hw::TimingConfig::baseline();
    const hw::HwConfig h;

    std::printf("Table 1: baseline processor parameters\n\n");
    TextTable table({"parameter", "model", "paper"});
    table.addRow({"Processor frequency", "4.0 GHz (cycle-based)",
                  "4.0 GHz"});
    table.addRow({"Rename/issue/retire width",
                  std::to_string(t.width) + "/" +
                      std::to_string(t.width) + "/" +
                      std::to_string(t.width),
                  "4/4/4"});
    table.addRow({"Branch mispred. penalty",
                  std::to_string(t.mispredictPenalty) + " cycles",
                  "20 cycles"});
    table.addRow({"Instruction window size",
                  std::to_string(t.robSize), "128"});
    table.addRow({"Scheduling window size",
                  std::to_string(t.schedWindow), "64"});
    table.addRow({"Branch predictor",
                  "combine: 64K gshare/16K bimod",
                  "combine: 64K gshare/16K bimod"});
    table.addRow({"Hardware data prefetcher",
                  t.prefetcher ? "stream (next-line)" : "off",
                  "stream-based (16 streams)"});
    table.addRow({"L1 data cache",
                  "32 KB, " + std::to_string(t.l1Assoc) + "-way, " +
                      std::to_string(t.l1Latency) +
                      " cycle hit, 64B line",
                  "32 KB, 4-way, 4 cycle hit, 64B line"});
    table.addRow({"L2 unified cache",
                  "4 MB, " + std::to_string(t.l2Assoc) + "-way, " +
                      std::to_string(t.l2Latency) + " cycle hit",
                  "4 MB, 8-way, 20 cycle hit, 64B line"});
    table.addRow({"Memory latency",
                  std::to_string(t.memLatency) +
                      " cycles (100 ns at 4 GHz)",
                  "100 ns"});
    table.addRow({"Speculative footprint bound",
                  std::to_string(h.l1Lines) + " lines, " +
                      std::to_string(h.l1Assoc) + " ways/set",
                  "L1-resident (best effort)"});
    std::printf("%s\n", table.render().c_str());
    std::printf("Differences from the paper's simulator (trace "
                "cache, TLBs, load/store\nbuffer sizes) are "
                "documented in DESIGN.md: instruction fetch is\n"
                "modeled as ideal, so those structures have no "
                "effect here.\n");
    report.addTable("table1", table);
    return report.finish();
}
