/**
 * @file
 * Ablation: the region size target R (= LOOPPATHTHRESHOLD; the
 * paper sets both to 200 HIR operations, Section 4). Sweeping R
 * shows the trade-off the paper's Equation 1 balances: small
 * regions waste begin/end overhead and forgo cross-iteration
 * redundancy; oversized regions risk footprint overflow and amplify
 * abort cost.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_region_size", argc, argv);
    std::printf("Ablation: region size target R "
                "(atomic+aggr-inline, xalan + hsqldb + jython)\n\n");
    TextTable table({"R", "avg speedup", "avg region size",
                     "abort%", "overflow aborts"});
    // Grid: one baseline cell per workload (the baseline does not
    // depend on R, so it runs once instead of once per sweep point)
    // plus a cell per (R, workload); all through the parallel driver.
    const std::vector<double> sweep{25.0, 50.0, 100.0,
                                    200.0, 400.0, 800.0};
    const std::vector<BuiltWorkload> built =
        buildPrograms(suitePointers({"xalan", "hsqldb", "jython"}));
    std::vector<GridCell> cells;
    for (size_t wi = 0; wi < built.size(); ++wi) {
        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        cells.push_back({wi, std::move(base)});
    }
    for (const double r : sweep) {
        for (size_t wi = 0; wi < built.size(); ++wi) {
            rt::ExperimentConfig config;
            config.compiler =
                core::CompilerConfig::atomicAggressiveInline();
            config.compiler.region.targetSize = r;
            config.compiler.region.loopPathThreshold = r;
            cells.push_back({wi, std::move(config)});
        }
    }
    const std::vector<rt::RunMetrics> slots =
        runCellGrid(built, cells);

    for (size_t ri = 0; ri < sweep.size(); ++ri) {
        std::vector<double> speedups;
        double sizes = 0;
        double aborts = 0;
        uint64_t overflows = 0;
        int n = 0;
        for (size_t wi = 0; wi < built.size(); ++wi) {
            const rt::RunMetrics &mb = slots[wi];
            const rt::RunMetrics &m =
                slots[built.size() * (1 + ri) + wi];
            speedups.push_back(speedupPct(mb, m));
            sizes += m.avgRegionSize;
            aborts += m.abortPct;
            for (const auto &[key, stats] : m.machine.regions) {
                overflows += stats.abortsByCause[
                    static_cast<int>(hw::AbortCause::Overflow)];
            }
            ++n;
        }
        table.addRow({TextTable::fmt(sweep[ri], 0),
                      TextTable::fmt(mean(speedups), 1) + "%",
                      TextTable::fmt(sizes / n, 0),
                      TextTable::pct(aborts / n, 2),
                      std::to_string(overflows)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The paper picks R = 200 as large enough for "
                "optimization scope without\nsacrificing the "
                "best-effort footprint bound.\n");
    report.addTable("ablation_region_size", table);
    return report.finish();
}
