/**
 * @file
 * Ablation: the region size target R (= LOOPPATHTHRESHOLD; the
 * paper sets both to 200 HIR operations, Section 4). Sweeping R
 * shows the trade-off the paper's Equation 1 balances: small
 * regions waste begin/end overhead and forgo cross-iteration
 * redundancy; oversized regions risk footprint overflow and amplify
 * abort cost.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_region_size", argc, argv);
    std::printf("Ablation: region size target R "
                "(atomic+aggr-inline, xalan + hsqldb + jython)\n\n");
    TextTable table({"R", "avg speedup", "avg region size",
                     "abort%", "overflow aborts"});
    for (const double r : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
        std::vector<double> speedups;
        double sizes = 0;
        double aborts = 0;
        uint64_t overflows = 0;
        int n = 0;
        for (const char *name : {"xalan", "hsqldb", "jython"}) {
            const auto &w = wl::workloadByName(name);
            const vm::Program pp = w.build(true);
            const vm::Program mp = w.build(false);

            rt::ExperimentConfig base;
            base.compiler = core::CompilerConfig::baseline();
            const auto mb = rt::runExperiment(pp, mp, base,
                                              w.samples);

            rt::ExperimentConfig config;
            config.compiler =
                core::CompilerConfig::atomicAggressiveInline();
            config.compiler.region.targetSize = r;
            config.compiler.region.loopPathThreshold = r;
            const auto m = rt::runExperiment(pp, mp, config,
                                             w.samples);
            speedups.push_back(speedupPct(mb, m));
            sizes += m.avgRegionSize;
            aborts += m.abortPct;
            for (const auto &[key, stats] : m.machine.regions) {
                overflows += stats.abortsByCause[
                    static_cast<int>(hw::AbortCause::Overflow)];
            }
            ++n;
        }
        table.addRow({TextTable::fmt(r, 0),
                      TextTable::fmt(mean(speedups), 1) + "%",
                      TextTable::fmt(sizes / n, 0),
                      TextTable::pct(aborts / n, 2),
                      std::to_string(overflows)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The paper picks R = 200 as large enough for "
                "optimization scope without\nsacrificing the "
                "best-effort footprint bound.\n");
    report.addTable("ablation_region_size", table);
    return report.finish();
}
