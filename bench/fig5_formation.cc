/**
 * @file
 * Regenerates Figure 5: region formation before/after on the
 * paper's example CFG — a loop (header B) nested in an outer loop
 * (header F), with cold edges (<1%) out of B and C, a 50% diamond
 * (D/E), and a hot back edge. The bench prints the formed structure
 * and checks the paper's properties: per-iteration regions at the
 * selected loop header, partial unrolling of the outer loop's body,
 * cold edges converted to asserts, and exits committing at
 * aregion_end before re-entering at aregion_begin.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/region_formation.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::ir;

namespace {

Instr
mk(Op op, Vreg dst = NO_VREG, std::vector<Vreg> srcs = {},
   int64_t imm = 0)
{
    Instr in;
    in.op = op;
    in.dst = dst;
    in.srcs = std::move(srcs);
    in.imm = imm;
    return in;
}

/** Build the Figure 5(a) flowgraph with the paper's edge biases. */
Function
figure5a()
{
    Function f;
    f.name = "figure5a";
    const Vreg c = f.newVreg();
    const Vreg x = f.newVreg();
    // Blocks: 0=entry(F pre-header) 1=F(outer header) 2=B(inner
    // header) 3=C 4=I(cold) 5=D 6=E 7=H(latch) 8=G(exit)
    for (int i = 0; i < 9; ++i)
        f.newBlock();
    auto fill = [&](int b, int ops, std::vector<int> succs,
                    std::vector<double> counts, bool branch) {
        Block &blk = f.block(b);
        for (int i = 0; i < ops; ++i)
            blk.instrs.push_back(mk(Op::Add, x, {x, x}));
        if (branch)
            blk.instrs.push_back(mk(Op::Branch, NO_VREG, {c}));
        else if (!succs.empty())
            blk.instrs.push_back(mk(Op::Jump));
        else
            blk.instrs.push_back(mk(Op::Ret));
        double exec = 0;
        for (double v : counts)
            exec += v;
        blk.execCount = exec;
        blk.succs = std::move(succs);
        blk.succCount = std::move(counts);
    };
    f.block(0).instrs.push_back(mk(Op::Const, c, {}, 1));
    f.block(0).instrs.push_back(mk(Op::Const, x, {}, 1));
    f.block(0).instrs.push_back(mk(Op::Jump));
    f.block(0).succs = {1};
    f.block(0).succCount = {100};
    f.block(0).execCount = 100;

    fill(1, 4, {2}, {10100}, false);                // F -> B
    fill(2, 6, {3, 4}, {100000, 900}, true);        // B -> C | I(cold-ish)
    // Re-balance: B->I is <1% of B.
    f.block(2).succCount = {100000, 900};
    fill(3, 6, {5, 6}, {50450, 50450}, true);       // C -> D | E (50%)
    fill(4, 5, {7}, {900}, false);                  // I -> H (cold)
    fill(5, 5, {7}, {50450}, false);                // D -> H
    fill(6, 5, {7}, {50450}, false);                // E -> H
    fill(7, 4, {2, 1, 8}, {0, 0, 0}, true);         // H: back edges
    // H -> B (inner back edge, 99%), H -> F (outer, ~1%), H -> G.
    f.block(7).succs = {2, 1};
    f.block(7).instrs.back() = mk(Op::Branch, NO_VREG, {c});
    f.block(7).succCount = {90800, 10000};
    f.block(7).execCount = 101800 - 1000;
    // Give F a second successor to G so the program exits.
    f.block(1).instrs.back() = mk(Op::Branch, NO_VREG, {c});
    f.block(1).succs = {2, 8};
    f.block(1).succCount = {10100 - 100, 100};
    f.block(1).execCount = 10100;
    f.block(2).execCount = 100900;
    f.block(3).execCount = 100900 * 0.99;
    f.block(8).instrs.clear();
    f.block(8).instrs.push_back(mk(Op::Ret));
    f.block(8).execCount = 100;
    f.entry = 0;
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report("fig5_formation", argc, argv);
    Function f = figure5a();
    verifyOrDie(f);
    std::printf("Figure 5(a): flowgraph before region formation\n");
    std::printf("%s\n", toString(f).c_str());

    core::RegionConfig config;
    const auto selected = core::selectBoundaries(f, config);
    std::printf("Selected region boundaries (Algorithm 1):");
    for (int b : selected)
        std::printf(" b%d", b);
    std::printf("\n\n");

    const auto stats = core::formRegions(f, config);
    verifyOrDie(f);
    std::printf("Figure 5(b): after formation\n");
    std::printf("%s\n", toString(f).c_str());

    TextTable table({"metric", "value"});
    table.addRow({"regions formed",
                  std::to_string(stats.regionsFormed)});
    table.addRow({"blocks replicated",
                  std::to_string(stats.blocksReplicated)});
    table.addRow({"asserts created (cold edges)",
                  std::to_string(stats.assertsCreated)});
    table.addRow({"region exits (aregion_end)",
                  std::to_string(stats.regionExits)});
    table.addRow({"partially unrolled regions",
                  std::to_string(stats.unrolledRegions)});
    std::printf("%s\n", table.render().c_str());
    report.addTable("fig5", table);
    return report.finish();
}
