/**
 * @file
 * Regenerates Figures 2/3: compiler-based redundancy removal on the
 * SuballocatedIntVector.addElement example, called twice in
 * sequence at its hottest call site. Three compilers are compared:
 *
 *   (a) inlined but otherwise minimally optimized (Figure 3a),
 *   (b) the baseline non-speculative pipeline, whose cold-path joins
 *       block redundancy elimination (Figure 3b/c needs compensation
 *       code the baseline cannot afford),
 *   (c) atomic regions, where the cold paths become asserts and the
 *       same passes remove the redundant checks and loads with no
 *       compensation code.
 */

#include <cstdio>

#include "bench_common.hh"
#include "ir/ir.hh"
#include "support/table.hh"
#include "vm/interpreter.hh"

// The shared sample-program library (also used by the test suite).
#include "programs.hh"

using namespace aregion;
using namespace aregion::bench;
using aregion::test::addElementProgram;

namespace {

struct Counts
{
    uint64_t uopsPerInsert;
    int nullChecks;
    int boundsChecks;
    int lengthLoads;
};

Counts
measure(const vm::Program &prog, core::CompilerConfig config)
{
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        interp.run();
    }
    core::Compiled compiled =
        core::compileProgram(prog, profile, config);

    Counts counts{};
    // Static checks on the hot code (main, where the pair of calls
    // is inlined).
    const ir::Function &f = compiled.mod.funcs.at(prog.mainMethod);
    for (int b = 0; b < f.numBlocks(); ++b) {
        const ir::Block &blk = f.block(b);
        if (blk.execCount < 100)
            continue;   // hot code only
        for (const auto &in : blk.instrs) {
            counts.nullChecks += in.op == ir::Op::NullCheck;
            counts.boundsChecks += in.op == ir::Op::BoundsCheck;
            counts.lengthLoads +=
                in.op == ir::Op::LoadRaw &&
                in.imm == vm::layout::ARR_LEN;
        }
    }

    runtime::ExperimentConfig ec;
    ec.compiler = config;
    const auto metrics = runtime::runExperiment(prog, prog, ec);
    counts.uopsPerInsert = metrics.retiredUops / (2 * 3000);
    return counts;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("fig3_redundancy", argc, argv);
    const vm::Program prog = addElementProgram(3000, 512);

    core::CompilerConfig unopt = core::CompilerConfig::baseline();
    unopt.name = "inlined-only";
    unopt.opt.unrollBodyLimit = 0;
    unopt.opt.maxScalarIters = 1;

    const Counts a = measure(prog, unopt);
    const Counts b = measure(prog, core::CompilerConfig::baseline());
    const Counts c = measure(prog, core::CompilerConfig::atomic());

    std::printf("Figure 3: redundancy removal on addElement "
                "(two sequential calls inlined)\n\n");
    TextTable table({"metric", "inlined-only", "baseline",
                     "atomic region"});
    table.addRow({"uops per insert",
                  std::to_string(a.uopsPerInsert),
                  std::to_string(b.uopsPerInsert),
                  std::to_string(c.uopsPerInsert)});
    table.addRow({"static null checks (hot code*)",
                  std::to_string(a.nullChecks),
                  std::to_string(b.nullChecks),
                  std::to_string(c.nullChecks)});
    table.addRow({"static bounds checks (hot code*)",
                  std::to_string(a.boundsChecks),
                  std::to_string(b.boundsChecks),
                  std::to_string(c.boundsChecks)});
    table.addRow({"static length loads (hot code*)",
                  std::to_string(a.lengthLoads),
                  std::to_string(b.lengthLoads),
                  std::to_string(c.lengthLoads)});
    std::printf("%s\n", table.render().c_str());
    std::printf("* atomic-region static counts span the region's "
                "partially-unrolled copies\n  (4 iterations = 8 "
                "inserts); divide accordingly to compare per "
                "insert.\n");
    std::printf("Expected shape (paper Fig. 3): the atomic-region "
                "compiler removes the second\ncopy's redundant "
                "null check and length load with no compensation "
                "code, while\nthe baseline is blocked by the cold "
                "chunk-overflow join.\n");
    report.addTable("fig3", table);
    return report.finish();
}
