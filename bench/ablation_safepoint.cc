/**
 * @file
 * Ablation (paper Section 6.4): eliding GC safepoint polls inside
 * atomic regions. The paper attempted this and was blocked by a
 * register-allocator interaction; on this substrate the
 * transformation is clean (timer interrupts abort in-flight regions,
 * bounding preemption latency), so the ablation shows the benefit
 * the authors were reaching for.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_safepoint", argc, argv);
    std::printf("Ablation: safepoint elision inside regions "
                "(Section 6.4)\n\n");
    TextTable table({"bench", "speedup w/o elision",
                     "speedup w/ elision"});
    // Grid: baseline / elision-off / elision-on per workload, fanned
    // across the parallel driver.
    const std::vector<BuiltWorkload> built = buildPrograms(
        suitePointers({"xalan", "hsqldb", "jython", "bloat"}));
    std::vector<GridCell> cells;
    for (size_t wi = 0; wi < built.size(); ++wi) {
        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        cells.push_back({wi, std::move(base)});

        rt::ExperimentConfig off;
        off.compiler = core::CompilerConfig::atomicAggressiveInline();
        cells.push_back({wi, off});

        rt::ExperimentConfig on = off;
        on.compiler.elideSafepointsInRegions = true;
        cells.push_back({wi, std::move(on)});
    }
    const std::vector<rt::RunMetrics> slots =
        runCellGrid(built, cells);

    size_t slot = 0;
    for (const BuiltWorkload &b : built) {
        const rt::RunMetrics &mb = slots[slot++];
        const rt::RunMetrics &moff = slots[slot++];
        const rt::RunMetrics &mon = slots[slot++];
        table.addRow({b.workload->name,
                      TextTable::fmt(speedupPct(mb, moff), 1) + "%",
                      TextTable::fmt(speedupPct(mb, mon), 1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Preemption stays bounded: timer interrupts abort "
                "in-flight regions, and the\nnon-speculative "
                "version keeps its polls.\n");
    report.addTable("ablation_safepoint", table);
    return report.finish();
}
