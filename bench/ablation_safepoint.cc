/**
 * @file
 * Ablation (paper Section 6.4): eliding GC safepoint polls inside
 * atomic regions. The paper attempted this and was blocked by a
 * register-allocator interaction; on this substrate the
 * transformation is clean (timer interrupts abort in-flight regions,
 * bounding preemption latency), so the ablation shows the benefit
 * the authors were reaching for.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_safepoint", argc, argv);
    std::printf("Ablation: safepoint elision inside regions "
                "(Section 6.4)\n\n");
    TextTable table({"bench", "speedup w/o elision",
                     "speedup w/ elision"});
    for (const char *name : {"xalan", "hsqldb", "jython", "bloat"}) {
        const auto &w = wl::workloadByName(name);
        const vm::Program pp = w.build(true);
        const vm::Program mp = w.build(false);

        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        const auto mb = rt::runExperiment(pp, mp, base, w.samples);

        rt::ExperimentConfig off;
        off.compiler = core::CompilerConfig::atomicAggressiveInline();
        const auto moff = rt::runExperiment(pp, mp, off, w.samples);

        rt::ExperimentConfig on = off;
        on.compiler.elideSafepointsInRegions = true;
        const auto mon = rt::runExperiment(pp, mp, on, w.samples);

        table.addRow({name,
                      TextTable::fmt(speedupPct(mb, moff), 1) + "%",
                      TextTable::fmt(speedupPct(mb, mon), 1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Preemption stays bounded: timer interrupts abort "
                "in-flight regions, and the\nnon-speculative "
                "version keeps its polls.\n");
    report.addTable("ablation_safepoint", table);
    return report.finish();
}
