/**
 * @file
 * Regenerates Figure 7: execution-time speedup over the baseline
 * (no-atomic) binary for the `atomic`, `no-atomic + aggressive
 * inlining`, and `atomic + aggressive inlining` configurations,
 * plus the jython forced-monomorphic grey bar. All runs use the
 * same Table 1 hardware; differences come from code quality alone.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig7_speedup", argc, argv);
    const std::vector<std::string> configs{
        "atomic", "no-atomic+aggr-inline", "atomic+aggr-inline"};

    TextTable table({"bench", "atomic", "(paper)",
                     "no-atomic+aggr", "(paper)", "atomic+aggr",
                     "(paper)"});
    std::map<std::string, std::vector<double>> averages;

    std::printf("Figure 7: %% speedup over baseline (no-atomic) "
                "binary\n");
    std::printf("(paper values in parentheses; same hardware, "
                "different compilers)\n\n");

    // All workload × configuration cells run through the parallel
    // driver; the table below is assembled serially in suite order,
    // so output is identical whatever AREGION_JOBS is.
    const std::vector<WorkloadRuns> suite_runs = runSuiteGrid(
        buildPrograms(suitePointers()), [](const wl::Workload &w) {
            return paperConfigs(w.name == "jython");
        });

    for (const WorkloadRuns &runs : suite_runs) {
        const std::string &name = runs.workload;
        const bool grey = name == "jython";
        const auto &base = runs.byConfig.at("no-atomic");
        std::vector<std::string> row{name};
        for (const auto &config : configs) {
            const double measured =
                speedupPct(base, runs.byConfig.at(config));
            const double paper =
                paperFigure7().at(name).at(config);
            row.push_back(TextTable::fmt(measured, 1) + "%");
            row.push_back("(" + TextTable::fmt(paper, 0) + "%)");
            averages[config].push_back(measured);
        }
        table.addRow(std::move(row));
        if (grey) {
            const double forced = speedupPct(
                base, runs.byConfig.at("atomic+forced-mono"));
            table.addRow({"jython*", TextTable::fmt(forced, 1) + "%",
                          "(10%)", "-", "-", "-", "-"});
        }
    }

    std::vector<std::string> avg_row{"average"};
    const std::map<std::string, double> paper_avg{
        {"atomic", 10.2}, {"no-atomic+aggr-inline", 7.5},
        {"atomic+aggr-inline", 25.3}};
    for (const auto &config : configs) {
        avg_row.push_back(
            TextTable::fmt(mean(averages[config]), 1) + "%");
        avg_row.push_back("(" +
                          TextTable::fmt(paper_avg.at(config), 1) +
                          "%)");
    }
    table.addRow(std::move(avg_row));

    std::printf("%s\n", table.render().c_str());
    std::printf("jython* = atomic with the forced-monomorphic "
                "partial-inlining fix (the grey bar).\n");
    report.addTable("fig7", table);
    return report.finish();
}
