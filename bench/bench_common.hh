/**
 * @file
 * Shared harness for the table/figure benchmark binaries: runs a
 * workload under the paper's compiler configurations and computes
 * the derived metrics each table reports. Paper reference values
 * (eyeballed from the published figures) are carried alongside so
 * every binary prints measured-vs-paper columns.
 */

#ifndef AREGION_BENCH_COMMON_HH
#define AREGION_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/jit.hh"
#include "support/failpoint.hh"
#include "support/parallel.hh"
#include "support/table.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "workloads/workload.hh"

namespace aregion::bench {

namespace rt = aregion::runtime;
namespace core = aregion::core;
namespace hw = aregion::hw;
namespace wl = aregion::workloads;

/**
 * Shared CLI + export harness for the bench binaries.
 *
 * Every binary accepts `--json <path>`: alongside the usual stdout
 * tables it then writes a machine-readable JSON file containing each
 * table it registered plus the full process telemetry snapshot
 * (docs/TELEMETRY.md), so `BENCH_*.json` trajectories can be
 * automated (see EXPERIMENTS.md).
 *
 * Fault-injection flags (docs/RESILIENCE.md): `--inject
 * <name:spec,...>` arms failpoints for the whole run (same grammar
 * as AREGION_FAILPOINTS) and `--seed <n>` fixes the injection PRNG
 * seed. When either is given, the JSON export records the canonical
 * armed set and the seed so injected runs are reproducible from
 * their report alone.
 *
 * Usage in a binary:
 *
 *   int main(int argc, char **argv) {
 *       bench::BenchReport report("fig7_speedup", argc, argv);
 *       ...
 *       std::printf("%s\n", table.render().c_str());
 *       report.addTable("fig7", table);
 *       return report.finish();
 *   }
 */
class BenchReport
{
  public:
    /** Parses and strips `--json <path>` from argv (so wrapped
     *  argument parsers, e.g. google-benchmark's, never see it). */
    BenchReport(std::string bench_name, int &argc, char **argv)
        : name(std::move(bench_name))
    {
        // Stable schema: every export carries every documented key,
        // zero-valued when the binary never exercised it.
        telemetry::keys::preregister(telemetry::Registry::global());
        int out = 1;
        std::string inject_csv;
        std::string seed_arg;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                jsonPath = argv[++i];
            } else if (arg == "--inject" && i + 1 < argc) {
                inject_csv = argv[++i];
            } else if (arg == "--seed" && i + 1 < argc) {
                seed_arg = argv[++i];
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        auto &fps = failpoint::Registry::global();
        if (!seed_arg.empty()) {
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(seed_arg.c_str(), &end, 10);
            if (end == seed_arg.c_str() || *end != '\0') {
                std::fprintf(stderr, "--seed: not a number: %s\n",
                             seed_arg.c_str());
                std::exit(2);
            }
            fps.setSeed(static_cast<uint64_t>(parsed));
            injectRecorded = true;
        }
        if (!inject_csv.empty()) {
            std::string err;
            if (fps.configure(inject_csv, &err) < 0) {
                std::fprintf(stderr, "--inject: %s\n", err.c_str());
                std::exit(2);
            }
            injectRecorded = true;
        }
    }

    /** Register a rendered table for the JSON export. */
    void addTable(const std::string &title,
                  const aregion::TextTable &table)
    {
        tables.emplace_back(title, table);
    }

    /** Free-form scalar result carried into the JSON export. */
    void addMetric(const std::string &key, double value)
    {
        telemetry::Registry::global().set("bench." + name + "." + key,
                                          value);
    }

    /** Highest hardware-context count this run exercised; 1 (the
     *  default) means single-context, i.e. every historical bench.
     *  Recorded in the JSON `env` block so snapshots from contended
     *  and uncontended runs are never conflated. */
    void setContentionLevel(int level) { contentionLevel = level; }

    /** Write the JSON file when --json was given. Returns the
     *  process exit code. */
    int finish() const
    {
        if (jsonPath.empty())
            return 0;
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        out << "{\n  \"bench\": " << telemetry::jsonQuote(name);
        // Environment block: every export pins down the parallelism
        // and contention it ran under, so two snapshots are only
        // comparable when these match.
        out << ",\n  \"env\": {\"jobs\": "
            << parallel::configuredJobs()
            << ", \"hardware_concurrency\": "
            << std::thread::hardware_concurrency()
            << ", \"contention_level\": " << contentionLevel << "}";
        if (injectRecorded) {
            auto &fps = failpoint::Registry::global();
            out << ",\n  \"inject\": "
                << telemetry::jsonQuote(fps.describe())
                << ",\n  \"inject_seed\": " << fps.seed();
        }
        out << ",\n  \"tables\": {";
        for (size_t i = 0; i < tables.size(); ++i) {
            out << (i ? ",\n" : "\n") << "    "
                << telemetry::jsonQuote(tables[i].first) << ": "
                << tables[i].second.toJson(2);
        }
        out << (tables.empty() ? "" : "\n  ") << "},\n"
            << "  \"telemetry\": "
            << telemetry::Registry::global().toJson(2) << "\n}\n";
        return out.good() ? 0 : 1;
    }

  private:
    std::string name;
    std::string jsonPath;
    int contentionLevel = 1;
    bool injectRecorded = false;    ///< --inject/--seed was given
    std::vector<std::pair<std::string, aregion::TextTable>> tables;
};

/** The four Figure 7/8 compiler configurations plus the grey bar. */
inline std::vector<core::CompilerConfig>
paperConfigs(bool include_grey = false)
{
    std::vector<core::CompilerConfig> configs{
        core::CompilerConfig::baseline(),
        core::CompilerConfig::atomic(),
        core::CompilerConfig::baselineAggressiveInline(),
        core::CompilerConfig::atomicAggressiveInline(),
    };
    if (include_grey) {
        core::CompilerConfig grey = core::CompilerConfig::atomic();
        grey.name = "atomic+forced-mono";
        grey.forceMonomorphic = true;
        configs.push_back(grey);
    }
    return configs;
}

/** Per-workload results across configurations. */
struct WorkloadRuns
{
    std::string workload;
    std::map<std::string, rt::RunMetrics> byConfig;
};

/** Run one workload under the given configurations. */
inline WorkloadRuns
runWorkload(const wl::Workload &w,
            const std::vector<core::CompilerConfig> &configs,
            const hw::TimingConfig &timing = hw::TimingConfig::baseline(),
            const hw::HwConfig &hwc = {})
{
    WorkloadRuns runs;
    runs.workload = w.name;
    const vm::Program profile_prog = w.build(true);
    const vm::Program measure_prog = w.build(false);
    for (const core::CompilerConfig &cc : configs) {
        rt::ExperimentConfig config;
        config.compiler = cc;
        config.timing = timing;
        config.hw = hwc;
        runs.byConfig.emplace(
            cc.name, rt::runExperiment(profile_prog, measure_prog,
                                       config, w.samples));
    }
    return runs;
}

/** Profile/measure program pair built once per workload so a grid
 *  of experiment cells can share it read-only. */
struct BuiltWorkload
{
    const wl::Workload *workload;
    vm::Program profile;
    vm::Program measure;
};

/** Build the program pairs for a suite, serially (cheap next to the
 *  experiments themselves, and keeps the build path deterministic). */
inline std::vector<BuiltWorkload>
buildPrograms(const std::vector<const wl::Workload *> &suite)
{
    std::vector<BuiltWorkload> built;
    built.reserve(suite.size());
    for (const wl::Workload *w : suite)
        built.push_back({w, w->build(true), w->build(false)});
    return built;
}

/** The full seven-benchmark suite as pointers for buildPrograms. */
inline std::vector<const wl::Workload *>
suitePointers()
{
    std::vector<const wl::Workload *> out;
    for (const wl::Workload &w : wl::dacapoSuite())
        out.push_back(&w);
    return out;
}

/** Named subset of the suite, in the given order. */
inline std::vector<const wl::Workload *>
suitePointers(const std::vector<std::string> &names)
{
    std::vector<const wl::Workload *> out;
    for (const std::string &name : names)
        out.push_back(&wl::workloadByName(name));
    return out;
}

/** One cell of an experiment grid: an index into the prebuilt
 *  program list plus the full configuration to run it under. */
struct GridCell
{
    size_t workload;
    rt::ExperimentConfig config;
};

/**
 * Run every cell of an experiment grid through the parallel driver
 * (support/parallel.hh). Each cell writes into its own preallocated
 * slot, so the returned vector is in cell order — tables assembled
 * from it are byte-identical no matter how many worker threads ran
 * the grid (AREGION_JOBS only changes wall-clock).
 */
inline std::vector<rt::RunMetrics>
runCellGrid(const std::vector<BuiltWorkload> &built,
            const std::vector<GridCell> &cells)
{
    std::vector<rt::RunMetrics> slots(cells.size());
    parallel::runGrid(cells.size(), [&](size_t i) {
        const GridCell &cell = cells[i];
        const BuiltWorkload &b = built[cell.workload];
        slots[i] = rt::runExperiment(b.profile, b.measure,
                                     cell.config,
                                     b.workload->samples);
    });
    return slots;
}

/**
 * Parallel counterpart of calling runWorkload() per suite entry:
 * fans workload × configuration cells across the driver, then
 * assembles per-workload results in suite order. `configsFor` lets
 * individual workloads add configurations (Figure 7's grey bar).
 */
inline std::vector<WorkloadRuns>
runSuiteGrid(const std::vector<BuiltWorkload> &built,
             const std::function<std::vector<core::CompilerConfig>(
                 const wl::Workload &)> &configsFor,
             const hw::TimingConfig &timing = hw::TimingConfig::baseline(),
             const hw::HwConfig &hwc = {})
{
    std::vector<GridCell> cells;
    std::vector<std::vector<std::string>> names(built.size());
    for (size_t wi = 0; wi < built.size(); ++wi) {
        for (const core::CompilerConfig &cc :
             configsFor(*built[wi].workload)) {
            rt::ExperimentConfig config;
            config.compiler = cc;
            config.timing = timing;
            config.hw = hwc;
            names[wi].push_back(cc.name);
            cells.push_back({wi, std::move(config)});
        }
    }
    std::vector<rt::RunMetrics> slots = runCellGrid(built, cells);
    std::vector<WorkloadRuns> out(built.size());
    size_t i = 0;
    for (size_t wi = 0; wi < built.size(); ++wi) {
        out[wi].workload = built[wi].workload->name;
        for (const std::string &name : names[wi])
            out[wi].byConfig.emplace(name, std::move(slots[i++]));
    }
    return out;
}

/** Percentage speedup of `other` over `base` (weighted cycles). */
inline double
speedupPct(const rt::RunMetrics &base, const rt::RunMetrics &other)
{
    return (base.weightedCycles / other.weightedCycles - 1.0) * 100.0;
}

/** Percentage uop reduction of `other` relative to `base`. */
inline double
uopReductionPct(const rt::RunMetrics &base, const rt::RunMetrics &other)
{
    return (1.0 - other.weightedUops / base.weightedUops) * 100.0;
}

/** Paper Figure 7 speedups (percent, eyeballed from the figure). */
inline const std::map<std::string, std::map<std::string, double>> &
paperFigure7()
{
    static const std::map<std::string, std::map<std::string, double>>
        data{
            {"antlr", {{"atomic", 17}, {"no-atomic+aggr-inline", 5},
                       {"atomic+aggr-inline", 22}}},
            {"bloat", {{"atomic", 13}, {"no-atomic+aggr-inline", 10},
                       {"atomic+aggr-inline", 32}}},
            {"fop", {{"atomic", 2}, {"no-atomic+aggr-inline", 2},
                     {"atomic+aggr-inline", 5}}},
            {"hsqldb", {{"atomic", 25}, {"no-atomic+aggr-inline", 16},
                        {"atomic+aggr-inline", 56}}},
            {"jython", {{"atomic", -9}, {"no-atomic+aggr-inline", 14},
                        {"atomic+aggr-inline", 35}}},
            {"pmd", {{"atomic", -3}, {"no-atomic+aggr-inline", 1},
                     {"atomic+aggr-inline", 2}}},
            {"xalan", {{"atomic", 26}, {"no-atomic+aggr-inline", 5},
                       {"atomic+aggr-inline", 25}}},
        };
    return data;
}

/** Paper Table 3 (atomic+aggressive-inline configuration). */
struct PaperTable3Row
{
    double coveragePct;
    int unique;
    int size;
    double abortPct;
    double abortsPer1k;
};

inline const std::map<std::string, PaperTable3Row> &
paperTable3()
{
    static const std::map<std::string, PaperTable3Row> data{
        {"antlr", {9, 96, 47, 0.02, 0.0004}},
        {"bloat", {69, 93, 128, 4.3, 0.12}},
        {"fop", {20, 73, 32, 0.01, 0.0007}},
        {"hsqldb", {76, 75, 88, 2.74, 0.24}},
        {"jython", {87, 14, 227, 0.69, 0.27}},
        {"pmd", {32, 32, 42, 2.2, 0.18}},
        {"xalan", {78, 37, 78, 0.28, 0.03}},
    };
    return data;
}

} // namespace aregion::bench

#endif // AREGION_BENCH_COMMON_HH
