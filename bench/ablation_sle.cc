/**
 * @file
 * Ablation: speculative lock elision on/off inside the atomic
 * configuration, isolating how much of each benchmark's win comes
 * from eliding monitor pairs (the paper attributes much of antlr's
 * and xalan's benefit to monitor-overhead elimination).
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_sle", argc, argv);
    std::printf("Ablation: speculative lock elision (atomic+aggr "
                "configuration)\n\n");
    TextTable table({"bench", "speedup w/o SLE", "speedup w/ SLE",
                     "CAS fast-path acquisitions w/o -> w/"});
    for (const auto &w : wl::dacapoSuite()) {
        const vm::Program profile_prog = w.build(true);
        const vm::Program measure_prog = w.build(false);

        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        const auto mb = rt::runExperiment(profile_prog, measure_prog,
                                          base, w.samples);

        rt::ExperimentConfig off;
        off.compiler = core::CompilerConfig::atomicAggressiveInline();
        off.compiler.sle = false;
        const auto moff = rt::runExperiment(
            profile_prog, measure_prog, off, w.samples);

        rt::ExperimentConfig on;
        on.compiler = core::CompilerConfig::atomicAggressiveInline();
        const auto mon = rt::runExperiment(
            profile_prog, measure_prog, on, w.samples);

        table.addRow({w.name,
                      TextTable::fmt(speedupPct(mb, moff), 1) + "%",
                      TextTable::fmt(speedupPct(mb, mon), 1) + "%",
                      std::to_string(moff.monitorFastEnters) +
                          " -> " +
                          std::to_string(mon.monitorFastEnters)});
    }
    std::printf("%s\n", table.render().c_str());
    report.addTable("ablation_sle", table);
    return report.finish();
}
