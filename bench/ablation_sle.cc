/**
 * @file
 * Ablation: speculative lock elision on/off inside the atomic
 * configuration, isolating how much of each benchmark's win comes
 * from eliding monitor pairs (the paper attributes much of antlr's
 * and xalan's benefit to monitor-overhead elimination).
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_sle", argc, argv);
    std::printf("Ablation: speculative lock elision (atomic+aggr "
                "configuration)\n\n");
    TextTable table({"bench", "speedup w/o SLE", "speedup w/ SLE",
                     "CAS fast-path acquisitions w/o -> w/"});
    // Grid: baseline / SLE-off / SLE-on per workload, run through
    // the parallel driver; rows assembled serially in suite order.
    const std::vector<BuiltWorkload> built =
        buildPrograms(suitePointers());
    std::vector<GridCell> cells;
    for (size_t wi = 0; wi < built.size(); ++wi) {
        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        cells.push_back({wi, std::move(base)});

        rt::ExperimentConfig off;
        off.compiler = core::CompilerConfig::atomicAggressiveInline();
        off.compiler.sle = false;
        cells.push_back({wi, std::move(off)});

        rt::ExperimentConfig on;
        on.compiler = core::CompilerConfig::atomicAggressiveInline();
        cells.push_back({wi, std::move(on)});
    }
    const std::vector<rt::RunMetrics> slots =
        runCellGrid(built, cells);

    size_t slot = 0;
    for (const BuiltWorkload &b : built) {
        const rt::RunMetrics &mb = slots[slot++];
        const rt::RunMetrics &moff = slots[slot++];
        const rt::RunMetrics &mon = slots[slot++];
        table.addRow({b.workload->name,
                      TextTable::fmt(speedupPct(mb, moff), 1) + "%",
                      TextTable::fmt(speedupPct(mb, mon), 1) + "%",
                      std::to_string(moff.monitorFastEnters) +
                          " -> " +
                          std::to_string(mon.monitorFastEnters)});
    }
    std::printf("%s\n", table.render().c_str());
    report.addTable("ablation_sle", table);
    return report.finish();
}
