/**
 * @file
 * Regenerates Table 2: the benchmarks used in the evaluation, their
 * descriptions, and the number of samples per benchmark, plus the
 * dynamic size of each workload as built.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"
#include "vm/interpreter.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table2_workloads", argc, argv);
    std::printf("Table 2: DaCapo benchmark analogs used in "
                "evaluation\n");
    std::printf("(# = samples, as in the paper; sizes are measured "
                "on the measurement input)\n\n");
    TextTable table({"bench", "description", "#", "(paper #)",
                     "bytecodes", "methods"});
    for (const auto &w : wl::dacapoSuite()) {
        const vm::Program prog = w.build(false);
        vm::Interpreter interp(prog);
        const auto res = interp.run();
        table.addRow({w.name, w.description,
                      std::to_string(w.samples.size()),
                      "(" + std::to_string(w.paperSamples) + ")",
                      std::to_string(res.instructions),
                      std::to_string(prog.numMethods())});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Each analog reproduces the structural features the "
                "paper attributes to the\noriginal benchmark (see "
                "the per-workload headers in src/workloads/).\n");
    report.addTable("table2", table);
    return report.finish();
}
