/**
 * @file
 * Host-performance microbenchmarks (google-benchmark): throughput of
 * the functional machine simulator, with and without the timing
 * model attached, and of the optimizing compiler itself. These are
 * about the simulator as an artifact (how long experiments take),
 * not about the paper's results.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "vm/interpreter.hh"

using namespace aregion;
using namespace aregion::bench;

namespace {

/** Set in main() so the benchmark bodies can publish their measured
 *  rates into the --json export (tools/perf_snapshot.sh reads
 *  `bench.simulator_throughput.*` from BENCH_simulator.json). */
BenchReport *g_report = nullptr;

void
recordRate(const char *key, uint64_t events, double secs)
{
    if (g_report && secs > 0)
        g_report->addMetric(key, static_cast<double>(events) / secs);
}

double
secsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Prepared
{
    vm::Program prog;
    hw::MachineProgram machine;
};

const Prepared &
prepared()
{
    // Filled in place: MachineProgram::prog points at p.prog, so the
    // Program must already live at its final address when compiled.
    static Prepared p = [] {
        Prepared fresh;
        fresh.prog = wl::workloadByName("xalan").build(false);
        return fresh;
    }();
    static const bool initialized = [] {
        vm::Profile profile(p.prog);
        {
            vm::Interpreter interp(p.prog, &profile);
            interp.run();
        }
        // Fold the profiling pass into the exported profile.*
        // aggregates (compileProgram publishes jit.compile_us
        // itself); without this the --json export carries zeros
        // next to non-zero per-pass timers.
        profile.publishTelemetry();
        core::Compiled compiled = core::compileProgram(
            p.prog, profile,
            core::CompilerConfig::atomicAggressiveInline());
        vm::Heap layout_heap(p.prog, 1 << 16);
        p.machine = hw::lowerModule(
            compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
        p.machine.prog = &p.prog;
        return true;
    }();
    (void)initialized;
    return p;
}

void
BM_FunctionalSimulator(benchmark::State &state)
{
    const Prepared &p = prepared();
    uint64_t uops = 0;
    const auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        hw::Machine machine(p.machine, hw::HwConfig{});
        const auto res = machine.run();
        uops += res.allContextUops;
        benchmark::DoNotOptimize(res.retiredUops);
    }
    recordRate("functional_uops_per_sec", uops, secsSince(start));
    state.counters["uops/s"] = benchmark::Counter(
        static_cast<double>(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulator)->Unit(benchmark::kMillisecond);

void
BM_FunctionalPlusTiming(benchmark::State &state)
{
    const Prepared &p = prepared();
    uint64_t uops = 0;
    const auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        hw::TimingModel timing(hw::TimingConfig::baseline());
        hw::Machine machine(p.machine, hw::HwConfig{}, &timing);
        const auto res = machine.run();
        uops += res.allContextUops;
        benchmark::DoNotOptimize(timing.cycles());
        // Accumulate the model's counters into the registry so the
        // --json export can correlate throughput with behavioural
        // drift (cycles, stalls, mispredicts should never move).
        timing.publishTelemetry();
    }
    recordRate("functional_plus_timing_uops_per_sec", uops,
               secsSince(start));
    state.counters["uops/s"] = benchmark::Counter(
        static_cast<double>(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalPlusTiming)->Unit(benchmark::kMillisecond);

void
BM_Interpreter(benchmark::State &state)
{
    const Prepared &p = prepared();
    uint64_t instrs = 0;
    const auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        vm::Interpreter interp(p.prog);
        const auto res = interp.run();
        instrs += res.instructions;
        benchmark::DoNotOptimize(res.instructions);
    }
    recordRate("interpreter_bytecodes_per_sec", instrs,
               secsSince(start));
    state.counters["bytecodes/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interpreter)->Unit(benchmark::kMillisecond);

void
BM_AtomicCompiler(benchmark::State &state)
{
    const auto &w = wl::workloadByName("xalan");
    const vm::Program prog = w.build(false);
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        interp.run();
    }
    profile.publishTelemetry();
    for (auto _ : state) {
        core::Compiled compiled = core::compileProgram(
            prog, profile,
            core::CompilerConfig::atomicAggressiveInline());
        benchmark::DoNotOptimize(compiled.stats.totalInstrs);
    }
}
// Pinned iteration count: the `jit.compile_us`/`jit.pass.*_us`
// counters in BENCH_simulator.json accumulate across iterations, so
// with auto-scaled iterations a faster compiler runs MORE iterations
// and the counters barely move — snapshots from different versions
// would not be comparable. 150 matches the order of what the
// pre-SSA compiler ran in the default min-time budget.
BENCHMARK(BM_AtomicCompiler)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(150);

} // namespace

int
main(int argc, char **argv)
{
    // Strip --json before google-benchmark sees the flags it does
    // not recognize.
    BenchReport report("simulator_throughput", argc, argv);
    g_report = &report;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return report.finish();
}
