/**
 * @file
 * Host-performance microbenchmarks (google-benchmark): throughput of
 * the functional machine simulator, with and without the timing
 * model attached, and of the optimizing compiler itself. These are
 * about the simulator as an artifact (how long experiments take),
 * not about the paper's results.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "vm/interpreter.hh"

using namespace aregion;
using namespace aregion::bench;

namespace {

struct Prepared
{
    vm::Program prog;
    hw::MachineProgram machine;
};

const Prepared &
prepared()
{
    // Filled in place: MachineProgram::prog points at p.prog, so the
    // Program must already live at its final address when compiled.
    static Prepared p = [] {
        Prepared fresh;
        fresh.prog = wl::workloadByName("xalan").build(false);
        return fresh;
    }();
    static const bool initialized = [] {
        vm::Profile profile(p.prog);
        {
            vm::Interpreter interp(p.prog, &profile);
            interp.run();
        }
        core::Compiled compiled = core::compileProgram(
            p.prog, profile,
            core::CompilerConfig::atomicAggressiveInline());
        vm::Heap layout_heap(p.prog, 1 << 16);
        p.machine = hw::lowerModule(
            compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
        p.machine.prog = &p.prog;
        return true;
    }();
    (void)initialized;
    return p;
}

void
BM_FunctionalSimulator(benchmark::State &state)
{
    const Prepared &p = prepared();
    uint64_t uops = 0;
    for (auto _ : state) {
        hw::Machine machine(p.machine, hw::HwConfig{});
        const auto res = machine.run();
        uops += res.allContextUops;
        benchmark::DoNotOptimize(res.retiredUops);
    }
    state.counters["uops/s"] = benchmark::Counter(
        static_cast<double>(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulator)->Unit(benchmark::kMillisecond);

void
BM_FunctionalPlusTiming(benchmark::State &state)
{
    const Prepared &p = prepared();
    uint64_t uops = 0;
    for (auto _ : state) {
        hw::TimingModel timing(hw::TimingConfig::baseline());
        hw::Machine machine(p.machine, hw::HwConfig{}, &timing);
        const auto res = machine.run();
        uops += res.allContextUops;
        benchmark::DoNotOptimize(timing.cycles());
    }
    state.counters["uops/s"] = benchmark::Counter(
        static_cast<double>(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalPlusTiming)->Unit(benchmark::kMillisecond);

void
BM_Interpreter(benchmark::State &state)
{
    const Prepared &p = prepared();
    uint64_t instrs = 0;
    for (auto _ : state) {
        vm::Interpreter interp(p.prog);
        const auto res = interp.run();
        instrs += res.instructions;
        benchmark::DoNotOptimize(res.instructions);
    }
    state.counters["bytecodes/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interpreter)->Unit(benchmark::kMillisecond);

void
BM_AtomicCompiler(benchmark::State &state)
{
    const auto &w = wl::workloadByName("xalan");
    const vm::Program prog = w.build(false);
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        interp.run();
    }
    for (auto _ : state) {
        core::Compiled compiled = core::compileProgram(
            prog, profile,
            core::CompilerConfig::atomicAggressiveInline());
        benchmark::DoNotOptimize(compiled.stats.totalInstrs);
    }
}
BENCHMARK(BM_AtomicCompiler)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Strip --json before google-benchmark sees the flags it does
    // not recognize.
    BenchReport report("simulator_throughput", argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return report.finish();
}
