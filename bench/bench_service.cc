/**
 * @file
 * Multi-tenant compile-service bench: N tenants concurrently replay
 * M methods against one CompileService and the run is scored on
 * cache effectiveness, latency distribution, and oracle agreement
 * with direct compilation (docs/SERVICE.md documents the protocol).
 *
 * Three barrier-separated phases, so the phase-level counters are
 * deterministic even though request interleaving is not:
 *
 *   cold    every tenant requests its full method set against an
 *           empty cache — exactly `methods` compiles happen; every
 *           other request is served shared (cache hit or coalesced
 *           onto the in-flight job; the split between those two is
 *           schedule-dependent, their sum is not).
 *   replay  every tenant re-requests the same set — 100% cache hits.
 *   storm   a subset of tenants reports synthetic abort-storm
 *           telemetry for one method until admission control walks
 *           Healthy -> Cooling (recompile rejected) -> Blacklisted
 *           (compiled non-speculative), while a bystander tenant
 *           must keep receiving the shared speculative entry.
 *
 * Oracle: for every method, the cached code checksum must equal a
 * direct core::compileProgram of the same inputs. Any mismatch, any
 * unexpected admission outcome, or a replay hit rate below 50% makes
 * the binary exit nonzero.
 *
 * Flags (beyond the shared --json):
 *   --tenants <n>   concurrent tenants (default 64)
 *   --methods <n>   distinct methods per tenant (default 32)
 *   --seed <n>      method-pool/replay-order seed (default 1)
 *
 * `tools/perf_snapshot.sh --service` (or the `bench-service` build
 * target) snapshots the JSON export to BENCH_service.json. Counters
 * in the export are deterministic for fixed seed; latency
 * percentiles and queue depths are wall-clock observables and vary
 * by host and AREGION_JOBS (docs/PERFORMANCE.md).
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "runtime/service/service.hh"
#include "support/random.hh"
#include "support/table.hh"
#include "testing/random_program.hh"
#include "vm/interpreter.hh"

namespace {

namespace bench = aregion::bench;
namespace svc = aregion::runtime::service;
namespace testing = aregion::testing;
namespace vm = aregion::vm;
namespace core = aregion::core;
using aregion::Histogram;
using aregion::Rng;

/** One pooled method: an immutable program + its training profile,
 *  shared by every tenant that requests it. */
struct PooledMethod
{
    std::string name;
    std::shared_ptr<const vm::Program> program;
    std::shared_ptr<const vm::Profile> profile;
};

/** Per-tenant, per-phase response tally (written into preallocated
 *  slots so aggregation order is deterministic). */
struct TenantTally
{
    uint64_t requests = 0;
    uint64_t compiled = 0;
    uint64_t nonspec = 0;
    uint64_t shared = 0;        ///< CacheHit + Coalesced
    uint64_t rejected = 0;
    std::vector<int64_t> latenciesUs;

    void
    note(const svc::CompileResponse &resp)
    {
        requests++;
        latenciesUs.push_back(static_cast<int64_t>(resp.latencyUs));
        switch (resp.status) {
          case svc::CompileStatus::Compiled: compiled++; break;
          case svc::CompileStatus::CompiledNonSpec: nonspec++; break;
          case svc::CompileStatus::CacheHit:
          case svc::CompileStatus::Coalesced: shared++; break;
          default: rejected++; break;
        }
    }
};

struct PhaseResult
{
    uint64_t requests = 0;
    uint64_t compiled = 0;
    uint64_t nonspec = 0;
    uint64_t shared = 0;
    uint64_t rejected = 0;
    Histogram latencyUs;
};

PhaseResult
mergeTallies(const std::vector<TenantTally> &tallies)
{
    PhaseResult out;
    for (const TenantTally &t : tallies) {
        out.requests += t.requests;
        out.compiled += t.compiled;
        out.nonspec += t.nonspec;
        out.shared += t.shared;
        out.rejected += t.rejected;
        for (int64_t us : t.latenciesUs)
            out.latencyUs.add(us);
    }
    return out;
}

/** Generate the shared method pool: deterministic terminating
 *  programs (no trap/thread features) profiled by one interpreter
 *  pass each. */
std::vector<PooledMethod>
buildMethodPool(int methods, uint64_t seed)
{
    std::vector<PooledMethod> pool(static_cast<size_t>(methods));
    aregion::parallel::runGrid(
        pool.size(), [&](size_t i) {
            testing::RandomProgramGen gen(
                seed * 1000003ULL + i, testing::kLegacyObjects);
            auto prog = std::make_shared<vm::Program>(
                testing::renderProgram(gen.generate()));
            auto profile = std::make_shared<vm::Profile>(*prog);
            vm::Interpreter interp(*prog, profile.get());
            const vm::InterpResult r = interp.run();
            AREGION_ASSERT(r.completed && !r.trap,
                           "method pool program must terminate");
            pool[i] = {"m" + std::to_string(i), std::move(prog),
                       std::move(profile)};
        });
    return pool;
}

svc::CompileRequest
requestFor(const PooledMethod &m, int tenant,
           const core::CompilerConfig &config)
{
    svc::CompileRequest rq;
    rq.tenant = tenant;
    rq.method = m.name;
    rq.program = m.program;
    rq.profile = m.profile;
    rq.config = config;
    return rq;
}

/** One phase: every tenant submits its whole method set (per-tenant
 *  deterministic order), waits for all responses, tallies them. */
std::vector<TenantTally>
runPhase(svc::CompileService &service,
         const std::vector<PooledMethod> &pool,
         const core::CompilerConfig &config, int tenants,
         uint64_t seed)
{
    std::vector<TenantTally> tallies(static_cast<size_t>(tenants));
    aregion::parallel::runGrid(
        tallies.size(), [&](size_t t) {
            // Per-tenant replay order: a seeded shuffle so tenants
            // disagree on order but each replays identically.
            std::vector<size_t> order(pool.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            Rng rng(seed ^ (0x7454u + t * 0x9e3779b9ULL));
            for (size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng.below(i)]);

            std::vector<std::future<svc::CompileResponse>> futures;
            futures.reserve(order.size());
            for (size_t mi : order) {
                futures.push_back(service.submit(requestFor(
                    pool[mi], static_cast<int>(t), config)));
            }
            for (auto &f : futures)
                tallies[t].note(f.get());
        });
    return tallies;
}

/** Direct-compile oracle: cached code must be byte-identical (by
 *  printed-IR checksum) to a fresh compileProgram of the same
 *  inputs. Returns the number of mismatches. */
int
runOracle(svc::CompileService &service,
          const std::vector<PooledMethod> &pool,
          const core::CompilerConfig &config)
{
    std::vector<int> failures(pool.size(), 0);
    aregion::parallel::runGrid(pool.size(), [&](size_t i) {
        const PooledMethod &m = pool[i];
        svc::CompileRequest rq = requestFor(m, 0, config);
        const uint64_t key = svc::CompileService::keyFor(rq);
        auto cached = service.cache().peek(key);
        if (!cached) {
            failures[i] = 1;
            std::fprintf(stderr, "ORACLE %s: not cached\n",
                         m.name.c_str());
            return;
        }
        const core::Compiled direct =
            core::compileProgram(*m.program, *m.profile, config);
        if (svc::codeChecksum(direct) != cached->codeChecksum) {
            failures[i] = 1;
            std::fprintf(stderr,
                         "ORACLE %s: cached code != direct compile\n",
                         m.name.c_str());
        }
    });
    int total = 0;
    for (int f : failures)
        total += f;
    return total;
}

/** Synthetic storming execution report: well past the default
 *  ResiliencePolicy thresholds (rate 0.75 >= 0.5, entries >= 16). */
aregion::hw::MachineResult
stormResult()
{
    aregion::hw::MachineResult mr;
    mr.regionEntries = 64;
    mr.regionAborts = 48;
    return mr;
}

/**
 * Drive `storm_tenants` tenants through the admission state machine
 * against live service state and check every transition; bystander
 * tenants must keep their speculative entries. Returns the number of
 * violated expectations.
 */
int
runStormPhase(svc::CompileService &service,
              const std::vector<PooledMethod> &pool,
              const core::CompilerConfig &config, int storm_tenants,
              int bystander_base, std::vector<TenantTally> &tallies)
{
    tallies.assign(static_cast<size_t>(storm_tenants), {});
    std::vector<int> failures(static_cast<size_t>(storm_tenants), 0);
    // Serial on purpose: the admission cooldown clock is a global
    // report-round counter, so concurrent storm walks would expire
    // each other's cooldown windows nondeterministically.
    for (size_t t = 0; t < static_cast<size_t>(storm_tenants);
         ++t) {
            const PooledMethod &m = pool[t % pool.size()];
            const int tenant = static_cast<int>(t);
            auto expect = [&](bool ok, const char *what) {
                if (!ok) {
                    failures[t]++;
                    std::fprintf(stderr, "STORM tenant %d: %s\n",
                                 tenant, what);
                }
            };
            svc::CompileRequest rq = requestFor(m, tenant, config);
            const uint64_t key = svc::CompileService::keyFor(rq);

            // Strike 1 -> Cooling: recompiles must bounce.
            service.reportExecution(tenant, key, stormResult());
            expect(service.admission().state(tenant, key) ==
                       svc::AdmissionState::Cooling,
                   "expected Cooling after first storm report");
            svc::CompileRequest recompile =
                requestFor(m, tenant, config);
            recompile.recompile = true;
            svc::CompileResponse r =
                service.submitSync(std::move(recompile));
            tallies[t].note(r);
            expect(r.status == svc::CompileStatus::RejectedBackoff,
                   "expected RejectedBackoff during cooldown");

            // Strikes 2..4 -> Blacklisted (maxRecompiles = 3).
            for (int s = 0; s < 3; ++s)
                service.reportExecution(tenant, key, stormResult());
            expect(service.admission().state(tenant, key) ==
                       svc::AdmissionState::Blacklisted,
                   "expected Blacklisted after strike budget");

            // Blacklisted compile: accepted, but non-speculative.
            r = service.submitSync(requestFor(m, tenant, config));
            tallies[t].note(r);
            expect(r.status == svc::CompileStatus::CompiledNonSpec ||
                       (r.status == svc::CompileStatus::CacheHit &&
                        r.code && r.code->nonSpeculative),
                   "expected non-speculative compile once blacklisted");
            expect(r.code && r.code->nonSpeculative &&
                       r.code->compiled.stats.regions.regionsFormed ==
                           0,
                   "blacklisted code must contain no regions");

            // Cross-tenant isolation: an unrelated tenant still gets
            // the shared speculative entry for the same method.
            r = service.submitSync(
                requestFor(m, bystander_base + tenant, config));
            expect(r.status == svc::CompileStatus::CacheHit &&
                       r.code && !r.code->nonSpeculative,
                   "bystander tenant lost its speculative entry");
    }
    int total = 0;
    for (int f : failures)
        total += f;
    return total;
}

void
addPhaseRow(aregion::TextTable &table, const char *phase,
            const PhaseResult &r)
{
    const double hit_rate =
        r.requests ? static_cast<double>(r.shared) /
                         static_cast<double>(r.requests)
                   : 0.0;
    table.addRow({phase, std::to_string(r.requests),
                  std::to_string(r.compiled),
                  std::to_string(r.nonspec),
                  std::to_string(r.shared),
                  std::to_string(r.rejected),
                  aregion::TextTable::fmt(hit_rate * 100.0, 1),
                  std::to_string(r.latencyUs.percentile(0.50)),
                  std::to_string(r.latencyUs.percentile(0.95)),
                  std::to_string(r.latencyUs.percentile(0.99))});
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip this binary's own flags before BenchReport parses the
    // remainder (same pattern as bench_contention: BenchReport's
    // --seed feeds the failpoint PRNG, ours seeds the method pool).
    int tenants = 64;
    int methods = 32;
    uint64_t seed = 1;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tenants" && i + 1 < argc) {
            tenants = std::atoi(argv[++i]);
        } else if (arg == "--methods" && i + 1 < argc) {
            methods = std::atoi(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    bench::BenchReport report("service", argc, argv);
    if (tenants < 1 || methods < 1) {
        std::fprintf(stderr, "--tenants/--methods must be >= 1\n");
        return 2;
    }

    const core::CompilerConfig config = core::CompilerConfig::atomic();

    std::printf("building %d-method pool (seed %llu)...\n", methods,
                static_cast<unsigned long long>(seed));
    const std::vector<PooledMethod> pool =
        buildMethodPool(methods, seed);

    svc::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.workersPerShard = 2;
    // Every tenant submits its whole set asynchronously, so the
    // per-tenant pending cap must sit above the set size.
    cfg.admission.maxPendingPerTenant =
        static_cast<size_t>(methods) + 8;
    svc::CompileService service(cfg);

    std::printf("cold phase: %d tenants x %d methods...\n", tenants,
                methods);
    const PhaseResult cold = mergeTallies(
        runPhase(service, pool, config, tenants, seed));

    std::printf("replay phase...\n");
    const PhaseResult replay = mergeTallies(
        runPhase(service, pool, config, tenants, seed + 1));

    std::printf("oracle: cached code vs direct compile...\n");
    const int oracle_failures = runOracle(service, pool, config);

    const int storm_tenants = std::min(tenants, 8);
    std::printf("storm phase: %d storming tenants...\n",
                storm_tenants);
    std::vector<TenantTally> storm_tallies;
    const int storm_failures =
        runStormPhase(service, pool, config, storm_tenants,
                      tenants + storm_tenants, storm_tallies);
    const PhaseResult storm = mergeTallies(storm_tallies);

    service.publishTelemetry();

    aregion::TextTable phases({"phase", "requests", "compiled",
                               "nonspec", "shared", "rejected",
                               "shared %", "p50 us", "p95 us",
                               "p99 us"});
    addPhaseRow(phases, "cold", cold);
    addPhaseRow(phases, "replay", replay);
    addPhaseRow(phases, "storm", storm);
    std::printf("%s\n", phases.render().c_str());

    const svc::ServiceStats stats = service.stats();
    aregion::TextTable shards(
        {"shard", "compiles", "max depth"});
    for (size_t s = 0; s < stats.shards.size(); ++s) {
        shards.addRow({std::to_string(s),
                       std::to_string(stats.shards[s].compiles),
                       std::to_string(stats.shards[s].maxDepth)});
    }
    std::printf("%s\n", shards.render().c_str());

    const svc::CodeCache &cache = service.cache();
    aregion::TextTable capacity(
        {"entries", "bytes", "budget", "evictions", "bytes/entry"});
    capacity.addRow(
        {std::to_string(cache.entries()),
         std::to_string(cache.bytes()),
         std::to_string(cache.byteBudget()),
         std::to_string(cache.evictions()),
         std::to_string(cache.entries()
                            ? cache.bytes() / cache.entries()
                            : 0)});
    std::printf("%s\n", capacity.render().c_str());

    const double replay_hit_rate =
        replay.requests ? static_cast<double>(replay.shared) /
                              static_cast<double>(replay.requests)
                        : 0.0;
    int problems = oracle_failures + storm_failures;
    if (replay_hit_rate < 0.5) {
        std::fprintf(stderr,
                     "FAIL replay hit rate %.2f below 0.5\n",
                     replay_hit_rate);
        problems++;
    }
    std::printf("replay hit rate %.1f%%, %d oracle failures, "
                "%d storm check failures\n",
                replay_hit_rate * 100.0, oracle_failures,
                storm_failures);

    report.addTable("phases", phases);
    report.addTable("shards", shards);
    report.addTable("capacity", capacity);
    report.addMetric("tenants", tenants);
    report.addMetric("methods", methods);
    report.addMetric("replay_hit_rate", replay_hit_rate);
    report.addMetric("cold_compiles",
                     static_cast<double>(cold.compiled));
    report.addMetric("p95_request_us",
                     static_cast<double>(
                         replay.latencyUs.percentile(0.95)));
    report.addMetric("oracle_failures", oracle_failures);
    report.addMetric("storm_failures", storm_failures);

    const int json_rc = report.finish();
    return problems ? 1 : json_rc;
}
