/**
 * @file
 * Regenerates the Section 6.2 architectural analysis: dynamic region
 * sizes versus the 128-entry reorder buffer, and speculative cache
 * footprints versus the L1. The paper's findings to reproduce:
 *  - a nontrivial fraction (~25%) of executed regions exceed the
 *    128-entry window (so register checkpoints are required),
 *  - some regions exceed 1,000 uops,
 *  - most regions touch < 10 cache lines; 50 lines cover 99%;
 *    overflow is essentially never triggered (512-line L1).
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("sec62_footprint", argc, argv);
    Histogram sizes;
    Histogram footprints;
    uint64_t total_regions = 0;
    uint64_t overflow_aborts = 0;

    for (const auto &w : wl::dacapoSuite()) {
        const WorkloadRuns runs = runWorkload(
            w, {core::CompilerConfig::atomicAggressiveInline()});
        const auto &m = runs.byConfig.at("atomic+aggr-inline");
        for (const auto &[key, stats] : m.machine.regions) {
            for (const auto &[v, c] : stats.dynamicSize.buckets())
                sizes.add(v, c);
            for (const auto &[v, c] :
                 stats.footprintLines.buckets()) {
                footprints.add(v, c);
            }
            total_regions += stats.commits;
            overflow_aborts += stats.abortsByCause[
                static_cast<int>(hw::AbortCause::Overflow)];
        }
    }

    std::printf("Section 6.2: architectural analysis of atomic "
                "regions\n(atomic+aggressive-inline across the "
                "suite)\n\n");
    TextTable table({"metric", "measured", "paper"});
    table.addRow({"committed regions",
                  std::to_string(total_regions), "~1.7M"});
    table.addRow({"median region size (uops)",
                  std::to_string(sizes.percentile(0.5)), "-"});
    table.addRow({"mean region size (uops)",
                  TextTable::fmt(sizes.mean(), 1), "-"});
    table.addRow({"regions > 128-uop window",
                  TextTable::pct(
                      static_cast<double>(sizes.countAbove(128)) /
                          std::max<double>(1.0, static_cast<double>(
                              sizes.count())), 1),
                  "~25%"});
    table.addRow({"regions > 1000 uops",
                  std::to_string(sizes.countAbove(1000)),
                  "a small fraction"});
    table.addRow({"median footprint (64B lines)",
                  std::to_string(footprints.percentile(0.5)),
                  "< 10"});
    table.addRow({"99th pct footprint (lines)",
                  std::to_string(footprints.percentile(0.99)),
                  "<= 50"});
    table.addRow({"regions > 100 lines",
                  std::to_string(footprints.countAbove(100)),
                  "110 of 1.7M"});
    table.addRow({"L1 overflow aborts",
                  std::to_string(overflow_aborts), "1"});
    std::printf("%s\n", table.render().c_str());
    std::printf("Conclusion to check: register checkpoints are "
                "needed (regions exceed the\nwindow) but the L1 "
                "easily holds every read/write set.\n");
    report.addTable("sec62", table);
    return report.finish();
}
