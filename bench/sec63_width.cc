/**
 * @file
 * Regenerates the Section 6.3 modest-microarchitecture experiment:
 * the relative speedups of atomic-region code must closely track the
 * 4-wide results on a 2-wide OOO machine and on a 2-wide machine
 * with halved structures and caches ("within a percent or two").
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("sec63_width", argc, argv);
    std::printf("Section 6.3: atomic+aggr-inline speedup across "
                "machine widths\n\n");
    TextTable table({"bench", "4-wide", "2-wide", "2-wide-half"});
    const std::vector<hw::TimingConfig> machines{
        hw::TimingConfig::baseline(), hw::TimingConfig::twoWide(),
        hw::TimingConfig::twoWideHalf()};
    std::map<int, std::vector<double>> averages;

    for (const auto &w : wl::dacapoSuite()) {
        std::vector<std::string> row{w.name};
        for (size_t m = 0; m < machines.size(); ++m) {
            const WorkloadRuns runs = runWorkload(
                w,
                {core::CompilerConfig::baseline(),
                 core::CompilerConfig::atomicAggressiveInline()},
                machines[m]);
            const double s = speedupPct(
                runs.byConfig.at("no-atomic"),
                runs.byConfig.at("atomic+aggr-inline"));
            row.push_back(TextTable::fmt(s, 1) + "%");
            averages[static_cast<int>(m)].push_back(s);
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg{"average"};
    for (size_t m = 0; m < machines.size(); ++m)
        avg.push_back(TextTable::fmt(
            mean(averages[static_cast<int>(m)]), 1) + "%");
    table.addRow(std::move(avg));
    std::printf("%s\n", table.render().c_str());
    std::printf("The paper reports the narrow machines track the "
                "4-wide speedups\n(generally within a percent or "
                "two).\n");
    report.addTable("sec63", table);
    return report.finish();
}
