/**
 * @file
 * Ablation (paper Section 7, future work): post-dominance bounds
 * check elimination inside atomic regions. A check A may be removed
 * when a subsuming check B (same length, index + k) post-dominates
 * it within the region — safe because a failing B aborts and the
 * non-speculative code re-runs both checks precisely.
 */

#include <cstdio>

#include "bench_common.hh"
#include "ir/ir.hh"
#include "programs.hh"
#include "support/table.hh"
#include "vm/interpreter.hh"

using namespace aregion;
using namespace aregion::bench;
using aregion::test::addElementProgram;

namespace {

int
countBoundsChecks(const ir::Module &mod)
{
    int n = 0;
    for (const auto &[m, f] : mod.funcs) {
        for (int b = 0; b < f.numBlocks(); ++b) {
            if (f.block(b).regionId < 0)
                continue;
            for (const auto &in : f.block(b).instrs)
                n += in.op == ir::Op::BoundsCheck;
        }
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("ablation_postdom", argc, argv);
    const vm::Program prog = addElementProgram(3000, 512);
    vm::Profile profile(prog);
    {
        vm::Interpreter interp(prog, &profile);
        interp.run();
    }

    std::printf("Ablation: post-dominance check elimination in "
                "regions (Section 7)\n\n");
    TextTable table({"config", "in-region bounds checks",
                     "postdom-removed", "uops/insert"});
    for (bool enabled : {false, true}) {
        core::CompilerConfig config = core::CompilerConfig::atomic();
        config.postdomCheckElim = enabled;
        core::Compiled compiled =
            core::compileProgram(prog, profile, config);

        rt::ExperimentConfig ec;
        ec.compiler = config;
        const auto m = rt::runExperiment(prog, prog, ec);
        table.addRow({enabled ? "postdom on" : "postdom off",
                      std::to_string(countBoundsChecks(compiled.mod)),
                      std::to_string(
                          compiled.stats.postdomChecksRemoved),
                      TextTable::fmt(
                          static_cast<double>(m.retiredUops) /
                              (2 * 3000), 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Output correctness under the extension is covered "
                "by tests/core_region_test\n(Postdom.*).\n");
    report.addTable("ablation_postdom", table);
    return report.finish();
}
