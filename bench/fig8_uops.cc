/**
 * @file
 * Regenerates Figure 8: percentage reduction in retired
 * micro-operations relative to the baseline (no-atomic) binary.
 * The paper reads uop reduction as a proxy for energy efficiency.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/statistics.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig8_uops", argc, argv);
    const std::vector<std::string> configs{
        "atomic", "no-atomic+aggr-inline", "atomic+aggr-inline"};
    // Paper Figure 8 values (eyeballed).
    const std::map<std::string, std::map<std::string, double>> paper{
        {"antlr", {{"atomic", 17}, {"no-atomic+aggr-inline", 2},
                   {"atomic+aggr-inline", 17}}},
        {"bloat", {{"atomic", 6}, {"no-atomic+aggr-inline", 3},
                   {"atomic+aggr-inline", 15}}},
        {"fop", {{"atomic", 2}, {"no-atomic+aggr-inline", 1},
                 {"atomic+aggr-inline", 4}}},
        {"hsqldb", {{"atomic", 11}, {"no-atomic+aggr-inline", 5},
                    {"atomic+aggr-inline", 21}}},
        {"jython", {{"atomic", 2}, {"no-atomic+aggr-inline", 5},
                    {"atomic+aggr-inline", 14}}},
        {"pmd", {{"atomic", 1}, {"no-atomic+aggr-inline", 1},
                 {"atomic+aggr-inline", 2}}},
        {"xalan", {{"atomic", 14}, {"no-atomic+aggr-inline", 2},
                   {"atomic+aggr-inline", 14}}},
    };

    std::printf("Figure 8: %% micro-operation (uop) reduction over "
                "baseline (no-atomic)\n");
    std::printf("(paper values in parentheses)\n\n");

    TextTable table({"bench", "atomic", "(paper)",
                     "no-atomic+aggr", "(paper)", "atomic+aggr",
                     "(paper)"});
    std::map<std::string, std::vector<double>> averages;
    for (const auto &w : wl::dacapoSuite()) {
        const WorkloadRuns runs = runWorkload(w, paperConfigs());
        const auto &base = runs.byConfig.at("no-atomic");
        std::vector<std::string> row{w.name};
        for (const auto &config : configs) {
            const double measured =
                uopReductionPct(base, runs.byConfig.at(config));
            row.push_back(TextTable::fmt(measured, 1) + "%");
            row.push_back("(" +
                          TextTable::fmt(
                              paper.at(w.name).at(config), 0) +
                          "%)");
            averages[config].push_back(measured);
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg_row{"average"};
    for (const auto &config : configs) {
        avg_row.push_back(
            TextTable::fmt(mean(averages[config]), 1) + "%");
        avg_row.push_back(config == "atomic+aggr-inline" ? "(11%)"
                                                         : "(-)");
    }
    table.addRow(std::move(avg_row));
    std::printf("%s\n", table.render().c_str());
    report.addTable("fig8", table);
    return report.finish();
}
