/**
 * @file
 * Ablation (paper Section 7): adaptive recompilation. pmd's
 * measurement input violates rules far more often than its
 * profiling input, so the compiler's asserts fire and the atomic
 * configuration loses performance. With the adaptive controller
 * enabled, the runtime maps abort PCs back to the offending cold
 * branches, recompiles them as real branches, and recovers.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_adaptive", argc, argv);
    std::printf("Ablation: adaptive recompilation on abort-heavy "
                "workloads (Section 7)\n\n");
    TextTable table({"bench", "mode", "speedup", "abort%",
                     "recompiled"});
    for (const char *name : {"pmd", "bloat", "hsqldb"}) {
        const auto &w = wl::workloadByName(name);
        const vm::Program profile_prog = w.build(true);
        const vm::Program measure_prog = w.build(false);

        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        const auto mb = rt::runExperiment(profile_prog, measure_prog,
                                          base, w.samples);

        for (bool adaptive : {false, true}) {
            rt::ExperimentConfig config;
            config.compiler =
                core::CompilerConfig::atomicAggressiveInline();
            config.adaptiveRecompile = adaptive;
            const auto m = rt::runExperiment(
                profile_prog, measure_prog, config, w.samples);
            table.addRow({name,
                          adaptive ? "adaptive" : "static",
                          TextTable::fmt(speedupPct(mb, m), 1) + "%",
                          TextTable::pct(m.abortPct, 2),
                          m.recompiled ? "yes" : "no"});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected: adaptive recompilation removes the "
                "drifted asserts, cutting the\nabort rate and "
                "recovering (or improving) the speedup.\n");
    report.addTable("ablation_adaptive", table);
    return report.finish();
}
