/**
 * @file
 * Ablation (paper Section 7): adaptive recompilation. pmd's
 * measurement input violates rules far more often than its
 * profiling input, so the compiler's asserts fire and the atomic
 * configuration loses performance. With the adaptive controller
 * enabled, the runtime maps abort PCs back to the offending cold
 * branches, recompiles them as real branches, and recovers.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("ablation_adaptive", argc, argv);
    std::printf("Ablation: adaptive recompilation on abort-heavy "
                "workloads (Section 7)\n\n");
    TextTable table({"bench", "mode", "speedup", "abort%",
                     "recompiled"});
    // Grid: per workload a baseline cell plus static/adaptive atomic
    // cells; all nine run through the parallel driver.
    const std::vector<BuiltWorkload> built =
        buildPrograms(suitePointers({"pmd", "bloat", "hsqldb"}));
    std::vector<GridCell> cells;
    for (size_t wi = 0; wi < built.size(); ++wi) {
        rt::ExperimentConfig base;
        base.compiler = core::CompilerConfig::baseline();
        cells.push_back({wi, std::move(base)});
        for (bool adaptive : {false, true}) {
            rt::ExperimentConfig config;
            config.compiler =
                core::CompilerConfig::atomicAggressiveInline();
            config.adaptiveRecompile = adaptive;
            cells.push_back({wi, std::move(config)});
        }
    }
    const std::vector<rt::RunMetrics> slots =
        runCellGrid(built, cells);

    size_t slot = 0;
    for (const BuiltWorkload &b : built) {
        const rt::RunMetrics &mb = slots[slot++];
        for (bool adaptive : {false, true}) {
            const rt::RunMetrics &m = slots[slot++];
            table.addRow({b.workload->name,
                          adaptive ? "adaptive" : "static",
                          TextTable::fmt(speedupPct(mb, m), 1) + "%",
                          TextTable::pct(m.abortPct, 2),
                          m.recompiled ? "yes" : "no"});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected: adaptive recompilation removes the "
                "drifted asserts, cutting the\nabort rate and "
                "recovering (or improving) the speedup.\n");
    report.addTable("ablation_adaptive", table);
    return report.finish();
}
