/**
 * @file
 * Regenerates Table 3: atomic region statistics for the
 * atomic+aggressive-inlining configuration — region coverage
 * (fraction of retired uops inside regions), unique executed
 * regions, average dynamic region size, abort percentage, and
 * aborts per 1,000 uops.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace aregion;
using namespace aregion::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table3_regions", argc, argv);
    std::printf("Table 3: atomic region statistics "
                "(atomic+aggressive-inline)\n");
    std::printf("(paper values in parentheses)\n\n");

    TextTable table({"bench", "coverage", "(p)", "unique", "(p)",
                     "size", "(p)", "abort%", "(p)", "per-1k",
                     "(p)"});
    for (const auto &w : wl::dacapoSuite()) {
        const WorkloadRuns runs = runWorkload(
            w, {core::CompilerConfig::atomicAggressiveInline()});
        const auto &m = runs.byConfig.at("atomic+aggr-inline");
        const auto &paper = paperTable3().at(w.name);
        table.addRow({
            w.name,
            TextTable::pct(m.coverage, 0),
            "(" + TextTable::fmt(paper.coveragePct, 0) + "%)",
            std::to_string(m.uniqueRegions),
            "(" + std::to_string(paper.unique) + ")",
            TextTable::fmt(m.avgRegionSize, 0),
            "(" + std::to_string(paper.size) + ")",
            TextTable::pct(m.abortPct, 2),
            "(" + TextTable::fmt(paper.abortPct, 2) + "%)",
            TextTable::fmt(m.abortsPer1kUops, 3),
            "(" + TextTable::fmt(paper.abortsPer1k, 4) + ")",
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("coverage: retired uops inside atomic regions.\n"
                "size: mean dynamic uops per committed region.\n");
    report.addTable("table3", table);
    return report.finish();
}
