/**
 * @file
 * Atomic region formation — the paper's primary contribution
 * (Section 4: "Forming and Optimizing Regions").
 *
 * Five-step process:
 *   1. aggressive inlining (performed by the compiler driver; the
 *      partial-inlining criteria live in opt::inlineCalls),
 *   2. boundary selection (Algorithm 1 / Algorithm 2 / Equation 1),
 *   3. hot-path replication into single-entry regions,
 *   4. cold-edge -> Assert conversion,
 *   5. the original blocks remain as the non-speculative version
 *      (reached through each region's abort exception edge).
 *
 * Regions obey the paper's invariants: bounded size (best-effort
 * hardware), no nesting, single entry with arbitrary internal
 * control flow, termination at non-inlined calls and method exits.
 * Per-iteration loop regions are partially unrolled up to the target
 * region size R.
 */

#ifndef AREGION_CORE_REGION_FORMATION_HH
#define AREGION_CORE_REGION_FORMATION_HH

#include <set>
#include <utility>
#include <vector>

#include "ir/ir.hh"
#include "ir/loops.hh"

namespace aregion::core {

/** Tunables; defaults follow the paper (Section 4). */
struct RegionConfig
{
    bool enabled = true;

    /** Branch bias below which a path is cold (paper: 1%). */
    double coldBias = 0.01;

    /** LOOPPATHTHRESHOLD: loops with longer per-entry dynamic paths
     *  get per-iteration regions (paper: 200 HIR ops). */
    double loopPathThreshold = 200;

    /** R, the desired region size in Equation 1 (paper: 200). */
    double targetSize = 200;

    /** Blocks below maxBlockExecCount/100 never seed traces. */
    double hotBlockCutoff = 0.01;

    /** Safety bound on blocks replicated per region. */
    int maxRegionBlocks = 64;

    /** Minimum replicated instructions worth a region (tiny
     *  regions are pure begin/end overhead). */
    int minRegionInstrs = 10;

    /** Partial loop unrolling: max iterations fused per region. */
    int maxUnrollFactor = 4;

    /** Cold edges at these (bcMethod, bcPc) sites are treated as warm
     *  (adaptive recompilation feedback; Section 7). */
    std::set<std::pair<int, int>> warmOverrides;

    /** Methods compiled permanently non-speculative: no regions are
     *  formed for these ids (abort-storm resilience gave up on them;
     *  runtime/resilience.hh). */
    std::set<int> blacklistMethods;
};

/** Formation statistics for reporting and tests. */
struct RegionStats
{
    int regionsFormed = 0;
    int assertsCreated = 0;
    int blocksReplicated = 0;
    int regionExits = 0;
    int unrolledRegions = 0;
};

/** Algorithm 2, LOOPWEIGHT: sum of blockExecCount * numOps. */
double loopWeight(const ir::Function &func, const ir::Loop &loop);

/** Equation 1 cost term for one region of size r, target R. */
double regionSizeCost(double r, double target);

/** Algorithm 2, TRACEDOMINANTPATH: hottest path through seed,
 *  bounded by the given boundary blocks. */
std::vector<int> traceDominantPath(const ir::Function &func, int seed,
                                   const std::set<int> &boundaries);

/** Equation 1, SELECTACYCLICBOUNDARIES: subset of candidate
 *  positions on the path minimizing total size cost. */
std::vector<int> selectAcyclicBoundaries(const ir::Function &func,
                                         const std::vector<int> &path,
                                         const ir::LoopForest &forest,
                                         double target);

/** Algorithm 1, SELECTBOUNDARIES. */
std::set<int> selectBoundaries(const ir::Function &func,
                               const RegionConfig &config);

/** Full region formation (steps 2-5) on an optimized function. */
RegionStats formRegions(ir::Function &func, const RegionConfig &config);

} // namespace aregion::core

#endif // AREGION_CORE_REGION_FORMATION_HH
