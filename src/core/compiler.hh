/**
 * @file
 * The optimizing compiler driver: translation, inlining, classic
 * optimization, and (when enabled) atomic region formation with its
 * dependent optimizations (partial inlining, partial unrolling,
 * speculative lock elision, post-dominance check elimination).
 *
 * The four configurations evaluated in the paper's Figures 7/8 map
 * onto factory functions: baseline(), atomic(),
 * baselineAggressiveInline(), atomicAggressiveInline().
 */

#ifndef AREGION_CORE_COMPILER_HH
#define AREGION_CORE_COMPILER_HH

#include "core/region_formation.hh"
#include "ir/ir.hh"
#include "opt/pass.hh"
#include "vm/profile.hh"
#include "vm/program.hh"

namespace aregion::core {

/** Complete compiler configuration. */
struct CompilerConfig
{
    std::string name = "baseline";

    /** Enable atomic region formation and dependent optimizations. */
    bool atomicRegions = false;
    bool sle = true;                    ///< within atomic mode
    bool postdomCheckElim = false;      ///< Section 7 extension
    bool elideSafepointsInRegions = false; ///< Section 6.4 extension

    /** Inline budget multiplier (paper's "aggressive" = 5x). */
    double inlineMultiplier = 1.0;

    /** Treat effectively-monomorphic sites as monomorphic even when
     *  their caller-blind profile looks polymorphic (the jython grey
     *  bar in Figure 7). */
    bool forceMonomorphic = false;

    RegionConfig region;
    opt::OptContext opt;    ///< profile is filled by compileProgram

    static CompilerConfig baseline();
    static CompilerConfig atomic();
    static CompilerConfig baselineAggressiveInline();
    static CompilerConfig atomicAggressiveInline();
};

/** Static compilation statistics. */
struct CompileStats
{
    RegionStats regions;
    int slePairsElided = 0;
    int postdomChecksRemoved = 0;
    int safepointsElided = 0;
    int totalInstrs = 0;
    int funcsWithRegions = 0;
    /** Methods skipped by RegionConfig::blacklistMethods. */
    int funcsBlacklisted = 0;
};

struct Compiled
{
    ir::Module mod;
    CompileStats stats;
};

/** Compile the whole program under the given configuration. */
Compiled compileProgram(const vm::Program &prog,
                        const vm::Profile &profile,
                        const CompilerConfig &config);

} // namespace aregion::core

#endif // AREGION_CORE_COMPILER_HH
