#include "core/region_formation.hh"

#include <algorithm>
#include <map>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::core {

using namespace aregion::ir;

namespace {

bool
endsWithCall(const Block &blk)
{
    if (blk.instrs.size() < 2)
        return false;
    const Op op = blk.instrs[blk.instrs.size() - 2].op;
    return op == Op::CallStatic || op == Op::CallVirtual;
}

bool
endsWithRet(const Block &blk)
{
    return !blk.instrs.empty() && blk.terminator().op == Op::Ret;
}

/**
 * Irrevocable operations cannot execute speculatively: output cannot
 * be un-printed, threads cannot be un-spawned, and sampling markers
 * must fire exactly once. Blocks containing them terminate regions
 * exactly like non-inlined calls do.
 */
bool
hasIrrevocable(const Block &blk)
{
    for (const Instr &in : blk.instrs) {
        if (in.op == Op::Print || in.op == Op::Spawn ||
            in.op == Op::Marker) {
            return true;
        }
    }
    return false;
}

/** Blocks a region must stop at (not replicate). */
bool
isRegionStopper(const Block &blk)
{
    return endsWithCall(blk) || endsWithRet(blk) || hasIrrevocable(blk);
}

/** Edge count from `blk` to successor index si (0 if unknown). */
double
edgeCount(const Block &blk, size_t si)
{
    return si < blk.succCount.size() ? blk.succCount[si] : 0.0;
}

/** Is the si-th out-edge of blk cold (paper: bias < 1%)? */
bool
isColdEdge(const Block &blk, size_t si, const RegionConfig &config)
{
    if (blk.execCount <= 0)
        return true;
    return edgeCount(blk, si) < config.coldBias * blk.execCount;
}

} // namespace

double
loopWeight(const Function &func, const Loop &loop)
{
    double weight = 0;
    for (int b : loop.blocks) {
        const Block &blk = func.block(b);
        weight += blk.execCount *
                  static_cast<double>(blk.instrs.size());
    }
    return weight;
}

double
regionSizeCost(double r, double target)
{
    r = std::max(r, 1.0);
    const double d = target - r;
    return d * d / (target * r);
}

std::vector<int>
traceDominantPath(const Function &func, int seed,
                  const std::set<int> &boundaries)
{
    std::vector<int> path{seed};
    std::set<int> on_path{seed};

    // Forward along dominant out-edges.
    int cur = seed;
    while (!boundaries.count(cur)) {
        const Block &blk = func.block(cur);
        if (blk.succs.empty())
            break;
        size_t best = 0;
        for (size_t si = 1; si < blk.succs.size(); ++si) {
            if (edgeCount(blk, si) > edgeCount(blk, best))
                best = si;
        }
        const int next = blk.succs[best];
        if (on_path.count(next))
            break;
        path.push_back(next);
        on_path.insert(next);
        cur = next;
    }

    // Backward along dominant in-edges.
    const auto preds = func.computePreds();
    cur = seed;
    while (!boundaries.count(cur)) {
        int best = -1;
        double best_count = -1;
        for (int p : preds[static_cast<size_t>(cur)]) {
            const Block &pb = func.block(p);
            for (size_t si = 0; si < pb.succs.size(); ++si) {
                if (pb.succs[si] == cur &&
                    edgeCount(pb, si) > best_count) {
                    best_count = edgeCount(pb, si);
                    best = p;
                }
            }
        }
        if (best == -1 || on_path.count(best))
            break;
        path.insert(path.begin(), best);
        on_path.insert(best);
        cur = best;
    }
    return path;
}

std::vector<int>
selectAcyclicBoundaries(const Function &func,
                        const std::vector<int> &path,
                        const LoopForest &forest, double target)
{
    if (path.empty())
        return {};

    // Candidate positions: path start/end, loop pre-headers (the
    // position right before entering a loop) and loop exits (the
    // position right after leaving one).
    std::vector<size_t> candidates{0};
    for (size_t i = 1; i < path.size(); ++i) {
        const int prev_loop = forest.loopOf(path[i - 1]);
        const int cur_loop = forest.loopOf(path[i]);
        if (prev_loop != cur_loop)
            candidates.push_back(i);
    }
    candidates.push_back(path.size() - 1);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Cumulative instruction counts along the path.
    std::vector<double> cum(path.size() + 1, 0);
    for (size_t i = 0; i < path.size(); ++i) {
        cum[i + 1] = cum[i] + static_cast<double>(
            func.block(path[i]).instrs.size());
    }

    // DP over candidates: pick a subset (keeping both endpoints)
    // minimizing the sum of Equation 1 region costs.
    const size_t nc = candidates.size();
    std::vector<double> best(nc, 1e300);
    std::vector<int> from(nc, -1);
    best[0] = 0;
    for (size_t j = 1; j < nc; ++j) {
        for (size_t i = 0; i < j; ++i) {
            const double size =
                cum[candidates[j]] - cum[candidates[i]];
            const double cost =
                best[i] + regionSizeCost(size, target);
            if (cost < best[j]) {
                best[j] = cost;
                from[j] = static_cast<int>(i);
            }
        }
    }

    std::vector<int> chosen;
    for (int j = static_cast<int>(nc) - 1; j != -1; j = from[
             static_cast<size_t>(j)]) {
        chosen.push_back(path[candidates[static_cast<size_t>(j)]]);
        if (j == 0)
            break;
    }
    std::reverse(chosen.begin(), chosen.end());
    return chosen;
}

std::set<int>
selectBoundaries(const Function &func, const RegionConfig &config)
{
    std::set<int> selected;
    const DominatorTree doms(func);
    const LoopForest forest(func, doms);
    const auto rpo = func.reversePostOrder();

    // Loops, innermost first (Algorithm 1, first phase).
    for (int li : forest.postOrder()) {
        const Loop &loop = forest.loops()[static_cast<size_t>(li)];
        const Block &header = func.block(loop.header);

        bool warm_call = false;
        for (int b : loop.blocks) {
            const Block &blk = func.block(b);
            if (endsWithCall(blk) && header.execCount > 0 &&
                blk.execCount >=
                    config.coldBias * header.execCount) {
                warm_call = true;
            }
        }

        double entry_flow = 0;
        for (int p : forest.entryPreds(func, li)) {
            const Block &pb = func.block(p);
            for (size_t si = 0; si < pb.succs.size(); ++si) {
                if (pb.succs[si] == loop.header)
                    entry_flow += edgeCount(pb, si);
            }
        }
        const double path_length =
            loopWeight(func, loop) / std::max(entry_flow, 1.0);

        if (path_length >= config.loopPathThreshold || warm_call)
            selected.insert(loop.header);
    }

    // Acyclic paths (Algorithm 1, last phase).
    std::set<int> trace_boundaries{func.entry};
    for (int b : rpo) {
        const Block &blk = func.block(b);
        if (isRegionStopper(blk))
            trace_boundaries.insert(b);
        if (endsWithCall(blk)) {
            for (int s : blk.succs)
                trace_boundaries.insert(s);     // call continuation
        }
    }

    double max_exec = 0;
    for (int b : rpo)
        max_exec = std::max(max_exec, func.block(b).execCount);

    std::vector<int> by_heat(rpo.begin(), rpo.end());
    std::stable_sort(by_heat.begin(), by_heat.end(),
                     [&](int a, int b) {
                         return func.block(a).execCount >
                                func.block(b).execCount;
                     });

    // A block inside a loop whose header is already a boundary is
    // covered by that loop's per-iteration region; neither seed a
    // trace from it nor select it as an acyclic boundary (doing so
    // would fragment the loop region at its body blocks).
    auto covered_by_loop_region = [&](int b) {
        for (int li = forest.loopOf(b); li != -1;
             li = forest.loops()[static_cast<size_t>(li)].parent) {
            if (selected.count(
                    forest.loops()[static_cast<size_t>(li)].header)) {
                return true;
            }
        }
        return false;
    };

    std::set<int> visited;
    for (int b : by_heat) {
        const Block &blk = func.block(b);
        if (visited.count(b) ||
            blk.execCount < max_exec * config.hotBlockCutoff ||
            blk.execCount <= 0 || covered_by_loop_region(b)) {
            continue;
        }
        std::set<int> stops = selected;
        stops.insert(trace_boundaries.begin(), trace_boundaries.end());
        const auto path = traceDominantPath(func, b, stops);
        auto chosen = selectAcyclicBoundaries(
            func, path, forest, config.targetSize);
        chosen.erase(std::remove_if(chosen.begin(), chosen.end(),
                                    covered_by_loop_region),
                     chosen.end());
        selected.insert(chosen.begin(), chosen.end());
        visited.insert(path.begin(), path.end());
    }

    // Boundaries must be usable region entries.
    for (auto it = selected.begin(); it != selected.end();) {
        const Block &blk = func.block(*it);
        if (isRegionStopper(blk) ||
            blk.execCount <= 0 || blk.regionId >= 0) {
            it = selected.erase(it);
        } else {
            ++it;
        }
    }
    return selected;
}

namespace {

/** One region's construction (steps 3-4 for one boundary). */
class RegionBuilder
{
  public:
    RegionBuilder(Function &func_, const RegionConfig &config_,
                  RegionStats &stats_, const std::set<int> &selected_,
                  int &next_abort_id_)
        : func(func_), config(config_), stats(stats_),
          selected(selected_), nextAbortId(next_abort_id_)
    {
    }

    /** Build a region entered at boundary h; false if not viable. */
    bool
    build(int h)
    {
        hotSet = discoverHotSet(h);
        int hot_instrs = 0;
        for (int b : hotSet)
            hot_instrs += static_cast<int>(
                func.block(b).instrs.size());
        if (hot_instrs < config.minRegionInstrs)
            return false;

        // Partial unrolling: if the hot set loops back to h and is
        // small, fuse several iterations into one region.
        int factor = 1;
        bool loops_back = false;
        double back_flow = 0;
        for (int b : hotSet) {
            const Block &blk = func.block(b);
            for (size_t si = 0; si < blk.succs.size(); ++si) {
                if (blk.succs[si] == h) {
                    loops_back = true;
                    back_flow += edgeCount(blk, si);
                }
            }
        }
        const double h_exec = func.block(h).execCount;
        if (loops_back && h_exec > 0 && back_flow / h_exec >= 0.5) {
            factor = static_cast<int>(config.targetSize /
                                      std::max(hot_instrs, 1));
            factor = std::clamp(factor, 1, config.maxUnrollFactor);
        }
        if (factor > 1)
            stats.unrolledRegions++;

        const int rid = static_cast<int>(func.regions.size());
        RegionInfo region;
        region.id = rid;

        // Begin block: [AtomicBegin, Jump] with the exception edge
        // to the original (non-speculative) boundary block.
        Block &begin = func.newBlock();
        begin.regionId = rid;
        begin.execCount = h_exec;

        // Replicate the hot set `factor` times.
        std::vector<std::map<int, int>> copies;
        for (int k = 0; k < factor; ++k) {
            copies.push_back(cloneBlocks(func, hotSet));
            for (const auto &[o, c] : copies.back()) {
                func.block(c).regionId = rid;
                func.block(c).execCount =
                    func.block(o).execCount / factor;
                for (double &cnt : func.block(c).succCount)
                    cnt /= factor;
                stats.blocksReplicated++;
            }
        }

        Instr abegin;
        abegin.op = Op::AtomicBegin;
        abegin.aux = rid;
        Instr bjump;
        bjump.op = Op::Jump;
        begin.instrs = {std::move(abegin), std::move(bjump)};
        begin.succs = {copies[0].at(h), h};
        begin.succCount = {h_exec, 0};

        // Wire region-leaving edges per copy.
        for (int k = 0; k < factor; ++k)
            wireCopy(copies[static_cast<size_t>(k)],
                     k + 1 < factor
                         ? copies[static_cast<size_t>(k) + 1].at(h)
                         : -1,
                     h, rid, region);

        region.entryBlock = begin.id;
        region.altBlock = h;
        func.regions.push_back(std::move(region));
        beginOf[h] = begin.id;
        stats.regionsFormed++;
        return true;
    }

    const std::map<int, int> &begins() const { return beginOf; }

  private:
    /** DFS along warm edges; stops at boundaries, calls, rets. */
    std::set<int>
    discoverHotSet(int h) const
    {
        std::set<int> hot{h};
        std::vector<int> work{h};
        while (!work.empty() &&
               static_cast<int>(hot.size()) < config.maxRegionBlocks) {
            const int b = work.back();
            work.pop_back();
            const Block &blk = func.block(b);
            for (size_t si = 0; si < blk.succs.size(); ++si) {
                const int s = blk.succs[si];
                if (hot.count(s) || isColdEdge(blk, si, config))
                    continue;
                const Block &sb = func.block(s);
                if (selected.count(s) || isRegionStopper(sb) ||
                    sb.regionId >= 0) {
                    continue;   // region exit target, not replicated
                }
                hot.insert(s);
                work.push_back(s);
            }
        }
        return hot;
    }

    /** Create an [AtomicEnd, Jump target] exit block. */
    int
    makeExit(int rid, int target, double flow, const Instr &origin)
    {
        Block &exit = func.newBlock();
        exit.regionId = rid;
        exit.execCount = flow;
        Instr aend;
        aend.op = Op::AtomicEnd;
        aend.aux = rid;
        aend.bcPc = origin.bcPc;
        aend.bcMethod = origin.bcMethod;
        Instr jump;
        jump.op = Op::Jump;
        jump.bcPc = origin.bcPc;
        jump.bcMethod = origin.bcMethod;
        exit.instrs = {std::move(aend), std::move(jump)};
        exit.succs = {target};
        exit.succCount = {flow};
        stats.regionExits++;
        return exit.id;
    }

    /**
     * Rewrite one copy's external edges: cold exits become Asserts,
     * warm exits become AtomicEnd blocks, and back edges to h chain
     * into the next unrolled copy (or exit to re-enter the region).
     */
    void
    wireCopy(const std::map<int, int> &copy, int next_copy_entry,
             int h, int rid, RegionInfo &region)
    {
        // cloneBlocks redirected intra-set edges to the clones, so a
        // back edge to the boundary h now points at this copy's own
        // cloned entry. Rewire it: into the next unrolled copy, or —
        // for the last copy — through an AtomicEnd exit back to the
        // original h (whose in-edges later move to aregion_begin,
        // re-entering the region for the next iteration).
        const int my_entry = copy.at(h);
        for (const auto &[orig_id, clone_id] : copy) {
            Block &clone = func.block(clone_id);
            const Block &orig = func.block(orig_id);

            for (size_t si = 0; si < clone.succs.size(); ++si) {
                if (clone.succs[si] != my_entry)
                    continue;
                if (next_copy_entry != -1) {
                    clone.succs[si] = next_copy_entry;
                } else {
                    const double flow =
                        si < clone.succCount.size()
                            ? clone.succCount[si] : 0.0;
                    clone.succs[si] = makeExit(
                        rid, h, flow, clone.terminator());
                }
            }

            // Classify remaining external successors.
            const bool is_branch =
                clone.terminator().op == Op::Branch;
            std::vector<bool> external(clone.succs.size());
            std::vector<bool> cold(clone.succs.size());
            bool any_cold_external = false;
            for (size_t si = 0; si < clone.succs.size(); ++si) {
                const int s = clone.succs[si];
                // Clones (all unrolled copies) carry this region id.
                external[si] = func.block(s).regionId != rid;
                if (!external[si])
                    continue;
                bool c = isColdEdge(orig, si, config);
                const Instr &term = orig.terminator();
                if (c && config.warmOverrides.count(
                        {term.bcMethod, term.bcPc})) {
                    c = false;  // adaptive feedback says warm
                }
                cold[si] = c;
                any_cold_external |= c;
            }

            if (is_branch && any_cold_external &&
                !(cold[0] && cold[1])) {
                // Exactly one cold arm: convert the branch into an
                // Assert plus a jump down the surviving arm.
                const size_t ci = cold[0] ? 0 : 1;
                const size_t wi = 1 - ci;
                const Instr branch = clone.terminator();
                clone.instrs.pop_back();
                Instr assert_in;
                assert_in.op = Op::Assert;
                assert_in.srcs = {branch.s0()};
                // Branch takes succs[0] when cond != 0; abort when
                // control would go down the cold arm.
                assert_in.imm = ci == 0 ? 0 : 1;
                assert_in.aux = nextAbortId;
                assert_in.bcPc = branch.bcPc;
                assert_in.bcMethod = branch.bcMethod;
                region.abortOrigins[nextAbortId] =
                    {branch.bcMethod, branch.bcPc};
                ++nextAbortId;
                stats.assertsCreated++;
                clone.instrs.push_back(std::move(assert_in));
                Instr jump;
                jump.op = Op::Jump;
                jump.bcPc = branch.bcPc;
                jump.bcMethod = branch.bcMethod;
                clone.instrs.push_back(std::move(jump));
                const int kept = clone.succs[wi];
                const double kept_flow =
                    wi < clone.succCount.size()
                        ? clone.succCount[wi] : clone.execCount;
                clone.succs = {kept};
                clone.succCount = {kept_flow};
                // The kept arm may still be external and warm.
                if (func.block(kept).regionId != rid) {
                    clone.succs[0] = makeExit(
                        rid, kept, kept_flow, clone.terminator());
                }
                continue;
            }

            // Otherwise every external edge exits the region.
            for (size_t si = 0; si < clone.succs.size(); ++si) {
                if (!external[si])
                    continue;
                const double flow =
                    si < clone.succCount.size()
                        ? clone.succCount[si] : 0.0;
                clone.succs[si] = makeExit(rid, clone.succs[si],
                                           flow,
                                           clone.terminator());
            }
        }
    }

    Function &func;
    const RegionConfig &config;
    RegionStats &stats;
    const std::set<int> &selected;
    int &nextAbortId;
    std::set<int> hotSet;
    std::map<int, int> beginOf;
};

} // namespace

namespace {

/** Mirror the formation decisions process-wide (`region.*` keys;
 *  see docs/TELEMETRY.md). Runs on every call — zero-valued keys
 *  still register, so every snapshot carries the full schema. */
void
publishFormationStats(const RegionStats &stats)
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    reg.add(keys::kRegionFormed,
            static_cast<uint64_t>(stats.regionsFormed));
    reg.add(keys::kRegionAssertsConverted,
            static_cast<uint64_t>(stats.assertsCreated));
    reg.add(keys::kRegionBlocksReplicated,
            static_cast<uint64_t>(stats.blocksReplicated));
    reg.add(keys::kRegionExits,
            static_cast<uint64_t>(stats.regionExits));
    reg.add(keys::kRegionUnrolled,
            static_cast<uint64_t>(stats.unrolledRegions));
}

} // namespace

RegionStats
formRegions(Function &func, const RegionConfig &config)
{
    RegionStats stats;
    if (!config.enabled) {
        publishFormationStats(stats);
        return stats;
    }

    const std::set<int> selected = selectBoundaries(func, config);
    if (selected.empty()) {
        publishFormationStats(stats);
        return stats;
    }

    int next_abort_id = 0;
    RegionBuilder builder(func, config, stats, selected,
                          next_abort_id);

    // Hottest boundaries first.
    std::vector<int> order(selected.begin(), selected.end());
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return func.block(a).execCount > func.block(b).execCount;
    });
    for (int h : order)
        builder.build(h);

    // Step: move every edge into a boundary original onto its
    // region's begin block (the paper's "all edges into the block
    // that the region entry was copied from are moved to the
    // aregion_begin"). Begin blocks keep their exception edges.
    const auto &begins = builder.begins();
    if (!begins.empty()) {
        // A region at the function entry is entered via the entry
        // pointer rather than an edge.
        auto eit = begins.find(func.entry);
        if (eit != begins.end())
            func.entry = eit->second;
        for (int b = 0; b < func.numBlocks(); ++b) {
            Block &blk = func.block(b);
            if (!blk.instrs.empty() &&
                blk.instrs.front().op == Op::AtomicBegin) {
                continue;
            }
            for (int &s : blk.succs) {
                auto it = begins.find(s);
                if (it != begins.end() && it->second != b)
                    s = it->second;
            }
        }
    }

    func.compact();
    publishFormationStats(stats);
    return stats;
}

} // namespace aregion::core
