/**
 * @file
 * Post-dominance bounds-check elimination inside atomic regions —
 * the paper's Section 7 extension.
 *
 * Inside a region, a bounds check A(i, len) may be removed when a
 * subsuming check B(j, len) post-dominates it within the region,
 * where j is defined as i + k for a constant k >= 0: if B fails,
 * the region aborts and the non-speculative code re-executes both
 * checks precisely.
 *
 * Caveat (documented in DESIGN.md): subsumption of the lower bound
 * (i >= 0) by (i + k >= 0) is heuristic for k > 0, exactly as the
 * paper's example assumes a non-negative induction variable; the
 * pass is therefore opt-in (CompilerConfig::postdomCheckElim).
 */

#ifndef AREGION_CORE_POSTDOM_CHECK_ELIM_HH
#define AREGION_CORE_POSTDOM_CHECK_ELIM_HH

#include "ir/ir.hh"

namespace aregion::core {

/** Returns the number of checks removed. */
int postdomCheckElim(ir::Function &func);

} // namespace aregion::core

#endif // AREGION_CORE_POSTDOM_CHECK_ELIM_HH
