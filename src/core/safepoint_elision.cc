#include "core/safepoint_elision.hh"

#include <algorithm>

namespace aregion::core {

using namespace aregion::ir;

int
elideSafepoints(Function &func)
{
    int removed = 0;
    for (int b = 0; b < func.numBlocks(); ++b) {
        Block &blk = func.block(b);
        if (blk.regionId < 0)
            continue;
        const auto before = blk.instrs.size();
        blk.instrs.erase(
            std::remove_if(blk.instrs.begin(), blk.instrs.end(),
                           [](const Instr &in) {
                               return in.op == Op::Safepoint;
                           }),
            blk.instrs.end());
        removed += static_cast<int>(before - blk.instrs.size());
    }
    return removed;
}

} // namespace aregion::core
