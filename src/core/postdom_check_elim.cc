#include "core/postdom_check_elim.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "ir/dominators.hh"

namespace aregion::core {

using namespace aregion::ir;

namespace {

struct CheckSite
{
    int block;
    size_t index;
    Vreg idx;
    Vreg len;
};

} // namespace

int
postdomCheckElim(Function &func)
{
    if (func.regions.empty())
        return 0;

    // Single-def analysis: value identity by vreg is only stable for
    // vregs with one static definition.
    std::map<Vreg, int> def_count;
    std::map<Vreg, const Instr *> def_of;
    for (int b : func.reversePostOrder()) {
        for (const Instr &in : func.block(b).instrs) {
            if (in.dst != NO_VREG) {
                def_count[in.dst]++;
                def_of[in.dst] = &in;
            }
        }
    }
    auto single_def = [&](Vreg v) {
        auto it = def_count.find(v);
        return it != def_count.end() && it->second == 1;
    };

    const DominatorTree pdoms(func, /*post=*/true);

    int removed = 0;
    for (const RegionInfo &region : func.regions) {
        std::vector<CheckSite> checks;
        for (int b = 0; b < func.numBlocks(); ++b) {
            const Block &blk = func.block(b);
            if (blk.regionId != region.id)
                continue;
            for (size_t i = 0; i < blk.instrs.size(); ++i) {
                const Instr &in = blk.instrs[i];
                if (in.op == Op::BoundsCheck) {
                    checks.push_back({b, i, in.s0(), in.s1()});
                }
            }
        }

        // j subsumes i when j == i, or j := Add(i, k) with const
        // k >= 0 (paper's check_bounds(len, i+1) example).
        auto subsumes = [&](Vreg j, Vreg i) {
            if (j == i)
                return true;
            if (!single_def(j) || !single_def(i))
                return false;
            const Instr *dj = def_of[j];
            if (dj->op != Op::Add || dj->srcs.size() != 2)
                return false;
            Vreg base = NO_VREG, other = NO_VREG;
            if (dj->s0() == i) {
                base = i;
                other = dj->s1();
            } else if (dj->s1() == i) {
                base = i;
                other = dj->s0();
            } else {
                return false;
            }
            (void)base;
            if (!single_def(other))
                return false;
            const Instr *dk = def_of[other];
            return dk->op == Op::Const && dk->imm >= 0;
        };

        // Same-block variant (loop induction variables are multi-def,
        // so the global single-def test is too strict here): between
        // check A and check B, A's index and length must be stable,
        // and B's index must be defined exactly once in between as
        // A's index plus a non-negative constant.
        auto same_block_subsumes = [&](const CheckSite &a,
                                       const CheckSite &b) {
            if (a.block != b.block || b.index <= a.index)
                return false;
            const Block &blk = func.block(a.block);
            // Two shapes: a fresh index vreg defined once in between
            // as idx + k, or the SAME vreg incremented exactly once
            // (the unrolled `check(i); ++i; check(i)` pattern).
            const bool same_vreg = a.idx == b.idx;
            bool bound = false;
            for (size_t i = a.index + 1; i < b.index; ++i) {
                const Instr &in = blk.instrs[i];
                if (in.dst == a.len)
                    return false;
                if (in.dst != b.idx) {
                    if (in.dst == a.idx)
                        return false;   // unrelated clobber
                    continue;
                }
                if (bound || in.op != Op::Add ||
                    in.srcs.size() != 2) {
                    return false;
                }
                Vreg other;
                if (in.s0() == a.idx)
                    other = in.s1();
                else if (in.s1() == a.idx)
                    other = in.s0();
                else
                    return false;
                if (!single_def(other))
                    return false;
                const Instr *dk = def_of[other];
                if (dk->op != Op::Const || dk->imm < 0)
                    return false;
                bound = true;
            }
            // With distinct vregs the binding is required; with the
            // same vreg an increment must have happened (otherwise
            // the checks are identical and CSE owns them).
            (void)same_vreg;
            return bound;
        };

        std::vector<CheckSite> doomed;
        for (const CheckSite &a : checks) {
            for (const CheckSite &b : checks) {
                if (a.block == b.block && a.index == b.index)
                    continue;
                if (a.len != b.len)
                    continue;
                const bool later_same_block =
                    same_block_subsumes(a, b);
                if (b.idx == a.idx && !later_same_block)
                    continue;   // identical checks belong to CSE
                const bool postdominated =
                    a.block != b.block &&
                    single_def(a.idx) && single_def(a.len) &&
                    subsumes(b.idx, a.idx) &&
                    pdoms.dominates(b.block, a.block) &&
                    func.block(b.block).regionId == region.id;
                if (later_same_block || postdominated) {
                    doomed.push_back(a);
                    break;
                }
            }
        }

        // Delete from the back so indices stay valid.
        std::sort(doomed.begin(), doomed.end(),
                  [](const CheckSite &x, const CheckSite &y) {
                      if (x.block != y.block)
                          return x.block > y.block;
                      return x.index > y.index;
                  });
        for (const CheckSite &site : doomed) {
            Block &blk = func.block(site.block);
            blk.instrs.erase(blk.instrs.begin() +
                             static_cast<long>(site.index));
            ++removed;
        }
    }
    return removed;
}

} // namespace aregion::core
