/**
 * @file
 * Speculative lock elision inside atomic regions (paper Section 4).
 *
 * When a region contains balanced monitor enter/exit pairs on the
 * same object, the fast path reduces to a single load of the lock
 * word plus an assert that it is free: the region's read-set entry
 * on the lock word makes any concurrent acquisition a conflict
 * abort, and atomic commit makes the elision safe. The monitor exit
 * needs no action at all.
 */

#ifndef AREGION_CORE_LOCK_ELISION_HH
#define AREGION_CORE_LOCK_ELISION_HH

#include "ir/ir.hh"

namespace aregion::core {

struct SleStats
{
    int pairsElided = 0;        ///< balanced enter/exit pairs removed
    int regionsAffected = 0;
};

/**
 * Elide balanced monitor pairs inside every atomic region of the
 * function. Monitors are matched per receiver vreg; a vreg whose
 * enter/exit counts differ within the region is left untouched
 * (conservative: the non-speculative path still locks properly).
 * Fresh abort ids continue from the function's current maximum.
 */
SleStats elideLocks(ir::Function &func);

} // namespace aregion::core

#endif // AREGION_CORE_LOCK_ELISION_HH
