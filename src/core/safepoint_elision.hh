/**
 * @file
 * Safepoint elision inside atomic regions (paper Section 6.4).
 *
 * The paper's authors tried removing the GC safe point from loops
 * fully encapsulated in atomic regions, replacing it with a single
 * poll outside — and were foiled by their register allocator. The
 * transformation itself is sound on this substrate: a timer
 * interrupt aborts any in-flight region, so preemption latency is
 * bounded by the region size even with no polls inside, and the
 * region's alternate (non-speculative) code keeps its polls.
 */

#ifndef AREGION_CORE_SAFEPOINT_ELISION_HH
#define AREGION_CORE_SAFEPOINT_ELISION_HH

#include "ir/ir.hh"

namespace aregion::core {

/** Remove Safepoint instructions from region blocks; returns the
 *  number removed. */
int elideSafepoints(ir::Function &func);

} // namespace aregion::core

#endif // AREGION_CORE_SAFEPOINT_ELISION_HH
