/**
 * @file
 * Adaptive recompilation policy (paper Section 7).
 *
 * The hardware reports the program counter of the instruction
 * responsible for each abort; the runtime maps that back (through
 * RegionInfo::abortOrigins) to the cold branch whose profile
 * changed. When a region's abort rate exceeds a threshold, the
 * controller emits warm-override sites so recompilation keeps those
 * paths as real branches instead of asserts.
 */

#ifndef AREGION_CORE_ADAPTIVE_HH
#define AREGION_CORE_ADAPTIVE_HH

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "ir/ir.hh"

namespace aregion::core {

/** Runtime telemetry for one static region of one function. */
struct RegionTelemetry
{
    uint64_t entries = 0;
    uint64_t commits = 0;
    /** Abort counts keyed by abort id (explicit asserts) and by
     *  cause for implicit aborts. */
    std::map<int, uint64_t> abortsByAssert;
    uint64_t implicitAborts = 0;    ///< overflow/interrupt/conflict
};

/** Telemetry across a run: (methodId, regionId) -> stats. */
using AbortTelemetry =
    std::map<std::pair<int, int>, RegionTelemetry>;

/** Policy knobs and the override computation. */
class AdaptiveController
{
  public:
    /** Abort rate above which a region must be recompiled (the
     *  paper: "even a few percent" hurts). */
    double abortRateThreshold = 0.01;

    /** Regions with fewer entries than this are left alone. */
    uint64_t minEntries = 64;

    /**
     * Warm-override sites — (bcMethod, bcPc) of the cold branches
     * whose asserts dominate the abort profile of misbehaving
     * regions. Feed into RegionConfig::warmOverrides and recompile.
     */
    std::set<std::pair<int, int>>
    computeOverrides(const ir::Module &mod,
                     const AbortTelemetry &telemetry) const;
};

} // namespace aregion::core

#endif // AREGION_CORE_ADAPTIVE_HH
