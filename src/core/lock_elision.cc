#include "core/lock_elision.hh"

#include <map>

#include "vm/layout.hh"

namespace aregion::core {

using namespace aregion::ir;

SleStats
elideLocks(Function &func)
{
    SleStats stats;

    // Continue abort ids from the formation pass.
    int next_abort_id = 0;
    for (const RegionInfo &r : func.regions) {
        for (const auto &[id, origin] : r.abortOrigins)
            next_abort_id = std::max(next_abort_id, id + 1);
    }

    for (RegionInfo &region : func.regions) {
        // Count monitor ops per receiver vreg within this region.
        std::map<Vreg, std::pair<int, int>> monitors; // enter, exit
        for (int b = 0; b < func.numBlocks(); ++b) {
            const Block &blk = func.block(b);
            if (blk.regionId != region.id)
                continue;
            for (const Instr &in : blk.instrs) {
                if (in.op == Op::MonitorEnter)
                    monitors[in.s0()].first++;
                else if (in.op == Op::MonitorExit)
                    monitors[in.s0()].second++;
            }
        }

        bool any = false;
        for (const auto &[obj, counts] : monitors) {
            if (counts.first == 0 || counts.first != counts.second)
                continue;       // unbalanced: keep real locking
            // Rewrite every enter into load+assert, drop every exit.
            for (int b = 0; b < func.numBlocks(); ++b) {
                Block &blk = func.block(b);
                if (blk.regionId != region.id)
                    continue;
                std::vector<Instr> out;
                out.reserve(blk.instrs.size());
                for (Instr &in : blk.instrs) {
                    if (in.op == Op::MonitorEnter && in.s0() == obj) {
                        Instr load;
                        load.op = Op::LoadRaw;
                        load.dst = func.newVreg();
                        load.srcs = {obj};
                        load.imm = vm::layout::HDR_LOCK;
                        load.bcPc = in.bcPc;
                        load.bcMethod = in.bcMethod;
                        Instr assert_in;
                        assert_in.op = Op::Assert;
                        assert_in.srcs = {load.dst};
                        assert_in.imm = 0;  // abort if lock word != 0
                        assert_in.aux = next_abort_id;
                        assert_in.bcPc = in.bcPc;
                        assert_in.bcMethod = in.bcMethod;
                        region.abortOrigins[next_abort_id] =
                            {in.bcMethod, in.bcPc};
                        ++next_abort_id;
                        out.push_back(std::move(load));
                        out.push_back(std::move(assert_in));
                        continue;
                    }
                    if (in.op == Op::MonitorExit && in.s0() == obj)
                        continue;   // no action in the common case
                    out.push_back(std::move(in));
                }
                blk.instrs = std::move(out);
            }
            stats.pairsElided += counts.first;
            any = true;
        }
        if (any)
            stats.regionsAffected++;
    }
    return stats;
}

} // namespace aregion::core
