#include "core/compiler.hh"

#include "core/lock_elision.hh"
#include "core/safepoint_elision.hh"
#include "core/postdom_check_elim.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::core {

CompilerConfig
CompilerConfig::baseline()
{
    CompilerConfig config;
    config.name = "no-atomic";
    return config;
}

CompilerConfig
CompilerConfig::atomic()
{
    CompilerConfig config;
    config.name = "atomic";
    config.atomicRegions = true;
    return config;
}

CompilerConfig
CompilerConfig::baselineAggressiveInline()
{
    CompilerConfig config;
    config.name = "no-atomic+aggr-inline";
    config.inlineMultiplier = 5.0;
    return config;
}

CompilerConfig
CompilerConfig::atomicAggressiveInline()
{
    CompilerConfig config;
    config.name = "atomic+aggr-inline";
    config.atomicRegions = true;
    config.inlineMultiplier = 5.0;
    return config;
}

Compiled
compileProgram(const vm::Program &prog, const vm::Profile &profile,
               const CompilerConfig &config)
{
    // The aggregate compile-time counter lives here, not in the
    // runtime driver: every entry point (experiment runner, bench
    // harnesses, tests) gets a jit.compile_us that covers the same
    // work the per-pass jit.pass.* timers break down.
    telemetry::ScopedSpan span("jit.compile");
    telemetry::ScopedTimerUs total_timer(
        telemetry::Registry::global().counter(
            telemetry::keys::kJitCompileUs));

    opt::OptContext ctx = config.opt;
    ctx.profile = &profile;
    ctx.inlineCalleeLimit = static_cast<int>(
        ctx.inlineCalleeLimit * config.inlineMultiplier);
    ctx.inlineGrowthLimit = static_cast<int>(
        ctx.inlineGrowthLimit * config.inlineMultiplier);
    // The partial inliner refuses methods containing polymorphic
    // call sites (Section 6.1, the jython anecdote). With a 5x
    // budget the regular inliner fully inlines such methods anyway
    // (the guarded devirtualization handles the slow path), matching
    // the paper's atomic+aggressive-inlining behaviour.
    if (config.atomicRegions) {
        // Region formation Step 1: aggressive (partial) inlining of
        // methods whose hot bodies will be region-encapsulated.
        ctx.partialInlineLimit = 140;
        if (!config.forceMonomorphic &&
            config.inlineMultiplier <= 1.0) {
            ctx.refusePolymorphicCallees = true;
        }
    }
    if (config.forceMonomorphic) {
        ctx.devirtBias = 0.50;
        ctx.assumeMonomorphic = true;
    }

    Compiled result;
    result.mod = ir::translateProgram(prog, &profile);
    opt::optimizeModule(result.mod, ctx);

    if (config.atomicRegions) {
        for (auto &[mid, func] : result.mod.funcs) {
            if (config.region.blacklistMethods.count(mid)) {
                // Abort-storm resilience condemned this method:
                // compile it non-speculative (no regions, no
                // region-dependent passes) but still give the
                // scalar pipeline its normal pass.
                result.stats.funcsBlacklisted++;
                opt::runScalarPipeline(func, ctx);
                continue;
            }
            const RegionStats rs = formRegions(func, config.region);
            result.stats.regions.regionsFormed += rs.regionsFormed;
            result.stats.regions.assertsCreated += rs.assertsCreated;
            result.stats.regions.blocksReplicated +=
                rs.blocksReplicated;
            result.stats.regions.regionExits += rs.regionExits;
            result.stats.regions.unrolledRegions +=
                rs.unrolledRegions;
            if (rs.regionsFormed > 0)
                result.stats.funcsWithRegions++;

            // Only functions these passes actually changed need
            // another scalar sweep — a region-less function is still
            // at the fixpoint optimizeModule left it at.
            bool needs_cleanup = rs.regionsFormed > 0 ||
                                 rs.assertsCreated > 0 ||
                                 rs.blocksReplicated > 0;
            if (config.sle) {
                const SleStats sle = elideLocks(func);
                result.stats.slePairsElided += sle.pairsElided;
                needs_cleanup |= sle.pairsElided > 0;
            }
            if (config.elideSafepointsInRegions) {
                const int elided = elideSafepoints(func);
                result.stats.safepointsElided += elided;
                needs_cleanup |= elided > 0;
            }
            // The payoff: the SAME non-speculative scalar passes now
            // optimize the isolated hot path.
            if (needs_cleanup)
                opt::runScalarPipeline(func, ctx);

            if (config.postdomCheckElim) {
                const int removed = postdomCheckElim(func);
                result.stats.postdomChecksRemoved += removed;
                if (removed > 0)
                    opt::runScalarPipeline(func, ctx);
            }
        }
    }

    for (auto &[mid, func] : result.mod.funcs) {
        ir::verifyOrDie(func);
        result.stats.totalInstrs += func.countInstrs();
    }
    return result;
}

} // namespace aregion::core
