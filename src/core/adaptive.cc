#include "core/adaptive.hh"

namespace aregion::core {

std::set<std::pair<int, int>>
AdaptiveController::computeOverrides(
    const ir::Module &mod, const AbortTelemetry &telemetry) const
{
    std::set<std::pair<int, int>> overrides;
    for (const auto &[key, stats] : telemetry) {
        const auto &[method, region_id] = key;
        if (stats.entries < minEntries)
            continue;
        uint64_t aborts = stats.implicitAborts;
        for (const auto &[id, count] : stats.abortsByAssert)
            aborts += count;
        const double rate = static_cast<double>(aborts) /
                            static_cast<double>(stats.entries);
        if (rate < abortRateThreshold)
            continue;

        auto fit = mod.funcs.find(method);
        if (fit == mod.funcs.end())
            continue;
        const ir::Function &func = fit->second;
        if (region_id < 0 ||
            static_cast<size_t>(region_id) >= func.regions.size()) {
            continue;
        }
        const ir::RegionInfo &region =
            func.regions[static_cast<size_t>(region_id)];

        // Blame origin sites responsible for a meaningful share.
        // Partial unrolling replicates one cold branch into several
        // assert ids, so aggregate by (method, pc) first.
        std::map<std::pair<int, int>, uint64_t> by_origin;
        for (const auto &[assert_id, count] : stats.abortsByAssert) {
            auto oit = region.abortOrigins.find(assert_id);
            if (oit != region.abortOrigins.end())
                by_origin[oit->second] += count;
        }
        for (const auto &[origin, count] : by_origin) {
            if (static_cast<double>(count) >=
                0.25 * static_cast<double>(aborts)) {
                overrides.insert(origin);
            }
        }
    }
    return overrides;
}

} // namespace aregion::core
