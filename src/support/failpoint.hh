/**
 * @file
 * Deterministic fault-injection substrate.
 *
 * A failpoint is a named site in the code (e.g. "machine.interrupt")
 * that production code consults through a cached handle; when armed,
 * each consultation ("hit") deterministically decides whether the
 * site fires this time. Triggers:
 *
 *   p<float>   fire each hit independently with the given probability
 *   n<N>       fire on every Nth hit (hits N, 2N, 3N, ...)
 *   once<N>    fire exactly once, on the Nth hit
 *
 * Any trigger may carry an integer payload with an `=V` suffix
 * (e.g. `machine.capacity:p0.5=24`); the hook site interprets it
 * (for capacity pressure it is the shrunken effective line count).
 *
 * Everything is off by default: an unarmed site costs a null-pointer
 * test (the hook caches `Registry::find()` once, and the surrounding
 * code guards on one bool), so failpoints can stay in release
 * binaries without measurable overhead.
 *
 * Determinism: firing decisions are pure functions of (global seed,
 * failpoint name, hit index) — no hidden RNG state — so a run with
 * the same seed and the same spec replays exactly, including under
 * the parallel experiment driver (hit indices are claimed with an
 * atomic counter; cross-thread interleaving can permute which thread
 * observes which hit, but single-machine runs are bit-reproducible).
 *
 * Configuration: the environment variable
 * `AREGION_FAILPOINTS=<name:spec>[,<name:spec>...]` is read the
 * first time the global registry is touched (the seed comes from
 * `AREGION_FAILPOINT_SEED` when set), or programmatically via
 * configure()/arm(). The bench harness maps `--inject`/`--seed`
 * onto the same calls. See docs/RESILIENCE.md for the full grammar.
 */

#ifndef AREGION_SUPPORT_FAILPOINT_HH
#define AREGION_SUPPORT_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aregion::failpoint {

// Canonical failpoint names. Hook sites and tests reference these
// constants so a typo is a compile error (same convention as
// telemetry_keys.hh).
inline constexpr const char *kMachineInterrupt = "machine.interrupt";
inline constexpr const char *kMachineCapacity = "machine.capacity";
inline constexpr const char *kMachineAssert = "machine.assert";
inline constexpr const char *kMachineConflict = "machine.conflict";
inline constexpr const char *kMachineCommitStall =
    "machine.commit_stall";
inline constexpr const char *kTimingMispredict = "timing.mispredict";
// Negative self-tests for the robustness layer (docs/RESILIENCE.md):
// plant a known rollback bug / aborted-work trace that the
// bisimulation oracle / leakage observer must catch. The names
// double as their telemetry counter keys.
inline constexpr const char *kOracleDivergence =
    "oracle.inject.divergence";
inline constexpr const char *kMachineLeak = "machine.inject.leak";

/** How an armed failpoint decides to fire. */
enum class Trigger : uint8_t {
    Probability,    ///< p<float>: independent Bernoulli per hit
    EveryNth,       ///< n<N>: hits N, 2N, 3N, ...
    OneShot,        ///< once<N>: exactly hit N
};

/** Parsed trigger specification. */
struct Spec
{
    Trigger trigger = Trigger::Probability;
    double probability = 0.0;   ///< Trigger::Probability
    uint64_t n = 1;             ///< period (EveryNth) / hit (OneShot)
    int64_t value = 0;          ///< optional `=V` payload, 0 if absent
};

/**
 * Parse a trigger spec ("p0.01", "n100", "once5", optionally
 * "...=V"). Returns false and fills *err on malformed input.
 */
bool parseSpec(const std::string &text, Spec *out, std::string *err);

/** One armed failpoint. Handles returned by Registry::find() stay
 *  valid until the point is disarmed (see Registry). */
class Failpoint
{
  public:
    const std::string &name() const { return pointName; }
    const Spec &spec() const { return pointSpec; }
    int64_t value() const { return pointSpec.value; }

    /**
     * Record one hit and decide whether the site fires. Thread-safe;
     * the decision depends only on (seed, name, hit index).
     */
    bool evaluate();

    uint64_t hits() const
    {
        return hitCount.load(std::memory_order_relaxed);
    }
    uint64_t fires() const
    {
        return fireCount.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;

    std::string pointName;
    Spec pointSpec;
    uint64_t derivedSeed = 0;   ///< mix of registry seed and name
    std::atomic<uint64_t> hitCount{0};
    std::atomic<uint64_t> fireCount{0};
};

/**
 * The process-wide failpoint table. Arm/disarm/configure are
 * control-plane operations and must not race with in-flight
 * evaluate() calls (arm before starting machines, disarm after they
 * finish); evaluate() itself is safe from any thread.
 */
class Registry
{
  public:
    /** The global instance; reads AREGION_FAILPOINTS /
     *  AREGION_FAILPOINT_SEED once on first access. */
    static Registry &global();

    /** Arm (or re-arm, resetting counters) a failpoint. */
    void arm(const std::string &name, const Spec &spec);

    /**
     * Arm every entry of a comma-separated `name:spec` list. Every
     * well-formed entry is armed even when other entries are
     * malformed. Returns the number of failpoints armed, or -1 if
     * any entry was malformed (with *err describing every bad entry,
     * '; '-joined).
     */
    int configure(const std::string &list, std::string *err = nullptr);

    /** Remove one failpoint / all failpoints. Invalidates handles. */
    void disarm(const std::string &name);
    void disarmAll();

    /**
     * Set the base seed. Re-derives the per-point seeds of every
     * armed failpoint and resets their hit/fire counters, so
     * seed-then-arm and arm-then-seed give the same stream.
     */
    void setSeed(uint64_t seed);
    uint64_t seed() const;

    /** Cheap any-armed test for wrapping whole hook blocks. */
    bool anyArmed() const
    {
        return armedCount.load(std::memory_order_relaxed) > 0;
    }

    /** Handle for a hook site to cache; nullptr when not armed. */
    Failpoint *find(const std::string &name);

    /** Convenience: find() + evaluate() (slow path; hooks on hot
     *  paths should cache the handle instead). */
    bool fire(const std::string &name);

    uint64_t hitCount(const std::string &name) const;
    uint64_t fireCount(const std::string &name) const;

    /** Names of all armed failpoints, sorted. */
    std::vector<std::string> armedNames() const;

    /** Canonical `name:spec,...` rendering of the armed set (what
     *  the bench harness records in its JSON export). */
    std::string describe() const;

  private:
    Registry();

    uint64_t deriveSeed(const std::string &name) const;

    mutable std::mutex mu;
    uint64_t baseSeed = 0;
    // unique_ptr: node addresses handed out by find() must survive
    // unrelated insertions.
    std::map<std::string, std::unique_ptr<Failpoint>> points;
    std::atomic<size_t> armedCount{0};
};

} // namespace aregion::failpoint

#endif // AREGION_SUPPORT_FAILPOINT_HH
