/**
 * @file
 * Parallel experiment driver: a bounded worker pool that fans a grid
 * of independent experiment cells (workload × configuration) out
 * over host threads.
 *
 * The figure and ablation binaries run dozens of full simulator
 * pipelines that share nothing but the process-wide telemetry
 * registry (thread-safe; see support/telemetry.hh). Each cell writes
 * its result into a caller-preallocated slot, so the caller can
 * assemble tables in deterministic order afterwards regardless of
 * completion order.
 *
 * Worker count: min(grid size, jobs()), where jobs() is the
 * AREGION_JOBS environment variable when set, else the host's
 * hardware concurrency. Non-numeric or non-positive AREGION_JOBS
 * values fall back to hardware concurrency, and values above 256 are
 * clamped — both with a once-per-process stderr warning.
 * Single-threaded hosts (or AREGION_JOBS=1) run the cells inline on
 * the calling thread with no pool at all, so results are
 * byte-identical either way.
 */

#ifndef AREGION_SUPPORT_PARALLEL_HH
#define AREGION_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace aregion::parallel {

/** Worker count runGrid will use for a grid of `tasks` cells:
 *  min(tasks, AREGION_JOBS or hardware_concurrency), at least 1. */
size_t plannedThreads(size_t tasks);

/** The configured job budget itself (AREGION_JOBS when set and sane,
 *  else hardware concurrency), independent of any grid size. Bench
 *  exports record it so a snapshot pins down its parallelism. */
size_t configuredJobs();

/**
 * Run `fn(i)` for every i in [0, tasks) across plannedThreads(tasks)
 * workers. Blocks until all cells finish. The first exception thrown
 * by any cell is rethrown on the calling thread after the pool
 * drains (remaining queued cells still run; in-flight ones finish).
 *
 * Publishes `driver.tasks`, `driver.wall_us`, and `driver.threads`
 * telemetry. Cells must be independent: anything they share beyond
 * the telemetry registry needs the caller's own synchronization.
 */
void runGrid(size_t tasks, const std::function<void(size_t)> &fn);

} // namespace aregion::parallel

#endif // AREGION_SUPPORT_PARALLEL_HH
