/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload inputs, property
 * test program generation, interrupt injection) flows through this
 * generator so that every experiment is exactly reproducible from a
 * seed. Never use std::rand or std::random_device in this codebase.
 */

#ifndef AREGION_SUPPORT_RANDOM_HH
#define AREGION_SUPPORT_RANDOM_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace aregion {

/**
 * xoshiro-style 64-bit generator (splitmix64-seeded xorshift64*).
 * Small, fast, and deterministic across platforms.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-seed the generator; identical seeds give identical streams. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 scramble so that small seeds diverge immediately.
        state = seed + 0x9e3779b97f4a7c15ULL;
        state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9ULL;
        state = (state ^ (state >> 27)) * 0x94d049bb133111ebULL;
        state ^= state >> 31;
        if (state == 0)
            state = 0x2545f4914f6cdd1dULL;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        AREGION_ASSERT(bound > 0, "Rng::below(0)");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        AREGION_ASSERT(lo <= hi, "Rng::range lo>hi");
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw: true with the given probability. */
    bool
    chance(double probability)
    {
        if (probability <= 0.0)
            return false;
        if (probability >= 1.0)
            return true;
        return toDouble() < probability;
    }

    /** Uniform double in [0, 1). */
    double
    toDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Pick an index according to non-negative weights. */
    size_t pickWeighted(const std::vector<double> &weights);

  private:
    uint64_t state;
};

} // namespace aregion

#endif // AREGION_SUPPORT_RANDOM_HH
