#include "support/statistics.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace aregion {

void
RunningStat::add(double sample)
{
    if (n == 0) {
        lo = hi = sample;
    } else {
        lo = std::min(lo, sample);
        hi = std::max(hi, sample);
    }
    ++n;
    total += sample;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    n += other.n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

void
Histogram::add(int64_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    data[value] += weight;
    n += weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[value, weight] : other.data) {
        data[value] += weight;
        n += weight;
    }
}

double
Histogram::mean() const
{
    if (n == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[value, weight] : data)
        acc += static_cast<double>(value) * static_cast<double>(weight);
    return acc / static_cast<double>(n);
}

int64_t
Histogram::min() const
{
    return data.empty() ? 0 : data.begin()->first;
}

int64_t
Histogram::max() const
{
    return data.empty() ? 0 : data.rbegin()->first;
}

int64_t
Histogram::percentile(double frac) const
{
    AREGION_ASSERT(frac >= 0.0 && frac <= 1.0, "percentile out of range");
    if (n == 0)
        return 0;
    const auto needed = static_cast<uint64_t>(
        std::ceil(frac * static_cast<double>(n)));
    uint64_t seen = 0;
    for (const auto &[value, weight] : data) {
        seen += weight;
        if (seen >= needed)
            return value;
    }
    return data.rbegin()->first;
}

double
Histogram::fractionAtOrBelow(int64_t value) const
{
    if (n == 0)
        return 0.0;
    uint64_t seen = 0;
    for (const auto &[v, weight] : data) {
        if (v > value)
            break;
        seen += weight;
    }
    return static_cast<double>(seen) / static_cast<double>(n);
}

uint64_t
Histogram::countAbove(int64_t value) const
{
    uint64_t above = 0;
    for (auto it = data.rbegin(); it != data.rend() && it->first > value;
         ++it) {
        above += it->second;
    }
    return above;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        AREGION_ASSERT(v > 0.0, "geomean needs positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

} // namespace aregion
