/**
 * @file
 * ASCII table formatting for the benchmark harnesses.
 *
 * Every bench binary regenerates a table or figure from the paper; the
 * TextTable class renders aligned rows so the output reads like the
 * published table ("paper" columns next to "measured" columns).
 */

#ifndef AREGION_SUPPORT_TABLE_HH
#define AREGION_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace aregion {

/** Column-aligned text table with an optional header rule. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with fixed precision. */
    static std::string fmt(double value, int precision = 1);

    /** Convenience: format a percentage (value is a ratio). */
    static std::string pct(double ratio, int precision = 1);

    /** Render the full table, right-aligning numeric-looking cells. */
    std::string render() const;

    /** JSON object {"header": [...], "rows": [[...], ...]} (used by
     *  the bench binaries' --json export). */
    std::string toJson(int indent = 2) const;

    const std::vector<std::string> &header() const { return head; }
    const std::vector<std::vector<std::string>> &data() const
    {
        return rows;
    }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace aregion

#endif // AREGION_SUPPORT_TABLE_HH
