/**
 * @file
 * Dense fixed-width bitset used by the dataflow passes (liveness,
 * available-value sets). Word-parallel set algebra only — no
 * iteration helpers beyond test(), because the passes that need to
 * enumerate members keep their own side indexes.
 */

#ifndef AREGION_SUPPORT_BITSET_HH
#define AREGION_SUPPORT_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aregion::support {

class DenseBitset
{
  public:
    explicit DenseBitset(size_t bits = 0)
        : words((bits + 63) / 64, 0), numBits(bits)
    {
    }

    void set(size_t i) { words[i / 64] |= 1ull << (i % 64); }
    void clear(size_t i) { words[i / 64] &= ~(1ull << (i % 64)); }
    bool test(size_t i) const { return words[i / 64] >> (i % 64) & 1; }

    size_t size() const { return numBits; }

    void
    setAll()
    {
        for (auto &w : words)
            w = ~0ull;
        trim();
    }

    void
    reset()
    {
        for (auto &w : words)
            w = 0;
    }

    void
    intersect(const DenseBitset &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= o.words[i];
    }

    void
    subtract(const DenseBitset &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= ~o.words[i];
    }

    /** this |= o; returns true if any bit changed. */
    bool
    unite(const DenseBitset &o)
    {
        bool changed = false;
        for (size_t i = 0; i < words.size(); ++i) {
            const uint64_t next = words[i] | o.words[i];
            changed |= next != words[i];
            words[i] = next;
        }
        return changed;
    }

    bool
    operator==(const DenseBitset &o) const
    {
        return words == o.words;
    }

  private:
    void
    trim()
    {
        if (numBits % 64 && !words.empty())
            words.back() &= (1ull << (numBits % 64)) - 1;
    }

    std::vector<uint64_t> words;
    size_t numBits = 0;
};

} // namespace aregion::support

#endif // AREGION_SUPPORT_BITSET_HH
