#include "support/table.hh"

#include <cctype>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"
#include "support/telemetry.hh"

namespace aregion {

TextTable::TextTable(std::vector<std::string> header)
    : head(std::move(header))
{
    AREGION_ASSERT(!head.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    AREGION_ASSERT(row.size() == head.size(),
                   "row arity ", row.size(), " != header ", head.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::pct(double ratio, int precision)
{
    return fmt(ratio * 100.0, precision) + "%";
}

namespace {

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'x' && c != 'e') {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
TextTable::render() const
{
    std::vector<size_t> widths(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << "  ";
            const auto pad = widths[c] - cells[c].size();
            if (looksNumeric(cells[c])) {
                os << std::string(pad, ' ') << cells[c];
            } else {
                os << cells[c] << std::string(pad, ' ');
            }
        }
        os << '\n';
    };

    emit(head);
    size_t total = head.size() > 1 ? 2 * (head.size() - 1) : 0;
    for (size_t w : widths)
        total += w;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

std::string
TextTable::toJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    const std::string pad2 = pad + pad;
    std::ostringstream os;
    auto cells = [&](const std::vector<std::string> &row) {
        std::string out = "[";
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ", ";
            out += telemetry::jsonQuote(row[c]);
        }
        return out + "]";
    };
    os << "{\n" << pad << "\"header\": " << cells(head) << ",\n"
       << pad << "\"rows\": [";
    for (size_t r = 0; r < rows.size(); ++r) {
        os << (r ? ",\n" : "\n") << pad2 << cells(rows[r]);
    }
    os << (rows.empty() ? "" : "\n" + pad) << "]\n}";
    return os.str();
}

} // namespace aregion
