#include "support/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace aregion {

namespace {
bool quietFlag = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Throw instead of abort() so tests can assert on invariant
    // violations; uncaught, the effect is the same as abort().
    std::ostringstream os;
    os << "panic: " << msg << " @ " << file << ":" << line;
    throw std::logic_error(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace aregion
