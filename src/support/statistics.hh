/**
 * @file
 * Lightweight statistics containers used by the simulators and the
 * benchmark harnesses: scalar counters, running averages, and
 * fixed-bucket histograms with percentile queries.
 */

#ifndef AREGION_SUPPORT_STATISTICS_HH
#define AREGION_SUPPORT_STATISTICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aregion {

/** Running mean/min/max over a stream of samples. */
class RunningStat
{
  public:
    void add(double sample);
    void merge(const RunningStat &other);

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    /** Only meaningful when count() > 0; the 0.0 fallback is a
     *  sentinel, and exporters must emit null/omit for empty series
     *  rather than a fake zero minimum (see Registry::toJson). */
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

  private:
    uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Sparse histogram over integer sample values.
 *
 * Used for region-size and cache-footprint distributions (Section 6.2
 * of the paper), where exact small counts matter and the domain is
 * unbounded.
 */
class Histogram
{
  public:
    void add(int64_t value, uint64_t weight = 1);

    /** Accumulate every bucket of `other` (order-independent, so
     *  per-thread histograms can be merged into a shared one). */
    void merge(const Histogram &other);

    uint64_t count() const { return n; }
    double mean() const;
    /** Only meaningful when count() > 0 (0 is a sentinel for empty;
     *  exporters emit null instead — see Registry::toJson). */
    int64_t min() const;
    int64_t max() const;

    /** Smallest value v such that at least frac of samples are <= v. */
    int64_t percentile(double frac) const;

    /** Fraction of samples <= value. */
    double fractionAtOrBelow(int64_t value) const;

    /** Number of samples strictly above value. */
    uint64_t countAbove(int64_t value) const;

    const std::map<int64_t, uint64_t> &buckets() const { return data; }

  private:
    std::map<int64_t, uint64_t> data;
    uint64_t n = 0;
};

/** Geometric mean of a vector of positive ratios. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

} // namespace aregion

#endif // AREGION_SUPPORT_STATISTICS_HH
