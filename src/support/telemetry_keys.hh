/**
 * @file
 * The canonical catalog of telemetry keys.
 *
 * Every counter/gauge/histogram key registered anywhere in the
 * source MUST be listed here, and every key listed here MUST be
 * documented in docs/TELEMETRY.md. Both directions are enforced:
 *
 *  - tools/verify_docs.cc (the `verify_docs` ctest) checks that
 *    docs/TELEMETRY.md mentions every catalog key;
 *  - tests/support_telemetry_test.cc runs a full experiment and
 *    checks that every key registered at runtime is in the catalog.
 *
 * Instrumentation sites reference these constants instead of
 * repeating string literals, so a typo becomes a compile error and
 * a new key without a catalog entry fails the runtime check.
 */

#ifndef AREGION_SUPPORT_TELEMETRY_KEYS_HH
#define AREGION_SUPPORT_TELEMETRY_KEYS_HH

#include <string>
#include <vector>

#include "support/telemetry.hh"

namespace aregion::telemetry::keys {

// --- machine.* (src/hw/machine.cc) -------------------------------
// Abort-cause counters mirror hw::AbortCause order (the cause
// register of the paper's Section 3.2).
inline constexpr const char *kMachineAbortByCause[6] = {
    "machine.abort.explicit",  "machine.abort.conflict",
    "machine.abort.overflow",  "machine.abort.interrupt",
    "machine.abort.exception", "machine.abort.io",
};
inline constexpr const char *kMachineAbortTotal = "machine.abort.total";
inline constexpr const char *kMachineRegionEntries =
    "machine.region.entries";
inline constexpr const char *kMachineRegionCommits =
    "machine.region.commits";
inline constexpr const char *kMachineRegionUops =
    "machine.region.uops_retired";
inline constexpr const char *kMachineRegionSize =
    "machine.region.size_uops";            // histogram
inline constexpr const char *kMachineRegionFootprint =
    "machine.region.footprint_lines";      // histogram
inline constexpr const char *kMachineRegionReadLines =
    "machine.region.read_lines";           // histogram
inline constexpr const char *kMachineRegionWriteLines =
    "machine.region.write_lines";          // histogram
inline constexpr const char *kMachineUopsRetired =
    "machine.uops.retired";
inline constexpr const char *kMachineUopsExecuted =
    "machine.uops.executed";
inline constexpr const char *kMachineUopsDiscarded =
    "machine.uops.discarded";
inline constexpr const char *kMachineUopsAllContexts =
    "machine.uops.all_contexts";
inline constexpr const char *kMachineMonitorFastEnters =
    "machine.monitor.fast_enters";
inline constexpr const char *kMachineRuns = "machine.runs";
// Trace-batching stats: uops delivered to the sink through
// TraceSink::uopBatch and how many batch flushes carried them.
inline constexpr const char *kMachineBatchFlushes =
    "machine.batch.flushes";
inline constexpr const char *kMachineBatchUops =
    "machine.batch.uops";
// Fault-injection counters (support/failpoint.hh hooks): aborts and
// capacity squeezes forced into the machine, plus the livelock
// guard's suppressed region entries. Zero unless failpoints are
// armed / HwConfig::maxConsecutiveAborts is set.
inline constexpr const char *kMachineInjectInterrupt =
    "machine.inject.interrupt";
inline constexpr const char *kMachineInjectCapacity =
    "machine.inject.capacity";
inline constexpr const char *kMachineInjectAssert =
    "machine.inject.assert";
inline constexpr const char *kMachineInjectConflict =
    "machine.inject.conflict";
inline constexpr const char *kMachineInjectCommitStall =
    "machine.inject.commit_stall";
inline constexpr const char *kMachineInjectTotal =
    "machine.inject.total";
inline constexpr const char *kMachineSpecSuppressed =
    "machine.region.spec_suppressed";
inline constexpr const char *kMachineLivelockTrips =
    "machine.region.livelock_trips";
// Negative-self-test injectors (failpoint names double as keys):
// planted rollback bugs / aborted-work traces the bisimulation
// oracle and leakage observer must detect.
inline constexpr const char *kOracleInjectDivergence =
    "oracle.inject.divergence";
inline constexpr const char *kMachineInjectLeak =
    "machine.inject.leak";

// --- oracle.bisim.* (src/hw/bisim.cc via machine.cc) -------------
// Deopt bisimulation oracle: aborts checked by non-speculative
// replay from the aregion_begin checkpoint, replays run (two per
// check), uops those replays executed, and observable divergences
// found (reported + suppressed). Registered only while a
// BisimOracle is attached.
inline constexpr const char *kOracleBisimChecks =
    "oracle.bisim.checks";
inline constexpr const char *kOracleBisimReplays =
    "oracle.bisim.replays";
inline constexpr const char *kOracleBisimUops =
    "oracle.bisim.uops";
inline constexpr const char *kOracleBisimDivergences =
    "oracle.bisim.divergences";

// --- driver.* (src/support/parallel.cc) --------------------------
inline constexpr const char *kDriverTasks = "driver.tasks";
inline constexpr const char *kDriverWallUs = "driver.wall_us";
inline constexpr const char *kDriverThreads =
    "driver.threads";                       // gauge

// --- timing.* (src/hw/timing.cc) ---------------------------------
inline constexpr const char *kTimingCycles = "timing.cycles";
inline constexpr const char *kTimingUops = "timing.uops";
inline constexpr const char *kTimingIpc = "timing.ipc";     // gauge
inline constexpr const char *kTimingBranches = "timing.branches";
inline constexpr const char *kTimingMispredicts =
    "timing.mispredicts";
inline constexpr const char *kTimingIndirectMispredicts =
    "timing.indirect_mispredicts";
inline constexpr const char *kTimingSerializations =
    "timing.serializations";
inline constexpr const char *kTimingRegionBegins =
    "timing.region_begins";
inline constexpr const char *kTimingAbortFlushes =
    "timing.abort_flushes";
inline constexpr const char *kTimingL1Misses = "timing.l1_misses";
inline constexpr const char *kTimingL2Misses = "timing.l2_misses";
// Dispatch-stall attribution: uops whose dispatch was delayed,
// bucketed by the dominant gate.
inline constexpr const char *kTimingStallRob = "timing.stall.rob";
inline constexpr const char *kTimingStallSched =
    "timing.stall.sched_window";
inline constexpr const char *kTimingStallFetch =
    "timing.stall.fetch_redirect";
inline constexpr const char *kTimingStallSerial =
    "timing.stall.serialization";
inline constexpr const char *kTimingStallRegion =
    "timing.stall.region_begin";
// Forced branch mispredicts (timing.mispredict failpoint).
inline constexpr const char *kTimingInjectMispredict =
    "timing.inject.mispredict";
// Leakage observer (TimingConfig::leakObserver): regions whose
// aborted attempts were audited, regions flagged for leaving
// input-dependent microarchitectural traces, and the leaked
// cache-line / branch-predictor-entry counts. Registered only when
// the observer mode is on.
inline constexpr const char *kTimingLeakRegions =
    "timing.leak.regions";
inline constexpr const char *kTimingLeakFlagged =
    "timing.leak.flagged";
inline constexpr const char *kTimingLeakLines =
    "timing.leak.lines";
inline constexpr const char *kTimingLeakBranches =
    "timing.leak.branches";

// --- jit.* (src/runtime/jit.cc, src/opt/pass.cc) -----------------
inline constexpr const char *kJitRuns = "jit.runs";
inline constexpr const char *kJitRecompiles = "jit.recompiles";
inline constexpr const char *kJitProfileUs = "jit.profile_us";
inline constexpr const char *kJitCompileUs = "jit.compile_us";
inline constexpr const char *kJitMachineUs = "jit.machine_us";
// Cumulative per-pass optimizer time (opt/pass.cc pipelines).
// Schema v2 (SSA pipeline): constant_fold/copy_prop became sccp_us,
// cse became gvn_us, and ssa_us covers SSA build + destroy.
inline constexpr const char *kJitPassSsaUs = "jit.pass.ssa_us";
inline constexpr const char *kJitPassSimplifyCfgUs =
    "jit.pass.simplify_cfg_us";
inline constexpr const char *kJitPassSccpUs = "jit.pass.sccp_us";
inline constexpr const char *kJitPassGvnUs = "jit.pass.gvn_us";
inline constexpr const char *kJitPassDceUs = "jit.pass.dce_us";
inline constexpr const char *kJitPassInlineUs =
    "jit.pass.inline_us";
inline constexpr const char *kJitPassUnrollUs =
    "jit.pass.unroll_us";

// --- runtime.resilience.* (src/runtime/resilience.cc) ------------
// Abort-storm handling: storms detected, bounded recompiles spent on
// them, recompiles skipped while backing off, and regions given up
// on (permanently non-speculative).
inline constexpr const char *kResilienceStorms =
    "runtime.resilience.storms";
inline constexpr const char *kResilienceRecompiles =
    "runtime.resilience.recompiles";
inline constexpr const char *kResilienceBackoffs =
    "runtime.resilience.backoffs";
inline constexpr const char *kResilienceBlacklisted =
    "runtime.resilience.blacklisted";
// Contention governor (hw::ContentionControl implementation):
// scheduler steps spent in per-context backoff, starving contexts
// granted backoff immunity, and mutual-abort livelocks broken by
// staggering.
inline constexpr const char *kResilienceBackoffSteps =
    "runtime.resilience.backoff_steps";
inline constexpr const char *kResilienceStarvationBoosts =
    "runtime.resilience.starvation_boosts";
inline constexpr const char *kResilienceLivelockBreaks =
    "runtime.resilience.livelock_breaks";

// --- region.* (src/core/region_formation.cc) ---------------------
inline constexpr const char *kRegionFormed = "region.formed";
inline constexpr const char *kRegionAssertsConverted =
    "region.asserts_converted";
inline constexpr const char *kRegionBlocksReplicated =
    "region.blocks_replicated";
inline constexpr const char *kRegionExits = "region.exits";
inline constexpr const char *kRegionUnrolled = "region.unrolled";

// --- fuzz.* (src/testing/, tools/fuzz_diff.cc) -------------------
// Differential-fuzzing campaign counters: seeds executed, seeds
// skipped (budget), executor runs and pipeline prefixes compared,
// divergences observed, minimizer shrink work, and the size of the
// rendered main method per seed.
inline constexpr const char *kFuzzSeeds = "fuzz.seeds";
inline constexpr const char *kFuzzSkipped = "fuzz.skipped";
inline constexpr const char *kFuzzTrapped = "fuzz.trapped";
inline constexpr const char *kFuzzThreaded = "fuzz.threaded";
inline constexpr const char *kFuzzExecutorRuns =
    "fuzz.executor_runs";
inline constexpr const char *kFuzzPrefixes = "fuzz.prefixes";
inline constexpr const char *kFuzzDivergences = "fuzz.divergences";
inline constexpr const char *kFuzzMinimized = "fuzz.minimized";
inline constexpr const char *kFuzzMinimizerCalls =
    "fuzz.minimizer.predicate_calls";
inline constexpr const char *kFuzzMainBytecodes =
    "fuzz.main_bytecodes";                 // histogram

// --- contention.* (src/workloads/contention/) --------------------
// Contention torture harness: grid cells executed, cross-context
// oracle checks performed (commit serializability validations plus
// conflict-abort heap audits), and divergences those checks found.
inline constexpr const char *kContentionCells = "contention.cells";
inline constexpr const char *kContentionOracleChecks =
    "contention.oracle_checks";
inline constexpr const char *kContentionDivergences =
    "contention.divergences";

// --- service.* (src/runtime/service/) ----------------------------
// JIT-compile-as-a-service: request/compile volume, content-addressed
// cache effectiveness, admission-control outcomes, and latency /
// queue-depth distributions (full contract in docs/SERVICE.md).
inline constexpr const char *kServiceRequests = "service.requests";
inline constexpr const char *kServiceCompiles = "service.compiles";
inline constexpr const char *kServiceCompilesNonSpec =
    "service.compiles_nonspec";
inline constexpr const char *kServiceCacheHits =
    "service.cache.hits";
inline constexpr const char *kServiceCacheMisses =
    "service.cache.misses";
inline constexpr const char *kServiceCacheEvictions =
    "service.cache.evictions";
inline constexpr const char *kServiceCacheDedup =
    "service.cache.dedup";
inline constexpr const char *kServiceCacheBytes =
    "service.cache.bytes";                 // gauge
inline constexpr const char *kServiceCacheEntries =
    "service.cache.entries";               // gauge
inline constexpr const char *kServiceRejectedQueueFull =
    "service.rejected.queue_full";
inline constexpr const char *kServiceRejectedBackoff =
    "service.rejected.backoff";
// Requests rejected because the tenant exhausted its per-round
// compile-time quota (AdmissionPolicy::compileUsQuotaPerRound).
// Registered only when the quota is enabled.
inline constexpr const char *kServiceRejectedQuota =
    "service.rejected.quota";
inline constexpr const char *kServiceAdmissionStorms =
    "service.admission.storms";
inline constexpr const char *kServiceAdmissionBlacklisted =
    "service.admission.blacklisted";
inline constexpr const char *kServiceQueueDepth =
    "service.queue.depth";                 // histogram
inline constexpr const char *kServiceCompileUs =
    "service.compile_us";                  // histogram
inline constexpr const char *kServiceRequestUs =
    "service.request_us";                  // histogram
inline constexpr const char *kServiceShards =
    "service.shards";                      // gauge
inline constexpr const char *kServiceWorkers =
    "service.workers";                     // gauge

// --- profile.* (src/vm/profile.cc) -------------------------------
inline constexpr const char *kProfileMethods = "profile.methods";
inline constexpr const char *kProfileBytecodes =
    "profile.bytecodes";
inline constexpr const char *kProfileBranchSites =
    "profile.branch_sites";
inline constexpr const char *kProfileCallSites =
    "profile.call_sites";
inline constexpr const char *kProfileInvocations =
    "profile.invocations";

/** Value kind of a catalogued key. */
enum class KeyKind { Counter, Gauge, Hist };

struct KeyInfo
{
    const char *key;
    KeyKind kind;
};

/** Every key above with its kind, for the docs-coverage checks and
 *  schema pre-registration. */
inline std::vector<KeyInfo>
catalogInfo()
{
    std::vector<KeyInfo> all;
    for (const char *k : kMachineAbortByCause)
        all.push_back({k, KeyKind::Counter});
    for (const char *k :
         {kMachineAbortTotal, kMachineRegionEntries,
          kMachineRegionCommits, kMachineRegionUops,
          kMachineUopsRetired, kMachineUopsExecuted,
          kMachineUopsDiscarded, kMachineUopsAllContexts,
          kMachineMonitorFastEnters, kMachineRuns,
          kMachineBatchFlushes, kMachineBatchUops,
          kMachineInjectInterrupt, kMachineInjectCapacity,
          kMachineInjectAssert, kMachineInjectConflict,
          kMachineInjectCommitStall, kMachineInjectTotal,
          kMachineSpecSuppressed, kMachineLivelockTrips,
          kOracleInjectDivergence, kMachineInjectLeak,
          kOracleBisimChecks, kOracleBisimReplays, kOracleBisimUops,
          kOracleBisimDivergences, kDriverTasks,
          kDriverWallUs, kTimingCycles,
          kTimingUops, kTimingBranches, kTimingMispredicts,
          kTimingIndirectMispredicts, kTimingSerializations,
          kTimingRegionBegins, kTimingAbortFlushes, kTimingL1Misses,
          kTimingL2Misses, kTimingStallRob, kTimingStallSched,
          kTimingStallFetch, kTimingStallSerial, kTimingStallRegion,
          kTimingInjectMispredict, kTimingLeakRegions,
          kTimingLeakFlagged, kTimingLeakLines, kTimingLeakBranches,
          kJitRuns, kJitRecompiles, kJitProfileUs, kJitCompileUs,
          kJitMachineUs, kJitPassSsaUs, kJitPassSimplifyCfgUs,
          kJitPassSccpUs, kJitPassGvnUs,
          kJitPassDceUs, kJitPassInlineUs, kJitPassUnrollUs,
          kResilienceStorms, kResilienceRecompiles,
          kResilienceBackoffs, kResilienceBlacklisted,
          kResilienceBackoffSteps, kResilienceStarvationBoosts,
          kResilienceLivelockBreaks,
          kContentionCells, kContentionOracleChecks,
          kContentionDivergences,
          kRegionFormed, kRegionAssertsConverted,
          kRegionBlocksReplicated, kRegionExits, kRegionUnrolled,
          kFuzzSeeds, kFuzzSkipped, kFuzzTrapped, kFuzzThreaded,
          kFuzzExecutorRuns, kFuzzPrefixes, kFuzzDivergences,
          kFuzzMinimized, kFuzzMinimizerCalls,
          kServiceRequests, kServiceCompiles, kServiceCompilesNonSpec,
          kServiceCacheHits, kServiceCacheMisses,
          kServiceCacheEvictions, kServiceCacheDedup,
          kServiceRejectedQueueFull, kServiceRejectedBackoff,
          kServiceRejectedQuota,
          kServiceAdmissionStorms, kServiceAdmissionBlacklisted,
          kProfileMethods, kProfileBytecodes, kProfileBranchSites,
          kProfileCallSites, kProfileInvocations}) {
        all.push_back({k, KeyKind::Counter});
    }
    all.push_back({kTimingIpc, KeyKind::Gauge});
    all.push_back({kDriverThreads, KeyKind::Gauge});
    all.push_back({kServiceCacheBytes, KeyKind::Gauge});
    all.push_back({kServiceCacheEntries, KeyKind::Gauge});
    all.push_back({kServiceShards, KeyKind::Gauge});
    all.push_back({kServiceWorkers, KeyKind::Gauge});
    for (const char *k :
         {kMachineRegionSize, kMachineRegionFootprint,
          kMachineRegionReadLines, kMachineRegionWriteLines,
          kFuzzMainBytecodes, kServiceQueueDepth, kServiceCompileUs,
          kServiceRequestUs}) {
        all.push_back({k, KeyKind::Hist});
    }
    return all;
}

/** Catalogued key names only. */
inline std::vector<std::string>
catalog()
{
    std::vector<std::string> names;
    for (const KeyInfo &info : catalogInfo())
        names.push_back(info.key);
    return names;
}

/** Register the full schema at zero so every export carries the
 *  same key set regardless of which subsystems a binary exercised
 *  (the bench harness calls this at startup). */
inline void
preregister(Registry &reg)
{
    for (const KeyInfo &info : catalogInfo()) {
        switch (info.kind) {
          case KeyKind::Counter: reg.counter(info.key); break;
          case KeyKind::Gauge: reg.set(info.key, 0.0); break;
          case KeyKind::Hist: reg.histogram(info.key); break;
        }
    }
}

} // namespace aregion::telemetry::keys

#endif // AREGION_SUPPORT_TELEMETRY_KEYS_HH
