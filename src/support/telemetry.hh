/**
 * @file
 * Process-wide telemetry: a named counter/gauge/histogram registry
 * plus a lightweight scoped trace-event API, with JSON and text-table
 * exporters.
 *
 * Keys are hierarchical dotted strings ("machine.abort.conflict",
 * "jit.pass.cse_us"); the full schema lives in docs/TELEMETRY.md and
 * is enforced against the catalog in telemetry_keys.hh by the
 * `verify_docs` test. Design constraints:
 *
 *  - Hot paths never pay a string lookup: instrumented modules cache
 *    the reference returned by counter()/histogram() once (references
 *    are stable for the process lifetime; reset() zeroes values in
 *    place and never invalidates them).
 *  - Scoped tracing is zero-cost when disabled: the ScopedSpan
 *    constructor reads one flag and does nothing else (no clock
 *    access, no allocation).
 *  - The registry is deterministic: all containers iterate in sorted
 *    key order, so the JSON export is byte-stable across runs.
 *
 * Thread-safety (for the parallel experiment driver,
 * support/parallel.hh): counter slots are atomics, so cached
 * references can be incremented from concurrent experiment runs, and
 * every registry method takes an internal mutex. Two exceptions by
 * design:
 *
 *  - histogram() returns a plain Histogram reference; concurrent
 *    writers must accumulate into a local Histogram and publish it
 *    with merge() (what Machine::publishTelemetry does).
 *  - Scoped tracing is a single-threaded debugging aid; span nesting
 *    depth is not meaningful when several threads record spans.
 */

#ifndef AREGION_SUPPORT_TELEMETRY_HH
#define AREGION_SUPPORT_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/statistics.hh"

namespace aregion::telemetry {

/** One begin/end trace event recorded by ScopedSpan. */
struct SpanRecord
{
    std::string name;
    uint64_t beginUs = 0;   ///< microseconds since tracing enabled
    uint64_t endUs = 0;
    int depth = 0;          ///< nesting depth at begin
};

/**
 * The process-wide registry. Access through Registry::global();
 * instances can also be created standalone (tests, isolated tools).
 */
class Registry
{
  public:
    /** The process-wide instance. */
    static Registry &global();

    /** Monotonic counter slot for `key`, created at zero on first
     *  use. The reference stays valid for the registry's lifetime,
     *  and being atomic it may be incremented from any thread. */
    std::atomic<uint64_t> &counter(const std::string &key);

    /** counter(key) += n. */
    void add(const std::string &key, uint64_t n = 1);

    /** Last-write-wins gauge (floating point). */
    void set(const std::string &key, double value);

    /** Sparse histogram slot for `key` (same stability guarantee as
     *  counter()). NOT safe for concurrent writers — accumulate into
     *  a local Histogram and publish with merge(). */
    Histogram &histogram(const std::string &key);

    /** Locked histogram(key).merge(local): the one histogram write
     *  path that is safe from concurrent experiment threads. */
    void merge(const std::string &key, const Histogram &local);

    /** Counter value, 0 when the key was never registered. */
    uint64_t counterValue(const std::string &key) const;

    /** Gauge value, 0.0 when the key was never registered. */
    double gaugeValue(const std::string &key) const;

    bool has(const std::string &key) const;

    /** All registered keys (counters, gauges, histograms), sorted. */
    std::vector<std::string> keys() const;

    /** Zero every counter/gauge/histogram in place and drop recorded
     *  spans. Cached references stay valid; keys stay registered. */
    void reset();

    // --- Scoped tracing ------------------------------------------
    /** Enable span recording into a ring buffer of `capacity`
     *  events (oldest events are overwritten). */
    void enableTracing(size_t capacity = 4096);
    void disableTracing();
    bool tracingEnabled() const { return tracingOn; }

    /** Recorded spans, oldest first. Open spans (begin without end
     *  yet) are not included. */
    std::vector<SpanRecord> spans() const;

    /** Total spans recorded since tracing was enabled (including
     *  any that fell out of the ring). */
    uint64_t spansRecorded() const { return spanCount; }

    // --- Export ---------------------------------------------------
    /**
     * JSON object with stable (sorted) key ordering:
     * {"counters": {...}, "gauges": {...}, "histograms": {key:
     * {count, mean, min, max, p95}}, "spans": [...]}.
     */
    std::string toJson(int indent = 2) const;

    /** Human-readable table of every key (support/table.hh). */
    std::string toTable() const;

  private:
    friend class ScopedSpan;

    /** Called by ScopedSpan only when tracing is on. */
    int beginSpan();
    void endSpan(const char *name, uint64_t begin_us, int depth);
    uint64_t nowUs() const;
    std::vector<SpanRecord> spansLocked() const;

    // std::map never moves nodes, so atomic values (non-movable) are
    // fine and cached counter references survive later insertions.
    mutable std::mutex mu;
    std::map<std::string, std::atomic<uint64_t>> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> hists;

    bool tracingOn = false;
    size_t ringCapacity = 0;
    uint64_t spanCount = 0;
    int openDepth = 0;
    std::vector<SpanRecord> ring;       ///< spanCount % cap ordering
    uint64_t traceEpochNs = 0;          ///< steady_clock at enable
};

/**
 * RAII trace span. When tracing is disabled construction and
 * destruction read one flag each and do nothing else, so spans can
 * be left in release binaries. `name` must outlive the span (string
 * literals in practice).
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name_,
                        Registry &reg_ = Registry::global())
        : reg(reg_)
    {
        if (reg.tracingOn) {
            name = name_;
            depth = reg.beginSpan();
            beginUs = reg.nowUs();
        }
    }

    ~ScopedSpan()
    {
        if (name)
            reg.endSpan(name, beginUs, depth);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Registry &reg;
    const char *name = nullptr;
    uint64_t beginUs = 0;
    int depth = 0;
};

/**
 * RAII wall-clock timer accumulating elapsed microseconds into a
 * counter slot (always on — used for the per-pass JIT timing
 * "jit.pass.*_us" keys, which run at compile frequency, not
 * simulation frequency).
 */
class ScopedTimerUs
{
  public:
    explicit ScopedTimerUs(std::atomic<uint64_t> &slot_);
    ~ScopedTimerUs();

    ScopedTimerUs(const ScopedTimerUs &) = delete;
    ScopedTimerUs &operator=(const ScopedTimerUs &) = delete;

  private:
    std::atomic<uint64_t> &slot;
    uint64_t startNs;
};

/** Escape and quote a string for JSON output. */
std::string jsonQuote(const std::string &s);

} // namespace aregion::telemetry

#endif // AREGION_SUPPORT_TELEMETRY_HH
