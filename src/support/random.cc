#include "support/random.hh"

namespace aregion {

size_t
Rng::pickWeighted(const std::vector<double> &weights)
{
    AREGION_ASSERT(!weights.empty(), "pickWeighted on empty weights");
    double total = 0.0;
    for (double w : weights) {
        AREGION_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    if (total <= 0.0)
        return below(weights.size());
    double draw = toDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (draw < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace aregion
