/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user/configuration errors,
 * warn()/inform() for status messages that do not stop execution.
 */

#ifndef AREGION_SUPPORT_LOGGING_HH
#define AREGION_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace aregion {

/** Internal sink used by the logging macros; not called directly. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Controls whether inform()/warn() print to stderr (tests mute them). */
void setLogQuiet(bool quiet);
bool logQuiet();

namespace detail {

template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace aregion

/** Abort: something happened that must never happen (a library bug). */
#define AREGION_PANIC(...)                                                  \
    ::aregion::panicImpl(__FILE__, __LINE__,                                \
                         ::aregion::detail::formatParts(__VA_ARGS__))

/** Exit: the user asked for something unsatisfiable (bad config). */
#define AREGION_FATAL(...)                                                  \
    ::aregion::fatalImpl(__FILE__, __LINE__,                                \
                         ::aregion::detail::formatParts(__VA_ARGS__))

#define AREGION_WARN(...)                                                   \
    ::aregion::warnImpl(::aregion::detail::formatParts(__VA_ARGS__))

#define AREGION_INFORM(...)                                                 \
    ::aregion::informImpl(::aregion::detail::formatParts(__VA_ARGS__))

/** Assert-with-message for invariants that are cheap enough to keep on. */
#define AREGION_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            AREGION_PANIC("assertion failed: ", #cond, ": ",                \
                          ::aregion::detail::formatParts(__VA_ARGS__));     \
        }                                                                   \
    } while (0)

#endif // AREGION_SUPPORT_LOGGING_HH
