#include "support/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "support/table.hh"

namespace aregion::telemetry {

namespace {

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Doubles print with enough digits to round-trip but without
 *  locale surprises. */
std::string
fmtDouble(double v)
{
    std::ostringstream out;
    out.precision(12);
    out << v;
    return out.str();
}

} // namespace

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

std::atomic<uint64_t> &
Registry::counter(const std::string &key)
{
    // map nodes are stable, so the reference outlives the lock; the
    // value itself is atomic, so later increments need no lock.
    std::lock_guard<std::mutex> lock(mu);
    return counters[key];
}

void
Registry::add(const std::string &key, uint64_t n)
{
    counter(key).fetch_add(n, std::memory_order_relaxed);
}

void
Registry::set(const std::string &key, double value)
{
    std::lock_guard<std::mutex> lock(mu);
    gauges[key] = value;
}

Histogram &
Registry::histogram(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    return hists[key];
}

void
Registry::merge(const std::string &key, const Histogram &local)
{
    std::lock_guard<std::mutex> lock(mu);
    hists[key].merge(local);
}

uint64_t
Registry::counterValue(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = counters.find(key);
    return it == counters.end()
               ? 0
               : it->second.load(std::memory_order_relaxed);
}

double
Registry::gaugeValue(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = gauges.find(key);
    return it == gauges.end() ? 0.0 : it->second;
}

bool
Registry::has(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters.count(key) || gauges.count(key) ||
           hists.count(key);
}

std::vector<std::string>
Registry::keys() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[k, v] : counters)
        out.push_back(k);
    for (const auto &[k, v] : gauges)
        out.push_back(k);
    for (const auto &[k, v] : hists)
        out.push_back(k);
    // The three maps are individually sorted; merge-sort the result.
    std::sort(out.begin(), out.end());
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[k, v] : counters)
        v.store(0, std::memory_order_relaxed);
    for (auto &[k, v] : gauges)
        v = 0.0;
    for (auto &[k, v] : hists)
        v = Histogram{};
    ring.clear();
    spanCount = 0;
    openDepth = 0;
    if (tracingOn)
        traceEpochNs = steadyNowNs();
}

void
Registry::enableTracing(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu);
    tracingOn = capacity > 0;
    ringCapacity = capacity;
    ring.clear();
    spanCount = 0;
    openDepth = 0;
    traceEpochNs = steadyNowNs();
}

void
Registry::disableTracing()
{
    tracingOn = false;
}

uint64_t
Registry::nowUs() const
{
    return (steadyNowNs() - traceEpochNs) / 1000;
}

int
Registry::beginSpan()
{
    return openDepth++;
}

void
Registry::endSpan(const char *name, uint64_t begin_us, int depth)
{
    openDepth = depth;
    SpanRecord rec{name, begin_us, nowUs(), depth};
    if (ring.size() < ringCapacity) {
        ring.push_back(std::move(rec));
    } else if (ringCapacity > 0) {
        ring[spanCount % ringCapacity] = std::move(rec);
    }
    ++spanCount;
}

std::vector<SpanRecord>
Registry::spans() const
{
    std::lock_guard<std::mutex> lock(mu);
    return spansLocked();
}

std::vector<SpanRecord>
Registry::spansLocked() const
{
    if (ring.size() < ringCapacity || ring.empty())
        return ring;
    // Ring wrapped: oldest entry is at spanCount % capacity.
    std::vector<SpanRecord> out;
    out.reserve(ring.size());
    const size_t start = spanCount % ringCapacity;
    for (size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(start + i) % ringCapacity]);
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
Registry::toJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    const std::string pad2 = pad + pad;
    const std::string pad3 = pad2 + pad;
    std::ostringstream out;
    std::lock_guard<std::mutex> lock(mu);

    out << "{\n" << pad << "\"counters\": {";
    bool first = true;
    for (const auto &[k, v] : counters) {
        out << (first ? "\n" : ",\n") << pad2 << jsonQuote(k) << ": "
            << v.load(std::memory_order_relaxed);
        first = false;
    }
    out << (first ? "" : "\n" + pad) << "},\n";

    out << pad << "\"gauges\": {";
    first = true;
    for (const auto &[k, v] : gauges) {
        out << (first ? "\n" : ",\n") << pad2 << jsonQuote(k) << ": "
            << fmtDouble(v);
        first = false;
    }
    out << (first ? "" : "\n" + pad) << "},\n";

    out << pad << "\"histograms\": {";
    first = true;
    for (const auto &[k, h] : hists) {
        out << (first ? "\n" : ",\n") << pad2 << jsonQuote(k) << ": {"
            << "\"count\": " << h.count();
        if (h.count() == 0) {
            // No samples: emit null, not 0.0 — downstream consumers
            // must be able to tell "empty series" from "min of zero".
            out << ", \"mean\": null, \"min\": null"
                << ", \"max\": null, \"p95\": null}";
        } else {
            out << ", \"mean\": " << fmtDouble(h.mean())
                << ", \"min\": " << h.min() << ", \"max\": " << h.max()
                << ", \"p95\": " << h.percentile(0.95) << "}";
        }
        first = false;
    }
    out << (first ? "" : "\n" + pad) << "},\n";

    out << pad << "\"spans\": [";
    first = true;
    for (const SpanRecord &s : spansLocked()) {
        out << (first ? "\n" : ",\n") << pad2 << "{\"name\": "
            << jsonQuote(s.name) << ", \"begin_us\": " << s.beginUs
            << ", \"end_us\": " << s.endUs
            << ", \"depth\": " << s.depth << "}";
        first = false;
    }
    out << (first ? "" : "\n" + pad) << "]\n}";
    return out.str();
}

std::string
Registry::toTable() const
{
    TextTable table({"key", "kind", "value"});
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[k, v] : counters) {
        table.addRow({k, "counter",
                      std::to_string(v.load(std::memory_order_relaxed))});
    }
    for (const auto &[k, v] : gauges)
        table.addRow({k, "gauge", TextTable::fmt(v, 3)});
    for (const auto &[k, h] : hists) {
        if (h.count() == 0) {
            table.addRow({k, "histogram", "n=0 (empty)"});
        } else {
            table.addRow({k, "histogram",
                          "n=" + std::to_string(h.count()) +
                              " mean=" + TextTable::fmt(h.mean(), 1) +
                              " max=" + std::to_string(h.max())});
        }
    }
    return table.render();
}

ScopedTimerUs::ScopedTimerUs(std::atomic<uint64_t> &slot_)
    : slot(slot_), startNs(steadyNowNs())
{
}

ScopedTimerUs::~ScopedTimerUs()
{
    slot.fetch_add((steadyNowNs() - startNs) / 1000,
                   std::memory_order_relaxed);
}

} // namespace aregion::telemetry
