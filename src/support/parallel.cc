#include "support/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::parallel {

namespace {

// Absurd AREGION_JOBS values (fat-fingered "1000" for "10") would
// oversubscribe the host into thrashing; cap well above any sane
// machine but below pathology.
constexpr long kMaxJobs = 256;

size_t
jobsFromEnv()
{
    // Warn at most once per process: runGrid is called per figure
    // table and a bad env var would otherwise spam every call.
    static std::atomic<bool> warned{false};
    auto warnOnce = [&](auto &&...parts) {
        if (!warned.exchange(true))
            AREGION_WARN(std::forward<decltype(parts)>(parts)...);
    };

    const unsigned hw = std::thread::hardware_concurrency();
    const size_t fallback = hw > 0 ? hw : 1;
    const char *env = std::getenv("AREGION_JOBS");
    if (!env)
        return fallback;

    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0') {
        warnOnce("AREGION_JOBS='", env,
                 "' is not a number; using hardware concurrency (",
                 fallback, ")");
        return fallback;
    }
    if (errno == ERANGE || parsed > kMaxJobs) {
        warnOnce("AREGION_JOBS='", env, "' is absurd; clamping to ",
                 kMaxJobs);
        return static_cast<size_t>(kMaxJobs);
    }
    if (parsed <= 0) {
        warnOnce("AREGION_JOBS='", env,
                 "' must be positive; using hardware concurrency (",
                 fallback, ")");
        return fallback;
    }
    return static_cast<size_t>(parsed);
}

} // namespace

size_t
configuredJobs()
{
    return jobsFromEnv();
}

size_t
plannedThreads(size_t tasks)
{
    if (tasks == 0)
        return 1;
    const size_t jobs = jobsFromEnv();
    return std::max<size_t>(1, std::min(tasks, jobs));
}

void
runGrid(size_t tasks, const std::function<void(size_t)> &fn)
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    const auto start = std::chrono::steady_clock::now();
    const size_t threads = plannedThreads(tasks);

    std::exception_ptr first_error = nullptr;

    if (threads <= 1) {
        // Inline on the calling thread: no pool, no atomics, and
        // exceptions propagate only after the remaining cells ran —
        // the same drain-then-rethrow contract as the pooled path.
        for (size_t i = 0; i < tasks; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    } else {
        std::atomic<size_t> next{0};
        std::mutex error_mu;
        auto worker = [&]() {
            for (;;) {
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= tasks)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(threads - 1);
        for (size_t t = 0; t + 1 < threads; ++t)
            pool.emplace_back(worker);
        worker();               // the calling thread pulls cells too
        for (std::thread &t : pool)
            t.join();
    }

    const auto wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    reg.add(keys::kDriverTasks, tasks);
    reg.add(keys::kDriverWallUs, static_cast<uint64_t>(wall_us));
    reg.set(keys::kDriverThreads, static_cast<double>(threads));

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace aregion::parallel
