#include "support/failpoint.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace aregion::failpoint {

namespace {

// FNV-1a, so a failpoint's stream depends on its name: two points
// armed with the same spec and seed still fire at different hits.
uint64_t
hashName(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

// splitmix64 finalizer: stateless mix of (derived seed, hit index)
// into a uniform 64-bit value. Matching Rng's scramble keeps the
// whole codebase on one family of mixers.
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

bool
parseUint(const std::string &text, uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = static_cast<uint64_t>(v);
    return true;
}

} // namespace

bool
parseSpec(const std::string &text, Spec *out, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = "failpoint spec '" + text + "': " + msg;
        return false;
    };

    std::string body = text;
    Spec spec;
    if (const size_t eq = body.find('='); eq != std::string::npos) {
        const std::string payload = body.substr(eq + 1);
        body.resize(eq);
        if (payload.empty())
            return fail("empty '=' payload");
        char *end = nullptr;
        errno = 0;
        const long long v = std::strtoll(payload.c_str(), &end, 10);
        if (errno != 0 || end != payload.c_str() + payload.size())
            return fail("bad integer payload '" + payload + "'");
        spec.value = static_cast<int64_t>(v);
    }

    if (body.rfind("once", 0) == 0) {
        spec.trigger = Trigger::OneShot;
        const std::string arg = body.substr(4);
        // Bare "once" means "the first hit".
        spec.n = 1;
        if (!arg.empty() && (!parseUint(arg, &spec.n) || spec.n == 0))
            return fail("bad hit index '" + arg + "'");
    } else if (body.rfind("n", 0) == 0) {
        spec.trigger = Trigger::EveryNth;
        if (!parseUint(body.substr(1), &spec.n) || spec.n == 0)
            return fail("bad period '" + body.substr(1) + "'");
    } else if (body.rfind("p", 0) == 0) {
        spec.trigger = Trigger::Probability;
        const std::string arg = body.substr(1);
        char *end = nullptr;
        errno = 0;
        spec.probability = std::strtod(arg.c_str(), &end);
        if (arg.empty() || errno != 0 ||
            end != arg.c_str() + arg.size() || spec.probability < 0.0 ||
            spec.probability > 1.0) {
            return fail("bad probability '" + arg + "'");
        }
    } else {
        return fail("unknown trigger (want p<float>, n<N>, once<N>)");
    }
    *out = spec;
    return true;
}

bool
Failpoint::evaluate()
{
    // 1-based hit index, claimed atomically so concurrent contexts
    // never share a draw.
    const uint64_t hit =
        hitCount.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fired = false;
    switch (pointSpec.trigger) {
      case Trigger::Probability:
        if (pointSpec.probability >= 1.0) {
            fired = true;
        } else if (pointSpec.probability > 0.0) {
            const double draw =
                static_cast<double>(mix(derivedSeed ^ hit) >> 11) *
                (1.0 / 9007199254740992.0);
            fired = draw < pointSpec.probability;
        }
        break;
      case Trigger::EveryNth:
        fired = hit % pointSpec.n == 0;
        break;
      case Trigger::OneShot:
        fired = hit == pointSpec.n;
        break;
    }
    if (fired)
        fireCount.fetch_add(1, std::memory_order_relaxed);
    return fired;
}

Registry::Registry()
{
    if (const char *env = std::getenv("AREGION_FAILPOINT_SEED")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0')
            baseSeed = static_cast<uint64_t>(v);
        else
            AREGION_WARN("ignoring non-numeric AREGION_FAILPOINT_SEED '",
                         env, "'");
    }
    if (const char *env = std::getenv("AREGION_FAILPOINTS")) {
        std::string err;
        if (configure(env, &err) < 0)
            AREGION_WARN("AREGION_FAILPOINTS: ", err);
    }
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

uint64_t
Registry::deriveSeed(const std::string &name) const
{
    return mix(baseSeed ^ hashName(name));
}

void
Registry::arm(const std::string &name, const Spec &spec)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = points[name];
    if (!slot) {
        slot = std::make_unique<Failpoint>();
        slot->pointName = name;
    }
    slot->pointSpec = spec;
    slot->derivedSeed = deriveSeed(name);
    slot->hitCount.store(0, std::memory_order_relaxed);
    slot->fireCount.store(0, std::memory_order_relaxed);
    armedCount.store(points.size(), std::memory_order_relaxed);
}

int
Registry::configure(const std::string &list, std::string *err)
{
    // Malformed entries must not mask their neighbours: every valid
    // entry is armed, every bad one reported, so a typo in a long
    // AREGION_FAILPOINTS list degrades loudly instead of silently
    // dropping the rest of the injection plan.
    int armed = 0;
    std::string errors;
    auto complain = [&](const std::string &msg) {
        if (!errors.empty())
            errors += "; ";
        errors += msg;
    };
    size_t pos = 0;
    while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string entry = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;
        const size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0) {
            complain("entry '" + entry + "' is not <name>:<spec>");
            continue;
        }
        Spec spec;
        std::string spec_err;
        if (!parseSpec(entry.substr(colon + 1), &spec, &spec_err)) {
            complain(spec_err);
            continue;
        }
        arm(entry.substr(0, colon), spec);
        ++armed;
    }
    if (!errors.empty()) {
        if (err)
            *err = errors;
        return -1;
    }
    return armed;
}

void
Registry::disarm(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    points.erase(name);
    armedCount.store(points.size(), std::memory_order_relaxed);
}

void
Registry::disarmAll()
{
    std::lock_guard<std::mutex> lock(mu);
    points.clear();
    armedCount.store(0, std::memory_order_relaxed);
}

void
Registry::setSeed(uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mu);
    baseSeed = seed;
    for (auto &[name, point] : points) {
        point->derivedSeed = deriveSeed(name);
        point->hitCount.store(0, std::memory_order_relaxed);
        point->fireCount.store(0, std::memory_order_relaxed);
    }
}

uint64_t
Registry::seed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return baseSeed;
}

Failpoint *
Registry::find(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = points.find(name);
    return it == points.end() ? nullptr : it->second.get();
}

bool
Registry::fire(const std::string &name)
{
    Failpoint *point = find(name);
    return point != nullptr && point->evaluate();
}

uint64_t
Registry::hitCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = points.find(name);
    return it == points.end() ? 0 : it->second->hits();
}

uint64_t
Registry::fireCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = points.find(name);
    return it == points.end() ? 0 : it->second->fires();
}

std::vector<std::string>
Registry::armedNames() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> names;
    names.reserve(points.size());
    for (const auto &[name, point] : points)
        names.push_back(name);
    return names;
}

std::string
Registry::describe() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream out;
    bool first = true;
    for (const auto &[name, point] : points) {
        if (!first)
            out << ',';
        first = false;
        out << name << ':';
        const Spec &spec = point->pointSpec;
        switch (spec.trigger) {
          case Trigger::Probability:
            out << 'p' << spec.probability;
            break;
          case Trigger::EveryNth:
            out << 'n' << spec.n;
            break;
          case Trigger::OneShot:
            out << "once" << spec.n;
            break;
        }
        if (spec.value != 0)
            out << '=' << spec.value;
    }
    return out.str();
}

} // namespace aregion::failpoint
