#include "ir/cfg.hh"

namespace aregion::ir {

std::vector<int>
compactBlocks(Function &func)
{
    return func.compact();
}

std::map<int, int>
cloneBlocks(Function &func, const std::set<int> &block_set)
{
    std::map<int, int> clone_of;
    for (int b : block_set) {
        Block &fresh = func.newBlock();
        clone_of[b] = fresh.id;
    }
    for (int b : block_set) {
        const Block &src = func.block(b);
        Block &dst = func.block(clone_of.at(b));
        dst.instrs = src.instrs;
        dst.execCount = src.execCount;
        dst.succCount = src.succCount;
        dst.regionId = src.regionId;
        dst.succs = src.succs;
        for (int &s : dst.succs) {
            auto it = clone_of.find(s);
            if (it != clone_of.end())
                s = it->second;
        }
    }
    return clone_of;
}

void
redirectEdges(Function &func, int from, int old_to, int new_to)
{
    Block &blk = func.block(from);
    for (int &s : blk.succs) {
        if (s == old_to)
            s = new_to;
    }
}

} // namespace aregion::ir
