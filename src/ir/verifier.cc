#include "ir/verifier.hh"

#include <sstream>

namespace aregion::ir {

namespace {

size_t
expectedSuccs(Op op)
{
    switch (op) {
      case Op::Branch: return 2;
      case Op::Jump: return 1;
      case Op::Ret: return 0;
      default: return SIZE_MAX;
    }
}

size_t
expectedSrcs(Op op)
{
    switch (op) {
      case Op::Const: case Op::NewObject: case Op::Safepoint:
      case Op::Marker: case Op::AtomicBegin: case Op::AtomicEnd:
      case Op::Jump:
        return 0;
      case Op::Mov: case Op::LoadField: case Op::LoadRaw:
      case Op::LoadSubtype: case Op::NullCheck: case Op::DivCheck:
      case Op::SizeCheck: case Op::TypeCheck: case Op::NewArray:
      case Op::MonitorEnter: case Op::MonitorExit: case Op::Print:
      case Op::Assert: case Op::Branch:
        return 1;
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr:
      case Op::CmpEq: case Op::CmpNe: case Op::CmpLt: case Op::CmpLe:
      case Op::CmpGt: case Op::CmpGe:
      case Op::StoreField: case Op::LoadElem: case Op::StoreRaw:
      case Op::BoundsCheck:
        return 2;
      case Op::StoreElem:
        return 3;
      case Op::CallStatic: case Op::CallVirtual: case Op::Spawn:
      case Op::Ret:
        return SIZE_MAX;    // variable arity
      default:
        return SIZE_MAX;
    }
}

} // namespace

std::vector<std::string>
verify(const Function &func)
{
    std::vector<std::string> problems;
    auto report = [&](int block, size_t idx, const std::string &what) {
        std::ostringstream os;
        os << func.name << " b" << block << "[" << idx << "]: " << what;
        problems.push_back(os.str());
    };

    if (func.numBlocks() == 0) {
        problems.push_back(func.name + ": no blocks");
        return problems;
    }

    for (int b : func.reversePostOrder()) {
        const Block &blk = func.block(b);
        if (blk.instrs.empty()) {
            report(b, 0, "empty block");
            continue;
        }
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            const bool last = i + 1 == blk.instrs.size();
            if (isTerminator(in.op) != last) {
                report(b, i, last ? "block does not end in terminator"
                                  : "terminator before end of block");
            }
            const size_t want = expectedSrcs(in.op);
            if (want != SIZE_MAX && in.srcs.size() != want)
                report(b, i, std::string("bad source arity for ") +
                              opName(in.op));
            if (in.op == Op::Ret && in.srcs.size() > 1)
                report(b, i, "ret with more than one value");
            if (in.dst != NO_VREG &&
                (in.dst < 0 || in.dst >= func.numVregs())) {
                report(b, i, "dst vreg out of range");
            }
            for (Vreg s : in.srcs) {
                if (s < 0 || s >= func.numVregs())
                    report(b, i, "src vreg out of range");
            }
            if (in.op == Op::AtomicBegin && i != 0)
                report(b, i, "aregion_begin not first in block");
            if (in.op == Op::Assert && blk.regionId < 0)
                report(b, i, "assert outside atomic region");
            if (blk.regionId >= 0 &&
                (in.op == Op::CallStatic || in.op == Op::CallVirtual)) {
                report(b, i, "call inside atomic region");
            }
            if (blk.regionId >= 0 && in.op == Op::AtomicBegin &&
                b != func.regions.at(
                    static_cast<size_t>(blk.regionId)).entryBlock) {
                report(b, i, "nested aregion_begin");
            }
        }
        size_t want_succs = expectedSuccs(blk.terminator().op);
        // A region entry block is [AtomicBegin, Jump] with two
        // successors: the region body and the abort exception edge.
        if (blk.instrs.front().op == Op::AtomicBegin &&
            blk.terminator().op == Op::Jump) {
            want_succs = 2;
        }
        if (want_succs != SIZE_MAX && blk.succs.size() != want_succs)
            report(b, blk.instrs.size() - 1,
                   "successor arity does not match terminator");
        for (int s : blk.succs) {
            if (s < 0 || s >= func.numBlocks())
                report(b, blk.instrs.size() - 1,
                       "successor id out of range");
        }
    }

    for (const RegionInfo &r : func.regions) {
        if (r.entryBlock < 0 || r.entryBlock >= func.numBlocks()) {
            problems.push_back(func.name + ": region entry out of range");
            continue;
        }
        const Block &entry = func.block(r.entryBlock);
        if (entry.instrs.empty() ||
            entry.instrs.front().op != Op::AtomicBegin) {
            problems.push_back(
                func.name + ": region entry lacks aregion_begin");
        }
        if (r.altBlock < 0 || r.altBlock >= func.numBlocks())
            problems.push_back(func.name + ": region alt out of range");
    }

    return problems;
}

void
verifyOrDie(const Function &func)
{
    const auto problems = verify(func);
    if (!problems.empty()) {
        AREGION_PANIC("IR verifier: ", problems.front(), " (",
                      problems.size(), " problems total)");
    }
}

} // namespace aregion::ir
