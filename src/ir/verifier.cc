#include "ir/verifier.hh"

#include <functional>
#include <map>
#include <sstream>

#include "ir/dominators.hh"

namespace aregion::ir {

namespace {

size_t
expectedSuccs(Op op)
{
    switch (op) {
      case Op::Branch: return 2;
      case Op::Jump: return 1;
      case Op::Ret: return 0;
      default: return SIZE_MAX;
    }
}

size_t
expectedSrcs(Op op)
{
    switch (op) {
      case Op::Const: case Op::NewObject: case Op::Safepoint:
      case Op::Marker: case Op::AtomicBegin: case Op::AtomicEnd:
      case Op::Jump:
        return 0;
      case Op::Mov: case Op::LoadField: case Op::LoadRaw:
      case Op::LoadSubtype: case Op::NullCheck: case Op::DivCheck:
      case Op::SizeCheck: case Op::TypeCheck: case Op::NewArray:
      case Op::MonitorEnter: case Op::MonitorExit: case Op::Print:
      case Op::Assert: case Op::Branch:
        return 1;
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr:
      case Op::CmpEq: case Op::CmpNe: case Op::CmpLt: case Op::CmpLe:
      case Op::CmpGt: case Op::CmpGe:
      case Op::StoreField: case Op::LoadElem: case Op::StoreRaw:
      case Op::BoundsCheck:
        return 2;
      case Op::StoreElem:
        return 3;
      case Op::CallStatic: case Op::CallVirtual: case Op::Spawn:
      case Op::Ret: case Op::Phi:
        return SIZE_MAX;    // variable arity
      default:
        return SIZE_MAX;
    }
}

size_t
firstNonPhi(const Block &blk)
{
    size_t i = 0;
    while (i < blk.instrs.size() && blk.instrs[i].op == Op::Phi)
        ++i;
    return i;
}

/**
 * SSA invariant: every vreg has at most one def, every use is
 * dominated by it (a name with no def denotes the function-entry
 * value — argument or zero — and dominates everything), phis lead
 * their block and their arity matches the predecessor edge count,
 * with each source defined at the end of its incoming edge.
 */
void
checkSsa(const Function &func,
         const std::function<void(int, size_t, const std::string &)>
             &report)
{
    const int nv = func.numVregs();
    std::vector<int> defBlock(static_cast<size_t>(nv), -1);
    std::vector<int> defIndex(static_cast<size_t>(nv), -1);
    const auto rpo = func.reversePostOrder();
    for (int b : rpo) {
        const Block &blk = func.block(b);
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Vreg d = blk.instrs[i].dst;
            if (d == NO_VREG || d < 0 || d >= nv)
                continue;
            if (defBlock[static_cast<size_t>(d)] != -1) {
                report(b, i, "second def of v" + std::to_string(d) +
                                 " in SSA form");
                continue;
            }
            defBlock[static_cast<size_t>(d)] = b;
            defIndex[static_cast<size_t>(d)] = static_cast<int>(i);
        }
    }

    const DominatorTree doms(func);
    const auto preds = func.computePreds();
    // A use of s at the end of block p is legal iff s has no def
    // (entry value) or its def block dominates p.
    auto definedAtEndOf = [&](Vreg s, int p) {
        const int db = defBlock[static_cast<size_t>(s)];
        return db == -1 || doms.dominates(db, p);
    };

    for (int b : rpo) {
        const Block &blk = func.block(b);
        // Predecessor edge multiplicity (a Branch with both arms at
        // the same target contributes two slots).
        std::map<int, int> edgeCount;
        for (int p : preds[static_cast<size_t>(b)]) {
            if (doms.reachable(p))
                ++edgeCount[p];
        }
        size_t phiEnd = firstNonPhi(blk);
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            if (in.op == Op::Phi) {
                if (i >= phiEnd) {
                    report(b, i, "phi after non-phi instruction");
                    continue;
                }
                if (in.srcs.size() != in.phiBlocks.size()) {
                    report(b, i, "phi srcs/phiBlocks arity mismatch");
                    continue;
                }
                std::map<int, int> slots;
                for (int p : in.phiBlocks)
                    ++slots[p];
                if (slots != edgeCount) {
                    report(b, i,
                           "phi arity does not match predecessor "
                           "edges");
                }
                for (size_t k = 0; k < in.srcs.size(); ++k) {
                    const Vreg s = in.srcs[k];
                    if (s < 0 || s >= nv)
                        continue;   // range error reported already
                    if (!definedAtEndOf(s, in.phiBlocks[k])) {
                        report(b, i,
                               "phi source v" + std::to_string(s) +
                                   " not defined on edge from b" +
                                   std::to_string(in.phiBlocks[k]));
                    }
                }
                continue;
            }
            for (Vreg s : in.srcs) {
                if (s < 0 || s >= nv)
                    continue;
                const int db = defBlock[static_cast<size_t>(s)];
                if (db == -1)
                    continue;   // entry value
                const bool ok =
                    db == b ? defIndex[static_cast<size_t>(s)] <
                                  static_cast<int>(i)
                            : doms.dominates(db, b);
                if (!ok) {
                    report(b, i, "use of v" + std::to_string(s) +
                                     " not dominated by its def");
                }
            }
        }
    }
}

/**
 * Non-SSA within-block check: a use of v before the block's own def
 * of v, when no other block defines v, can only read the implicit
 * zero initial value that the very same block immediately
 * overwrites — in practice a pass reordered or cloned instructions
 * incorrectly.
 */
void
checkUseBeforeDef(const Function &func,
                  const std::function<void(int, size_t,
                                           const std::string &)>
                      &report)
{
    const int nv = func.numVregs();
    std::vector<int> defCount(static_cast<size_t>(nv), 0);
    std::vector<int> soleDefBlock(static_cast<size_t>(nv), -1);
    const auto rpo = func.reversePostOrder();
    for (int b : rpo) {
        for (const Instr &in : func.block(b).instrs) {
            if (in.dst == NO_VREG || in.dst < 0 || in.dst >= nv)
                continue;
            ++defCount[static_cast<size_t>(in.dst)];
            soleDefBlock[static_cast<size_t>(in.dst)] = b;
        }
    }
    std::vector<int> firstDefAt(static_cast<size_t>(nv), -1);
    for (int b : rpo) {
        const Block &blk = func.block(b);
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            for (Vreg s : in.srcs) {
                if (s < 0 || s >= nv || s < func.numArgs)
                    continue;
                if (defCount[static_cast<size_t>(s)] == 1 &&
                    soleDefBlock[static_cast<size_t>(s)] == b &&
                    firstDefAt[static_cast<size_t>(s)] == -1) {
                    report(b, i,
                           "use of v" + std::to_string(s) +
                               " before its only def later in the "
                               "block");
                }
            }
            if (in.dst != NO_VREG && in.dst >= 0 && in.dst < nv &&
                firstDefAt[static_cast<size_t>(in.dst)] == -1) {
                firstDefAt[static_cast<size_t>(in.dst)] =
                    static_cast<int>(i);
            }
        }
        for (int v = 0; v < nv; ++v)
            firstDefAt[static_cast<size_t>(v)] = -1;
    }
}

} // namespace

std::vector<std::string>
verify(const Function &func)
{
    std::vector<std::string> problems;
    auto report = [&](int block, size_t idx, const std::string &what) {
        std::ostringstream os;
        os << func.name << " b" << block << "[" << idx << "]: " << what;
        problems.push_back(os.str());
    };

    if (func.numBlocks() == 0) {
        problems.push_back(func.name + ": no blocks");
        return problems;
    }

    for (int b : func.reversePostOrder()) {
        const Block &blk = func.block(b);
        if (blk.instrs.empty()) {
            report(b, 0, "empty block");
            continue;
        }
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            const bool last = i + 1 == blk.instrs.size();
            if (isTerminator(in.op) != last) {
                report(b, i, last ? "block does not end in terminator"
                                  : "terminator before end of block");
            }
            const size_t want = expectedSrcs(in.op);
            if (want != SIZE_MAX && in.srcs.size() != want)
                report(b, i, std::string("bad source arity for ") +
                              opName(in.op));
            if (in.op == Op::Ret && in.srcs.size() > 1)
                report(b, i, "ret with more than one value");
            if (in.dst != NO_VREG &&
                (in.dst < 0 || in.dst >= func.numVregs())) {
                report(b, i, "dst vreg out of range");
            }
            for (Vreg s : in.srcs) {
                if (s < 0 || s >= func.numVregs())
                    report(b, i, "src vreg out of range");
            }
            if (in.op == Op::Phi && !func.ssaForm)
                report(b, i, "phi in non-SSA function");
            // A block's phis and the Mov/Const runs that out-of-SSA
            // lowering makes of them precede AtomicBegin (they are
            // pre-checkpoint parallel copies); nothing else may.
            if (in.op == Op::AtomicBegin && i != firstEffectiveInstr(blk))
                report(b, i, "aregion_begin not first in block");
            if (in.op == Op::Assert && blk.regionId < 0)
                report(b, i, "assert outside atomic region");
            if (blk.regionId >= 0 &&
                (in.op == Op::CallStatic || in.op == Op::CallVirtual)) {
                report(b, i, "call inside atomic region");
            }
            if (blk.regionId >= 0 && in.op == Op::AtomicBegin &&
                b != func.regions.at(
                    static_cast<size_t>(blk.regionId)).entryBlock) {
                report(b, i, "nested aregion_begin");
            }
        }
        size_t want_succs = expectedSuccs(blk.terminator().op);
        // A region entry block is [copies*, AtomicBegin, Jump] with
        // two successors: the region body and the abort exception
        // edge.
        if (isRegionEntryBlock(blk) && blk.terminator().op == Op::Jump)
            want_succs = 2;
        if (want_succs != SIZE_MAX && blk.succs.size() != want_succs)
            report(b, blk.instrs.size() - 1,
                   "successor arity does not match terminator");
        for (int s : blk.succs) {
            if (s < 0 || s >= func.numBlocks())
                report(b, blk.instrs.size() - 1,
                       "successor id out of range");
        }
    }

    for (const RegionInfo &r : func.regions) {
        if (r.entryBlock < 0 || r.entryBlock >= func.numBlocks()) {
            problems.push_back(func.name + ": region entry out of range");
            continue;
        }
        const Block &entry = func.block(r.entryBlock);
        if (!isRegionEntryBlock(entry)) {
            problems.push_back(
                func.name + ": region entry lacks aregion_begin");
        }
        if (r.altBlock < 0 || r.altBlock >= func.numBlocks())
            problems.push_back(func.name + ": region alt out of range");
    }

    if (problems.empty()) {
        // Dataflow checks assume a structurally sound graph.
        if (func.ssaForm)
            checkSsa(func, report);
        else
            checkUseBeforeDef(func, report);
    }

    return problems;
}

void
verifyOrDie(const Function &func)
{
    const auto problems = verify(func);
    if (!problems.empty()) {
        AREGION_PANIC("IR verifier: ", problems.front(), " (",
                      problems.size(), " problems total)");
    }
}

} // namespace aregion::ir
