#include "ir/dominators.hh"

#include <algorithm>

namespace aregion::ir {

namespace {

/** Graph view used for both dominance directions. */
struct Graph
{
    int numNodes;
    int root;
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;
};

Graph
makeGraph(const Function &func, bool post)
{
    Graph g;
    const int n = func.numBlocks();
    if (!post) {
        g.numNodes = n;
        g.root = func.entry;
        g.succs.resize(static_cast<size_t>(n));
        g.preds.resize(static_cast<size_t>(n));
        for (int b = 0; b < n; ++b) {
            for (int s : func.block(b).succs) {
                g.succs[static_cast<size_t>(b)].push_back(s);
                g.preds[static_cast<size_t>(s)].push_back(b);
            }
        }
    } else {
        // Reversed graph with a virtual exit node (id n) joined from
        // every Ret block.
        g.numNodes = n + 1;
        g.root = n;
        g.succs.resize(static_cast<size_t>(n) + 1);
        g.preds.resize(static_cast<size_t>(n) + 1);
        auto edge = [&](int from, int to) {
            g.succs[static_cast<size_t>(from)].push_back(to);
            g.preds[static_cast<size_t>(to)].push_back(from);
        };
        for (int b = 0; b < n; ++b) {
            for (int s : func.block(b).succs)
                edge(s, b);
            if (func.block(b).terminator().op == Op::Ret)
                edge(n, b);
        }
    }
    return g;
}

} // namespace

DominatorTree::DominatorTree(const Function &func, bool post)
{
    const Graph g = makeGraph(func, post);
    rootBlock = g.root;

    // Reverse post-order from the root.
    std::vector<int> rpo;
    {
        std::vector<uint8_t> seen(static_cast<size_t>(g.numNodes), 0);
        std::vector<std::pair<int, size_t>> stack;
        stack.emplace_back(g.root, 0);
        seen[static_cast<size_t>(g.root)] = 1;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            const auto &succs = g.succs[static_cast<size_t>(b)];
            if (next < succs.size()) {
                const int s = succs[next++];
                if (!seen[static_cast<size_t>(s)]) {
                    seen[static_cast<size_t>(s)] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                rpo.push_back(b);
                stack.pop_back();
            }
        }
        std::reverse(rpo.begin(), rpo.end());
    }

    std::vector<int> rpoNum(static_cast<size_t>(g.numNodes), -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoNum[static_cast<size_t>(rpo[i])] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy fixed point.
    idomVec.assign(static_cast<size_t>(g.numNodes), -1);
    idomVec[static_cast<size_t>(g.root)] = g.root;
    auto meet = [&](int a, int b) {
        while (a != b) {
            while (rpoNum[static_cast<size_t>(a)] >
                   rpoNum[static_cast<size_t>(b)]) {
                a = idomVec[static_cast<size_t>(a)];
            }
            while (rpoNum[static_cast<size_t>(b)] >
                   rpoNum[static_cast<size_t>(a)]) {
                b = idomVec[static_cast<size_t>(b)];
            }
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == g.root)
                continue;
            int best = -1;
            for (int p : g.preds[static_cast<size_t>(b)]) {
                if (rpoNum[static_cast<size_t>(p)] == -1 ||
                    idomVec[static_cast<size_t>(p)] == -1) {
                    continue;   // unreachable or unprocessed
                }
                best = best == -1 ? p : meet(best, p);
            }
            if (best != -1 && idomVec[static_cast<size_t>(b)] != best) {
                idomVec[static_cast<size_t>(b)] = best;
                changed = true;
            }
        }
    }

    // Children lists and preorder numbering for O(1) dominance tests.
    kids.assign(static_cast<size_t>(g.numNodes), {});
    for (int b = 0; b < g.numNodes; ++b) {
        if (b != g.root && idomVec[static_cast<size_t>(b)] != -1)
            kids[static_cast<size_t>(idomVec[
                static_cast<size_t>(b)])].push_back(b);
    }
    idomVec[static_cast<size_t>(g.root)] = -1;

    dfnum.assign(static_cast<size_t>(g.numNodes), -1);
    dfLast.assign(static_cast<size_t>(g.numNodes), -1);
    int counter = 0;
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(g.root, 0);
    dfnum[static_cast<size_t>(g.root)] = counter++;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &children_of = kids[static_cast<size_t>(b)];
        if (next < children_of.size()) {
            const int c = children_of[next++];
            dfnum[static_cast<size_t>(c)] = counter++;
            stack.emplace_back(c, 0);
        } else {
            dfLast[static_cast<size_t>(b)] = counter - 1;
            stack.pop_back();
        }
    }
}

int
DominatorTree::idom(int block) const
{
    return idomVec[static_cast<size_t>(block)];
}

bool
DominatorTree::dominates(int a, int b) const
{
    const int da = dfnum[static_cast<size_t>(a)];
    const int db = dfnum[static_cast<size_t>(b)];
    if (da == -1 || db == -1)
        return false;
    return da <= db && db <= dfLast[static_cast<size_t>(a)];
}

const std::vector<int> &
DominatorTree::children(int block) const
{
    return kids[static_cast<size_t>(block)];
}

bool
DominatorTree::reachable(int block) const
{
    return dfnum[static_cast<size_t>(block)] != -1;
}

std::vector<int>
DominatorTree::preorder() const
{
    std::vector<int> order(dfnum.size(), -1);
    std::vector<int> result;
    for (size_t b = 0; b < dfnum.size(); ++b) {
        if (dfnum[b] != -1)
            order[static_cast<size_t>(dfnum[b])] = static_cast<int>(b);
    }
    for (int b : order) {
        if (b != -1)
            result.push_back(b);
    }
    return result;
}

std::vector<std::vector<int>>
dominanceFrontiers(const Function &func, const DominatorTree &doms)
{
    const int n = func.numBlocks();
    std::vector<std::vector<int>> df(static_cast<size_t>(n));
    const auto preds = func.computePreds();
    for (int b = 0; b < n; ++b) {
        if (!doms.reachable(b))
            continue;
        // The entry block has an implicit extra predecessor (the
        // function-entry edge), so any real edge into it makes it a
        // join; nothing strictly dominates the entry.
        int reachablePreds = b == func.entry ? 1 : 0;
        for (int p : preds[static_cast<size_t>(b)]) {
            if (doms.reachable(p))
                ++reachablePreds;
        }
        if (reachablePreds < 2)
            continue;
        for (int p : preds[static_cast<size_t>(b)]) {
            if (!doms.reachable(p))
                continue;
            int runner = p;
            while (runner != doms.idom(b)) {
                df[static_cast<size_t>(runner)].push_back(b);
                runner = doms.idom(runner);
            }
        }
    }
    for (auto &set : df) {
        std::sort(set.begin(), set.end());
        set.erase(std::unique(set.begin(), set.end()), set.end());
    }
    return df;
}

} // namespace aregion::ir
