/**
 * @file
 * Bytecode -> IR translation.
 *
 * Mirrors a JVM front end: safety checks become explicit IR check
 * instructions (so redundancy elimination can remove them), virtual
 * calls get explicit receiver null checks, synchronized methods are
 * wrapped in monitor enter/exit, calls terminate blocks (region
 * formation reasons about call continuations), and profile counts are
 * attached to blocks and edges.
 */

#ifndef AREGION_IR_TRANSLATE_HH
#define AREGION_IR_TRANSLATE_HH

#include "ir/ir.hh"
#include "vm/profile.hh"
#include "vm/program.hh"

namespace aregion::ir {

/** Translate one method. Profile may be nullptr (counts stay zero). */
Function translate(const vm::Program &prog, vm::MethodId method,
                   const vm::Profile *profile = nullptr);

/** Translate every method of the program into a Module. */
Module translateProgram(const vm::Program &prog,
                        const vm::Profile *profile = nullptr);

} // namespace aregion::ir

#endif // AREGION_IR_TRANSLATE_HH
