/**
 * @file
 * Dominator and post-dominator trees (Cooper-Harvey-Kennedy).
 *
 * Dominance drives CSE availability intuition, loop detection, and
 * region formation; post-dominance drives the paper's Section 7
 * check-elimination extension inside atomic regions.
 */

#ifndef AREGION_IR_DOMINATORS_HH
#define AREGION_IR_DOMINATORS_HH

#include <vector>

#include "ir/ir.hh"

namespace aregion::ir {

/** Immediate-dominator tree over a function's reachable blocks. */
class DominatorTree
{
  public:
    /** Build dominators (post=false) or post-dominators (post=true).
     *  Post-dominance uses a virtual exit joining every Ret block. */
    DominatorTree(const Function &func, bool post = false);

    /** Immediate dominator of b, or -1 for the root / unreachable. */
    int idom(int block) const;

    /** True if a dominates b (every node dominates itself). */
    bool dominates(int a, int b) const;

    /** Children of b in the dominator tree. */
    const std::vector<int> &children(int block) const;

    /** True if the block is reachable (has a tree position). */
    bool reachable(int block) const;

    /** Blocks in dominator-tree preorder (root first). */
    std::vector<int> preorder() const;

    int root() const { return rootBlock; }

  private:
    int intersect(int a, int b) const;

    std::vector<int> idomVec;           ///< -1 if unreachable
    std::vector<std::vector<int>> kids;
    std::vector<int> dfnum;             ///< preorder number, -1 unreachable
    std::vector<int> dfLast;            ///< max dfnum in subtree
    int rootBlock = -1;
};

/**
 * Dominance frontiers per block (Cytron et al. / Cooper-Harvey-
 * Kennedy "runner" formulation): DF(b) contains every join j with a
 * predecessor dominated by b while j itself is not strictly
 * dominated by b. Result is indexed by block id (empty and sorted
 * ascending for unreachable blocks); drives pruned phi placement in
 * ssa.cc. `doms` must be the forward tree of `func`.
 */
std::vector<std::vector<int>>
dominanceFrontiers(const Function &func, const DominatorTree &doms);

} // namespace aregion::ir

#endif // AREGION_IR_DOMINATORS_HH
