#include "ir/translate.hh"

#include <map>

#include "vm/layout.hh"

namespace aregion::ir {

namespace {

using vm::Bc;
using vm::BcInstr;
using vm::MethodInfo;

/** Stateful translator for one method. */
class Translator
{
  public:
    Translator(const vm::Program &prog_, vm::MethodId method_,
               const vm::Profile *profile_)
        : prog(prog_), info(prog_.method(method_)), profile(profile_)
    {
        func.name = info.name;
        func.methodId = method_;
        func.numArgs = info.numArgs;
        func.ensureVregsAtLeast(info.numRegs);
    }

    Function run();

  private:
    /** Execution count of a bytecode pc (0 without a profile). */
    double
    execOf(size_t pc) const
    {
        return profile ? static_cast<double>(
            profile->execCount(func.methodId, static_cast<int>(pc))) : 0;
    }

    double
    takenOf(size_t pc) const
    {
        return profile ? static_cast<double>(
            profile->takenCount(func.methodId, static_cast<int>(pc))) : 0;
    }

    void
    emit(Instr instr)
    {
        cur->instrs.push_back(std::move(instr));
    }

    Instr
    make(Op op, Vreg dst, std::vector<Vreg> srcs, int64_t imm = 0,
         int aux = 0)
    {
        Instr in;
        in.op = op;
        in.dst = dst;
        in.srcs = std::move(srcs);
        in.imm = imm;
        in.aux = aux;
        in.bcPc = static_cast<int>(curPc);
        in.bcMethod = func.methodId;
        return in;
    }

    Vreg
    constVreg(int64_t value)
    {
        const Vreg v = func.newVreg();
        emit(make(Op::Const, v, {}, value));
        return v;
    }

    /** End `cur` with a terminator and optionally link successors. */
    void
    setTerm(Instr term, std::vector<int> succs,
            std::vector<double> succ_counts)
    {
        cur->instrs.push_back(std::move(term));
        cur->succs = std::move(succs);
        cur->succCount = std::move(succ_counts);
        cur = nullptr;
    }

    /** Start an auxiliary block (lowering diamonds). */
    Block &
    auxBlock(double exec)
    {
        Block &b = func.newBlock();
        b.execCount = exec;
        return b;
    }

    void translateOne(const BcInstr &in);

    const vm::Program &prog;
    const MethodInfo &info;
    const vm::Profile *profile;

    Function func;
    std::map<size_t, int> leaderBlock;  ///< leader pc -> block id
    Block *cur = nullptr;
    size_t curPc = 0;
};

Function
Translator::run()
{
    const auto &code = info.code;

    // Pass 1: identify block leaders.
    std::map<size_t, bool> leader;
    leader[0] = true;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const BcInstr &in = code[pc];
        switch (in.op) {
          case Bc::Branch:
            leader[static_cast<size_t>(in.imm)] = true;
            leader[pc + 1] = true;
            break;
          case Bc::Jump:
            leader[static_cast<size_t>(in.imm)] = true;
            if (pc + 1 < code.size())
                leader[pc + 1] = true;
            break;
          case Bc::CallStatic:
          case Bc::CallVirtual:
            // Calls end blocks: atomic regions terminate at
            // non-inlined calls and resume at call continuations.
            leader[pc + 1] = true;
            break;
          case Bc::Ret:
          case Bc::RetVoid:
            if (pc + 1 < code.size())
                leader[pc + 1] = true;
            break;
          default:
            break;
        }
    }

    // Pass 2: create one block per leader, in pc order. The entry
    // block is leader 0 (plus a synchronized prologue, added below).
    for (const auto &[pc, is_leader] : leader) {
        if (!is_leader || pc >= code.size())
            continue;
        Block &b = func.newBlock();
        b.execCount = execOf(pc);
        leaderBlock[pc] = b.id;
    }
    func.entry = leaderBlock.at(0);

    // Pass 3: translate each block's instruction run.
    for (const auto &[leader_pc, block_id] : leaderBlock) {
        cur = &func.block(block_id);
        size_t pc = leader_pc;
        while (true) {
            curPc = pc;
            const BcInstr &in = code[pc];
            translateOne(in);
            ++pc;
            if (cur == nullptr)
                break;      // terminator emitted
            const bool next_is_leader =
                pc < code.size() && leader.count(pc) && leader.at(pc);
            if (next_is_leader) {
                // Fall through into the next block.
                const int next = leaderBlock.at(pc);
                const double flow = cur->execCount;
                setTerm(make(Op::Jump, NO_VREG, {}), {next}, {flow});
                break;
            }
            AREGION_ASSERT(pc < code.size(),
                           "translation ran off method ", info.name);
        }
    }

    // Synchronized methods: monitor the receiver around the body.
    if (info.isSynchronized) {
        Block &prologue = func.newBlock();
        prologue.execCount = func.block(func.entry).execCount;
        curPc = 0;
        const Vreg self = 0;
        prologue.instrs.push_back(make(Op::NullCheck, NO_VREG, {self}));
        prologue.instrs.push_back(
            make(Op::MonitorEnter, NO_VREG, {self}));
        prologue.instrs.push_back(make(Op::Jump, NO_VREG, {}));
        prologue.succs = {func.entry};
        prologue.succCount = {prologue.execCount};
        func.entry = prologue.id;

        // The monitor-exit epilogue gets its own block (separate
        // from the Ret): atomic region formation stops at Ret blocks
        // but replicates epilogues, so a region formed inside a
        // synchronized method contains the balanced monitor pair and
        // speculative lock elision applies.
        const int blocks_before = func.numBlocks();
        for (int b = 0; b < blocks_before; ++b) {
            Block &blk = func.block(b);
            if (blk.instrs.empty() || blk.terminator().op != Op::Ret)
                continue;
            Instr ret = blk.terminator();
            Block &ret_blk = func.newBlock();
            ret_blk.execCount = blk.execCount;
            ret_blk.instrs.push_back(std::move(ret));

            Block &owner = func.block(b);   // re-fetch (newBlock)
            owner.instrs.pop_back();
            Instr exit_monitor = make(Op::MonitorExit, NO_VREG,
                                      {self});
            exit_monitor.bcPc = ret_blk.instrs.back().bcPc;
            owner.instrs.push_back(std::move(exit_monitor));
            Instr jump = make(Op::Jump, NO_VREG, {});
            jump.bcPc = ret_blk.instrs.back().bcPc;
            owner.instrs.push_back(std::move(jump));
            owner.succs = {ret_blk.id};
            owner.succCount = {owner.execCount};
        }
    }

    return std::move(func);
}

void
Translator::translateOne(const BcInstr &in)
{
    auto binop = [&](Op op) {
        emit(make(op, in.a, {in.b, static_cast<Vreg>(in.c)}));
    };

    switch (in.op) {
      case Bc::Const:
        emit(make(Op::Const, in.a, {}, in.imm));
        break;
      case Bc::Mov:
        emit(make(Op::Mov, in.a, {in.b}));
        break;

      case Bc::Add: binop(Op::Add); break;
      case Bc::Sub: binop(Op::Sub); break;
      case Bc::Mul: binop(Op::Mul); break;
      case Bc::And: binop(Op::And); break;
      case Bc::Or: binop(Op::Or); break;
      case Bc::Xor: binop(Op::Xor); break;
      case Bc::Shl: binop(Op::Shl); break;
      case Bc::Shr: binop(Op::Shr); break;
      case Bc::CmpEq: binop(Op::CmpEq); break;
      case Bc::CmpNe: binop(Op::CmpNe); break;
      case Bc::CmpLt: binop(Op::CmpLt); break;
      case Bc::CmpLe: binop(Op::CmpLe); break;
      case Bc::CmpGt: binop(Op::CmpGt); break;
      case Bc::CmpGe: binop(Op::CmpGe); break;

      case Bc::Div:
      case Bc::Rem:
        emit(make(Op::DivCheck, NO_VREG, {static_cast<Vreg>(in.c)}));
        binop(in.op == Bc::Div ? Op::Div : Op::Rem);
        break;

      case Bc::Branch: {
        const size_t pc = curPc;
        const double exec = execOf(pc);
        const double taken = takenOf(pc);
        const int t = leaderBlock.at(static_cast<size_t>(in.imm));
        const int f = leaderBlock.at(pc + 1);
        setTerm(make(Op::Branch, NO_VREG, {in.a}), {t, f},
                {taken, exec - taken});
        break;
      }
      case Bc::Jump: {
        const double exec = execOf(curPc);
        const int t = leaderBlock.at(static_cast<size_t>(in.imm));
        setTerm(make(Op::Jump, NO_VREG, {}), {t}, {exec});
        break;
      }

      case Bc::NewObject:
        emit(make(Op::NewObject, in.a, {}, 0, in.c));
        break;
      case Bc::NewArray:
        emit(make(Op::SizeCheck, NO_VREG, {in.b}));
        emit(make(Op::NewArray, in.a, {in.b}));
        break;

      case Bc::GetField:
        emit(make(Op::NullCheck, NO_VREG, {in.b}));
        emit(make(Op::LoadField, in.a, {in.b}, 0, in.c));
        break;
      case Bc::PutField:
        emit(make(Op::NullCheck, NO_VREG, {in.a}));
        emit(make(Op::StoreField, NO_VREG, {in.a, in.b}, 0, in.c));
        break;

      case Bc::ALoad: {
        emit(make(Op::NullCheck, NO_VREG, {in.b}));
        const Vreg len = func.newVreg();
        emit(make(Op::LoadRaw, len, {in.b}, vm::layout::ARR_LEN));
        emit(make(Op::BoundsCheck, NO_VREG,
                  {static_cast<Vreg>(in.c), len}));
        emit(make(Op::LoadElem, in.a, {in.b, static_cast<Vreg>(in.c)}));
        break;
      }
      case Bc::AStore: {
        emit(make(Op::NullCheck, NO_VREG, {in.a}));
        const Vreg len = func.newVreg();
        emit(make(Op::LoadRaw, len, {in.a}, vm::layout::ARR_LEN));
        emit(make(Op::BoundsCheck, NO_VREG, {in.b, len}));
        emit(make(Op::StoreElem, NO_VREG,
                  {in.a, in.b, static_cast<Vreg>(in.c)}));
        break;
      }
      case Bc::ALength:
        emit(make(Op::NullCheck, NO_VREG, {in.b}));
        emit(make(Op::LoadRaw, in.a, {in.b}, vm::layout::ARR_LEN));
        break;

      case Bc::CallStatic: {
        std::vector<Vreg> srcs(in.args.begin(), in.args.end());
        const Vreg dst = in.a == vm::NO_REG ? NO_VREG : in.a;
        emit(make(Op::CallStatic, dst, std::move(srcs), 0,
                  static_cast<int>(in.imm)));
        // Calls end the block; the run loop links the continuation.
        break;
      }
      case Bc::CallVirtual: {
        std::vector<Vreg> srcs(in.args.begin(), in.args.end());
        emit(make(Op::NullCheck, NO_VREG, {srcs.at(0)}));
        const Vreg dst = in.a == vm::NO_REG ? NO_VREG : in.a;
        emit(make(Op::CallVirtual, dst, std::move(srcs), 0, in.b));
        break;
      }

      case Bc::Ret:
        setTerm(make(Op::Ret, NO_VREG, {in.a}), {}, {});
        break;
      case Bc::RetVoid:
        setTerm(make(Op::Ret, NO_VREG, {}), {}, {});
        break;

      case Bc::MonitorEnter:
        emit(make(Op::NullCheck, NO_VREG, {in.a}));
        emit(make(Op::MonitorEnter, NO_VREG, {in.a}));
        break;
      case Bc::MonitorExit:
        emit(make(Op::NullCheck, NO_VREG, {in.a}));
        emit(make(Op::MonitorExit, NO_VREG, {in.a}));
        break;

      case Bc::InstanceOf: {
        // dst = (obj != null) && subtype[classof(obj)][cls].
        // Lowered to a diamond; the null edge profiles as cold.
        const double exec = cur->execCount;
        const Vreg zero = constVreg(0);
        const Vreg is_null = func.newVreg();
        emit(make(Op::CmpEq, is_null, {in.b, zero}));
        Block &null_blk = auxBlock(0);
        Block &load_blk = auxBlock(exec);
        Block &cont_blk = auxBlock(exec);
        setTerm(make(Op::Branch, NO_VREG, {is_null}),
                {null_blk.id, load_blk.id}, {0, exec});

        cur = &null_blk;
        emit(make(Op::Const, in.a, {}, 0));
        setTerm(make(Op::Jump, NO_VREG, {}), {cont_blk.id}, {0});

        cur = &load_blk;
        const Vreg cls = func.newVreg();
        emit(make(Op::LoadRaw, cls, {in.b}, vm::layout::HDR_CLASS));
        emit(make(Op::LoadSubtype, in.a, {cls}, 0, in.c));
        setTerm(make(Op::Jump, NO_VREG, {}), {cont_blk.id}, {exec});

        cur = &cont_blk;
        break;
      }
      case Bc::CheckCast: {
        // Null passes; otherwise TypeCheck(subtype flag).
        const double exec = cur->execCount;
        const Vreg zero = constVreg(0);
        const Vreg is_null = func.newVreg();
        emit(make(Op::CmpEq, is_null, {in.a, zero}));
        Block &check_blk = auxBlock(exec);
        Block &cont_blk = auxBlock(exec);
        setTerm(make(Op::Branch, NO_VREG, {is_null}),
                {cont_blk.id, check_blk.id}, {0, exec});

        cur = &check_blk;
        const Vreg cls = func.newVreg();
        emit(make(Op::LoadRaw, cls, {in.a}, vm::layout::HDR_CLASS));
        const Vreg flag = func.newVreg();
        emit(make(Op::LoadSubtype, flag, {cls}, 0, in.c));
        emit(make(Op::TypeCheck, NO_VREG, {flag}));
        setTerm(make(Op::Jump, NO_VREG, {}), {cont_blk.id}, {exec});

        cur = &cont_blk;
        break;
      }

      case Bc::Safepoint:
        emit(make(Op::Safepoint, NO_VREG, {}));
        break;
      case Bc::Print:
        emit(make(Op::Print, NO_VREG, {in.a}));
        break;
      case Bc::Marker:
        emit(make(Op::Marker, NO_VREG, {}, in.imm));
        break;
      case Bc::Spawn: {
        std::vector<Vreg> srcs(in.args.begin(), in.args.end());
        emit(make(Op::Spawn, NO_VREG, std::move(srcs), 0,
                  static_cast<int>(in.imm)));
        break;
      }
    }
}

} // namespace

Function
translate(const vm::Program &prog, vm::MethodId method,
          const vm::Profile *profile)
{
    Translator tr(prog, method, profile);
    return tr.run();
}

Module
translateProgram(const vm::Program &prog, const vm::Profile *profile)
{
    Module mod;
    mod.prog = &prog;
    for (vm::MethodId m = 0; m < prog.numMethods(); ++m)
        mod.funcs.emplace(m, translate(prog, m, profile));
    return mod;
}

} // namespace aregion::ir
