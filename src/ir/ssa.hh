/**
 * @file
 * SSA construction and destruction.
 *
 * buildSSA rewrites a conventional function into pruned SSA form:
 * phis are placed on the iterated dominance frontier of each
 * variable's definition sites (filtered by liveness), and a
 * rename-by-dominator-walk gives every definition a fresh name. The
 * *initial* value of each original vreg — the argument value for
 * vregs below numArgs, zero otherwise (frames are zero-initialised
 * by every executor) — keeps the original vreg id, so a name without
 * a defining instruction always denotes that entry value.
 *
 * destroySSA lowers back out: trivial phis are folded, phi webs are
 * coalesced with a dominance/liveness interference test, remaining
 * phis become parallel copies on their incoming edges (critical
 * edges are split), and every name is renumbered densely with
 * argument classes pinned to [0, numArgs).
 *
 * Atomic-region subtlety: the pseudo edge from a region entry block
 * (AtomicBegin) to its alternate block is traversed only by a
 * rollback, which restores the register checkpoint taken at
 * AtomicBegin. Copies for phi inputs on that edge therefore cannot
 * live after AtomicBegin (they would be rolled back) nor on a split
 * block (it would never execute); they are placed *before* the
 * AtomicBegin, where the checkpoint captures them.
 */

#ifndef AREGION_IR_SSA_HH
#define AREGION_IR_SSA_HH

#include "ir/ir.hh"

namespace aregion::ir {

/** Rewrite into pruned SSA form (no-op requirements: !func.ssaForm).
 *  Compacts the function and, when the entry block has predecessors,
 *  inserts a fresh pre-entry block so the implicit entry edge cannot
 *  carry phi inputs. Sets func.ssaForm. */
void buildSSA(Function &func);

/** Lower out of SSA form (requires func.ssaForm). Removes every Phi,
 *  inserts the minimal copies coalescing could not avoid, renumbers
 *  vregs densely (args keep [0, numArgs)) and clears func.ssaForm. */
void destroySSA(Function &func);

} // namespace aregion::ir

#endif // AREGION_IR_SSA_HH
