/**
 * @file
 * IR structural verifier: run between passes in debug pipelines.
 */

#ifndef AREGION_IR_VERIFIER_HH
#define AREGION_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace aregion::ir {

/**
 * Check structural invariants:
 *  - every reachable block ends in exactly one terminator,
 *  - successor arity matches the terminator kind,
 *  - vregs are within bounds,
 *  - AtomicBegin appears only as the first instruction of a region
 *    entry block; regions are not nested; Assert appears only inside
 *    a region; region blocks cannot contain calls or AtomicBegin.
 */
std::vector<std::string> verify(const Function &func);

void verifyOrDie(const Function &func);

} // namespace aregion::ir

#endif // AREGION_IR_VERIFIER_HH
