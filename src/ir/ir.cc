#include "ir/ir.hh"

#include <algorithm>
#include <sstream>

namespace aregion::ir {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Mov: return "mov";
      case Op::Phi: return "phi";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Rem: return "rem";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLe: return "cmple";
      case Op::CmpGt: return "cmpgt";
      case Op::CmpGe: return "cmpge";
      case Op::LoadField: return "loadfield";
      case Op::StoreField: return "storefield";
      case Op::LoadElem: return "loadelem";
      case Op::StoreElem: return "storeelem";
      case Op::LoadRaw: return "loadraw";
      case Op::StoreRaw: return "storeraw";
      case Op::LoadSubtype: return "loadsubtype";
      case Op::NullCheck: return "nullcheck";
      case Op::BoundsCheck: return "boundscheck";
      case Op::DivCheck: return "divcheck";
      case Op::SizeCheck: return "sizecheck";
      case Op::TypeCheck: return "typecheck";
      case Op::NewObject: return "newobject";
      case Op::NewArray: return "newarray";
      case Op::CallStatic: return "callstatic";
      case Op::CallVirtual: return "callvirtual";
      case Op::MonitorEnter: return "monitorenter";
      case Op::MonitorExit: return "monitorexit";
      case Op::Safepoint: return "safepoint";
      case Op::Print: return "print";
      case Op::Marker: return "marker";
      case Op::Spawn: return "spawn";
      case Op::AtomicBegin: return "aregion_begin";
      case Op::AtomicEnd: return "aregion_end";
      case Op::Assert: return "assert";
      case Op::Branch: return "branch";
      case Op::Jump: return "jump";
      case Op::Ret: return "ret";
    }
    return "<bad>";
}

bool
isTerminator(Op op)
{
    return op == Op::Branch || op == Op::Jump || op == Op::Ret;
}

bool
isPureValue(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Mov:
      case Op::Phi:
      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr:
      case Op::CmpEq: case Op::CmpNe: case Op::CmpLt:
      case Op::CmpLe: case Op::CmpGt: case Op::CmpGe:
        return true;
      // Div/Rem are pure once guarded by DivCheck, but folding them
      // freely is still fine because translation always guards them.
      case Op::Div: case Op::Rem:
        return true;
      default:
        return false;
    }
}

bool
isCheck(Op op)
{
    switch (op) {
      case Op::NullCheck:
      case Op::BoundsCheck:
      case Op::DivCheck:
      case Op::SizeCheck:
      case Op::TypeCheck:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Op op)
{
    switch (op) {
      case Op::LoadField:
      case Op::LoadElem:
      case Op::LoadRaw:
        return true;
      // LoadSubtype reads immutable metadata: treated as pure-ish but
      // kept separate because it reads memory in the machine model.
      case Op::LoadSubtype:
        return true;
      default:
        return false;
    }
}

bool
hasSideEffect(Op op)
{
    switch (op) {
      case Op::StoreField:
      case Op::StoreElem:
      case Op::StoreRaw:
      case Op::NewObject:
      case Op::NewArray:
      case Op::CallStatic:
      case Op::CallVirtual:
      case Op::MonitorEnter:
      case Op::MonitorExit:
      case Op::Safepoint:
      case Op::Print:
      case Op::Marker:
      case Op::Spawn:
      case Op::AtomicBegin:
      case Op::AtomicEnd:
      case Op::Assert:      // essential: only DCE must know (paper S4)
      case Op::NullCheck:
      case Op::BoundsCheck:
      case Op::DivCheck:
      case Op::SizeCheck:
      case Op::TypeCheck:
      case Op::Branch:
      case Op::Jump:
      case Op::Ret:
        return true;
      default:
        return false;
    }
}

size_t
firstEffectiveInstr(const Block &blk)
{
    size_t i = 0;
    while (i < blk.instrs.size() &&
           (blk.instrs[i].op == Op::Phi || blk.instrs[i].op == Op::Mov ||
            blk.instrs[i].op == Op::Const)) {
        ++i;
    }
    return i;
}

bool
isRegionEntryBlock(const Block &blk)
{
    const size_t lead = firstEffectiveInstr(blk);
    return lead < blk.instrs.size() &&
           blk.instrs[lead].op == Op::AtomicBegin;
}

std::string
Instr::toString() const
{
    std::ostringstream os;
    if (dst != NO_VREG)
        os << "v" << dst << " = ";
    os << opName(op);
    if (op == Op::Phi) {
        for (size_t i = 0; i < srcs.size(); ++i) {
            const int from =
                i < phiBlocks.size() ? phiBlocks[i] : -1;
            os << (i ? ", " : " ") << "[v" << srcs[i] << ", b"
               << from << "]";
        }
        return os.str();
    }
    for (Vreg s : srcs)
        os << " v" << s;
    switch (op) {
      case Op::Const:
      case Op::LoadRaw:
      case Op::StoreRaw:
      case Op::Marker:
        os << " #" << imm;
        break;
      default:
        break;
    }
    switch (op) {
      case Op::LoadField: case Op::StoreField:
        os << " field=" << aux;
        break;
      case Op::NewObject: case Op::LoadSubtype:
        os << " class=" << aux;
        break;
      case Op::CallStatic: case Op::Spawn:
        os << " method=" << aux;
        break;
      case Op::CallVirtual:
        os << " slot=" << aux;
        break;
      case Op::AtomicBegin: case Op::AtomicEnd:
        os << " region=" << aux;
        break;
      case Op::Assert:
        os << " abort=" << aux;
        break;
      default:
        break;
    }
    return os.str();
}

Block &
Function::newBlock()
{
    auto blk = std::make_unique<Block>();
    blk->id = static_cast<int>(blocksVec.size());
    blocksVec.push_back(std::move(blk));
    return *blocksVec.back();
}

Block &
Function::block(int id)
{
    AREGION_ASSERT(id >= 0 && id < numBlocks(), "bad block id ", id);
    return *blocksVec[static_cast<size_t>(id)];
}

const Block &
Function::block(int id) const
{
    AREGION_ASSERT(id >= 0 && id < numBlocks(), "bad block id ", id);
    return *blocksVec[static_cast<size_t>(id)];
}

std::vector<std::vector<int>>
Function::computePreds() const
{
    std::vector<std::vector<int>> preds(
        static_cast<size_t>(numBlocks()));
    for (int b = 0; b < numBlocks(); ++b) {
        for (int s : block(b).succs)
            preds[static_cast<size_t>(s)].push_back(b);
    }
    return preds;
}

std::vector<int>
Function::reversePostOrder() const
{
    std::vector<int> order;
    std::vector<uint8_t> state(static_cast<size_t>(numBlocks()), 0);
    // Iterative post-order DFS, then reverse.
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(entry, 0);
    state[static_cast<size_t>(entry)] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const Block &blk = block(b);
        if (next < blk.succs.size()) {
            const int s = blk.succs[next++];
            if (!state[static_cast<size_t>(s)]) {
                state[static_cast<size_t>(s)] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

int
Function::countInstrs() const
{
    int total = 0;
    for (int b : reversePostOrder())
        total += static_cast<int>(block(b).instrs.size());
    return total;
}

std::vector<int>
Function::compact()
{
    const std::vector<int> order = reversePostOrder();
    std::vector<int> remap(static_cast<size_t>(numBlocks()), -1);
    for (size_t i = 0; i < order.size(); ++i)
        remap[static_cast<size_t>(order[i])] = static_cast<int>(i);

    std::vector<std::unique_ptr<Block>> next;
    next.reserve(order.size());
    for (int old_id : order) {
        auto blk = std::move(blocksVec[static_cast<size_t>(old_id)]);
        blk->id = remap[static_cast<size_t>(old_id)];
        for (int &s : blk->succs) {
            AREGION_ASSERT(remap[static_cast<size_t>(s)] != -1,
                           "reachable block points at dead block");
            s = remap[static_cast<size_t>(s)];
        }
        // Phi slots whose predecessor died go away with the edge.
        for (Instr &in : blk->instrs) {
            if (in.op != Op::Phi)
                continue;
            size_t keep = 0;
            for (size_t i = 0; i < in.phiBlocks.size(); ++i) {
                const int p =
                    remap[static_cast<size_t>(in.phiBlocks[i])];
                if (p == -1)
                    continue;
                in.phiBlocks[keep] = p;
                in.srcs[keep] = in.srcs[i];
                ++keep;
            }
            in.phiBlocks.resize(keep);
            in.srcs.resize(keep);
        }
        next.push_back(std::move(blk));
    }
    blocksVec = std::move(next);
    entry = remap[static_cast<size_t>(entry)];

    std::vector<RegionInfo> kept;
    for (RegionInfo &r : regions) {
        const int e = remap[static_cast<size_t>(r.entryBlock)];
        if (e == -1)
            continue;
        r.entryBlock = e;
        AREGION_ASSERT(remap[static_cast<size_t>(r.altBlock)] != -1,
                       "region alt block died while entry survived");
        r.altBlock = remap[static_cast<size_t>(r.altBlock)];
        kept.push_back(r);
    }
    // Renumber region ids densely and fix block tags plus the ids
    // stored inside AtomicBegin/AtomicEnd instructions.
    std::map<int, int> region_remap;
    for (size_t i = 0; i < kept.size(); ++i) {
        region_remap[kept[i].id] = static_cast<int>(i);
        kept[i].id = static_cast<int>(i);
    }
    regions = std::move(kept);
    for (auto &blk : blocksVec) {
        if (blk->regionId >= 0) {
            auto it = region_remap.find(blk->regionId);
            blk->regionId = it == region_remap.end() ? -1 : it->second;
        }
        for (Instr &in : blk->instrs) {
            if (in.op == Op::AtomicBegin || in.op == Op::AtomicEnd) {
                auto it = region_remap.find(in.aux);
                AREGION_ASSERT(it != region_remap.end(),
                               "atomic op for dropped region survived");
                in.aux = it->second;
            }
        }
    }
    return remap;
}

} // namespace aregion::ir
