/**
 * @file
 * Direct IR execution, including atomic-region semantics.
 *
 * The evaluator is a testing tool: optimization passes and region
 * formation must preserve a function's observable behaviour, and the
 * cheapest way to check that is to execute the IR before and after a
 * transformation and compare outputs against the bytecode
 * interpreter. Single-threaded only (Spawn is rejected); the machine
 * simulator covers multi-threaded execution.
 *
 * Atomic regions execute with full rollback: AtomicBegin snapshots
 * registers and opens a memory undo log; a firing Assert (or a trap,
 * or a forced abort at AtomicEnd) restores the snapshot and transfers
 * control to the region's alternate block, exactly as the proposed
 * hardware does.
 */

#ifndef AREGION_IR_EVALUATOR_HH
#define AREGION_IR_EVALUATOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ir/ir.hh"
#include "vm/heap.hh"
#include "vm/trap.hh"

namespace aregion::ir {

/** Result of an IR evaluation run. */
struct EvalResult
{
    bool completed = false;
    uint64_t instrs = 0;            ///< IR instructions executed
    uint64_t regionEntries = 0;
    uint64_t regionCommits = 0;
    uint64_t regionAborts = 0;
    std::optional<vm::Trap> trap;
    /** Aborts per assert id (function, abort id) for diagnostics. */
    std::map<std::pair<int, int>, uint64_t> abortCounts;
};

/** IR module executor. */
class Evaluator
{
  public:
    explicit Evaluator(const Module &mod, uint64_t max_words = 1ull << 26);

    Evaluator(Module &&, uint64_t = 0) = delete;

    /** Run the module's main function. */
    EvalResult run(uint64_t max_steps = 1ull << 28);

    const std::vector<int64_t> &output() const { return outputStream; }

    /** Final memory image (differential harness heap digests). */
    const vm::Heap &finalHeap() const { return heap; }

    /**
     * Fault injection: when > 0, every Nth AtomicEnd aborts instead
     * of committing (exercising the abort path even when no assert
     * fires). Observable behaviour must not change.
     */
    uint64_t forceAbortPeriod = 0;

  private:
    struct Frame
    {
        const Function *func;
        std::vector<int64_t> regs;
        int block;
        size_t idx = 0;
        Vreg retDst = NO_VREG;
    };

    /** Open checkpoint for the innermost (only) active region. */
    struct Checkpoint
    {
        int regionId;
        std::vector<int64_t> regs;
        std::vector<std::pair<uint64_t, int64_t>> undoLog;
        uint64_t allocMark;
    };

    int64_t &reg(Vreg v);
    uint64_t checkRef(int64_t value, int bc_method, int bc_pc) const;
    void store(uint64_t addr, int64_t value);
    void rollbackToAlt();
    void execute(const Instr &in, bool &advanced);

    const Module &mod;
    vm::Heap heap;
    std::vector<Frame> stack;
    std::optional<Checkpoint> checkpoint;
    std::vector<int64_t> outputStream;
    EvalResult result;
    uint64_t atomicEnds = 0;
};

} // namespace aregion::ir

#endif // AREGION_IR_EVALUATOR_HH
