#include "ir/evaluator.hh"

#include "vm/arith.hh"
#include "vm/layout.hh"

namespace aregion::ir {

namespace layout = vm::layout;
using vm::Trap;
using vm::TrapKind;

Evaluator::Evaluator(const Module &mod_, uint64_t max_words)
    : mod(mod_), heap(*mod_.prog, max_words)
{
}

int64_t &
Evaluator::reg(Vreg v)
{
    Frame &frame = stack.back();
    AREGION_ASSERT(v >= 0 &&
                   static_cast<size_t>(v) < frame.regs.size(),
                   "vreg ", v, " out of range in ", frame.func->name);
    return frame.regs[static_cast<size_t>(v)];
}

uint64_t
Evaluator::checkRef(int64_t value, int bc_method, int bc_pc) const
{
    if (value == 0)
        throw Trap(TrapKind::NullPointer, bc_method, bc_pc);
    return static_cast<uint64_t>(value);
}

void
Evaluator::store(uint64_t addr, int64_t value)
{
    if (checkpoint)
        checkpoint->undoLog.emplace_back(addr, heap.load(addr));
    heap.store(addr, value);
}

void
Evaluator::rollbackToAlt()
{
    AREGION_ASSERT(checkpoint.has_value(), "rollback without region");
    Frame &frame = stack.back();
    frame.regs = checkpoint->regs;
    for (auto it = checkpoint->undoLog.rbegin();
         it != checkpoint->undoLog.rend(); ++it) {
        heap.store(it->first, it->second);
    }
    heap.allocReset(checkpoint->allocMark);

    const auto rid = static_cast<size_t>(checkpoint->regionId);
    AREGION_ASSERT(rid < frame.func->regions.size(),
                   "bad region id in rollback");
    const RegionInfo &region = frame.func->regions[rid];
    frame.block = region.altBlock;
    frame.idx = 0;
    checkpoint.reset();
    result.regionAborts++;
}

void
Evaluator::execute(const Instr &in, bool &advanced)
{
    namespace arith = vm::arith;
    Frame &frame = stack.back();
    const int mid = frame.func->methodId;
    // Traps report the *originating* bytecode method: after inlining
    // the executing function differs from the method that contains
    // the faulting bytecode, and the interpreter (the reference
    // semantics) and the machine both attribute the trap to the
    // latter. Explicit abort bookkeeping stays keyed by the
    // executing function, matching the machine's per-region stats.
    const int trap_mid = in.bcMethod >= 0 ? in.bcMethod : mid;

    auto jumpTo = [&](int block) {
        stack.back().block = block;
        stack.back().idx = 0;
        advanced = true;
    };

    switch (in.op) {
      case Op::Const:
        reg(in.dst) = in.imm;
        break;
      case Op::Mov:
        reg(in.dst) = reg(in.s0());
        break;
      case Op::Add:
        reg(in.dst) = arith::javaAdd(reg(in.s0()), reg(in.s1()));
        break;
      case Op::Sub:
        reg(in.dst) = arith::javaSub(reg(in.s0()), reg(in.s1()));
        break;
      case Op::Mul:
        reg(in.dst) = arith::javaMul(reg(in.s0()), reg(in.s1()));
        break;
      case Op::Div: {
        const int64_t d = reg(in.s1());
        if (d == 0)
            throw Trap(TrapKind::DivideByZero, trap_mid, in.bcPc);
        reg(in.dst) = arith::javaDiv(reg(in.s0()), d);
        break;
      }
      case Op::Rem: {
        const int64_t d = reg(in.s1());
        if (d == 0)
            throw Trap(TrapKind::DivideByZero, trap_mid, in.bcPc);
        reg(in.dst) = arith::javaRem(reg(in.s0()), d);
        break;
      }
      case Op::And:
        reg(in.dst) = reg(in.s0()) & reg(in.s1());
        break;
      case Op::Or:
        reg(in.dst) = reg(in.s0()) | reg(in.s1());
        break;
      case Op::Xor:
        reg(in.dst) = reg(in.s0()) ^ reg(in.s1());
        break;
      case Op::Shl:
        reg(in.dst) = arith::javaShl(reg(in.s0()), reg(in.s1()));
        break;
      case Op::Shr:
        reg(in.dst) = arith::javaShr(reg(in.s0()), reg(in.s1()));
        break;
      case Op::CmpEq:
        reg(in.dst) = reg(in.s0()) == reg(in.s1());
        break;
      case Op::CmpNe:
        reg(in.dst) = reg(in.s0()) != reg(in.s1());
        break;
      case Op::CmpLt:
        reg(in.dst) = reg(in.s0()) < reg(in.s1());
        break;
      case Op::CmpLe:
        reg(in.dst) = reg(in.s0()) <= reg(in.s1());
        break;
      case Op::CmpGt:
        reg(in.dst) = reg(in.s0()) > reg(in.s1());
        break;
      case Op::CmpGe:
        reg(in.dst) = reg(in.s0()) >= reg(in.s1());
        break;

      case Op::LoadField: {
        const auto obj = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        reg(in.dst) = heap.load(obj + layout::OBJ_FIELD_BASE +
                                static_cast<uint64_t>(in.aux));
        break;
      }
      case Op::StoreField: {
        const auto obj = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        store(obj + layout::OBJ_FIELD_BASE +
              static_cast<uint64_t>(in.aux), reg(in.s1()));
        break;
      }
      case Op::LoadElem: {
        const auto arr = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        const auto addr = arr + static_cast<uint64_t>(
            layout::ARR_ELEM_BASE + reg(in.s1()));
        // A postdominating check may not have run yet inside an
        // atomic region; tolerate speculative wild loads as zero.
        if (!heap.inBounds(addr)) {
            AREGION_ASSERT(checkpoint.has_value(),
                           "non-speculative wild load");
            reg(in.dst) = 0;
        } else {
            reg(in.dst) = heap.load(addr);
        }
        break;
      }
      case Op::StoreElem: {
        const auto arr = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        const auto addr = arr + static_cast<uint64_t>(
            layout::ARR_ELEM_BASE + reg(in.s1()));
        AREGION_ASSERT(heap.inBounds(addr) || checkpoint.has_value(),
                       "non-speculative wild store");
        if (heap.inBounds(addr))
            store(addr, reg(in.s2()));
        break;
      }
      case Op::LoadRaw: {
        const auto base = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        reg(in.dst) = heap.load(base + static_cast<uint64_t>(in.imm));
        break;
      }
      case Op::StoreRaw: {
        const auto base = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        store(base + static_cast<uint64_t>(in.imm), reg(in.s1()));
        break;
      }
      case Op::LoadSubtype: {
        const int64_t cls = reg(in.s0());
        reg(in.dst) =
            cls >= 0 && cls < mod.prog->numClasses() &&
            mod.prog->isSubclassOf(static_cast<vm::ClassId>(cls),
                                   in.aux);
        break;
      }

      case Op::NullCheck:
        if (reg(in.s0()) == 0)
            throw Trap(TrapKind::NullPointer, trap_mid, in.bcPc);
        break;
      case Op::BoundsCheck: {
        const int64_t idx = reg(in.s0());
        if (idx < 0 || idx >= reg(in.s1()))
            throw Trap(TrapKind::ArrayBounds, trap_mid, in.bcPc);
        break;
      }
      case Op::DivCheck:
        if (reg(in.s0()) == 0)
            throw Trap(TrapKind::DivideByZero, trap_mid, in.bcPc);
        break;
      case Op::SizeCheck:
        if (reg(in.s0()) < 0)
            throw Trap(TrapKind::NegativeArraySize, trap_mid, in.bcPc);
        break;
      case Op::TypeCheck:
        if (reg(in.s0()) == 0)
            throw Trap(TrapKind::ClassCast, trap_mid, in.bcPc);
        break;

      case Op::NewObject:
        reg(in.dst) = static_cast<int64_t>(heap.allocObject(in.aux));
        break;
      case Op::NewArray: {
        const int64_t len = reg(in.s0());
        if (len < 0)
            throw Trap(TrapKind::NegativeArraySize, trap_mid, in.bcPc);
        reg(in.dst) = static_cast<int64_t>(heap.allocArray(len));
        break;
      }

      case Op::CallStatic:
      case Op::CallVirtual: {
        AREGION_ASSERT(!checkpoint.has_value(),
                       "call inside atomic region");
        vm::MethodId callee;
        if (in.op == Op::CallStatic) {
            callee = in.aux;
        } else {
            const auto recv = checkRef(reg(in.s0()), trap_mid, in.bcPc);
            const auto cls = static_cast<vm::ClassId>(
                heap.load(recv + layout::HDR_CLASS));
            callee = mod.prog->resolveVirtual(cls, in.aux);
        }
        auto it = mod.funcs.find(callee);
        AREGION_ASSERT(it != mod.funcs.end(),
                       "callee ", callee, " not in module");
        Frame next;
        next.func = &it->second;
        next.regs.assign(
            static_cast<size_t>(next.func->numVregs()), 0);
        AREGION_ASSERT(in.srcs.size() ==
                       static_cast<size_t>(next.func->numArgs),
                       "call arity mismatch into ", next.func->name);
        for (size_t i = 0; i < in.srcs.size(); ++i)
            next.regs[i] = reg(in.srcs[i]);
        next.block = next.func->entry;
        next.retDst = in.dst;
        // Advance the caller past the call before pushing.
        frame.idx++;
        stack.push_back(std::move(next));
        advanced = true;
        break;
      }

      case Op::MonitorEnter: {
        const auto obj = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        const int64_t word = heap.load(obj + layout::HDR_LOCK);
        const int owner = layout::lockOwner(word);
        AREGION_ASSERT(owner == -1 || owner == 0,
                       "single-threaded evaluator found foreign lock");
        const int64_t depth =
            owner == 0 ? layout::lockDepth(word) + 1 : 1;
        store(obj + layout::HDR_LOCK, layout::lockWord(0, depth));
        break;
      }
      case Op::MonitorExit: {
        const auto obj = checkRef(reg(in.s0()), trap_mid, in.bcPc);
        const int64_t word = heap.load(obj + layout::HDR_LOCK);
        AREGION_ASSERT(layout::lockOwner(word) == 0,
                       "monitorexit without monitorenter");
        const int64_t depth = layout::lockDepth(word) - 1;
        store(obj + layout::HDR_LOCK,
              depth == 0 ? 0 : layout::lockWord(0, depth));
        break;
      }

      case Op::Safepoint:
      case Op::Marker:
        break;
      case Op::Print:
        outputStream.push_back(reg(in.s0()));
        break;
      case Op::Spawn:
        AREGION_PANIC("Spawn is not supported by the IR evaluator");

      case Op::AtomicBegin: {
        AREGION_ASSERT(!checkpoint.has_value(), "nested atomic region");
        Checkpoint cp;
        cp.regionId = in.aux;
        cp.regs = frame.regs;
        cp.allocMark = heap.allocMark();
        checkpoint = std::move(cp);
        result.regionEntries++;
        break;
      }
      case Op::AtomicEnd:
        AREGION_ASSERT(checkpoint.has_value(),
                       "aregion_end without aregion_begin");
        ++atomicEnds;
        if (forceAbortPeriod && atomicEnds % forceAbortPeriod == 0) {
            rollbackToAlt();
            advanced = true;
        } else {
            checkpoint.reset();
            result.regionCommits++;
        }
        break;
      case Op::Assert:
        if (in.imm ? reg(in.s0()) == 0 : reg(in.s0()) != 0) {
            result.abortCounts[{mid, in.aux}]++;
            rollbackToAlt();
            advanced = true;
        }
        break;

      case Op::Branch: {
        const int target =
            reg(in.s0()) != 0 ? frame.func->block(frame.block).succs[0]
                              : frame.func->block(frame.block).succs[1];
        jumpTo(target);
        break;
      }
      case Op::Jump:
        jumpTo(frame.func->block(frame.block).succs[0]);
        break;
      case Op::Ret: {
        AREGION_ASSERT(!checkpoint.has_value(),
                       "return inside atomic region");
        std::optional<int64_t> value;
        if (!in.srcs.empty())
            value = reg(in.s0());
        const Vreg ret_dst = frame.retDst;
        stack.pop_back();
        if (!stack.empty() && ret_dst != NO_VREG) {
            AREGION_ASSERT(value.has_value(),
                           "void return into destination");
            reg(ret_dst) = *value;
        }
        advanced = true;
        break;
      }
    }
}

EvalResult
Evaluator::run(uint64_t max_steps)
{
    result = EvalResult{};
    outputStream.clear();
    checkpoint.reset();
    atomicEnds = 0;
    stack.clear();

    auto main_it = mod.funcs.find(mod.prog->mainMethod);
    AREGION_ASSERT(main_it != mod.funcs.end(), "module lacks main");
    Frame frame;
    frame.func = &main_it->second;
    frame.regs.assign(static_cast<size_t>(frame.func->numVregs()), 0);
    frame.block = frame.func->entry;
    stack.push_back(std::move(frame));

    while (!stack.empty() && result.instrs < max_steps) {
        Frame &top = stack.back();
        const Block &blk = top.func->block(top.block);
        AREGION_ASSERT(top.idx < blk.instrs.size(),
                       "fell off block b", top.block, " in ",
                       top.func->name);
        const Instr &in = blk.instrs[top.idx];
        bool advanced = false;
        ++result.instrs;
        try {
            execute(in, advanced);
        } catch (const Trap &trap) {
            if (checkpoint) {
                // Exceptions inside a region abort it; the
                // non-speculative path re-raises precisely.
                rollbackToAlt();
                continue;
            }
            result.trap = trap;
            return result;
        }
        if (!advanced)
            ++stack.back().idx;
    }

    result.completed = stack.empty();
    return result;
}

} // namespace aregion::ir
