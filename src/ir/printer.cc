#include "ir/printer.hh"

#include <sstream>

namespace aregion::ir {

std::string
toString(const Function &func)
{
    std::ostringstream os;
    os << "function " << func.name << " (args=" << func.numArgs
       << ", entry=b" << func.entry << ")\n";
    for (const RegionInfo &r : func.regions) {
        os << "  region " << r.id << ": entry=b" << r.entryBlock
           << " alt=b" << r.altBlock << "\n";
    }
    for (int b = 0; b < func.numBlocks(); ++b) {
        const Block &blk = func.block(b);
        os << "b" << b;
        if (blk.regionId >= 0)
            os << " [region " << blk.regionId << "]";
        os << " (exec=" << blk.execCount << "):\n";
        for (const Instr &in : blk.instrs)
            os << "    " << in.toString() << "\n";
        if (!blk.succs.empty()) {
            os << "    -> ";
            for (size_t i = 0; i < blk.succs.size(); ++i) {
                os << (i ? ", " : "") << "b" << blk.succs[i];
                if (i < blk.succCount.size())
                    os << " (" << blk.succCount[i] << ")";
            }
            os << "\n";
        }
    }
    return os.str();
}

} // namespace aregion::ir
