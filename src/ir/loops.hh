/**
 * @file
 * Natural-loop detection and the loop nesting forest.
 */

#ifndef AREGION_IR_LOOPS_HH
#define AREGION_IR_LOOPS_HH

#include <vector>

#include "ir/dominators.hh"
#include "ir/ir.hh"

namespace aregion::ir {

/** One natural loop (back edges with a shared header are merged). */
struct Loop
{
    int header = -1;
    std::vector<int> blocks;            ///< includes the header
    std::vector<int> backEdgeSources;   ///< latch blocks
    int parent = -1;                    ///< enclosing loop index or -1
    int depth = 1;                      ///< 1 for outermost

    bool contains(int block) const;
};

/** All natural loops of a function. */
class LoopForest
{
  public:
    LoopForest(const Function &func, const DominatorTree &doms);

    const std::vector<Loop> &loops() const { return loopVec; }
    int numLoops() const { return static_cast<int>(loopVec.size()); }

    /** Loop indices ordered innermost-first (paper Algorithm 1
     *  processes loops in post-order). */
    std::vector<int> postOrder() const;

    /** Innermost loop containing the block, or -1. */
    int loopOf(int block) const;

    /** Loop exit edges: (from inside, to outside). */
    std::vector<std::pair<int, int>> exitEdges(const Function &func,
                                               int loop) const;

    /** Predecessors of the header from outside the loop. */
    std::vector<int> entryPreds(const Function &func, int loop) const;

  private:
    std::vector<Loop> loopVec;
    std::vector<int> innermost;     ///< block -> loop index or -1
};

} // namespace aregion::ir

#endif // AREGION_IR_LOOPS_HH
