#include "ir/ssa.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "ir/dominators.hh"
#include "support/bitset.hh"

namespace aregion::ir {

using support::DenseBitset;

namespace {

/** Number of leading Phi instructions in a block. */
size_t
phiCount(const Block &blk)
{
    size_t n = 0;
    while (n < blk.instrs.size() && blk.instrs[n].op == Op::Phi)
        ++n;
    return n;
}

/**
 * Liveness over vregs. Phi semantics: a phi's source for predecessor
 * P is a use at the *end of P* (not a live-in of the phi's block),
 * and a phi's dst is an ordinary def at the head of its block. This
 * is the convention under which SSA interference is exact; for
 * non-SSA functions (no phis) it degenerates to textbook liveness.
 */
struct Liveness
{
    std::vector<DenseBitset> liveIn, liveOut;

    Liveness(const Function &func)
    {
        const int nb = func.numBlocks();
        const size_t nv = static_cast<size_t>(func.numVregs());
        liveIn.assign(static_cast<size_t>(nb), DenseBitset(nv));
        liveOut.assign(static_cast<size_t>(nb), DenseBitset(nv));

        // Upward-exposed uses and defs per block.
        std::vector<DenseBitset> use(static_cast<size_t>(nb),
                                     DenseBitset(nv));
        std::vector<DenseBitset> def(static_cast<size_t>(nb),
                                     DenseBitset(nv));
        // Phi-edge uses: for each pred block, names its outgoing
        // edges feed into successor phis.
        std::vector<DenseBitset> edgeUse(static_cast<size_t>(nb),
                                         DenseBitset(nv));
        for (int b = 0; b < nb; ++b) {
            const Block &blk = func.block(b);
            auto &u = use[static_cast<size_t>(b)];
            auto &d = def[static_cast<size_t>(b)];
            for (const Instr &in : blk.instrs) {
                if (in.op == Op::Phi) {
                    for (size_t i = 0; i < in.srcs.size(); ++i) {
                        edgeUse[static_cast<size_t>(in.phiBlocks[i])]
                            .set(static_cast<size_t>(in.srcs[i]));
                    }
                } else {
                    for (Vreg s : in.srcs) {
                        if (!d.test(static_cast<size_t>(s)))
                            u.set(static_cast<size_t>(s));
                    }
                }
                if (in.dst != NO_VREG)
                    d.set(static_cast<size_t>(in.dst));
            }
        }

        // Backward fixpoint over reverse RPO.
        const auto rpo = func.reversePostOrder();
        bool dirty = true;
        while (dirty) {
            dirty = false;
            for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
                const int b = *it;
                DenseBitset out = edgeUse[static_cast<size_t>(b)];
                for (int s : func.block(b).succs)
                    out.unite(liveIn[static_cast<size_t>(s)]);
                DenseBitset in = out;
                in.subtract(def[static_cast<size_t>(b)]);
                in.unite(use[static_cast<size_t>(b)]);
                if (!(out == liveOut[static_cast<size_t>(b)])) {
                    liveOut[static_cast<size_t>(b)] = std::move(out);
                    dirty = true;
                }
                if (!(in == liveIn[static_cast<size_t>(b)])) {
                    liveIn[static_cast<size_t>(b)] = std::move(in);
                    dirty = true;
                }
            }
        }
    }
};

/** Ensure the entry block has no predecessors: the implicit
 *  function-entry edge cannot host phi inputs, so loops back to the
 *  entry get a fresh pre-entry block. */
void
normalizeEntry(Function &func)
{
    const auto preds = func.computePreds();
    if (preds[static_cast<size_t>(func.entry)].empty())
        return;
    double entryExec = func.block(func.entry).execCount;
    for (int p : preds[static_cast<size_t>(func.entry)]) {
        const Block &pb = func.block(p);
        for (size_t k = 0; k < pb.succs.size(); ++k) {
            if (pb.succs[k] == func.entry && k < pb.succCount.size())
                entryExec -= pb.succCount[k];
        }
    }
    Block &pre = func.newBlock();
    Instr jump;
    jump.op = Op::Jump;
    pre.instrs.push_back(std::move(jump));
    pre.succs = {func.entry};
    pre.execCount = std::max(0.0, entryExec);
    pre.succCount = {pre.execCount};
    func.entry = pre.id;
    func.compact();
}

} // namespace

void
buildSSA(Function &func)
{
    AREGION_ASSERT(!func.ssaForm, "buildSSA on SSA function ",
                   func.name);
    func.compact();
    normalizeEntry(func);

    const int nb = func.numBlocks();
    const int nv0 = func.numVregs();
    const DominatorTree doms(func);
    const auto df = dominanceFrontiers(func, doms);
    const Liveness live(func);

    // Definition sites per original vreg.
    std::vector<std::vector<int>> defBlocks(static_cast<size_t>(nv0));
    for (int b = 0; b < nb; ++b) {
        for (const Instr &in : func.block(b).instrs) {
            if (in.dst != NO_VREG) {
                auto &sites =
                    defBlocks[static_cast<size_t>(in.dst)];
                if (sites.empty() || sites.back() != b)
                    sites.push_back(b);
            }
        }
    }

    // Pruned phi placement: iterated dominance frontier of the def
    // sites, filtered by liveness at the join.
    std::vector<std::vector<Vreg>> phisFor(static_cast<size_t>(nb));
    std::vector<int> placed(static_cast<size_t>(nb), -1);
    std::vector<int> onList(static_cast<size_t>(nb), -1);
    std::vector<int> worklist;
    for (Vreg v = 0; v < nv0; ++v) {
        if (defBlocks[static_cast<size_t>(v)].empty())
            continue;
        worklist = defBlocks[static_cast<size_t>(v)];
        for (int b : worklist)
            onList[static_cast<size_t>(b)] = v;
        while (!worklist.empty()) {
            const int b = worklist.back();
            worklist.pop_back();
            for (int j : df[static_cast<size_t>(b)]) {
                if (placed[static_cast<size_t>(j)] == v)
                    continue;
                if (!live.liveIn[static_cast<size_t>(j)].test(
                        static_cast<size_t>(v))) {
                    continue;
                }
                placed[static_cast<size_t>(j)] = v;
                phisFor[static_cast<size_t>(j)].push_back(v);
                if (onList[static_cast<size_t>(j)] != v) {
                    onList[static_cast<size_t>(j)] = v;
                    worklist.push_back(j);
                }
            }
        }
    }
    for (int b = 0; b < nb; ++b) {
        auto &vars = phisFor[static_cast<size_t>(b)];
        if (vars.empty())
            continue;
        std::sort(vars.begin(), vars.end());
        Block &blk = func.block(b);
        std::vector<Instr> withPhis;
        withPhis.reserve(blk.instrs.size() + vars.size());
        for (Vreg v : vars) {
            Instr phi;
            phi.op = Op::Phi;
            phi.dst = v;        // renamed below
            phi.imm = v;        // original variable, used during
                                // renaming only
            withPhis.push_back(std::move(phi));
        }
        withPhis.insert(withPhis.end(),
                        std::make_move_iterator(blk.instrs.begin()),
                        std::make_move_iterator(blk.instrs.end()));
        blk.instrs = std::move(withPhis);
    }

    // Rename by dominator walk. current[v] carries the live name of
    // original vreg v; the initial value (arg or zero) keeps the
    // original id, every real definition gets a fresh name.
    std::vector<Vreg> current(static_cast<size_t>(nv0));
    std::iota(current.begin(), current.end(), 0);
    std::vector<std::pair<Vreg, Vreg>> undo;    // (orig, previous)

    struct WalkFrame
    {
        int block;
        size_t child = 0;
        size_t undoMark = 0;
        bool entered = false;
    };
    std::vector<WalkFrame> stack;
    stack.push_back({doms.root(), 0, 0, false});
    while (!stack.empty()) {
        WalkFrame &frame = stack.back();
        Block &blk = func.block(frame.block);
        if (!frame.entered) {
            frame.entered = true;
            frame.undoMark = undo.size();
            for (Instr &in : blk.instrs) {
                if (in.op == Op::Phi) {
                    const Vreg orig = static_cast<Vreg>(in.imm);
                    const Vreg fresh = func.newVreg();
                    undo.emplace_back(
                        orig, current[static_cast<size_t>(orig)]);
                    current[static_cast<size_t>(orig)] = fresh;
                    in.dst = fresh;
                    continue;
                }
                for (Vreg &s : in.srcs)
                    s = current[static_cast<size_t>(s)];
                if (in.dst != NO_VREG) {
                    const Vreg orig = in.dst;
                    const Vreg fresh = func.newVreg();
                    undo.emplace_back(
                        orig, current[static_cast<size_t>(orig)]);
                    current[static_cast<size_t>(orig)] = fresh;
                    in.dst = fresh;
                }
            }
            for (int s : blk.succs) {
                Block &succ = func.block(s);
                const size_t phis = phiCount(succ);
                for (size_t i = 0; i < phis; ++i) {
                    Instr &phi = succ.instrs[i];
                    const Vreg orig = static_cast<Vreg>(phi.imm);
                    phi.srcs.push_back(
                        current[static_cast<size_t>(orig)]);
                    phi.phiBlocks.push_back(frame.block);
                }
            }
        }
        const auto &kids = doms.children(frame.block);
        if (frame.child < kids.size()) {
            const int child = kids[frame.child++];
            stack.push_back({child, 0, 0, false});
            continue;
        }
        while (undo.size() > frame.undoMark) {
            current[static_cast<size_t>(undo.back().first)] =
                undo.back().second;
            undo.pop_back();
        }
        stack.pop_back();
    }

    for (int b = 0; b < nb; ++b) {
        for (Instr &in : func.block(b).instrs) {
            if (in.op == Op::Phi)
                in.imm = 0;
        }
    }
    func.ssaForm = true;
}

namespace {

/** Union-find over SSA names with class member lists and the entry
 *  initial-value kind: kNone (has a def), kZero (implicit zero),
 *  or an argument index. Classes with conflicting kinds never
 *  merge. */
struct PhiWebs
{
    static constexpr int kNone = -2;
    static constexpr int kZero = -1;

    std::vector<int> parent;
    std::vector<int> kind;
    std::vector<std::vector<Vreg>> members;

    explicit PhiWebs(int n) : parent(static_cast<size_t>(n))
    {
        std::iota(parent.begin(), parent.end(), 0);
        kind.assign(static_cast<size_t>(n), kNone);
        members.resize(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            members[static_cast<size_t>(i)] = {i};
    }

    int
    find(int x)
    {
        while (parent[static_cast<size_t>(x)] != x) {
            parent[static_cast<size_t>(x)] =
                parent[static_cast<size_t>(
                    parent[static_cast<size_t>(x)])];
            x = parent[static_cast<size_t>(x)];
        }
        return x;
    }

    void
    grow()
    {
        const int id = static_cast<int>(parent.size());
        parent.push_back(id);
        kind.push_back(kNone);
        members.push_back({id});
    }
};

/** destroySSA implementation state. */
struct OutOfSSA
{
    Function &func;
    Liveness live;
    std::vector<int> defBlock, defIndex;    ///< -1 index = at entry
    PhiWebs webs;

    explicit OutOfSSA(Function &f)
        : func(f), live(f), defBlock(), defIndex(),
          webs(f.numVregs())
    {
        const int nv = func.numVregs();
        defBlock.assign(static_cast<size_t>(nv), func.entry);
        defIndex.assign(static_cast<size_t>(nv), -1);
        std::vector<uint8_t> hasDef(static_cast<size_t>(nv), 0);
        for (int b = 0; b < func.numBlocks(); ++b) {
            const Block &blk = func.block(b);
            for (size_t i = 0; i < blk.instrs.size(); ++i) {
                const Vreg d = blk.instrs[i].dst;
                if (d == NO_VREG)
                    continue;
                AREGION_ASSERT(!hasDef[static_cast<size_t>(d)],
                               "multiple defs of v", d, " in SSA ",
                               func.name);
                hasDef[static_cast<size_t>(d)] = 1;
                defBlock[static_cast<size_t>(d)] = b;
                defIndex[static_cast<size_t>(d)] =
                    static_cast<int>(i);
            }
        }
        for (Vreg v = 0; v < nv; ++v) {
            if (hasDef[static_cast<size_t>(v)])
                continue;
            webs.kind[static_cast<size_t>(v)] =
                v < func.numArgs ? v : PhiWebs::kZero;
        }
    }

    bool
    hasDefOf(Vreg v) const
    {
        return defIndex[static_cast<size_t>(v)] >= 0 ||
               defBlock[static_cast<size_t>(v)] != func.entry;
    }

    /** Is `a` live just after position i of block b? Position -1
     *  means the very top of the block (before any instruction). */
    bool
    liveAfter(int b, int i, Vreg a)
    {
        if (hasDefOf(a) && defBlock[static_cast<size_t>(a)] == b) {
            if (defIndex[static_cast<size_t>(a)] > i)
                return false;   // not yet defined at this point
        } else if (!live.liveIn[static_cast<size_t>(b)].test(
                       static_cast<size_t>(a))) {
            return false;       // never live inside this block
        }
        if (live.liveOut[static_cast<size_t>(b)].test(
                static_cast<size_t>(a))) {
            return true;
        }
        const Block &blk = func.block(b);
        for (size_t j = static_cast<size_t>(i + 1);
             j < blk.instrs.size(); ++j) {
            const Instr &in = blk.instrs[j];
            if (in.op == Op::Phi)
                continue;   // phi sources are pred-end uses
            for (Vreg s : in.srcs) {
                if (s == a)
                    return true;
            }
        }
        return false;
    }

    bool
    interferes(Vreg a, Vreg b)
    {
        if (a == b)
            return false;
        if (!hasDefOf(a) && !hasDefOf(b)) {
            // Two entry values; only merged when their initial
            // values coincide (kind check), where they are
            // indistinguishable.
            return false;
        }
        return liveAfter(defBlock[static_cast<size_t>(b)],
                         defIndex[static_cast<size_t>(b)], a) ||
               liveAfter(defBlock[static_cast<size_t>(a)],
                         defIndex[static_cast<size_t>(a)], b);
    }

    bool
    tryUnion(Vreg a, Vreg b)
    {
        const int ra = webs.find(a);
        const int rb = webs.find(b);
        if (ra == rb)
            return true;
        const int ka = webs.kind[static_cast<size_t>(ra)];
        const int kb = webs.kind[static_cast<size_t>(rb)];
        if (ka != PhiWebs::kNone && kb != PhiWebs::kNone && ka != kb)
            return false;
        for (Vreg x : webs.members[static_cast<size_t>(ra)]) {
            for (Vreg y : webs.members[static_cast<size_t>(rb)]) {
                if (interferes(x, y))
                    return false;
            }
        }
        // Merge rb into ra (keep ra stable for determinism).
        webs.parent[static_cast<size_t>(rb)] = ra;
        webs.kind[static_cast<size_t>(ra)] =
            ka != PhiWebs::kNone ? ka : kb;
        auto &ma = webs.members[static_cast<size_t>(ra)];
        auto &mb = webs.members[static_cast<size_t>(rb)];
        ma.insert(ma.end(), mb.begin(), mb.end());
        mb.clear();
        mb.shrink_to_fit();
        return true;
    }
};

/** Fold phis whose (non-self) sources all resolve to one name. */
void
foldTrivialPhis(Function &func)
{
    const int nv = func.numVregs();
    std::vector<Vreg> subst(static_cast<size_t>(nv));
    std::iota(subst.begin(), subst.end(), 0);
    auto resolve = [&](Vreg v) {
        while (subst[static_cast<size_t>(v)] != v)
            v = subst[static_cast<size_t>(v)];
        return v;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 0; b < func.numBlocks(); ++b) {
            Block &blk = func.block(b);
            for (size_t i = phiCount(blk); i-- > 0;) {
                Instr &phi = blk.instrs[i];
                const Vreg d = resolve(phi.dst);
                Vreg unique = NO_VREG;
                bool trivial = true;
                for (Vreg s : phi.srcs) {
                    const Vreg r = resolve(s);
                    if (r == d)
                        continue;
                    if (unique == NO_VREG) {
                        unique = r;
                    } else if (unique != r) {
                        trivial = false;
                        break;
                    }
                }
                if (!trivial || unique == NO_VREG)
                    continue;
                subst[static_cast<size_t>(d)] = unique;
                blk.instrs.erase(blk.instrs.begin() +
                                 static_cast<long>(i));
                changed = true;
            }
        }
    }

    for (int b = 0; b < func.numBlocks(); ++b) {
        for (Instr &in : func.block(b).instrs) {
            for (Vreg &s : in.srcs)
                s = resolve(s);
        }
    }
}

/** Convert same-target Branches to Jumps so that every (pred, succ)
 *  edge is unique before copy placement, dropping the duplicate phi
 *  slot in the target. */
void
collapseDuplicateEdges(Function &func)
{
    for (int b = 0; b < func.numBlocks(); ++b) {
        Block &blk = func.block(b);
        if (blk.instrs.empty())
            continue;
        Instr &term = blk.terminator();
        if (term.op != Op::Branch || blk.succs.size() != 2 ||
            blk.succs[0] != blk.succs[1]) {
            continue;
        }
        const int target = blk.succs[0];
        term.op = Op::Jump;
        term.srcs.clear();
        blk.succs = {target};
        blk.succCount = {blk.execCount};
        Block &succ = func.block(target);
        const size_t phis = phiCount(succ);
        for (size_t i = 0; i < phis; ++i) {
            Instr &phi = succ.instrs[i];
            for (size_t k = 0; k < phi.phiBlocks.size(); ++k) {
                if (phi.phiBlocks[k] == b) {
                    phi.srcs.erase(phi.srcs.begin() +
                                   static_cast<long>(k));
                    phi.phiBlocks.erase(phi.phiBlocks.begin() +
                                        static_cast<long>(k));
                    break;      // drop exactly one duplicate slot
                }
            }
        }
    }
}

/** One pending phi copy: class(dstName) := class(srcName) on the
 *  edge pred -> target. */
struct EdgeCopy
{
    Vreg dst;
    Vreg src;
};

/** Sequentialize one edge's parallel copy in class space; emits Mov
 *  instructions (cycles broken with a fresh temp). */
std::vector<Instr>
sequentializeCopies(std::vector<EdgeCopy> copies, OutOfSSA &state)
{
    std::vector<Instr> out;
    auto emit = [&](Vreg dst, Vreg src) {
        Instr mov;
        mov.op = Op::Mov;
        mov.dst = dst;
        mov.srcs = {src};
        out.push_back(std::move(mov));
    };
    while (!copies.empty()) {
        bool progressed = false;
        for (size_t i = 0; i < copies.size(); ++i) {
            const int dstClass = state.webs.find(copies[i].dst);
            bool blocked = false;
            for (size_t j = 0; j < copies.size(); ++j) {
                if (j != i &&
                    state.webs.find(copies[j].src) == dstClass) {
                    blocked = true;
                    break;
                }
            }
            if (!blocked) {
                emit(copies[i].dst, copies[i].src);
                copies.erase(copies.begin() +
                             static_cast<long>(i));
                progressed = true;
                break;
            }
        }
        if (progressed)
            continue;
        // Cycle: rotate through a fresh temporary.
        const Vreg temp = state.func.newVreg();
        state.webs.grow();
        emit(temp, copies.front().src);
        copies.front().src = temp;
    }
    return out;
}

} // namespace

void
destroySSA(Function &func)
{
    AREGION_ASSERT(func.ssaForm, "destroySSA on non-SSA function ",
                   func.name);
    func.compact();
    foldTrivialPhis(func);
    collapseDuplicateEdges(func);

    OutOfSSA state(func);
    const auto preds = func.computePreds();

    // Coalesce phi webs: deterministic RPO order.
    const auto rpo = func.reversePostOrder();
    for (int b : rpo) {
        Block &blk = func.block(b);
        const size_t phis = phiCount(blk);
        for (size_t i = 0; i < phis; ++i) {
            const Instr &phi = blk.instrs[i];
            for (Vreg s : phi.srcs)
                state.tryUnion(phi.dst, s);
        }
    }

    // Pseudo abort edges (region entry -> alt) cannot be split and
    // cannot host copies after AtomicBegin (rollback would undo
    // them).
    std::map<std::pair<int, int>, int> abortEdge;
    for (const RegionInfo &r : func.regions)
        abortEdge[{r.entryBlock, r.altBlock}] = r.id;

    // Collect unresolved copies per edge, in RPO target order.
    std::map<std::pair<int, int>, std::vector<EdgeCopy>> edgeCopies;
    for (int t : rpo) {
        Block &blk = func.block(t);
        const size_t phis = phiCount(blk);
        for (size_t i = 0; i < phis; ++i) {
            const Instr &phi = blk.instrs[i];
            for (size_t k = 0; k < phi.srcs.size(); ++k) {
                if (state.webs.find(phi.dst) ==
                    state.webs.find(phi.srcs[k])) {
                    continue;
                }
                edgeCopies[{phi.phiBlocks[k], t}].push_back(
                    {phi.dst, phi.srcs[k]});
            }
        }
    }

    for (auto &[edge, copies] : edgeCopies) {
        const auto [p, t] = edge;
        Block &pred = func.block(p);
        std::vector<Instr> movs =
            sequentializeCopies(copies, state);
        if (pred.succs.size() == 1) {
            // Host at the end of the predecessor.
            pred.instrs.insert(pred.instrs.end() - 1,
                               std::make_move_iterator(movs.begin()),
                               std::make_move_iterator(movs.end()));
        } else if (preds[static_cast<size_t>(t)].size() == 1) {
            // Host at the head of the target (after its phis). For
            // a single-pred alt block this is also the rollback-
            // correct spot: the copies execute after the register
            // restore and read checkpoint values, which equal the
            // region entry's values because the entry block defines
            // nothing after its phis.
            Block &target = func.block(t);
            const auto at = target.instrs.begin() +
                            static_cast<long>(phiCount(target));
            target.instrs.insert(
                at, std::make_move_iterator(movs.begin()),
                std::make_move_iterator(movs.end()));
        } else if (abortEdge.count({p, t})) {
            // Unsplittable rollback edge into a multi-pred alt
            // block: place the copies before AtomicBegin so the
            // checkpoint captures them. Writing those classes there
            // must not clobber a value some other path still needs.
            const size_t insertAt = phiCount(pred);
            AREGION_ASSERT(insertAt < pred.instrs.size() &&
                               pred.instrs[insertAt].op ==
                                   Op::AtomicBegin,
                           "abort edge source is not a region entry");
            const int liveNames =
                static_cast<int>(state.defBlock.size());
            for (const Instr &mov : movs) {
                const int cls = state.webs.find(mov.dst);
                for (Vreg m :
                     state.webs.members[static_cast<size_t>(cls)]) {
                    if (m >= liveNames)
                        continue;   // cycle temp: born in this copy
                    AREGION_ASSERT(
                        m == mov.s0() ||
                            !state.liveAfter(
                                p, static_cast<int>(insertAt) - 1,
                                m),
                        "phi copy on abort edge clobbers live value v",
                        m, " in ", func.name);
                }
            }
            pred.instrs.insert(pred.instrs.begin() +
                                   static_cast<long>(insertAt),
                               std::make_move_iterator(movs.begin()),
                               std::make_move_iterator(movs.end()));
        } else {
            // Critical edge: split.
            Block &split = func.newBlock();
            const int splitId = split.id;
            Instr jump;
            jump.op = Op::Jump;
            split.instrs = std::move(movs);
            split.instrs.push_back(std::move(jump));
            split.succs = {t};
            Block &p2 = func.block(p);   // newBlock invalidated refs
            split.regionId =
                p2.regionId == func.block(t).regionId ? p2.regionId
                                                      : -1;
            double edgeCount = 0;
            for (size_t k = 0; k < p2.succs.size(); ++k) {
                if (p2.succs[k] == t) {
                    if (k < p2.succCount.size())
                        edgeCount = p2.succCount[k];
                    p2.succs[k] = splitId;
                }
            }
            split.execCount = edgeCount;
            split.succCount = {edgeCount};
        }
    }

    // Drop the phis.
    for (int b = 0; b < func.numBlocks(); ++b) {
        Block &blk = func.block(b);
        const size_t phis = phiCount(blk);
        if (phis)
            blk.instrs.erase(blk.instrs.begin(),
                             blk.instrs.begin() +
                                 static_cast<long>(phis));
    }

    // Dense renumbering: argument classes keep their slots, every
    // other class gets the next id in order of first appearance.
    const int total = func.numVregs();
    std::vector<Vreg> classReg(static_cast<size_t>(total), NO_VREG);
    for (Vreg v = 0; v < total; ++v) {
        const int r = state.webs.find(v);
        const int k = state.webs.kind[static_cast<size_t>(r)];
        if (k >= 0)
            classReg[static_cast<size_t>(r)] = k;
    }
    Vreg next = func.numArgs;
    auto assign = [&](Vreg v) -> Vreg {
        const int r = state.webs.find(v);
        if (classReg[static_cast<size_t>(r)] == NO_VREG)
            classReg[static_cast<size_t>(r)] = next++;
        return classReg[static_cast<size_t>(r)];
    };
    for (int b : func.reversePostOrder()) {
        for (Instr &in : func.block(b).instrs) {
            for (Vreg &s : in.srcs)
                s = assign(s);
            if (in.dst != NO_VREG)
                in.dst = assign(in.dst);
        }
    }
    func.resetVregCount(next);

    // A pre-entry block that only jumps is no longer needed once
    // phis are gone.
    {
        const Block &entry = func.block(func.entry);
        if (entry.instrs.size() == 1 &&
            entry.instrs[0].op == Op::Jump &&
            entry.succs.size() == 1 && entry.succs[0] != func.entry) {
            func.entry = entry.succs[0];
        }
    }
    func.ssaForm = false;
    func.compact();
}

} // namespace aregion::ir
