/**
 * @file
 * Human-readable IR dumps for debugging and examples.
 */

#ifndef AREGION_IR_PRINTER_HH
#define AREGION_IR_PRINTER_HH

#include <string>

#include "ir/ir.hh"

namespace aregion::ir {

/** Render a function: blocks in id order with succ/profile info. */
std::string toString(const Function &func);

} // namespace aregion::ir

#endif // AREGION_IR_PRINTER_HH
