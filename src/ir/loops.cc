#include "ir/loops.hh"

#include <algorithm>
#include <map>
#include <set>

namespace aregion::ir {

bool
Loop::contains(int block) const
{
    return std::find(blocks.begin(), blocks.end(), block) != blocks.end();
}

LoopForest::LoopForest(const Function &func, const DominatorTree &doms)
{
    const auto preds = func.computePreds();

    // Collect back edges grouped by header.
    std::map<int, std::vector<int>> latches;    // header -> sources
    for (int b = 0; b < func.numBlocks(); ++b) {
        if (!doms.reachable(b))
            continue;
        for (int s : func.block(b).succs) {
            if (doms.dominates(s, b))
                latches[s].push_back(b);
        }
    }

    // Natural loop body: header plus reverse-reachable set from the
    // latches that does not pass through the header.
    for (const auto &[header, sources] : latches) {
        Loop loop;
        loop.header = header;
        loop.backEdgeSources = sources;
        std::set<int> body{header};
        std::vector<int> work(sources.begin(), sources.end());
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            if (body.count(b))
                continue;
            body.insert(b);
            for (int p : preds[static_cast<size_t>(b)]) {
                if (doms.reachable(p))
                    work.push_back(p);
            }
        }
        loop.blocks.assign(body.begin(), body.end());
        loopVec.push_back(std::move(loop));
    }

    // Nesting: parent = smallest strictly-larger loop containing the
    // header. Sorting by body size makes parent search simple.
    std::vector<int> order(loopVec.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return loopVec[static_cast<size_t>(a)].blocks.size() <
               loopVec[static_cast<size_t>(b)].blocks.size();
    });
    for (size_t i = 0; i < order.size(); ++i) {
        Loop &inner = loopVec[static_cast<size_t>(order[i])];
        for (size_t j = i + 1; j < order.size(); ++j) {
            Loop &outer = loopVec[static_cast<size_t>(order[j])];
            if (outer.header != inner.header &&
                outer.contains(inner.header)) {
                inner.parent = order[j];
                break;
            }
        }
    }
    for (Loop &loop : loopVec) {
        int depth = 1;
        for (int p = loop.parent; p != -1;
             p = loopVec[static_cast<size_t>(p)].parent) {
            ++depth;
        }
        loop.depth = depth;
    }

    // Innermost loop per block: deepest loop containing it.
    innermost.assign(static_cast<size_t>(func.numBlocks()), -1);
    for (size_t li = 0; li < loopVec.size(); ++li) {
        for (int b : loopVec[li].blocks) {
            const int cur = innermost[static_cast<size_t>(b)];
            if (cur == -1 ||
                loopVec[static_cast<size_t>(cur)].depth <
                loopVec[li].depth) {
                innermost[static_cast<size_t>(b)] =
                    static_cast<int>(li);
            }
        }
    }
}

std::vector<int>
LoopForest::postOrder() const
{
    // Innermost-first: sort by depth descending (stable on index).
    std::vector<int> order(loopVec.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return loopVec[static_cast<size_t>(a)].depth >
               loopVec[static_cast<size_t>(b)].depth;
    });
    return order;
}

int
LoopForest::loopOf(int block) const
{
    return innermost[static_cast<size_t>(block)];
}

std::vector<std::pair<int, int>>
LoopForest::exitEdges(const Function &func, int loop) const
{
    std::vector<std::pair<int, int>> exits;
    const Loop &l = loopVec[static_cast<size_t>(loop)];
    for (int b : l.blocks) {
        for (int s : func.block(b).succs) {
            if (!l.contains(s))
                exits.emplace_back(b, s);
        }
    }
    return exits;
}

std::vector<int>
LoopForest::entryPreds(const Function &func, int loop) const
{
    std::vector<int> result;
    const Loop &l = loopVec[static_cast<size_t>(loop)];
    const auto preds = func.computePreds();
    for (int p : preds[static_cast<size_t>(l.header)]) {
        if (!l.contains(p))
            result.push_back(p);
    }
    return result;
}

} // namespace aregion::ir
