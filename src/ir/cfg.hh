/**
 * @file
 * CFG surgery helpers shared by optimization passes and region
 * formation: unreachable-block compaction and subgraph cloning.
 */

#ifndef AREGION_IR_CFG_HH
#define AREGION_IR_CFG_HH

#include <map>
#include <set>
#include <vector>

#include "ir/ir.hh"

namespace aregion::ir {

/**
 * Remove unreachable blocks and renumber the survivors in RPO.
 * Region metadata is remapped; regions whose entry became
 * unreachable are dropped. Returns old-id -> new-id (-1 if removed).
 */
std::vector<int> compactBlocks(Function &func);

/**
 * Clone a set of blocks. Edges between cloned blocks are redirected
 * to the clones; edges leaving the set keep their original targets.
 * Instructions are copied verbatim (same vregs: sound in the non-SSA
 * IR as long as the caller wires control flow consistently).
 * Returns old-id -> clone-id.
 */
std::map<int, int> cloneBlocks(Function &func,
                               const std::set<int> &block_set);

/** Redirect every edge from `from` that targets `old_to` to `new_to`
 *  (succCount entries follow). */
void redirectEdges(Function &func, int from, int old_to, int new_to);

} // namespace aregion::ir

#endif // AREGION_IR_CFG_HH
