/**
 * @file
 * The compiler's intermediate representation.
 *
 * A Function is a control-flow graph of Blocks; each Block holds a
 * straight-line sequence of Instrs ending in a terminator. Virtual
 * registers (Vreg) are unbounded. Translation emits conventional
 * (non-SSA) code; ir::buildSSA (ssa.hh) rewrites a function into SSA
 * form — unique defs, dominance of uses, Phi at joins — which the
 * sparse optimization passes (SCCP, GVN, SSA-DCE) require, and
 * ir::destroySSA lowers out of SSA before region formation and
 * machine-code emission. Function::ssaForm tracks which convention a
 * function is currently in.
 *
 * Atomic regions (the paper's contribution) are represented the way
 * the paper recommends: like try/catch. A region's entry block starts
 * with AtomicBegin whose `aux` names a RegionInfo carrying the
 * alternate (non-speculative) target; Assert instructions conditionally
 * abort to that target with all region side effects undone.
 */

#ifndef AREGION_IR_IR_HH
#define AREGION_IR_IR_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "vm/program.hh"

namespace aregion::ir {

/** Virtual register id; unbounded. */
using Vreg = int;
constexpr Vreg NO_VREG = -1;

/** IR opcodes. */
enum class Op {
    // Pure value producers.
    Const,          ///< dst = imm
    Mov,            ///< dst = s0
    Phi,            ///< dst = phi(srcs); srcs[i] flows in from block
                    ///< phiBlocks[i]. SSA only; never reaches codegen.
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, ///< dst = s0 op s1
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,        ///< dst = s0 op s1

    // Memory.
    LoadField,      ///< dst = s0.field[aux]
    StoreField,     ///< s0.field[aux] = s1
    LoadElem,       ///< dst = s0[s1]
    StoreElem,      ///< s0[s1] = s2
    LoadRaw,        ///< dst = mem[s0 + imm] (header/len/lock words)
    StoreRaw,       ///< mem[s0 + imm] = s1
    LoadSubtype,    ///< dst = subtype-matrix[s0 = class id][aux = class]

    // Safety checks: no result; trap (or abort, inside a region) on
    // failure. Redundant checks are removed by ordinary CSE.
    NullCheck,      ///< s0 != null
    BoundsCheck,    ///< 0 <= s0 < s1 (s1 = length)
    DivCheck,       ///< s0 != 0 (divisor)
    SizeCheck,      ///< s0 >= 0 (array allocation size)
    TypeCheck,      ///< s0 (a 0/1 subtype flag) != 0; ClassCast on fail

    // Allocation.
    NewObject,      ///< dst = new instance of class aux
    NewArray,       ///< dst = new array of length s0

    // Calls. `aux` is the callee MethodId (CallStatic) or the vtable
    // slot (CallVirtual, receiver = s0). dst may be NO_VREG.
    CallStatic,
    CallVirtual,

    // Monitors (receiver = s0).
    MonitorEnter,
    MonitorExit,

    // Misc runtime.
    Safepoint,      ///< GC/yield poll
    Print,          ///< emit s0 to the observable output
    Marker,         ///< sampling marker, id = imm
    Spawn,          ///< start thread running method aux(args = srcs)

    // Atomic region primitives (Section 3.2 of the paper).
    AtomicBegin,    ///< aux = region id; must start its block
    AtomicEnd,      ///< aux = region id; commits the region
    Assert,         ///< abort region if s0 != 0 (imm = 0) or if
                    ///< s0 == 0 (imm = 1); aux = abort id

    // Terminators.
    Branch,         ///< if s0 != 0 goto succs[0] else succs[1]
    Jump,           ///< goto succs[0]
    Ret,            ///< return s0 (srcs empty for void return)
};

const char *opName(Op op);

/** True for Branch/Jump/Ret. */
bool isTerminator(Op op);

/** True if the op only reads its sources and writes dst (no memory,
 *  no control, no runtime effect): candidate for CSE and DCE. */
bool isPureValue(Op op);

/** True for the safety-check ops. */
bool isCheck(Op op);

/** True if the op reads mutable memory (loads). */
bool isLoad(Op op);

/** True if the op may write memory or have another side effect that
 *  keeps it alive regardless of dst liveness. */
bool hasSideEffect(Op op);

struct Block;

/** Index of the block's first instruction that is not a Phi, Mov, or
 *  Const. A region entry block is [phis*, copies*, AtomicBegin,
 *  Jump]: phis are pre-checkpoint parallel copies and out-of-SSA
 *  lowering materialises them as Mov/Const runs, all of which execute
 *  before the checkpoint is taken. */
size_t firstEffectiveInstr(const Block &blk);

/** True if the block opens an atomic region (AtomicBegin at its first
 *  effective instruction). */
bool isRegionEntryBlock(const Block &blk);

/** One IR instruction. */
struct Instr
{
    Op op;
    Vreg dst = NO_VREG;
    std::vector<Vreg> srcs;
    int64_t imm = 0;        ///< constant / raw offset / marker id
    int aux = 0;            ///< field idx, class id, callee, slot,
                            ///< region id, or abort id (by op)
    int bcPc = -1;          ///< originating bytecode pc (diagnostics)
    int bcMethod = -1;      ///< originating method (profile lookups
                            ///< survive inlining and cloning)

    /** Phi only: incoming block id per source, parallel to srcs.
     *  Self-describing (not tied to predecessor-list order) so CFG
     *  edits can update arity checks robustly. */
    std::vector<int> phiBlocks;

    Vreg s0() const { return srcs.at(0); }
    Vreg s1() const { return srcs.at(1); }
    Vreg s2() const { return srcs.at(2); }

    std::string toString() const;
};

/** A basic block. */
struct Block
{
    int id = -1;
    std::vector<Instr> instrs;

    /** Successor block ids; Branch: [taken, fallthrough]. */
    std::vector<int> succs;

    /** Profile: executions of this block (scaled after inlining). */
    double execCount = 0;

    /** Profile: executions per successor edge (parallel to succs). */
    std::vector<double> succCount;

    /** Atomic region this block belongs to, or -1. */
    int regionId = -1;

    const Instr &terminator() const
    {
        AREGION_ASSERT(!instrs.empty(), "empty block ", id);
        return instrs.back();
    }

    Instr &terminator()
    {
        AREGION_ASSERT(!instrs.empty(), "empty block ", id);
        return instrs.back();
    }
};

/** Metadata for one atomic region within a function. */
struct RegionInfo
{
    int id = -1;
    int entryBlock = -1;    ///< block starting with AtomicBegin
    int altBlock = -1;      ///< non-speculative re-entry point
    /** Map from abort id to the (method, pc) of the converted cold
     *  branch (for adaptive recompilation diagnostics). */
    std::map<int, std::pair<int, int>> abortOrigins;
};

/** A function under compilation. */
class Function
{
  public:
    std::string name;
    vm::MethodId methodId = vm::NO_METHOD;
    int numArgs = 0;        ///< args live in vregs [0, numArgs)
    int entry = 0;

    /** True while the function is in SSA form: every vreg has a
     *  unique def that dominates all its uses, joins carry Phi
     *  instructions, and the verifier enforces the invariant.
     *  Cleared by opt::destroySSA before machine-code emission. */
    bool ssaForm = false;

    std::vector<RegionInfo> regions;

    Block &newBlock();
    Block &block(int id);
    const Block &block(int id) const;
    int numBlocks() const { return static_cast<int>(blocksVec.size()); }

    Vreg newVreg() { return nextVreg++; }
    int numVregs() const { return nextVreg; }
    void ensureVregsAtLeast(int n) { nextVreg = std::max(nextVreg, n); }

    /** Reset the vreg count after a dense renumbering (destroySSA);
     *  the caller guarantees no instruction names a vreg >= n. */
    void resetVregCount(int n) { nextVreg = n; }

    /** Predecessor lists (recomputed; invalidated by CFG edits). */
    std::vector<std::vector<int>> computePreds() const;

    /** Reverse post-order over reachable blocks from entry. */
    std::vector<int> reversePostOrder() const;

    /** Sum of instruction counts over reachable blocks. */
    int countInstrs() const;

    /**
     * Drop unreachable blocks and renumber survivors in RPO order,
     * remapping successor lists and region metadata (regions whose
     * entry died are dropped). Returns old-id -> new-id (-1 if gone).
     */
    std::vector<int> compact();

  private:
    std::vector<std::unique_ptr<Block>> blocksVec;
    Vreg nextVreg = 0;
};

/** A whole program in IR form (one Function per compiled method). */
struct Module
{
    const vm::Program *prog = nullptr;
    std::map<vm::MethodId, Function> funcs;
};

} // namespace aregion::ir

#endif // AREGION_IR_IR_HH
