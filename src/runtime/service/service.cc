#include "runtime/service/service.hh"

#include <algorithm>
#include <chrono>

#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::runtime::service {

namespace {

/** Salt mixed into the content address of blacklisted compiles so a
 *  tenant's forced non-speculative build never aliases the shared
 *  speculative entry other tenants keep hitting. */
constexpr uint64_t kNonSpecSalt = 0x6e6f6e2d73706563ULL; // "non-spec"

} // namespace

const char *
statusName(CompileStatus status)
{
    switch (status) {
      case CompileStatus::CacheHit: return "cache_hit";
      case CompileStatus::Compiled: return "compiled";
      case CompileStatus::Coalesced: return "coalesced";
      case CompileStatus::CompiledNonSpec: return "compiled_nonspec";
      case CompileStatus::RejectedQueueFull: return "rejected_queue_full";
      case CompileStatus::RejectedBackoff: return "rejected_backoff";
      case CompileStatus::RejectedQuota: return "rejected_quota";
      case CompileStatus::Shutdown: return "shutdown";
    }
    return "?";
}

CompileService::CompileService(const ServiceConfig &cfg)
    : config(cfg), codeCache(cfg.cacheBytes),
      admissionCtl(cfg.admission)
{
    const int nshards = cfg.shards > 0 ? cfg.shards : 1;
    int per_shard = cfg.workersPerShard > 0 ? cfg.workersPerShard : 1;
    // Clamp the pool the same way parallel::runGrid does: never more
    // threads than the configured job budget allows, but always at
    // least one worker per shard so no queue can deadlock.
    const size_t budget = parallel::configuredJobs();
    while (per_shard > 1 &&
           static_cast<size_t>(nshards) * per_shard > budget) {
        per_shard--;
    }
    shards.reserve(static_cast<size_t>(nshards));
    for (int s = 0; s < nshards; ++s)
        shards.push_back(std::make_unique<Shard>());
    for (auto &shard : shards) {
        Shard *sp = shard.get();
        for (int w = 0; w < per_shard; ++w) {
            shard->workers.emplace_back(
                [this, sp] { workerLoop(*sp); });
        }
    }
    totalWorkers = nshards * per_shard;
}

CompileService::~CompileService() { stop(); }

uint64_t
CompileService::keyFor(const CompileRequest &request)
{
    AREGION_ASSERT(request.program && request.profile,
                   "CompileRequest needs program + profile");
    return cacheKey(*request.program, *request.profile,
                    request.config);
}

uint64_t
CompileService::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::future<CompileResponse>
CompileService::submit(CompileRequest request)
{
    const uint64_t submit_ns = nowNs();
    const uint64_t base_key = keyFor(request);
    const bool speculative =
        admissionCtl.speculationAllowed(request.tenant, base_key);
    const uint64_t key =
        speculative ? base_key : base_key ^ kNonSpecSalt;

    std::promise<CompileResponse> reject_promise;
    std::future<CompileResponse> reject_future;

    size_t pending = 0;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        requestCount++;
        tenantStats[request.tenant].requests++;
        pending = pendingByTenant[request.tenant];
    }

    auto reject = [&](CompileStatus status) {
        {
            std::lock_guard<std::mutex> lock(stateMu);
            tenantStats[request.tenant].rejected++;
        }
        reject_future = reject_promise.get_future();
        CompileResponse resp;
        resp.status = status;
        resp.key = key;
        resp.shard = shardOf(key);
        resp.latencyUs = (nowNs() - submit_ns) / 1000;
        reject_promise.set_value(resp);
        return std::move(reject_future);
    };

    // Admission gate 1 + 2: tenant pending cap and storm cooldown.
    // The *base* key is the admission identity — blacklisting must
    // follow the method, not the salted cache slot.
    switch (admissionCtl.admit(request.tenant, base_key, pending,
                               request.recompile)) {
      case Admit::RejectQueueFull:
        return reject(CompileStatus::RejectedQueueFull);
      case Admit::RejectBackoff:
        return reject(CompileStatus::RejectedBackoff);
      case Admit::RejectQuota:
        return reject(CompileStatus::RejectedQuota);
      case Admit::Accept:
        break;
    }

    if (request.recompile)
        codeCache.invalidate(key);

    Shard &shard = *shards[static_cast<size_t>(shardOf(key))];
    std::unique_lock<std::mutex> lock(shard.mu);

    Waiter waiter;
    waiter.tenant = request.tenant;
    waiter.submitNs = submit_ns;
    auto future = waiter.promise.get_future();

    if (auto it = shard.inFlight.find(key);
        it != shard.inFlight.end()) {
        // Identical job already queued or compiling: coalesce.
        it->second->waiters.push_back(std::move(waiter));
        lock.unlock();
        std::lock_guard<std::mutex> state(stateMu);
        coalescedCount++;
        pendingByTenant[request.tenant]++;
        return future;
    }

    // The cache probe happens under the shard lock so a key is
    // always visible in (cache union inFlight) once first enqueued
    // — compileJob inserts into the cache before dropping the job
    // from inFlight. That invariant is what makes compiles-per-key
    // deterministic (exactly one) under any request interleaving.
    // The cache mutex is a leaf: never held while taking shard.mu.
    if (auto code = codeCache.lookup(key)) {
        lock.unlock();
        {
            std::lock_guard<std::mutex> state(stateMu);
            tenantStats[request.tenant].hits++;
        }
        CompileResponse resp;
        resp.status = CompileStatus::CacheHit;
        resp.code = code;
        resp.key = key;
        resp.shard = shardOf(key);
        resp.latencyUs = (nowNs() - submit_ns) / 1000;
        {
            std::lock_guard<std::mutex> hist(histMu);
            requestUsHist.add(
                static_cast<int64_t>(resp.latencyUs));
        }
        waiter.promise.set_value(resp);
        return future;
    }

    if (shard.queue.size() >= config.shardQueueDepth) {
        lock.unlock();
        admissionCtl.noteQueueFull();
        return reject(CompileStatus::RejectedQueueFull);
    }

    waiter.originator = true;
    auto job = std::make_unique<Job>();
    job->request = std::move(request);
    job->key = key;
    job->forceNonSpec = !speculative;
    const int tenant = job->request.tenant;
    job->waiters.push_back(std::move(waiter));
    shard.inFlight[key] = job.get();
    shard.queue.push_back(std::move(job));
    shard.maxDepth = std::max<uint64_t>(shard.maxDepth,
                                        shard.queue.size());
    const auto depth = static_cast<int64_t>(shard.queue.size());
    lock.unlock();
    shard.cv.notify_one();
    {
        std::lock_guard<std::mutex> state(stateMu);
        pendingByTenant[tenant]++;
    }
    {
        std::lock_guard<std::mutex> hist(histMu);
        queueDepthHist.add(depth);
    }
    return future;
}

CompileResponse
CompileService::submitSync(CompileRequest request)
{
    return submit(std::move(request)).get();
}

void
CompileService::reportExecution(int tenant, uint64_t key,
                                const hw::MachineResult &result)
{
    admissionCtl.reportExecution(tenant, key, result);
}

void
CompileService::workerLoop(Shard &shard)
{
    for (;;) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(shard.mu);
            shard.cv.wait(lock, [&] {
                return stopping.load() ||
                       (!paused.load() && !shard.queue.empty());
            });
            if (stopping.load())
                return;
            job = std::move(shard.queue.front());
            shard.queue.pop_front();
        }
        compileJob(shard, std::move(job));
    }
}

void
CompileService::compileJob(Shard &shard, std::unique_ptr<Job> job)
{
    const CompileRequest &rq = job->request;
    core::CompilerConfig eff = rq.config;
    if (job->forceNonSpec) {
        eff.atomicRegions = false;
        eff.name += "+nonspec";
    }

    const uint64_t t0 = nowNs();
    auto code = std::make_shared<CachedCode>();
    code->key = job->key;
    code->program = rq.program;
    code->compiled =
        core::compileProgram(*rq.program, *rq.profile, eff);
    code->codeChecksum = codeChecksum(code->compiled);
    code->sizeBytes = estimateCodeBytes(code->compiled);
    code->nonSpeculative = job->forceNonSpec;
    const uint64_t compile_us = (nowNs() - t0) / 1000;
    admissionCtl.noteCompileTime(rq.tenant, compile_us);

    codeCache.insert(code);

    std::vector<Waiter> waiters;
    {
        // After this block no submit() can attach to the job: the
        // cache holds the key, and inFlight no longer does.
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.compiles++;
        shard.inFlight.erase(job->key);
        waiters = std::move(job->waiters);
    }
    {
        std::lock_guard<std::mutex> state(stateMu);
        compileCount++;
        if (job->forceNonSpec)
            compileNonSpecCount++;
    }
    {
        std::lock_guard<std::mutex> hist(histMu);
        compileUsHist.add(static_cast<int64_t>(compile_us));
    }
    const CompileStatus status = job->forceNonSpec
                                     ? CompileStatus::CompiledNonSpec
                                     : CompileStatus::Compiled;
    completeWaiters(std::move(waiters), status, code, job->key,
                    shardOf(job->key));
}

void
CompileService::completeWaiters(
    std::vector<Waiter> &&waiters, CompileStatus originator_status,
    const std::shared_ptr<const CachedCode> &code, uint64_t key,
    int shard_id)
{
    const uint64_t now = nowNs();
    for (Waiter &w : waiters) {
        CompileResponse resp;
        resp.status = w.originator ? originator_status
                                   : CompileStatus::Coalesced;
        resp.code = code;
        resp.key = key;
        resp.shard = shard_id;
        resp.latencyUs = (now - w.submitNs) / 1000;
        {
            std::lock_guard<std::mutex> state(stateMu);
            auto it = pendingByTenant.find(w.tenant);
            if (it != pendingByTenant.end() && it->second > 0)
                it->second--;
        }
        if (code) {
            std::lock_guard<std::mutex> hist(histMu);
            requestUsHist.add(static_cast<int64_t>(resp.latencyUs));
        }
        w.promise.set_value(resp);
    }
}

void
CompileService::stop()
{
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) {
        return;
    }
    for (auto &shard : shards)
        shard->cv.notify_all();
    for (auto &shard : shards) {
        for (std::thread &t : shard->workers) {
            if (t.joinable())
                t.join();
        }
    }
    // Complete whatever never ran.
    for (auto &shard : shards) {
        std::deque<std::unique_ptr<Job>> leftovers;
        {
            std::lock_guard<std::mutex> lock(shard->mu);
            leftovers.swap(shard->queue);
            shard->inFlight.clear();
        }
        for (auto &job : leftovers) {
            completeWaiters(std::move(job->waiters),
                            CompileStatus::Shutdown, nullptr,
                            job->key, shardOf(job->key));
        }
    }
}

void
CompileService::pauseWorkers()
{
    paused.store(true);
}

void
CompileService::resumeWorkers()
{
    paused.store(false);
    for (auto &shard : shards)
        shard->cv.notify_all();
}

ServiceStats
CompileService::stats() const
{
    ServiceStats out;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        ServiceStats::Shard s;
        s.compiles = shard->compiles;
        s.maxDepth = shard->maxDepth;
        out.shards.push_back(s);
    }
    std::lock_guard<std::mutex> lock(stateMu);
    out.tenants = tenantStats;
    out.requests = requestCount;
    out.compiles = compileCount;
    out.compilesNonSpec = compileNonSpecCount;
    out.coalesced = coalescedCount;
    return out;
}

void
CompileService::publishTelemetry()
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    codeCache.publishTelemetry();
    admissionCtl.publishTelemetry();
    {
        std::lock_guard<std::mutex> lock(stateMu);
        auto delta = [&](const char *key, uint64_t total,
                         uint64_t &published) {
            reg.add(key, total - published);
            published = total;
        };
        delta(keys::kServiceRequests, requestCount,
              publishedRequests);
        delta(keys::kServiceCompiles, compileCount,
              publishedCompiles);
        delta(keys::kServiceCompilesNonSpec, compileNonSpecCount,
              publishedNonSpec);
        delta(keys::kServiceCacheDedup, coalescedCount,
              publishedCoalesced);
    }
    {
        std::lock_guard<std::mutex> hist(histMu);
        reg.merge(keys::kServiceQueueDepth, queueDepthHist);
        reg.merge(keys::kServiceCompileUs, compileUsHist);
        reg.merge(keys::kServiceRequestUs, requestUsHist);
        queueDepthHist = Histogram();
        compileUsHist = Histogram();
        requestUsHist = Histogram();
    }
    reg.set(keys::kServiceShards,
            static_cast<double>(shards.size()));
    reg.set(keys::kServiceWorkers,
            static_cast<double>(totalWorkers));
}

} // namespace aregion::runtime::service
