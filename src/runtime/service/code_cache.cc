#include "runtime/service/code_cache.hh"

#include <string>

#include "ir/printer.hh"
#include "opt/pass.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::runtime::service {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

struct Fnv
{
    uint64_t state = kFnvOffset;

    void byte(uint8_t b)
    {
        state ^= b;
        state *= kFnvPrime;
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void f64(double v)
    {
        // Bit-pattern hash: configs are set from literals, so the
        // pattern is deterministic across hosts.
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<uint8_t>(c));
    }
};

} // namespace

uint64_t
hashProgram(const vm::Program &prog)
{
    Fnv h;
    h.u64(static_cast<uint64_t>(prog.numClasses()));
    for (int c = 0; c < prog.numClasses(); ++c) {
        const vm::ClassInfo &ci = prog.cls(c);
        h.str(ci.name);
        h.i64(ci.superId);
        h.u64(ci.fields.size());
        for (const std::string &f : ci.fields)
            h.str(f);
        h.u64(ci.vtable.size());
        for (vm::MethodId m : ci.vtable)
            h.i64(m);
    }
    h.u64(static_cast<uint64_t>(prog.numMethods()));
    for (int m = 0; m < prog.numMethods(); ++m) {
        const vm::MethodInfo &mi = prog.method(m);
        h.str(mi.name);
        h.i64(mi.classId);
        h.i64(mi.numArgs);
        h.i64(mi.numRegs);
        h.byte(mi.isSynchronized ? 1 : 0);
        h.u64(mi.code.size());
        for (const vm::BcInstr &bc : mi.code) {
            h.byte(static_cast<uint8_t>(bc.op));
            h.u64(bc.a);
            h.u64(bc.b);
            h.u64(bc.c);
            h.i64(bc.imm);
            h.u64(bc.args.size());
            for (vm::Reg r : bc.args)
                h.u64(r);
        }
    }
    h.i64(prog.mainMethod);
    return h.state;
}

uint64_t
hashProfile(const vm::Program &prog, const vm::Profile &profile)
{
    Fnv h;
    for (int m = 0; m < prog.numMethods(); ++m) {
        const vm::MethodProfile &mp = profile.forMethod(m);
        h.u64(mp.invocations);
        h.u64(mp.execCount.size());
        for (uint64_t c : mp.execCount)
            h.u64(c);
        h.u64(mp.branchTaken.size());
        for (const auto &[pc, taken] : mp.branchTaken) {
            h.i64(pc);
            h.u64(taken);
        }
        h.u64(mp.callSites.size());
        for (const auto &[pc, site] : mp.callSites) {
            h.i64(pc);
            h.u64(site.total);
            h.u64(site.receivers.size());
            for (const auto &[cls, count] : site.receivers) {
                h.i64(cls);
                h.u64(count);
            }
        }
    }
    return h.state;
}

uint64_t
hashCompilerConfig(const core::CompilerConfig &config)
{
    Fnv h;
    h.str(config.name);
    h.byte(config.atomicRegions ? 1 : 0);
    h.byte(config.sle ? 1 : 0);
    h.byte(config.postdomCheckElim ? 1 : 0);
    h.byte(config.elideSafepointsInRegions ? 1 : 0);
    h.f64(config.inlineMultiplier);
    h.byte(config.forceMonomorphic ? 1 : 0);

    const core::RegionConfig &r = config.region;
    h.byte(r.enabled ? 1 : 0);
    h.f64(r.coldBias);
    h.f64(r.loopPathThreshold);
    h.f64(r.targetSize);
    h.f64(r.hotBlockCutoff);
    h.i64(r.maxRegionBlocks);
    h.i64(r.minRegionInstrs);
    h.i64(r.maxUnrollFactor);
    h.u64(r.warmOverrides.size());
    for (const auto &[mid, pc] : r.warmOverrides) {
        h.i64(mid);
        h.i64(pc);
    }
    h.u64(r.blacklistMethods.size());
    for (int mid : r.blacklistMethods)
        h.i64(mid);

    const opt::OptContext &o = config.opt;
    h.i64(o.inlineCalleeLimit);
    h.i64(o.inlineGrowthLimit);
    h.f64(o.devirtBias);
    h.byte(o.refusePolymorphicCallees ? 1 : 0);
    h.byte(o.assumeMonomorphic ? 1 : 0);
    h.i64(o.partialInlineLimit);
    h.i64(o.unrollBodyLimit);
    h.f64(o.unrollMinTrip);
    h.i64(o.maxScalarIters);
    return h.state;
}

uint64_t
passFingerprint()
{
    Fnv h;
    h.i64(kPassSchemaVersion);
    for (const std::string &name : opt::pipelinePassNames())
        h.str(name);
    return h.state;
}

uint64_t
cacheKey(const vm::Program &prog, const vm::Profile &profile,
         const core::CompilerConfig &config)
{
    Fnv h;
    h.u64(hashProgram(prog));
    h.u64(hashProfile(prog, profile));
    h.u64(hashCompilerConfig(config));
    h.u64(passFingerprint());
    return h.state;
}

size_t
estimateCodeBytes(const core::Compiled &compiled)
{
    // Capacity model (docs/SERVICE.md): per-instruction footprint of
    // the retained HIR plus per-function CFG overhead plus a fixed
    // per-entry cost for the cache bookkeeping and stats block.
    constexpr size_t kBytesPerInstr = 48;
    constexpr size_t kBytesPerFunc = 256;
    constexpr size_t kBytesPerEntry = 512;
    return kBytesPerEntry +
           compiled.mod.funcs.size() * kBytesPerFunc +
           static_cast<size_t>(compiled.stats.totalInstrs) *
               kBytesPerInstr;
}

uint64_t
codeChecksum(const core::Compiled &compiled)
{
    Fnv h;
    for (const auto &[mid, func] : compiled.mod.funcs) {
        h.i64(mid);
        h.str(ir::toString(func));
    }
    return h.state;
}

std::shared_ptr<const CachedCode>
CodeCache::lookup(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(key);
    if (it == table.end()) {
        missCount++;
        return nullptr;
    }
    hitCount++;
    lruOrder.splice(lruOrder.begin(), lruOrder, it->second.lru);
    return it->second.code;
}

std::shared_ptr<const CachedCode>
CodeCache::peek(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(key);
    return it == table.end() ? nullptr : it->second.code;
}

size_t
CodeCache::insert(const std::shared_ptr<const CachedCode> &code)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(code->key);
    if (it != table.end()) {
        // Replacement (recompile path): swap the payload in place.
        bytesUsed -= it->second.code->sizeBytes;
        it->second.code = code;
        bytesUsed += code->sizeBytes;
        lruOrder.splice(lruOrder.begin(), lruOrder, it->second.lru);
    } else {
        lruOrder.push_front(code->key);
        table[code->key] = Entry{code, lruOrder.begin()};
        bytesUsed += code->sizeBytes;
    }
    const uint64_t before = evictionCount;
    evictOverBudgetLocked(code->key);
    return static_cast<size_t>(evictionCount - before);
}

void
CodeCache::evictOverBudgetLocked(uint64_t keep_key)
{
    while (bytesUsed > budget && table.size() > 1) {
        const uint64_t victim = lruOrder.back();
        if (victim == keep_key)
            break;  // never evict the entry being served right now
        auto it = table.find(victim);
        bytesUsed -= it->second.code->sizeBytes;
        lruOrder.pop_back();
        table.erase(it);
        evictionCount++;
    }
}

void
CodeCache::invalidate(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(key);
    if (it == table.end())
        return;
    bytesUsed -= it->second.code->sizeBytes;
    lruOrder.erase(it->second.lru);
    table.erase(it);
}

size_t
CodeCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu);
    return table.size();
}

size_t
CodeCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return bytesUsed;
}

uint64_t
CodeCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return hitCount;
}

uint64_t
CodeCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return missCount;
}

uint64_t
CodeCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return evictionCount;
}

void
CodeCache::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    std::lock_guard<std::mutex> lock(mu);
    // Counters are cumulative per process; publish deltas since the
    // last publish so repeated calls never double-count.
    auto delta = [&](const char *key, uint64_t total,
                     uint64_t &published) {
        reg.add(key, total - published);
        published = total;
    };
    delta(keys::kServiceCacheHits, hitCount, publishedHits);
    delta(keys::kServiceCacheMisses, missCount, publishedMisses);
    delta(keys::kServiceCacheEvictions, evictionCount,
          publishedEvictions);
    reg.set(keys::kServiceCacheBytes,
            static_cast<double>(bytesUsed));
    reg.set(keys::kServiceCacheEntries,
            static_cast<double>(table.size()));
}

} // namespace aregion::runtime::service
