/**
 * @file
 * Multi-tenant admission control for the compile service.
 *
 * Three independent gates, all consulted at submit time
 * (docs/SERVICE.md documents the full state machine):
 *
 *  1. Queue admission: a tenant may not hold more than
 *     `maxPendingPerTenant` requests in flight, so one hot tenant
 *     cannot monopolize every shard queue (the Swivel-style
 *     isolation concern). Rejections count
 *     `service.rejected.queue_full` — note the shard's own bounded
 *     depth also rejects under that key.
 *
 *  2. Storm admission: clients report execution results back via
 *     reportExecution(). A (tenant, method) whose replayed abort
 *     telemetry crosses the resilience storm threshold
 *     (ResiliencePolicy::stormAbortRate over at least minEntries
 *     region entries — the same knobs the in-process
 *     runtime/resilience loop uses) takes a strike:
 *
 *        Healthy --storm--> Cooling(strike n, cooldown 2^(n-1)·base)
 *        Cooling --cooldown elapsed--> Healthy (strikes retained)
 *        Cooling --strike > maxRecompiles--> Blacklisted (terminal)
 *
 *     While Cooling, *recompile* requests for that (tenant, method)
 *     are rejected (`service.rejected.backoff`) — plain requests
 *     still serve from cache, because serving stale speculative code
 *     is safe (aborts fall back to the non-speculative path; the
 *     paper's correctness story). Once Blacklisted, compiles are
 *     accepted but forced non-speculative: the service strips
 *     atomicRegions from the effective config, exactly what
 *     RegionConfig::blacklistMethods does inside one process.
 *
 *  3. Compile-time quota: workers report each job's wall-clock
 *     compile time back via noteCompileTime(). A tenant whose spend
 *     inside the current report round reaches
 *     `compileUsQuotaPerRound` has further submits rejected
 *     (`service.rejected.quota`) until the round advances, so one
 *     tenant flooding expensive compiles cannot monopolize worker
 *     wall-clock even while staying under its pending cap. Off by
 *     default (quota 0 disables the gate and its telemetry key).
 *
 * Cooldowns tick in "report rounds": every reportExecution() call
 * advances the global round counter, mirroring the controller-round
 * clock of runtime::ResilienceTracker.
 *
 * Thread-safe; decisions are pure functions of the report history,
 * so a fixed request/report sequence replays deterministically.
 */

#ifndef AREGION_RUNTIME_SERVICE_ADMISSION_HH
#define AREGION_RUNTIME_SERVICE_ADMISSION_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "hw/machine.hh"
#include "runtime/resilience.hh"

namespace aregion::runtime::service {

/** Admission knobs. Storm thresholds are deliberately the shared
 *  ResiliencePolicy type: the service is the multi-tenant face of
 *  the same backoff/blacklist policy (docs/RESILIENCE.md). */
struct AdmissionPolicy
{
    /** Max requests one tenant may have queued or compiling. */
    size_t maxPendingPerTenant = 64;

    /** Storm detection + strike budget. `storm.maxRecompiles` is the
     *  strike count after which a (tenant, method) is blacklisted;
     *  `storm.stormAbortRate` / `storm.minEntries` decide whether a
     *  reported execution counts as a storm. `storm.enabled` is
     *  ignored — constructing the controller opts in. */
    ResiliencePolicy storm;

    /** Cooldown after the first strike, in report rounds; doubles
     *  per strike (exponential backoff across the queue boundary). */
    uint64_t baseCooldownRounds = 2;

    /** Per-tenant wall-clock compile budget (µs) per report round;
     *  0 disables the quota gate entirely. */
    uint64_t compileUsQuotaPerRound = 0;
};

/** Per-(tenant, method) admission state. */
enum class AdmissionState { Healthy, Cooling, Blacklisted };

/** Submit-time verdicts. */
enum class Admit {
    Accept,
    RejectQueueFull,    ///< tenant pending cap hit
    RejectBackoff,      ///< recompile during a cooling window
    RejectQuota,        ///< round compile-time budget exhausted
};

class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionPolicy &p)
        : policy(p)
    {}

    /**
     * Gate one request. `pending` is the tenant's current in-flight
     * count (tracked by the service); `recompile` marks requests
     * that want to invalidate and rebuild cached code.
     */
    Admit admit(int tenant, uint64_t method_key, size_t pending,
                bool recompile);

    /** Record a shard-queue overflow rejection (the service's own
     *  bounded queue fired; counts with the tenant-cap rejections
     *  under `service.rejected.queue_full`). */
    void noteQueueFull();

    /** Charge one finished compile's wall-clock cost against the
     *  tenant's budget for the current report round. No-op when the
     *  quota gate is disabled. */
    void noteCompileTime(int tenant, uint64_t compile_us);

    /**
     * Feed back one execution of this tenant's compiled method.
     * Returns true when the result scored a storm strike. Also
     * advances the global cooldown round.
     */
    bool reportExecution(int tenant, uint64_t method_key,
                         const hw::MachineResult &result);

    /** False once (tenant, method) is blacklisted — the service
     *  compiles it non-speculative from then on. */
    bool speculationAllowed(int tenant, uint64_t method_key) const;

    AdmissionState state(int tenant, uint64_t method_key) const;

    uint64_t stormReports() const;
    uint64_t blacklistedCount() const;
    uint64_t backoffRejections() const;
    uint64_t queueRejections() const;
    uint64_t quotaRejections() const;

    /** Mirror counters into `service.admission.*` /
     *  `service.rejected.*`. */
    void publishTelemetry() const;

  private:
    struct MethodState
    {
        int strikes = 0;
        /** Round at which the current cooldown expires. */
        uint64_t coolUntilRound = 0;
        bool blacklisted = false;
    };

    /** Per-tenant compile-time spend inside one report round. */
    struct TenantQuota
    {
        uint64_t spendUs = 0;
        uint64_t windowRound = 0;   ///< round the spend belongs to
    };

    using Key = std::pair<int, uint64_t>;

    AdmissionPolicy policy;
    mutable std::mutex mu;
    std::map<Key, MethodState> methods;
    std::map<int, TenantQuota> tenantSpend;
    uint64_t round = 0;             ///< report-round clock
    uint64_t stormCount = 0;
    uint64_t blacklistCount = 0;
    uint64_t backoffRejectCount = 0;
    uint64_t queueRejectCount = 0;
    uint64_t quotaRejectCount = 0;
    mutable uint64_t publishedStorms = 0;
    mutable uint64_t publishedBlacklists = 0;
    mutable uint64_t publishedBackoffRejects = 0;
    mutable uint64_t publishedQueueRejects = 0;
    mutable uint64_t publishedQuotaRejects = 0;
};

} // namespace aregion::runtime::service

#endif // AREGION_RUNTIME_SERVICE_ADMISSION_HH
