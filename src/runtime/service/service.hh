/**
 * @file
 * JIT-compile-as-a-service: a long-running, sharded, cache-backed
 * compile server (ROADMAP item 2 — the millions-of-users scenario).
 *
 * Shape (full contract in docs/SERVICE.md):
 *
 *   client ──submit()──> [admission] ──> [code cache] ──hit──> reply
 *                                           │ miss
 *                                           ▼
 *                            shard = key mod numShards
 *                                           │
 *                      bounded per-shard queue (reject when full)
 *                                           │
 *                        persistent worker threads per shard
 *                                           │
 *                         compileProgram (deterministic)
 *                                           │
 *                        cache insert + LRU eviction, reply
 *
 * Properties the rest of the repo relies on:
 *
 *  - Determinism: compileProgram is a pure function of
 *    (program, profile, config), so for a fixed request set the
 *    compiled code and its checksums are identical at any shard /
 *    worker / AREGION_JOBS setting; only latencies and the hit-vs-
 *    coalesced split of concurrently racing requests vary. Golden
 *    tests and the fuzzer can therefore drive the service path and
 *    compare code checksums against direct compileProgram calls.
 *  - In-flight deduplication: requests for a key already queued or
 *    compiling attach to that job instead of compiling again
 *    (`service.cache.dedup`); every attached requester gets the same
 *    immutable CachedCode.
 *  - Admission control (admission.hh): per-tenant pending caps,
 *    bounded shard queues, and storm-driven backoff/blacklisting so
 *    one aborting tenant cannot starve the pool.
 *
 * Worker pool: shards × workersPerShard persistent threads, clamped
 * to parallel::configuredJobs() (AREGION_JOBS) the same way the grid
 * driver clamps its pool — the service is the long-running sibling
 * of parallel::runGrid's bounded fan-out.
 */

#ifndef AREGION_RUNTIME_SERVICE_SERVICE_HH
#define AREGION_RUNTIME_SERVICE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/service/admission.hh"
#include "runtime/service/code_cache.hh"
#include "support/statistics.hh"

namespace aregion::runtime::service {

struct ServiceConfig
{
    /** Queue shards; method keys map to shards by key mod shards. */
    int shards = 4;

    /** Persistent workers per shard (total clamped to
     *  parallel::configuredJobs(), at least one per shard). */
    int workersPerShard = 1;

    /** Bounded per-shard queue depth; submits beyond it are
     *  rejected (`service.rejected.queue_full`). */
    size_t shardQueueDepth = 64;

    /** Code-cache byte budget (code_cache.hh capacity model). */
    size_t cacheBytes = 16u << 20;

    AdmissionPolicy admission;
};

/** One compile request. Program and profile are shared immutable
 *  inputs; the returned CachedCode keeps them alive. */
struct CompileRequest
{
    int tenant = 0;
    std::string method;     ///< tenant-visible name, diagnostics only
    std::shared_ptr<const vm::Program> program;
    std::shared_ptr<const vm::Profile> profile;
    core::CompilerConfig config;

    /** Invalidate any cached entry and rebuild — what a client's
     *  resilience loop sends after an abort storm. Subject to the
     *  admission cooldown (admission.hh). */
    bool recompile = false;
};

enum class CompileStatus {
    CacheHit,           ///< served from the content-addressed cache
    Compiled,           ///< this request caused the compilation
    Coalesced,          ///< attached to an in-flight identical job
    CompiledNonSpec,    ///< blacklisted: compiled without regions
    RejectedQueueFull,  ///< shard queue or tenant pending cap hit
    RejectedBackoff,    ///< recompile refused during storm cooldown
    RejectedQuota,      ///< tenant's round compile budget exhausted
    Shutdown,           ///< service stopped before the job ran
};

const char *statusName(CompileStatus status);

struct CompileResponse
{
    CompileStatus status = CompileStatus::Shutdown;
    std::shared_ptr<const CachedCode> code;  ///< null iff rejected
    uint64_t key = 0;
    int shard = -1;
    /** Wall-clock µs from submit() to response completion. */
    uint64_t latencyUs = 0;
};

/** Point-in-time service statistics (per-shard and per-tenant views
 *  the global telemetry keys intentionally do not enumerate). */
struct ServiceStats
{
    struct Shard
    {
        uint64_t compiles = 0;
        uint64_t maxDepth = 0;      ///< high-water queue depth
    };
    struct Tenant
    {
        uint64_t requests = 0;
        uint64_t hits = 0;
        uint64_t rejected = 0;
    };
    std::vector<Shard> shards;
    std::map<int, Tenant> tenants;
    uint64_t requests = 0;
    uint64_t compiles = 0;
    uint64_t compilesNonSpec = 0;
    uint64_t coalesced = 0;
};

class CompileService
{
  public:
    explicit CompileService(const ServiceConfig &config);
    ~CompileService();    ///< stop() + join

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** The content address submit() will use for this request. */
    static uint64_t keyFor(const CompileRequest &request);

    /**
     * Asynchronous submit. Rejections and cache hits complete the
     * future immediately on the calling thread; misses complete on a
     * shard worker. Safe from any thread.
     */
    std::future<CompileResponse> submit(CompileRequest request);

    /** submit() + get(), for tests and simple clients. */
    CompileResponse submitSync(CompileRequest request);

    /** Client feedback: an execution result for code obtained under
     *  `key` (drives storm admission; see admission.hh). */
    void reportExecution(int tenant, uint64_t key,
                         const hw::MachineResult &result);

    /** Drain queues and join workers; queued-but-unstarted jobs
     *  complete with CompileStatus::Shutdown. Idempotent. */
    void stop();

    /** Hold workers before their next dequeue — lets tests build a
     *  deterministic queue state. resumeWorkers() releases them. */
    void pauseWorkers();
    void resumeWorkers();

    const CodeCache &cache() const { return codeCache; }
    AdmissionController &admission() { return admissionCtl; }
    int shardCount() const { return static_cast<int>(shards.size()); }
    int workerCount() const { return totalWorkers; }
    int shardOf(uint64_t key) const
    {
        return static_cast<int>(key % shards.size());
    }

    ServiceStats stats() const;

    /** Mirror service + cache + admission counters into the global
     *  `service.*` telemetry family. */
    void publishTelemetry();

  private:
    struct Waiter
    {
        std::promise<CompileResponse> promise;
        int tenant = 0;
        uint64_t submitNs = 0;
        bool originator = false;    ///< caused the compile vs coalesced
    };

    struct Job
    {
        CompileRequest request;
        uint64_t key = 0;
        bool forceNonSpec = false;
        /** Every requester attached to this job. */
        std::vector<Waiter> waiters;
    };

    struct Shard
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<std::unique_ptr<Job>> queue;
        /** Key of the job a worker is currently compiling (0 when
         *  idle); late arrivals for it coalesce here. */
        std::map<uint64_t, Job *> inFlight;
        uint64_t compiles = 0;
        uint64_t maxDepth = 0;
        std::vector<std::thread> workers;
    };

    void workerLoop(Shard &shard);
    void compileJob(Shard &shard, std::unique_ptr<Job> job);
    void completeWaiters(std::vector<Waiter> &&waiters,
                         CompileStatus originator_status,
                         const std::shared_ptr<const CachedCode> &code,
                         uint64_t key, int shard_id);
    static uint64_t nowNs();

    ServiceConfig config;
    CodeCache codeCache;
    AdmissionController admissionCtl;
    std::vector<std::unique_ptr<Shard>> shards;
    int totalWorkers = 0;

    mutable std::mutex stateMu;         ///< tenants + counters
    std::map<int, uint64_t> pendingByTenant;
    std::map<int, ServiceStats::Tenant> tenantStats;
    uint64_t requestCount = 0;
    uint64_t compileCount = 0;
    uint64_t compileNonSpecCount = 0;
    uint64_t coalescedCount = 0;
    uint64_t publishedRequests = 0;
    uint64_t publishedCompiles = 0;
    uint64_t publishedNonSpec = 0;
    uint64_t publishedCoalesced = 0;

    /** Event-time histogram samples, merged into the registry (and
     *  reset) by publishTelemetry — histogram slots are not safe for
     *  concurrent writers (support/telemetry.hh). */
    std::mutex histMu;
    Histogram queueDepthHist;
    Histogram compileUsHist;
    Histogram requestUsHist;

    std::atomic<bool> stopping{false};
    std::atomic<bool> paused{false};
};

} // namespace aregion::runtime::service

#endif // AREGION_RUNTIME_SERVICE_SERVICE_HH
