/**
 * @file
 * Content-addressed region code cache for the compile service.
 *
 * An entry is one compiled module (core::Compiled) keyed by a 64-bit
 * content address:
 *
 *   key = H(bytecode ‖ profile digest ‖ compiler config ‖
 *           pass fingerprint)
 *
 * where H is FNV-1a over a canonical serialization. Two requests
 * with the same key are guaranteed (by compileProgram's determinism)
 * to produce byte-identical IR, so the cache can hand the same
 * immutable CachedCode to every tenant that asks — cross-tenant
 * deduplication is the whole point of the service. The pass
 * fingerprint folds opt::pipelinePassNames() plus a manually bumped
 * schema version into the key, so reordering the pass pipeline or
 * changing a pass's semantics (bump kPassSchemaVersion!) invalidates
 * every stale entry instead of serving wrong code.
 *
 * Eviction is strict LRU over a byte budget (see docs/SERVICE.md for
 * the bytes-per-entry capacity model). The newest entry is never
 * evicted — an entry larger than the whole budget is still served to
 * its requesters and only displaced by the next insert.
 *
 * Thread-safe: every public method takes the internal mutex. Hit,
 * miss, eviction, and size telemetry lands under `service.cache.*`
 * (docs/TELEMETRY.md).
 */

#ifndef AREGION_RUNTIME_SERVICE_CODE_CACHE_HH
#define AREGION_RUNTIME_SERVICE_CODE_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "core/compiler.hh"
#include "vm/profile.hh"
#include "vm/program.hh"

namespace aregion::runtime::service {

/**
 * One immutable cache entry. The compiled module's ir::Module holds
 * a raw pointer to its source program, so the entry keeps the
 * program alive alongside the code — clients may lower and run the
 * module for as long as they hold the shared_ptr, even after the
 * entry was evicted.
 */
struct CachedCode
{
    uint64_t key = 0;
    std::shared_ptr<const vm::Program> program;
    core::Compiled compiled;

    /** FNV-1a over the printed IR of every function, in method-id
     *  order: the oracle identity used by tests and bench_service to
     *  prove cached code equals a fresh compile. */
    uint64_t codeChecksum = 0;

    /** Estimated resident bytes (capacity model: docs/SERVICE.md). */
    size_t sizeBytes = 0;

    /** True when admission control forced this compile
     *  non-speculative (no regions formed). */
    bool nonSpeculative = false;
};

/** Canonical serialization hashes for the content address. */
uint64_t hashProgram(const vm::Program &prog);
uint64_t hashProfile(const vm::Program &prog, const vm::Profile &profile);
uint64_t hashCompilerConfig(const core::CompilerConfig &config);

/** The pipeline identity folded into every key; bump
 *  kPassSchemaVersion whenever a pass changes behaviour without
 *  changing its name. */
uint64_t passFingerprint();
inline constexpr int kPassSchemaVersion = 2;

/** Full content address for a compile request. */
uint64_t cacheKey(const vm::Program &prog, const vm::Profile &profile,
                  const core::CompilerConfig &config);

/** Capacity-model size estimate for a compiled module. */
size_t estimateCodeBytes(const core::Compiled &compiled);

/** Post-compile identity checksum (printed-IR FNV). */
uint64_t codeChecksum(const core::Compiled &compiled);

/** LRU, byte-budgeted, content-addressed cache. */
class CodeCache
{
  public:
    explicit CodeCache(size_t byte_budget) : budget(byte_budget) {}

    /** Hit: bump LRU recency and return the entry (counts
     *  `service.cache.hits`). Miss: nullptr (counts
     *  `service.cache.misses`). */
    std::shared_ptr<const CachedCode> lookup(uint64_t key);

    /** As lookup(), but without touching hit/miss telemetry or
     *  recency — for introspection and tests. */
    std::shared_ptr<const CachedCode> peek(uint64_t key) const;

    /**
     * Insert (or replace) the entry and evict least-recently-used
     * entries until the byte budget holds again. The entry just
     * inserted is exempt from its own eviction round. Returns the
     * number of entries evicted.
     */
    size_t insert(const std::shared_ptr<const CachedCode> &code);

    /** Drop one key (a recompile request invalidates stale code). */
    void invalidate(uint64_t key);

    size_t entries() const;
    size_t bytes() const;
    size_t byteBudget() const { return budget; }

    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t evictions() const;

    /** Mirror counters + size gauges into `service.cache.*`. */
    void publishTelemetry() const;

  private:
    void evictOverBudgetLocked(uint64_t keep_key);

    struct Entry
    {
        std::shared_ptr<const CachedCode> code;
        std::list<uint64_t>::iterator lru;  ///< position in lruOrder
    };

    mutable std::mutex mu;
    size_t budget;
    size_t bytesUsed = 0;
    uint64_t hitCount = 0;
    uint64_t missCount = 0;
    uint64_t evictionCount = 0;
    /** Values already mirrored into the registry, so repeated
     *  publishTelemetry() calls add deltas, never double-count. */
    mutable uint64_t publishedHits = 0;
    mutable uint64_t publishedMisses = 0;
    mutable uint64_t publishedEvictions = 0;
    std::list<uint64_t> lruOrder;           ///< front = most recent
    std::map<uint64_t, Entry> table;
};

} // namespace aregion::runtime::service

#endif // AREGION_RUNTIME_SERVICE_CODE_CACHE_HH
