#include "runtime/service/admission.hh"

#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::runtime::service {

Admit
AdmissionController::admit(int tenant, uint64_t method_key,
                           size_t pending, bool recompile)
{
    std::lock_guard<std::mutex> lock(mu);
    if (pending >= policy.maxPendingPerTenant) {
        queueRejectCount++;
        return Admit::RejectQueueFull;
    }
    if (policy.compileUsQuotaPerRound > 0) {
        auto it = tenantSpend.find(tenant);
        if (it != tenantSpend.end() &&
            it->second.windowRound == round &&
            it->second.spendUs >= policy.compileUsQuotaPerRound) {
            quotaRejectCount++;
            return Admit::RejectQuota;
        }
    }
    if (recompile) {
        auto it = methods.find({tenant, method_key});
        if (it != methods.end() && !it->second.blacklisted &&
            it->second.strikes > 0 &&
            round < it->second.coolUntilRound) {
            backoffRejectCount++;
            return Admit::RejectBackoff;
        }
    }
    return Admit::Accept;
}

void
AdmissionController::noteQueueFull()
{
    std::lock_guard<std::mutex> lock(mu);
    queueRejectCount++;
}

void
AdmissionController::noteCompileTime(int tenant, uint64_t compile_us)
{
    std::lock_guard<std::mutex> lock(mu);
    if (policy.compileUsQuotaPerRound == 0)
        return;
    TenantQuota &q = tenantSpend[tenant];
    if (q.windowRound != round) {
        // First charge in a new round: the previous round's spend
        // has been forgiven by the advancing report clock.
        q.windowRound = round;
        q.spendUs = 0;
    }
    q.spendUs += compile_us;
}

bool
AdmissionController::reportExecution(int tenant, uint64_t method_key,
                                     const hw::MachineResult &result)
{
    std::lock_guard<std::mutex> lock(mu);
    // Every report advances the cooldown clock, storm or not — the
    // service-side analog of ResilienceTracker's controller rounds.
    round++;

    const ResiliencePolicy &p = policy.storm;
    if (result.regionEntries < p.minEntries)
        return false;
    const double abort_rate =
        static_cast<double>(result.regionAborts) /
        static_cast<double>(result.regionEntries);
    if (abort_rate < p.stormAbortRate)
        return false;

    MethodState &ms = methods[{tenant, method_key}];
    if (ms.blacklisted)
        return false;   // already condemned; nothing left to decide
    stormCount++;
    ms.strikes++;
    if (ms.strikes > p.maxRecompiles) {
        ms.blacklisted = true;
        blacklistCount++;
    } else {
        // Exponential backoff: 2^(strikes-1) * base report rounds.
        const uint64_t cooldown = policy.baseCooldownRounds
                                  << (ms.strikes - 1);
        ms.coolUntilRound = round + cooldown;
    }
    return true;
}

bool
AdmissionController::speculationAllowed(int tenant,
                                        uint64_t method_key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = methods.find({tenant, method_key});
    return it == methods.end() || !it->second.blacklisted;
}

AdmissionState
AdmissionController::state(int tenant, uint64_t method_key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = methods.find({tenant, method_key});
    if (it == methods.end())
        return AdmissionState::Healthy;
    if (it->second.blacklisted)
        return AdmissionState::Blacklisted;
    if (it->second.strikes > 0 && round < it->second.coolUntilRound)
        return AdmissionState::Cooling;
    return AdmissionState::Healthy;
}

uint64_t
AdmissionController::stormReports() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stormCount;
}

uint64_t
AdmissionController::blacklistedCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return blacklistCount;
}

uint64_t
AdmissionController::backoffRejections() const
{
    std::lock_guard<std::mutex> lock(mu);
    return backoffRejectCount;
}

uint64_t
AdmissionController::queueRejections() const
{
    std::lock_guard<std::mutex> lock(mu);
    return queueRejectCount;
}

uint64_t
AdmissionController::quotaRejections() const
{
    std::lock_guard<std::mutex> lock(mu);
    return quotaRejectCount;
}

void
AdmissionController::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    std::lock_guard<std::mutex> lock(mu);
    auto delta = [&](const char *key, uint64_t total,
                     uint64_t &published) {
        reg.add(key, total - published);
        published = total;
    };
    delta(keys::kServiceAdmissionStorms, stormCount,
          publishedStorms);
    delta(keys::kServiceAdmissionBlacklisted, blacklistCount,
          publishedBlacklists);
    delta(keys::kServiceRejectedBackoff, backoffRejectCount,
          publishedBackoffRejects);
    delta(keys::kServiceRejectedQueueFull, queueRejectCount,
          publishedQueueRejects);
    // The quota key only exists when the gate is configured, so
    // quota-free deployments publish an unchanged key set.
    if (policy.compileUsQuotaPerRound > 0)
        delta(keys::kServiceRejectedQuota, quotaRejectCount,
              publishedQuotaRejects);
}

} // namespace aregion::runtime::service
