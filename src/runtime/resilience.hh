/**
 * @file
 * Abort-storm resilience for the adaptive recompilation loop.
 *
 * The paper's Section 7 controller assumes profile drift: a cold
 * edge turned warm, the assert fires, and one recompile with warm
 * overrides repairs the region. Under fault injection (or a genuine
 * environment shift) a region can abort persistently with *no*
 * attributable assert site — the controller has nothing to override
 * and a naive retry loop recompiles forever. This layer bounds that
 * loop:
 *
 *   - storm detection: a region whose abort rate stays above
 *     ResiliencePolicy::stormAbortRate across at least minEntries
 *     entries is storming;
 *   - exponential backoff: each remediation attempt for a region
 *     doubles the cooldown (in controller rounds) before the next
 *     attempt may spend recompile budget;
 *   - blacklisting: after maxRecompiles failed attempts the region's
 *     method is compiled permanently non-speculative
 *     (RegionConfig::blacklistMethods) so the program keeps making
 *     progress;
 *   - livelock guard: livelockBound maps onto
 *     HwConfig::maxConsecutiveAborts so the machine itself stops
 *     re-entering a hopeless region between controller rounds.
 *
 * Everything is off by default (enabled = false): the benchmarks'
 * figures are byte-identical with the policy left alone. Telemetry
 * lands under `runtime.resilience.*` (docs/TELEMETRY.md).
 */

#ifndef AREGION_RUNTIME_RESILIENCE_HH
#define AREGION_RUNTIME_RESILIENCE_HH

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "hw/machine.hh"

namespace aregion::runtime {

/** Policy knobs; defaults are conservative and the whole layer is
 *  opt-in. */
struct ResiliencePolicy
{
    bool enabled = false;

    /** Aborts / entries above which a region counts as storming
     *  (well past the adaptive controller's repair threshold). */
    double stormAbortRate = 0.5;

    /** Regions with fewer entries carry too little evidence. */
    uint64_t minEntries = 16;

    /** Remediation attempts per region before its method is
     *  blacklisted (compiled without regions). */
    int maxRecompiles = 3;

    /** Mapped onto HwConfig::maxConsecutiveAborts for every machine
     *  run under this policy, unless the experiment already set one.
     *  0 leaves the hardware config untouched. */
    uint64_t livelockBound = 64;
};

/**
 * Per-experiment storm bookkeeping. The runtime drives it in rounds:
 * detect storms on the latest MachineResult, ask decide() whether
 * the evidence warrants spending a recompile, and report performed
 * recompiles back via noteRecompile().
 */
class ResilienceTracker
{
  public:
    explicit ResilienceTracker(const ResiliencePolicy &p)
        : policy(p)
    {}

    /** Regions (methodId, regionId) currently storming, excluding
     *  methods already blacklisted. */
    std::set<std::pair<int, int>>
    stormingRegions(const hw::MachineResult &res) const;

    struct Decision
    {
        bool recompile = false;      ///< worth rebuilding the module
        bool blacklistGrew = false;  ///< a method was just condemned
    };

    /**
     * Advance one controller round. For each storming region:
     * in-cooldown regions are skipped (a backoff); regions over the
     * attempt budget condemn their method; otherwise the attempt
     * counter advances and — when the adaptive controller produced
     * new override sites — a recompile is requested. Attempts with
     * nothing new to try still count (they double the cooldown), so
     * an unfixable storm converges on the blacklist.
     */
    Decision decide(const std::set<std::pair<int, int>> &storms,
                    bool new_overrides);

    const std::set<int> &blacklisted() const { return blacklistSet; }

    /** Upper bound on controller rounds: the full backoff schedule
     *  plus one action per budgeted attempt, with slack. */
    int roundCap() const;

    /** Record one performed recompile + re-run. */
    void noteRecompile() { recompileCount++; }

    uint64_t stormObservations() const { return stormCount; }
    uint64_t recompiles() const { return recompileCount; }
    uint64_t backoffs() const { return backoffCount; }

    /** Mirror the counters into `runtime.resilience.*`. */
    void publishTelemetry() const;

  private:
    struct RegionState
    {
        int attempts = 0;
        uint64_t cooldown = 0;      ///< rounds until next attempt
    };

    ResiliencePolicy policy;
    std::map<std::pair<int, int>, RegionState> state;
    std::set<int> blacklistSet;
    uint64_t stormCount = 0;        ///< (round, region) observations
    uint64_t recompileCount = 0;
    uint64_t backoffCount = 0;
};

/** Knobs for the contention governor (all deterministic). */
struct ContentionPolicy
{
    /** First-conflict backoff, in scheduler steps; doubles per
     *  consecutive conflict abort on the same context. */
    uint64_t baseStall = 8;

    /** Cap on the exponential growth. */
    uint64_t maxStall = 1024;

    /** Seed for the deterministic jitter mixed into every stall so
     *  symmetric contexts desynchronize instead of re-colliding. */
    uint64_t seed = 0;

    /** Fairness guard: a context that committed nothing while the
     *  machine as a whole committed this many regions is starving
     *  and gets backoff immunity until its next commit. */
    uint64_t fairnessWindow = 64;

    /** Livelock guard: this many conflict aborts machine-wide with
     *  zero intervening commits means the contexts are killing each
     *  other; backoffs switch to id-staggered stalls until any
     *  region commits. */
    uint64_t livelockWindow = 32;
};

/**
 * Contention-aware backoff: the software half of surviving genuine
 * conflict aborts (paper Section 5.2's SLE under contention). The
 * machine consults it after every abort (hw::ContentionControl);
 * conflict aborts draw an exponentially growing, jittered,
 * per-context stall, while a starvation guard exempts contexts that
 * keep losing and a livelock breaker staggers mutually-aborting
 * contexts by id. All decisions are pure functions of the policy
 * seed and the abort/commit history, so runs replay exactly.
 */
class ContentionGovernor : public hw::ContentionControl
{
  public:
    explicit ContentionGovernor(const ContentionPolicy &p)
        : policy(p)
    {}

    uint64_t onAbort(int ctx_id, hw::AbortCause cause) override;
    void onCommit(int ctx_id) override;

    uint64_t backoffSteps() const { return backoffStepsTotal; }
    uint64_t starvationBoosts() const { return starvationCount; }
    uint64_t livelockBreaks() const { return livelockCount; }

    /** Mirror the counters into `runtime.resilience.*`. */
    void publishTelemetry() const;

  private:
    struct CtxState
    {
        uint64_t conflictStreak = 0;
        uint64_t abortDraws = 0;    ///< jitter stream index
        /** Machine-wide commit count at this context's last own
         *  commit (for the starvation window). */
        uint64_t commitsAtOwnCommit = 0;
        bool starving = false;
    };

    CtxState &slot(int ctx_id);

    ContentionPolicy policy;
    std::vector<CtxState> ctxs;
    uint64_t totalCommits = 0;
    uint64_t conflictsSinceCommit = 0;
    bool staggered = false;         ///< livelock breaker engaged
    uint64_t backoffStepsTotal = 0;
    uint64_t starvationCount = 0;
    uint64_t livelockCount = 0;
};

} // namespace aregion::runtime

#endif // AREGION_RUNTIME_RESILIENCE_HH
