/**
 * @file
 * SimPoint-style phase classification (paper Section 5).
 *
 * The method-invocation trace is cut into fixed-size intervals; each
 * interval becomes a method-frequency vector; k-means clustering
 * (deterministic seeding) groups intervals into phases. For each
 * phase the most representative interval is chosen, and within it an
 * infrequently-invoked method is selected as the sampling marker (so
 * marker instrumentation minimally perturbs execution).
 */

#ifndef AREGION_RUNTIME_SAMPLING_HH
#define AREGION_RUNTIME_SAMPLING_HH

#include <vector>

#include "vm/program.hh"

namespace aregion::runtime {

struct PhaseClassification
{
    int numPhases = 0;
    std::vector<int> intervalPhase;     ///< interval -> phase
    std::vector<double> phaseWeight;    ///< fraction of intervals
    std::vector<int> representative;    ///< phase -> interval index
    std::vector<vm::MethodId> markerMethod; ///< phase -> marker
};

/**
 * Classify execution phases.
 *
 * @param invocations  time-ordered method ids (one per invocation)
 * @param num_methods  method-id space size
 * @param interval     invocations per interval (paper: 10,000)
 * @param max_phases   cluster budget (paper: up to 4 per benchmark)
 */
PhaseClassification classifyPhases(
    const std::vector<vm::MethodId> &invocations, int num_methods,
    size_t interval = 10000, int max_phases = 4);

} // namespace aregion::runtime

#endif // AREGION_RUNTIME_SAMPLING_HH
