#include "runtime/jit.hh"

#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/interpreter.hh"

namespace aregion::runtime {

namespace {

/** hw runtime stats -> core adaptive telemetry. */
core::AbortTelemetry
toTelemetry(const hw::MachineResult &res)
{
    core::AbortTelemetry telemetry;
    for (const auto &[key, stats] : res.regions) {
        core::RegionTelemetry t;
        t.entries = stats.entries;
        t.commits = stats.commits;
        t.abortsByAssert = stats.abortsByAssert;
        t.implicitAborts = stats.totalAborts();
        for (const auto &[id, count] : stats.abortsByAssert)
            t.implicitAborts -= count;
        telemetry[key] = t;
    }
    return telemetry;
}

struct MachineRun
{
    hw::MachineResult result;
    uint64_t cycles = 0;
    uint64_t mispredicts = 0;
    uint64_t serializations = 0;
    uint64_t l1Misses = 0;
    std::vector<std::pair<int64_t, uint64_t>> markerCycles;
};

MachineRun
executeCompiled(const core::Compiled &compiled,
                const vm::Program &measure_prog,
                const ExperimentConfig &config,
                const hw::HwConfig &hw_config)
{
    telemetry::ScopedSpan span("jit.machine");
    telemetry::ScopedTimerUs timer(
        telemetry::Registry::global().counter(
            telemetry::keys::kJitMachineUs));
    vm::Heap layout_heap(measure_prog, 1 << 16);
    const hw::MachineProgram mp = hw::lowerModule(
        compiled.mod, hw::LayoutInfo::fromHeap(layout_heap));
    hw::TimingModel timing(config.timing);
    hw::Machine machine(mp, hw_config, &timing);
    MachineRun run;
    run.result = machine.run();
    timing.publishTelemetry();
    run.cycles = timing.cycles();
    run.mispredicts =
        timing.mispredicts + timing.indirectMispredicts;
    run.serializations = timing.serializations;
    run.l1Misses = timing.l1Misses();
    run.markerCycles = timing.markerCycles;
    return run;
}

} // namespace

RunMetrics
runExperiment(const vm::Program &profile_prog,
              const vm::Program &measure_prog,
              const ExperimentConfig &config,
              const std::vector<SampleSpec> &samples)
{
    namespace keys = telemetry::keys;
    auto &registry = telemetry::Registry::global();
    registry.add(keys::kJitRuns, 1);
    telemetry::ScopedSpan run_span("jit.run");

    // Stage 1: first-pass profiling (interpreter).
    vm::Profile profile(profile_prog);
    {
        telemetry::ScopedSpan span("jit.profile");
        telemetry::ScopedTimerUs timer(
            registry.counter(keys::kJitProfileUs));
        vm::Interpreter interp(profile_prog, &profile);
        const auto res = interp.run();
        AREGION_ASSERT(res.completed || res.trap.has_value(),
                       "profiling run hit the step budget");
    }
    profile.publishTelemetry();

    // Stage 2: optimizing compilation (compileProgram owns the
    // jit.compile span and the kJitCompileUs counter).
    core::Compiled compiled =
        core::compileProgram(measure_prog, profile, config.compiler);

    // Stage 3: machine + timing execution. Resilience (when enabled)
    // arms the machine's livelock guard for every run, including the
    // first, unless the experiment already configured one.
    hw::HwConfig hw_eff = config.hw;
    if (config.resilience.enabled &&
        config.resilience.livelockBound > 0 &&
        hw_eff.maxConsecutiveAborts == 0) {
        hw_eff.maxConsecutiveAborts = config.resilience.livelockBound;
    }
    MachineRun run =
        executeCompiled(compiled, measure_prog, config, hw_eff);

    // Stage 4: adaptive recompilation on abort feedback.
    bool recompiled = false;
    if (config.resilience.enabled && run.result.completed) {
        // Abort-storm resilience: bounded recompilation rounds with
        // exponential backoff, falling back to blacklisting methods
        // whose regions cannot be repaired (docs/RESILIENCE.md).
        telemetry::ScopedSpan span("jit.resilience");
        ResilienceTracker tracker(config.resilience);
        core::CompilerConfig updated = config.compiler;
        const int round_cap = tracker.roundCap();
        for (int round = 0; round < round_cap; ++round) {
            const auto storms = tracker.stormingRegions(run.result);
            if (storms.empty())
                break;
            const auto computed = config.controller.computeOverrides(
                compiled.mod, toTelemetry(run.result));
            const size_t before = updated.region.warmOverrides.size();
            updated.region.warmOverrides.insert(computed.begin(),
                                                computed.end());
            const bool new_overrides =
                updated.region.warmOverrides.size() > before;
            const auto decision =
                tracker.decide(storms, new_overrides);
            if (!decision.recompile)
                continue;   // backing off this round
            updated.region.blacklistMethods = tracker.blacklisted();
            compiled = core::compileProgram(measure_prog, profile,
                                            updated);
            run = executeCompiled(compiled, measure_prog, config,
                                  hw_eff);
            recompiled = true;
            tracker.noteRecompile();
            registry.add(keys::kJitRecompiles, 1);
        }
        tracker.publishTelemetry();
    } else if (config.adaptiveRecompile && run.result.completed) {
        const auto overrides = config.controller.computeOverrides(
            compiled.mod, toTelemetry(run.result));
        if (!overrides.empty()) {
            telemetry::ScopedSpan span("jit.adaptive");
            core::CompilerConfig updated = config.compiler;
            updated.region.warmOverrides = overrides;
            compiled = core::compileProgram(measure_prog, profile,
                                            updated);
            run = executeCompiled(compiled, measure_prog, config,
                                  hw_eff);
            recompiled = true;
            registry.add(keys::kJitRecompiles, 1);
        }
    }
    // Register the recompile counter even when it stays zero so the
    // exported schema is stable.
    registry.counter(keys::kJitRecompiles);

    // Stage 5: metrics.
    RunMetrics metrics;
    metrics.completed = run.result.completed;
    metrics.machine = run.result;
    metrics.recompiled = recompiled;
    metrics.cycles = run.cycles;
    metrics.retiredUops = run.result.retiredUops;
    metrics.executedUops = run.result.executedUops;
    metrics.mispredicts = run.mispredicts;
    metrics.serializations = run.serializations;
    metrics.l1Misses = run.l1Misses;
    metrics.monitorFastEnters = run.result.monitorFastEnters;
    metrics.outputChecksum = run.result.outputChecksum();

    metrics.regionEntries = run.result.regionEntries;
    metrics.regionAborts = run.result.regionAborts;
    if (run.result.retiredUops > 0) {
        metrics.coverage =
            static_cast<double>(run.result.regionUopsRetired) /
            static_cast<double>(run.result.retiredUops);
        metrics.abortsPer1kUops =
            1000.0 * static_cast<double>(run.result.regionAborts) /
            static_cast<double>(run.result.retiredUops);
    }
    if (run.result.regionEntries > 0) {
        metrics.abortPct =
            static_cast<double>(run.result.regionAborts) /
            static_cast<double>(run.result.regionEntries);
    }
    double size_sum = 0;
    uint64_t size_count = 0;
    for (const auto &[key, stats] : run.result.regions) {
        if (stats.entries > 0)
            metrics.uniqueRegions++;
        size_sum += stats.dynamicSize.mean() *
                    static_cast<double>(stats.dynamicSize.count());
        size_count += stats.dynamicSize.count();
    }
    metrics.avgRegionSize =
        size_count ? size_sum / static_cast<double>(size_count) : 0;

    // Marker-delimited samples.
    auto marker_uops = [&](int64_t id) -> std::optional<uint64_t> {
        for (const auto &hit : run.result.markers) {
            if (hit.id == id)
                return hit.retiredUops;
        }
        return std::nullopt;
    };
    auto marker_cycles = [&](int64_t id) -> std::optional<uint64_t> {
        for (const auto &[mid, cyc] : run.markerCycles) {
            if (mid == id)
                return cyc;
        }
        return std::nullopt;
    };
    double weight_total = 0;
    double weighted_cycles = 0;
    double weighted_uops = 0;
    for (const SampleSpec &spec : samples) {
        const auto u0 = marker_uops(spec.beginMarker);
        const auto u1 = marker_uops(spec.endMarker);
        const auto c0 = marker_cycles(spec.beginMarker);
        const auto c1 = marker_cycles(spec.endMarker);
        if (!u0 || !u1 || !c0 || !c1)
            continue;
        SampleMetrics sample;
        sample.beginMarker = spec.beginMarker;
        sample.endMarker = spec.endMarker;
        sample.weight = spec.weight;
        sample.cycles = *c1 - *c0;
        sample.uops = *u1 - *u0;
        metrics.samples.push_back(sample);
        weight_total += spec.weight;
        weighted_cycles += spec.weight *
                           static_cast<double>(sample.cycles);
        weighted_uops += spec.weight *
                         static_cast<double>(sample.uops);
    }
    if (weight_total > 0) {
        metrics.weightedCycles = weighted_cycles / weight_total;
        metrics.weightedUops = weighted_uops / weight_total;
    } else {
        metrics.weightedCycles = static_cast<double>(metrics.cycles);
        metrics.weightedUops =
            static_cast<double>(metrics.retiredUops);
    }
    return metrics;
}

} // namespace aregion::runtime
