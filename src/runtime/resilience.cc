#include "runtime/resilience.hh"

#include <algorithm>

#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::runtime {

std::set<std::pair<int, int>>
ResilienceTracker::stormingRegions(const hw::MachineResult &res) const
{
    std::set<std::pair<int, int>> storms;
    for (const auto &[key, stats] : res.regions) {
        if (blacklistSet.count(key.first))
            continue;
        if (stats.entries < policy.minEntries)
            continue;
        const double rate =
            static_cast<double>(stats.totalAborts()) /
            static_cast<double>(stats.entries);
        if (rate >= policy.stormAbortRate)
            storms.insert(key);
    }
    return storms;
}

ResilienceTracker::Decision
ResilienceTracker::decide(const std::set<std::pair<int, int>> &storms,
                          bool new_overrides)
{
    Decision decision;
    stormCount += storms.size();
    for (const auto &key : storms) {
        RegionState &rs = state[key];
        if (rs.cooldown > 0) {
            // Backing off: this region already burnt an attempt
            // recently; let the cooldown elapse before another.
            rs.cooldown--;
            backoffCount++;
            continue;
        }
        if (rs.attempts >= policy.maxRecompiles) {
            // Budget exhausted: give up on speculation for the whole
            // method. A blacklist change always warrants a rebuild.
            if (blacklistSet.insert(key.first).second)
                decision.blacklistGrew = true;
            continue;
        }
        rs.attempts++;
        // Double the wait before the next attempt on this region:
        // 2 rounds after the first, 4 after the second, ...
        rs.cooldown = 1ull << rs.attempts;
        if (new_overrides) {
            // The adaptive controller found fresh override sites —
            // recompiling has a real chance of curing the storm.
            decision.recompile = true;
        } else {
            // Nothing new to try; the attempt still counts (it moves
            // the region toward the blacklist) but rebuilding an
            // identical module would be wasted work.
            backoffCount++;
        }
    }
    if (decision.blacklistGrew)
        decision.recompile = true;
    return decision;
}

int
ResilienceTracker::roundCap() const
{
    // Full backoff schedule 2 + 4 + ... + 2^(maxRecompiles) plus one
    // action round per attempt, the blacklist round, and slack. The
    // shift is clamped so absurd budgets cannot overflow.
    const int shift = std::min(policy.maxRecompiles + 1, 16);
    return (1 << shift) + policy.maxRecompiles + 4;
}

void
ResilienceTracker::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    reg.add(keys::kResilienceStorms, stormCount);
    reg.add(keys::kResilienceRecompiles, recompileCount);
    reg.add(keys::kResilienceBackoffs, backoffCount);
    reg.add(keys::kResilienceBlacklisted, blacklistSet.size());
}

namespace {

// splitmix64 finalizer (the codebase's one mixer family; see
// support/failpoint.cc): stateless (seed, ctx, draw) -> jitter.
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

ContentionGovernor::CtxState &
ContentionGovernor::slot(int ctx_id)
{
    const auto idx = static_cast<size_t>(ctx_id);
    if (idx >= ctxs.size())
        ctxs.resize(idx + 1);
    return ctxs[idx];
}

uint64_t
ContentionGovernor::onAbort(int ctx_id, hw::AbortCause cause)
{
    // Only conflicts are contention; capacity/interrupt/explicit
    // aborts have their own remediation (ResilienceTracker) and must
    // not trip backoff.
    if (cause != hw::AbortCause::Conflict)
        return 0;

    CtxState &cs = slot(ctx_id);
    cs.conflictStreak++;
    cs.abortDraws++;

    if (++conflictsSinceCommit == policy.livelockWindow && !staggered) {
        // Mutual-abort livelock: everyone keeps killing everyone and
        // nothing commits. Stagger stalls by context id so the
        // lowest id wins the next race outright; any commit clears
        // the mode.
        staggered = true;
        livelockCount++;
    }

    // Starvation guard: a context the rest of the machine has lapped
    // `fairnessWindow` times retries immediately — backing off the
    // perpetual loser only entrenches the unfairness.
    if (totalCommits - cs.commitsAtOwnCommit >= policy.fairnessWindow) {
        if (!cs.starving) {
            cs.starving = true;
            starvationCount++;
        }
        return 0;
    }

    uint64_t stall;
    if (staggered) {
        stall = policy.baseStall * static_cast<uint64_t>(ctx_id);
    } else {
        const uint64_t shift =
            cs.conflictStreak > 0 ? cs.conflictStreak - 1 : 0;
        stall = shift >= 63 ? policy.maxStall
                            : std::min(policy.maxStall,
                                       policy.baseStall << shift);
        // Jitter in [0, stall): symmetric contexts with identical
        // streaks must not re-collide in lockstep.
        if (stall > 0) {
            stall += mix(policy.seed ^
                         (static_cast<uint64_t>(ctx_id) << 32) ^
                         cs.abortDraws) %
                     stall;
        }
    }
    backoffStepsTotal += stall;
    return stall;
}

void
ContentionGovernor::onCommit(int ctx_id)
{
    CtxState &cs = slot(ctx_id);
    totalCommits++;
    cs.conflictStreak = 0;
    cs.commitsAtOwnCommit = totalCommits;
    cs.starving = false;
    conflictsSinceCommit = 0;
    staggered = false;
}

void
ContentionGovernor::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    reg.add(keys::kResilienceBackoffSteps, backoffStepsTotal);
    reg.add(keys::kResilienceStarvationBoosts, starvationCount);
    reg.add(keys::kResilienceLivelockBreaks, livelockCount);
}

} // namespace aregion::runtime
