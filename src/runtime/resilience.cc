#include "runtime/resilience.hh"

#include <algorithm>

#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::runtime {

std::set<std::pair<int, int>>
ResilienceTracker::stormingRegions(const hw::MachineResult &res) const
{
    std::set<std::pair<int, int>> storms;
    for (const auto &[key, stats] : res.regions) {
        if (blacklistSet.count(key.first))
            continue;
        if (stats.entries < policy.minEntries)
            continue;
        const double rate =
            static_cast<double>(stats.totalAborts()) /
            static_cast<double>(stats.entries);
        if (rate >= policy.stormAbortRate)
            storms.insert(key);
    }
    return storms;
}

ResilienceTracker::Decision
ResilienceTracker::decide(const std::set<std::pair<int, int>> &storms,
                          bool new_overrides)
{
    Decision decision;
    stormCount += storms.size();
    for (const auto &key : storms) {
        RegionState &rs = state[key];
        if (rs.cooldown > 0) {
            // Backing off: this region already burnt an attempt
            // recently; let the cooldown elapse before another.
            rs.cooldown--;
            backoffCount++;
            continue;
        }
        if (rs.attempts >= policy.maxRecompiles) {
            // Budget exhausted: give up on speculation for the whole
            // method. A blacklist change always warrants a rebuild.
            if (blacklistSet.insert(key.first).second)
                decision.blacklistGrew = true;
            continue;
        }
        rs.attempts++;
        // Double the wait before the next attempt on this region:
        // 2 rounds after the first, 4 after the second, ...
        rs.cooldown = 1ull << rs.attempts;
        if (new_overrides) {
            // The adaptive controller found fresh override sites —
            // recompiling has a real chance of curing the storm.
            decision.recompile = true;
        } else {
            // Nothing new to try; the attempt still counts (it moves
            // the region toward the blacklist) but rebuilding an
            // identical module would be wasted work.
            backoffCount++;
        }
    }
    if (decision.blacklistGrew)
        decision.recompile = true;
    return decision;
}

int
ResilienceTracker::roundCap() const
{
    // Full backoff schedule 2 + 4 + ... + 2^(maxRecompiles) plus one
    // action round per attempt, the blacklist round, and slack. The
    // shift is clamped so absurd budgets cannot overflow.
    const int shift = std::min(policy.maxRecompiles + 1, 16);
    return (1 << shift) + policy.maxRecompiles + 4;
}

void
ResilienceTracker::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    reg.add(keys::kResilienceStorms, stormCount);
    reg.add(keys::kResilienceRecompiles, recompileCount);
    reg.add(keys::kResilienceBackoffs, backoffCount);
    reg.add(keys::kResilienceBlacklisted, blacklistSet.size());
}

} // namespace aregion::runtime
