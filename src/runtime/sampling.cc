#include "runtime/sampling.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace aregion::runtime {

namespace {

double
distance2(const std::vector<double> &a, const std::vector<double> &b)
{
    double acc = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace

PhaseClassification
classifyPhases(const std::vector<vm::MethodId> &invocations,
               int num_methods, size_t interval, int max_phases)
{
    PhaseClassification out;
    if (invocations.empty() || num_methods <= 0)
        return out;

    // Frequency vectors per interval (normalised).
    std::vector<std::vector<double>> vectors;
    for (size_t start = 0; start < invocations.size();
         start += interval) {
        const size_t end =
            std::min(start + interval, invocations.size());
        std::vector<double> v(static_cast<size_t>(num_methods), 0.0);
        for (size_t i = start; i < end; ++i)
            v[static_cast<size_t>(invocations[i])] += 1.0;
        const auto n = static_cast<double>(end - start);
        for (double &x : v)
            x /= n;
        vectors.push_back(std::move(v));
    }

    const int k = std::min<int>(max_phases,
                                static_cast<int>(vectors.size()));
    // Deterministic init: k-means++-like farthest-point seeding.
    std::vector<std::vector<double>> centers{vectors[0]};
    while (static_cast<int>(centers.size()) < k) {
        size_t farthest = 0;
        double best = -1;
        for (size_t i = 0; i < vectors.size(); ++i) {
            double nearest = 1e300;
            for (const auto &c : centers)
                nearest = std::min(nearest, distance2(vectors[i], c));
            if (nearest > best) {
                best = nearest;
                farthest = i;
            }
        }
        if (best <= 1e-12)
            break;      // fewer distinct behaviours than k
        centers.push_back(vectors[farthest]);
    }

    std::vector<int> assign(vectors.size(), 0);
    for (int round = 0; round < 32; ++round) {
        bool moved = false;
        for (size_t i = 0; i < vectors.size(); ++i) {
            int best_c = 0;
            double best_d = 1e300;
            for (size_t c = 0; c < centers.size(); ++c) {
                const double d = distance2(vectors[i], centers[c]);
                if (d < best_d) {
                    best_d = d;
                    best_c = static_cast<int>(c);
                }
            }
            if (assign[i] != best_c) {
                assign[i] = best_c;
                moved = true;
            }
        }
        if (!moved)
            break;
        for (size_t c = 0; c < centers.size(); ++c) {
            std::vector<double> mean(
                static_cast<size_t>(num_methods), 0.0);
            int members = 0;
            for (size_t i = 0; i < vectors.size(); ++i) {
                if (assign[i] == static_cast<int>(c)) {
                    ++members;
                    for (size_t m = 0; m < mean.size(); ++m)
                        mean[m] += vectors[i][m];
                }
            }
            if (members > 0) {
                for (double &x : mean)
                    x /= members;
                centers[c] = std::move(mean);
            }
        }
    }

    // Compact phase ids (drop empty clusters).
    std::vector<int> remap(centers.size(), -1);
    for (int a : assign) {
        if (remap[static_cast<size_t>(a)] == -1) {
            remap[static_cast<size_t>(a)] = out.numPhases++;
        }
    }
    out.intervalPhase.resize(vectors.size());
    for (size_t i = 0; i < vectors.size(); ++i)
        out.intervalPhase[i] = remap[static_cast<size_t>(assign[i])];

    out.phaseWeight.assign(static_cast<size_t>(out.numPhases), 0.0);
    for (int p : out.intervalPhase)
        out.phaseWeight[static_cast<size_t>(p)] +=
            1.0 / static_cast<double>(vectors.size());

    // Representative interval: closest to its phase's center.
    out.representative.assign(static_cast<size_t>(out.numPhases), 0);
    std::vector<double> best_dist(
        static_cast<size_t>(out.numPhases), 1e300);
    for (size_t i = 0; i < vectors.size(); ++i) {
        const int phase = out.intervalPhase[i];
        const int raw = assign[i];
        const double d = distance2(vectors[i],
                                   centers[static_cast<size_t>(raw)]);
        if (d < best_dist[static_cast<size_t>(phase)]) {
            best_dist[static_cast<size_t>(phase)] = d;
            out.representative[static_cast<size_t>(phase)] =
                static_cast<int>(i);
        }
    }

    // Marker method: least-frequent method present in the
    // representative interval.
    out.markerMethod.assign(static_cast<size_t>(out.numPhases),
                            vm::NO_METHOD);
    for (int p = 0; p < out.numPhases; ++p) {
        const auto &v = vectors[static_cast<size_t>(
            out.representative[static_cast<size_t>(p)])];
        double best = 1e300;
        for (size_t m = 0; m < v.size(); ++m) {
            if (v[m] > 0 && v[m] < best) {
                best = v[m];
                out.markerMethod[static_cast<size_t>(p)] =
                    static_cast<vm::MethodId>(m);
            }
        }
    }
    return out;
}

} // namespace aregion::runtime
