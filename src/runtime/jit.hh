/**
 * @file
 * The staged execution pipeline (the paper's Section 5 methodology):
 *
 *   1. first-pass profiling run in the interpreter,
 *   2. profile-driven optimizing compilation (baseline or atomic),
 *   3. machine execution with timing simulation of context 0,
 *   4. marker-delimited sample metrics, weighted per phase,
 *   5. optional adaptive recompilation when abort telemetry exceeds
 *      the controller's threshold (Section 7).
 *
 * Profile and measurement inputs may differ (the profile variant of
 * a workload), reproducing profile-drift effects such as pmd's.
 */

#ifndef AREGION_RUNTIME_JIT_HH
#define AREGION_RUNTIME_JIT_HH

#include <string>
#include <vector>

#include "core/adaptive.hh"
#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/timing.hh"
#include "runtime/resilience.hh"
#include "vm/program.hh"

namespace aregion::runtime {

/** Everything one experiment run needs. */
struct ExperimentConfig
{
    core::CompilerConfig compiler;
    hw::HwConfig hw;
    hw::TimingConfig timing;

    /** Re-compile with warm overrides when a region's abort rate
     *  exceeds the adaptive controller's threshold, then re-run. */
    bool adaptiveRecompile = false;
    core::AdaptiveController controller;

    /** Abort-storm resilience (runtime/resilience.hh). When enabled
     *  it subsumes the single-shot adaptive recompile above: the
     *  controller's overrides feed a bounded retry loop with
     *  backoff and method blacklisting. Off by default. */
    ResiliencePolicy resilience;
};

/** Metrics for one marker-delimited sample. */
struct SampleMetrics
{
    int64_t beginMarker = 0;
    int64_t endMarker = 0;
    double weight = 1.0;
    uint64_t cycles = 0;
    uint64_t uops = 0;
};

/** Results of one experiment run. */
struct RunMetrics
{
    bool completed = false;

    uint64_t cycles = 0;            ///< whole traced execution
    uint64_t retiredUops = 0;
    uint64_t executedUops = 0;

    /** Weighted by sample (falls back to whole-run when the workload
     *  defines no samples). */
    double weightedCycles = 0;
    double weightedUops = 0;

    /** Region behaviour (Table 3 ingredients). */
    double coverage = 0;            ///< region uops / retired uops
    int uniqueRegions = 0;
    double avgRegionSize = 0;
    double abortPct = 0;            ///< aborts / region entries
    double abortsPer1kUops = 0;
    uint64_t regionEntries = 0;
    uint64_t regionAborts = 0;

    uint64_t mispredicts = 0;
    uint64_t serializations = 0;
    uint64_t l1Misses = 0;
    uint64_t monitorFastEnters = 0;
    bool recompiled = false;        ///< adaptive recompilation fired

    uint64_t outputChecksum = 0;
    std::vector<SampleMetrics> samples;

    hw::MachineResult machine;      ///< full detail for benches
};

/** Sample definition supplied by a workload. */
struct SampleSpec
{
    int64_t beginMarker;
    int64_t endMarker;
    double weight;
};

/**
 * Run the full pipeline.
 *
 * @param profile_prog program used for the profiling run
 * @param measure_prog program measured (usually the same; differs
 *                     for drift workloads)
 * @param samples      marker-delimited samples (may be empty)
 */
RunMetrics runExperiment(const vm::Program &profile_prog,
                         const vm::Program &measure_prog,
                         const ExperimentConfig &config,
                         const std::vector<SampleSpec> &samples = {});

} // namespace aregion::runtime

#endif // AREGION_RUNTIME_JIT_HH
