/**
 * @file
 * xalan analog: "Converts XML documents into HTML".
 *
 * Reproduces the paper's motivating example (Figure 2): the hot path
 * of SuballocatedIntVector.addElement is called twice per event at
 * the hottest call site, plus a synchronized classlib-style output
 * buffer append. Characteristics targeted (Table 3): very high
 * region coverage (~78%), tiny abort rate (~0.3%), large SLE benefit
 * from uncontended monitor pairs inside regions.
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildXalan(bool profile_variant)
{
    const int events = profile_variant ? 3000 : 12000;
    const int chunk_size = 512;

    ProgramBuilder pb;

    // --- SuballocatedIntVector (Figure 2) -------------------------
    const ClassId vec = pb.declareClass(
        "SuballocatedIntVector", {"chunks", "cached", "chunkIndex",
                                  "size"});
    const int f_chunks = pb.fieldIndex(vec, "chunks");
    const int f_cached = pb.fieldIndex(vec, "cached");
    const int f_chunk_index = pb.fieldIndex(vec, "chunkIndex");
    const int f_size = pb.fieldIndex(vec, "size");

    const MethodId add_element = pb.declareMethod("addElement", 2);
    {
        auto f = pb.define(add_element);
        const Reg self = f.self();
        const Reg x = f.arg(1);
        const Reg cs = f.constant(chunk_size);
        const Label cold = f.newLabel();
        const Label done = f.newLabel();
        const Reg i = f.getField(self, f_size);
        const Reg cached = f.getField(self, f_cached);
        const Reg rel = f.binop(Bc::Rem, i, cs);
        const Reg zero = f.constant(0);
        const Reg fresh_needed = f.cmp(Bc::CmpEq, rel, zero);
        const Reg nonzero = f.cmp(Bc::CmpNe, i, zero);
        const Reg overflow = f.binop(Bc::And, fresh_needed, nonzero);
        f.branchIf(overflow, cold);
        // Hot: write into the cached chunk.
        f.astore(cached, rel, x);
        const Reg one = f.constant(1);
        f.putField(self, f_size, f.add(i, one));
        f.jump(done);
        f.bind(cold);
        // Cold: allocate the next chunk.
        const Reg next = f.newArray(cs);
        const Reg chunks = f.getField(self, f_chunks);
        const Reg ci = f.getField(self, f_chunk_index);
        const Reg one2 = f.constant(1);
        const Reg ci1 = f.add(ci, one2);
        f.astore(chunks, ci1, next);
        f.putField(self, f_chunk_index, ci1);
        f.putField(self, f_cached, next);
        const Reg z2 = f.constant(0);
        f.astore(next, z2, x);
        f.putField(self, f_size, f.add(i, one2));
        f.bind(done);
        f.retVoid();
        f.finish();
    }

    // --- Synchronized output buffer (classlib-style) --------------
    const ClassId buf = pb.declareClass(
        "SerializerBuffer", {"data", "len", "escapes"});
    const int f_data = pb.fieldIndex(buf, "data");
    const int f_len = pb.fieldIndex(buf, "len");
    const int f_escapes = pb.fieldIndex(buf, "escapes");
    const MethodId append = pb.declareMethod("append", 2,
                                             /*sync=*/true);
    {
        auto f = pb.define(append);
        const Reg data = f.getField(f.self(), f_data);
        const Reg len = f.getField(f.self(), f_len);
        const Reg cap = f.alength(data);
        const Label wrap = f.newLabel();
        const Label store = f.newLabel();
        f.branchCmp(Bc::CmpGe, len, cap, wrap);
        f.astore(data, len, f.arg(1));
        const Reg one = f.constant(1);
        f.putField(f.self(), f_len, f.add(len, one));
        f.retVoid();
        f.bind(wrap);       // cold: wrap around (ring buffer)
        const Reg zero = f.constant(0);
        f.putField(f.self(), f_len, zero);
        f.jump(store);
        f.bind(store);
        f.astore(data, zero, f.arg(1));
        const Reg one2 = f.constant(1);
        f.putField(f.self(), f_len, one2);
        f.retVoid();
        f.finish();
    }

    // --- The transform loop ---------------------------------------
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg m_data = mb.newObject(vec);
    const Reg nchunks = mb.constant(4 + 2 * events / chunk_size);
    mb.putField(m_data, f_chunks, mb.newArray(nchunks));
    const Reg first = mb.newArray(mb.constant(chunk_size));
    const Reg chunks0 = mb.getField(m_data, f_chunks);
    const Reg zero = mb.constant(0);
    mb.astore(chunks0, zero, first);
    mb.putField(m_data, f_cached, first);

    const Reg out = mb.newObject(buf);
    mb.putField(out, f_data, mb.newArray(mb.constant(1 << 15)));
    // Escape table (character entity map).
    {
        const Reg esc = mb.newArray(mb.constant(256));
        const Reg i2 = mb.constant(0);
        const Reg n2 = mb.constant(256);
        const Reg one2 = mb.constant(1);
        const Reg k2 = mb.constant(77);
        const Label fill = mb.newLabel();
        const Label filled = mb.newLabel();
        mb.bind(fill);
        mb.branchCmp(Bc::CmpGe, i2, n2, filled);
        mb.astore(esc, i2, mb.mul(i2, k2));
        mb.binopTo(Bc::Add, i2, i2, one2);
        mb.jump(fill);
        mb.bind(filled);
        mb.putField(out, f_escapes, esc);
    }

    mb.marker(10);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(events);
    const Reg one = mb.constant(1);
    const Reg seed = mb.constant(88172645463325252LL);
    const Reg hash_mul = mb.constant(6364136223846793005LL);
    const Reg hash_add = mb.constant(1442695040888963407LL);
    const Reg mask = mb.constant(0xffff);
    const Reg rare_k = mb.constant(400);    // 0.25% flush path
    const Label loop = mb.newLabel();
    const Label flush = mb.newLabel();
    const Label after = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    // token = hash(i) & 0xffff
    mb.binopTo(Bc::Mul, seed, seed, hash_mul);
    mb.binopTo(Bc::Add, seed, seed, hash_add);
    const Reg sh = mb.constant(33);
    const Reg mixed = mb.binop(Bc::Shr, seed, sh);
    const Reg token = mb.binop(Bc::And, mixed, mask);
    // Escape/transform the token: repeated reads of the buffer's
    // escape table. The cold flush arm stores to the same field
    // index, so the baseline compiler must reload table+checks per
    // access; inside atomic regions the flush edge is an assert and
    // ordinary CSE removes the redundancy (the paper's Section 2).
    const Reg h = mb.newReg();
    mb.mov(h, token);
    const Reg m255 = mb.constant(255);
    const Reg k33 = mb.constant(33);
    for (int step = 0; step < 14; ++step) {
        const Reg tbl = mb.getField(out, f_escapes);
        const Reg shv = mb.constant(3 + step * 4);
        const Reg part = mb.binop(Bc::Shr, seed, shv);
        const Reg idx2 = mb.binop(Bc::And, part, m255);
        const Reg v = mb.aload(tbl, idx2);
        const Reg scaled = mb.mul(h, k33);
        const Reg mixed2 = mb.add(scaled, v);
        mb.mov(h, mixed2);
    }
    mb.binopTo(Bc::Xor, token, token, h);
    // The hottest call site: two sequential addElement calls.
    mb.callStaticVoid(add_element, {m_data, token});
    mb.callStaticVoid(add_element, {m_data, i});
    // Serialize through the synchronized buffer.
    mb.callStaticVoid(append, {out, token});
    // Rare flush path (cold).
    const Reg rem = mb.binop(Bc::Rem, i, rare_k);
    const Reg zero2 = mb.constant(0);
    const Reg is_flush = mb.cmp(Bc::CmpEq, rem, zero2);
    mb.branchIf(is_flush, flush);
    mb.jump(after);
    mb.bind(flush);
    mb.putField(out, f_len, zero2);     // reset the buffer
    const Reg tbl2 = mb.getField(out, f_escapes);
    mb.putField(out, f_escapes, tbl2);  // "rotate" the escape table
    mb.jump(after);
    mb.bind(after);
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.marker(11);
    mb.print(mb.getField(m_data, f_size));
    mb.print(mb.getField(m_data, f_chunk_index));
    mb.print(mb.getField(out, f_len));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makeXalan()
{
    Workload w;
    w.name = "xalan";
    w.description = "Converts XML documents into HTML";
    w.paperSamples = 1;
    w.build = buildXalan;
    w.samples = {{10, 11, 1.0}};
    return w;
}

} // namespace aregion::workloads
