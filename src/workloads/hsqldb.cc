/**
 * @file
 * hsqldb analog: "Executes JDBCbench-like benchmark".
 *
 * An in-memory table engine running a transaction mix of inserts and
 * indexed lookups under coarse synchronized table methods. Targeted
 * characteristics: high region coverage (~76%), the paper's biggest
 * speedup (SLE removes the per-transaction CAS pairs and redundancy
 * elimination cleans the probe loop), a non-trivial abort rate
 * (~2.7%) whose aborts fire *early* in the region: a row-cache check
 * at the top of the lookup drifts between the profiling input and
 * the measurement input.
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildHsqldb(bool profile_variant)
{
    const int txns = profile_variant ? 2500 : 9000;
    // Row-cache hit rate: 99.6% while profiling, ~97% measured.
    const int miss_every = profile_variant ? 257 : 97;
    const int table_cap = 4096;

    ProgramBuilder pb;

    const ClassId table = pb.declareClass(
        "Table", {"keys", "values", "index", "count", "cachedKey",
                  "cachedValue", "hits", "misses"});
    const int f_keys = pb.fieldIndex(table, "keys");
    const int f_values = pb.fieldIndex(table, "values");
    const int f_index = pb.fieldIndex(table, "index");
    const int f_count = pb.fieldIndex(table, "count");
    const int f_cached_key = pb.fieldIndex(table, "cachedKey");
    const int f_cached_value = pb.fieldIndex(table, "cachedValue");
    const int f_hits = pb.fieldIndex(table, "hits");
    const int f_misses = pb.fieldIndex(table, "misses");

    // synchronized insert(key, value).
    const MethodId insert = pb.declareMethod("insert", 3,
                                             /*sync=*/true);
    {
        auto f = pb.define(insert);
        const Reg self = f.self();
        const Reg key = f.arg(1);
        const Reg value = f.arg(2);
        const Reg count = f.getField(self, f_count);
        const Reg keys = f.getField(self, f_keys);
        const Reg values = f.getField(self, f_values);
        const Reg cap = f.alength(keys);
        const Label full = f.newLabel();
        f.branchCmp(Bc::CmpGe, count, cap, full);
        f.astore(keys, count, key);
        f.astore(values, count, value);
        const Reg one = f.constant(1);
        f.putField(self, f_count, f.add(count, one));
        // Hash index: slot = key & (cap - 1).
        const Reg index = f.getField(self, f_index);
        const Reg mask = f.constant(table_cap - 1);
        const Reg slot = f.binop(Bc::And, key, mask);
        f.astore(index, slot, count);
        // Index maintenance: touch the neighbouring probe slots
        // (straight-line, keeps the method loop-free but pushes it
        // past the partial-inlining budget of the atomic compiler
        // only when combined with the checks below).
        {
            Reg acc = f.constant(0);
            for (int probe = 1; probe <= 14; ++probe) {
                const Reg kp = f.constant(probe * probe);
                const Reg pslot = f.binop(
                    Bc::And, f.add(key, kp), mask);
                const Reg pv = f.aload(index, pslot);
                acc = f.add(acc, pv);
            }
            f.putField(self, f_hits, acc);
        }
        f.retVoid();
        f.bind(full);       // cold: table wrap (reset)
        const Reg zero = f.constant(0);
        f.putField(self, f_count, zero);
        f.retVoid();
        f.finish();
    }

    // synchronized lookup(key): row-cache probe first (the early
    // abort site), then the index, then a short scan.
    const MethodId lookup = pb.declareMethod("lookup", 2,
                                             /*sync=*/true);
    {
        auto f = pb.define(lookup);
        const Reg self = f.self();
        const Reg key = f.arg(1);
        const Label slow = f.newLabel();
        const Reg cached = f.getField(self, f_cached_key);
        // Early check: drifts warm in the measurement input.
        f.branchCmp(Bc::CmpNe, cached, key, slow);
        const Reg hits = f.getField(self, f_hits);
        const Reg one = f.constant(1);
        f.putField(self, f_hits, f.add(hits, one));
        f.ret(f.getField(self, f_cached_value));
        f.bind(slow);
        const Reg misses = f.getField(self, f_misses);
        const Reg one2 = f.constant(1);
        f.putField(self, f_misses, f.add(misses, one2));
        const Reg index = f.getField(self, f_index);
        const Reg mask = f.constant(table_cap - 1);
        const Reg slot = f.binop(Bc::And, key, mask);
        const Reg row = f.aload(index, slot);
        const Reg values = f.getField(self, f_values);
        const Reg cap = f.alength(values);
        const Label miss = f.newLabel();
        f.branchCmp(Bc::CmpGe, row, cap, miss);
        const Reg value = f.aload(values, row);
        // Row validation: checksum nearby rows (straight-line).
        {
            Reg acc = f.newReg();
            f.mov(acc, value);
            const Reg vmask = f.constant(table_cap - 1);
            for (int probe = 1; probe <= 16; ++probe) {
                const Reg kp = f.constant(probe * 31);
                const Reg pslot = f.binop(
                    Bc::And, f.add(row, kp), vmask);
                const Reg pv = f.aload(values, pslot);
                acc = f.add(acc, pv);
            }
            f.putField(self, f_misses, acc);
        }
        f.putField(self, f_cached_key, key);
        f.putField(self, f_cached_value, value);
        f.ret(value);
        f.bind(miss);
        const Reg zero = f.constant(0);
        f.ret(zero);
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg t = mb.newObject(table);
    mb.putField(t, f_keys, mb.newArray(mb.constant(table_cap)));
    mb.putField(t, f_values, mb.newArray(mb.constant(table_cap)));
    mb.putField(t, f_index, mb.newArray(mb.constant(table_cap)));

    mb.marker(10);
    const Reg i = mb.constant(0);
    const Reg n = mb.constant(txns);
    const Reg one = mb.constant(1);
    const Reg acc = mb.constant(0);
    const Reg key = mb.constant(17);
    const Reg key_step = mb.constant(7);
    const Reg key_mask = mb.constant(table_cap - 1);
    const Reg miss_k = mb.constant(miss_every);
    const Label loop = mb.newLabel();
    const Label do_insert = mb.newLabel();
    const Label after = mb.newLabel();
    const Label done = mb.newLabel();
    mb.bind(loop);
    mb.branchCmp(Bc::CmpGe, i, n, done);
    // Transaction mix: 1 insert : 3 lookups (same key -> row cache
    // hits except when the key jumps).
    const Reg m4 = mb.constant(4);
    const Reg kind = mb.binop(Bc::Rem, i, m4);
    const Reg zero = mb.constant(0);
    const Reg is_insert = mb.cmp(Bc::CmpEq, kind, zero);
    mb.branchIf(is_insert, do_insert);
    // Lookup path; every miss_every-th txn jumps the key (cache
    // miss -> the early branch in lookup goes down the slow path).
    const Reg jmp = mb.binop(Bc::Rem, i, miss_k);
    const Reg is_jump = mb.cmp(Bc::CmpEq, jmp, zero);
    const Label no_jump = mb.newLabel();
    const Label lk = mb.newLabel();
    mb.branchIf(is_jump, lk);
    mb.jump(no_jump);
    mb.bind(lk);
    const Reg stepped = mb.add(key, key_step);
    const Reg wrapped = mb.binop(Bc::And, stepped, key_mask);
    mb.mov(key, wrapped);
    mb.jump(no_jump);
    mb.bind(no_jump);
    const Reg v = mb.callStatic(lookup, {t, key});
    mb.binopTo(Bc::Add, acc, acc, v);
    mb.jump(after);
    mb.bind(do_insert);
    const Reg ik = mb.binop(Bc::And, i, key_mask);
    mb.callStaticVoid(insert, {t, ik, i});
    mb.jump(after);
    mb.bind(after);
    mb.binopTo(Bc::Add, i, i, one);
    mb.safepoint();
    mb.jump(loop);
    mb.bind(done);
    mb.marker(11);
    mb.print(acc);
    mb.print(mb.getField(t, f_count));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makeHsqldb()
{
    Workload w;
    w.name = "hsqldb";
    w.description = "Executes JDBCbench-like benchmark";
    w.paperSamples = 1;
    w.build = buildHsqldb;
    w.samples = {{10, 11, 1.0}};
    return w;
}

} // namespace aregion::workloads
