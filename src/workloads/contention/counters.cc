/**
 * @file
 * Contended striped counters: the minimal true-sharing torture.
 *
 * One shared object carries kStripes counter fields — deliberately
 * adjacent, so several stripes land on the same L1 line and even
 * workers bumping *different* stripes collide at the line-granular
 * conflict detector. Each worker loops `iters` times bumping stripe
 * (worker_id % kStripes) under the shared monitor; SLE turns every
 * critical section into an atomic region, so under multi-context
 * load the regions overlap in time and genuine ownership conflicts
 * fire.
 *
 * Printed output is interleaving-invariant: the sum over all stripes
 * is exactly contexts * iters regardless of schedule.
 */

#include "workloads/contention/contention.hh"

#include "vm/builder.hh"

namespace aregion::workloads::contention {

namespace {

constexpr int kStripes = 8;

vm::Program
buildStripedCounters(int contexts, bool profile_variant)
{
    using namespace aregion::vm;
    const int iters = profile_variant ? 12 : 48;

    ProgramBuilder pb;
    std::vector<std::string> fields;
    for (int s = 0; s < kStripes; ++s)
        fields.push_back("c" + std::to_string(s));
    fields.push_back("done");
    const ClassId shared = pb.declareClass("Stripes", fields);
    const int f_done = pb.fieldIndex(shared, "done");

    // worker(obj, stripe_field): bump one stripe `iters` times under
    // the shared monitor. The stripe index is baked per spawn so the
    // field offset is a compile-time constant in the region body —
    // one method, every worker, maximal code sharing.
    const MethodId worker = pb.declareMethod("worker", 2);
    {
        auto w = pb.define(worker);
        const Reg obj = w.arg(0);
        const Reg stripe = w.arg(1);
        const Reg i = w.constant(0);
        const Reg n = w.constant(iters);
        const Reg one = w.constant(1);
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        w.monitorEnter(obj);
        // Field offsets must be constants, so dispatch on the stripe
        // argument: stripe s bumps field c_s.
        std::vector<Label> bumps;
        const Label after = w.newLabel();
        for (int s = 0; s < kStripes; ++s)
            bumps.push_back(w.newLabel());
        for (int s = 0; s < kStripes; ++s) {
            const Reg sv = w.constant(s);
            w.branchCmp(Bc::CmpEq, stripe, sv, bumps[s]);
        }
        w.jump(after);
        for (int s = 0; s < kStripes; ++s) {
            w.bind(bumps[s]);
            const int f = pb.fieldIndex(shared, "c" + std::to_string(s));
            const Reg c = w.getField(obj, f);
            w.putField(obj, f, w.add(c, one));
            w.jump(after);
        }
        w.bind(after);
        w.monitorExit(obj);
        w.binopTo(Bc::Add, i, i, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(obj);
        const Reg d = w.getField(obj, f_done);
        w.putField(obj, f_done, w.add(d, one));
        w.monitorExit(obj);
        w.retVoid();
        w.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg obj = mb.newObject(shared);
    for (int t = 0; t < contexts; ++t)
        mb.spawn(worker, {obj, mb.constant(t % kStripes)});
    const Reg want = mb.constant(contexts);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    mb.safepoint();
    const Reg d = mb.getField(obj, f_done);
    mb.branchCmp(Bc::CmpGe, d, want, ready);
    mb.jump(wait);
    mb.bind(ready);
    Reg sum = mb.constant(0);
    for (int s = 0; s < kStripes; ++s) {
        const int f = pb.fieldIndex(shared, "c" + std::to_string(s));
        sum = mb.add(sum, mb.getField(obj, f));
    }
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    return pb.build();
}

} // namespace

ContentionWorkload
makeStripedCounters()
{
    ContentionWorkload w;
    w.name = "counters";
    w.description = "contended striped counters on shared L1 lines";
    w.build = buildStripedCounters;
    return w;
}

} // namespace aregion::workloads::contention
