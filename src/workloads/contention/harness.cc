/**
 * @file
 * Contention harness: one grid cell = profile, compile (atomic +
 * SLE), run on contexts+1 hardware contexts with the cross-context
 * rollback oracle and the contention governor attached, then
 * differentially check the printed output against the reference
 * interpreter.
 *
 * The harness drives the pipeline directly (like
 * testing/diff_harness.cc) instead of runtime::runExperiment because
 * the experiment driver cannot attach an oracle or a
 * ContentionControl — and those are the whole point here.
 */

#include "workloads/contention/contention.hh"

#include <sstream>

#include "core/compiler.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/bisim.hh"
#include "hw/oracle.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/interpreter.hh"

namespace aregion::workloads::contention {

const std::vector<ContentionWorkload> &
contentionSuite()
{
    static const std::vector<ContentionWorkload> suite = [] {
        std::vector<ContentionWorkload> w;
        w.push_back(makeStripedCounters());
        w.push_back(makeStripedHashTable());
        w.push_back(makeMpmcQueue());
        return w;
    }();
    return suite;
}

const ContentionWorkload &
contentionWorkloadByName(const std::string &name)
{
    for (const ContentionWorkload &w : contentionSuite()) {
        if (w.name == name)
            return w;
    }
    AREGION_PANIC("unknown contention workload ", name);
}

std::string
replayCommand(const std::string &workload, int contexts,
              uint64_t seed, bool injected)
{
    std::ostringstream os;
    os << "bench_contention --workload " << workload << " --contexts "
       << contexts << " --seed " << seed;
    if (injected)
        os << " --inject";
    return os.str();
}

namespace {

/** Region tuning that forms regions around the workloads' short
 *  critical-section loops (the paper's defaults target 200-op
 *  traces; these bodies are 20–40 uops). */
core::RegionConfig
contentionRegions()
{
    core::RegionConfig rc;
    rc.loopPathThreshold = 20;
    rc.targetSize = 40;
    rc.minRegionInstrs = 4;
    return rc;
}

std::string
outputString(const std::vector<int64_t> &out)
{
    std::ostringstream os;
    os << "[" << out.size() << "]";
    const size_t show = out.size() < 8 ? out.size() : 8;
    for (size_t i = 0; i < show; ++i)
        os << " " << out[i];
    if (show < out.size())
        os << " ...";
    return os.str();
}

} // namespace

CellResult
runContentionCell(const ContentionWorkload &workload,
                  const ContentionRunConfig &cfg)
{
    CellResult cell;
    cell.workload = workload.name;
    cell.contexts = cfg.contexts;
    cell.seed = cfg.seed;

    // Spawned workers + the coordinating main context.
    const int hw_ctxs = cfg.contexts + 1;
    const std::string replay = replayCommand(
        workload.name, cfg.contexts, cfg.seed, /*injected=*/false);
    auto problem = [&](const std::string &what) {
        std::ostringstream os;
        os << what << " [workload=" << workload.name
           << " contexts=" << cfg.contexts << " seed=" << cfg.seed
           << "; replay: " << replay << "]";
        cell.problems.push_back(os.str());
    };

    // Stage 1: profile on the small variant (pc-compatible with the
    // measured program; only immediates differ).
    const vm::Program profile_prog =
        workload.build(cfg.contexts, /*profile_variant=*/true);
    const vm::Program prog =
        workload.build(cfg.contexts, /*profile_variant=*/false);
    vm::Profile profile(profile_prog);
    {
        vm::Interpreter interp(profile_prog, &profile, cfg.heapWords,
                               hw_ctxs);
        const auto res = interp.run();
        if (!res.completed) {
            problem("profiling interpreter did not complete");
            return cell;
        }
    }

    // Stage 2: compile atomic + SLE with small-program region tuning.
    core::CompilerConfig cc = core::CompilerConfig::atomic();
    cc.region = contentionRegions();
    const core::Compiled compiled =
        core::compileProgram(prog, profile, cc);

    // Stage 3: the machine, oracle, and governor.
    vm::Heap layout_heap(prog, cfg.heapWords, hw_ctxs);
    const hw::LayoutInfo layout = hw::LayoutInfo::fromHeap(layout_heap);
    const hw::MachineProgram mp = hw::lowerModule(compiled.mod, layout);

    hw::HwConfig hw_cfg;
    hw_cfg.maxContexts = hw_ctxs;
    hw_cfg.quantum = cfg.quantum;

    hw::Machine machine(mp, hw_cfg, nullptr, cfg.heapWords);
    hw::RollbackOracle oracle;
    if (cfg.oracle) {
        oracle.setReplayInfo(cfg.seed, replay);
        machine.setOracle(&oracle);
    }
    hw::BisimOracle bisim(mp);
    if (cfg.bisim) {
        bisim.setReplayInfo(cfg.seed, replay);
        machine.setBisimOracle(&bisim);
    }
    runtime::ContentionPolicy policy = cfg.policy;
    policy.seed = cfg.seed;
    runtime::ContentionGovernor governor(policy);
    if (cfg.governor)
        machine.setContentionControl(&governor);

    hw::MachineResult res;
    try {
        res = machine.run(cfg.machineMaxUops);
    } catch (const vm::Trap &) {
        problem("machine raised an unhandled trap");
        return cell;
    }

    cell.completed = res.completed;
    cell.regionEntries = res.regionEntries;
    cell.regionCommits = res.regionCommits;
    cell.injectedConflicts = res.injectedConflicts;
    cell.injectedCommitStalls = res.injectedCommitStalls;
    cell.allContextUops = res.allContextUops;
    cell.backoffSteps = governor.backoffSteps();
    cell.starvationBoosts = governor.starvationBoosts();
    cell.livelockBreaks = governor.livelockBreaks();
    cell.oracleCommitChecks = oracle.commitChecks();
    cell.oracleConflictHeapChecks = oracle.conflictHeapChecks();
    cell.bisimChecks = bisim.checks();
    cell.bisimReplayedUops = bisim.replayedUops();
    for (const auto &[key, rr] : res.regions) {
        cell.totalAborts += rr.totalAborts();
        cell.conflictAborts += rr.abortsByCause[static_cast<int>(
            hw::AbortCause::Conflict)];
    }
    if (!res.completed) {
        problem(res.trap ? "machine trapped" :
                           "machine hit the uop budget");
        return cell;
    }
    for (const auto &d : oracle.divergences())
        cell.problems.push_back("oracle ctx " +
                                std::to_string(d.ctxId) + ": " +
                                d.what);
    for (const auto &d : bisim.divergences())
        cell.problems.push_back("bisim ctx " +
                                std::to_string(d.ctxId) + ": " +
                                d.what);

    // Stage 4: differential output check against the reference
    // interpreter. Workloads print only interleaving-invariant
    // values, so one interpreter run covers every machine schedule.
    vm::Interpreter ref(prog, nullptr, cfg.heapWords, hw_ctxs);
    const auto ref_res = ref.run();
    if (!ref_res.completed) {
        problem("reference interpreter did not complete");
        return cell;
    }
    cell.outputMatches = ref.output() == res.output;
    if (!cell.outputMatches) {
        problem("output mismatch: interp=" +
                outputString(ref.output()) +
                " machine=" + outputString(res.output));
    }
    return cell;
}

std::vector<CellResult>
runContentionGrid(const std::vector<GridCell> &cells)
{
    std::vector<CellResult> results(cells.size());
    parallel::runGrid(cells.size(), [&](size_t i) {
        results[i] =
            runContentionCell(*cells[i].workload, cells[i].cfg);
    });

    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    uint64_t checks = 0, divergences = 0;
    for (const CellResult &r : results) {
        checks += r.oracleCommitChecks + r.oracleConflictHeapChecks +
                  r.bisimChecks;
        divergences += r.problems.size();
    }
    reg.add(keys::kContentionCells, results.size());
    reg.add(keys::kContentionOracleChecks, checks);
    reg.add(keys::kContentionDivergences, divergences);
    return results;
}

} // namespace aregion::workloads::contention
