/**
 * @file
 * MPMC bounded ring queue: producers and consumers share one
 * monitor, one ring buffer, and four hot index/accumulator fields.
 *
 * Half the contexts produce (push base+j+1 for j < iters), half
 * consume (pop into a shared sum until the global popped count hits
 * the total). Every operation touches head/tail/size on the same
 * lines, so elided critical sections conflict on nearly every
 * overlap; the full-queue and empty-queue retry paths additionally
 * exercise abort-then-retry progress (a spinning producer's region
 * only succeeds after a consumer's commit invalidates its read of
 * `size` — conflict abort as a *progress* mechanism).
 *
 * Printed output — the value sum and the popped count — is a pure
 * function of the multiset of pushed values.
 */

#include "workloads/contention/contention.hh"

#include "vm/builder.hh"

namespace aregion::workloads::contention {

namespace {

constexpr int kRingCap = 16;

vm::Program
buildMpmcQueue(int contexts, bool profile_variant)
{
    using namespace aregion::vm;
    const int iters = profile_variant ? 8 : 32;
    const int producers = contexts > 1 ? contexts / 2 : 1;
    const int consumers = contexts - producers;
    const int total = producers * iters;

    ProgramBuilder pb;
    const ClassId q_cls = pb.declareClass(
        "Queue",
        {"buf", "hidx", "tidx", "size", "popped", "sum", "done"});
    const int f_buf = pb.fieldIndex(q_cls, "buf");
    const int f_hidx = pb.fieldIndex(q_cls, "hidx");
    const int f_tidx = pb.fieldIndex(q_cls, "tidx");
    const int f_size = pb.fieldIndex(q_cls, "size");
    const int f_popped = pb.fieldIndex(q_cls, "popped");
    const int f_sum = pb.fieldIndex(q_cls, "sum");
    const int f_done = pb.fieldIndex(q_cls, "done");

    // producer(q, base): push base+j+1 for j in [0, iters). A full
    // ring releases the monitor and retries; the critical section
    // keeps exactly one enter/exit pair on every path so SLE elides
    // it.
    const MethodId producer = pb.declareMethod("producer", 2);
    {
        auto w = pb.define(producer);
        const Reg q = w.arg(0);
        const Reg base = w.arg(1);
        const Reg j = w.constant(0);
        const Reg n = w.constant(iters);
        const Reg one = w.constant(1);
        const Reg cap = w.constant(kRingCap);
        const Reg did = w.newReg();
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        const Label unlock = w.newLabel();
        const Label next = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, j, n, done);
        w.constTo(did, 0);
        w.monitorEnter(q);
        const Reg size = w.getField(q, f_size);
        w.branchCmp(Bc::CmpGe, size, cap, unlock);   // full: retry
        const Reg buf = w.getField(q, f_buf);
        const Reg tidx = w.getField(q, f_tidx);
        const Reg val = w.add(w.add(base, j), one);
        w.astore(buf, tidx, val);
        w.putField(q, f_tidx,
                   w.binop(Bc::Rem, w.add(tidx, one), cap));
        w.putField(q, f_size, w.add(size, one));
        w.constTo(did, 1);
        w.bind(unlock);
        w.monitorExit(q);
        w.branchIf(did, next);
        w.safepoint();
        w.jump(loop);       // ring was full; try again
        w.bind(next);
        w.binopTo(Bc::Add, j, j, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(q);
        const Reg d = w.getField(q, f_done);
        w.putField(q, f_done, w.add(d, one));
        w.monitorExit(q);
        w.retVoid();
        w.finish();
    }

    // consumer(q): pop into the shared sum until the global popped
    // count reaches `total` (checked under the same monitor, so the
    // exit decision is race-free).
    const MethodId consumer = pb.declareMethod("consumer", 1);
    {
        auto w = pb.define(consumer);
        const Reg q = w.arg(0);
        const Reg one = w.constant(1);
        const Reg cap = w.constant(kRingCap);
        const Reg want = w.constant(total);
        const Reg fin = w.newReg();
        const Label loop = w.newLabel();
        const Label check = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.constTo(fin, 0);
        w.monitorEnter(q);
        const Reg size = w.getField(q, f_size);
        const Reg empty_skip = w.cmp(Bc::CmpLe, size, w.constant(0));
        w.branchIf(empty_skip, check);
        const Reg buf = w.getField(q, f_buf);
        const Reg hidx = w.getField(q, f_hidx);
        const Reg v = w.aload(buf, hidx);
        w.putField(q, f_hidx,
                   w.binop(Bc::Rem, w.add(hidx, one), cap));
        w.putField(q, f_size, w.sub(size, one));
        w.putField(q, f_sum, w.add(w.getField(q, f_sum), v));
        w.putField(q, f_popped,
                   w.add(w.getField(q, f_popped), one));
        w.bind(check);
        const Reg popped = w.getField(q, f_popped);
        w.binopTo(Bc::CmpGe, fin, popped, want);
        w.monitorExit(q);
        w.branchIf(fin, done);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(q);
        const Reg d = w.getField(q, f_done);
        w.putField(q, f_done, w.add(d, one));
        w.monitorExit(q);
        w.retVoid();
        w.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg q = mb.newObject(q_cls);
    mb.putField(q, f_buf, mb.newArray(mb.constant(kRingCap)));
    for (int t = 0; t < producers; ++t)
        mb.spawn(producer, {q, mb.constant(t * iters)});
    for (int t = 0; t < consumers; ++t)
        mb.spawn(consumer, {q});
    const Reg want = mb.constant(producers + consumers);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    mb.safepoint();
    const Reg d = mb.getField(q, f_done);
    mb.branchCmp(Bc::CmpGe, d, want, ready);
    mb.jump(wait);
    mb.bind(ready);
    mb.print(mb.getField(q, f_sum));
    mb.print(mb.getField(q, f_popped));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    return pb.build();
}

} // namespace

ContentionWorkload
makeMpmcQueue()
{
    ContentionWorkload w;
    w.name = "mpmc_queue";
    w.description =
        "bounded MPMC ring queue, shared head/tail/sum lines";
    w.build = buildMpmcQueue;
    return w;
}

} // namespace aregion::workloads::contention
