/**
 * @file
 * Contention torture workloads and their harness.
 *
 * The DaCapo-analog suite (workloads/workload.hh) is single-context
 * on purpose — the paper's figures measure one benchmark thread — so
 * `machine.abort.conflict` stays at zero across every figure. This
 * subsystem exists to make conflict aborts *real*: three genuinely
 * shared-heap workloads whose worker contexts hammer the same cache
 * lines through speculatively-elided monitors (paper Section 5.2),
 * parameterized over 2–32 hardware contexts.
 *
 * Every workload prints only interleaving-invariant values (counts
 * and sums), so one interpreter run is a semantic oracle for any
 * machine schedule, and the cross-context rollback oracle
 * (hw/oracle.hh) audits global heap consistency and commit-order
 * serializability while the regions fight.
 */

#ifndef AREGION_WORKLOADS_CONTENTION_CONTENTION_HH
#define AREGION_WORKLOADS_CONTENTION_CONTENTION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/resilience.hh"
#include "vm/program.hh"

namespace aregion::workloads::contention {

/** One shared-heap workload, parameterized by worker count. */
struct ContentionWorkload
{
    std::string name;
    std::string description;

    /**
     * Build the program: `contexts` spawned workers plus the main
     * (coordinator) context; profile_variant shrinks the iteration
     * counts for the profiling run.
     */
    std::function<vm::Program(int contexts, bool profile_variant)>
        build;
};

/** Striped counters / lock-striped hash table / MPMC ring queue. */
const std::vector<ContentionWorkload> &contentionSuite();

/** Lookup by name; panics when unknown. */
const ContentionWorkload &
contentionWorkloadByName(const std::string &name);

/** Factories (registry building blocks and tests). */
ContentionWorkload makeStripedCounters();
ContentionWorkload makeStripedHashTable();
ContentionWorkload makeMpmcQueue();

/** One grid cell's configuration. */
struct ContentionRunConfig
{
    int contexts = 4;               ///< spawned workers (2..32)
    uint64_t seed = 0;              ///< governor jitter / replay id
    uint64_t heapWords = 1ull << 22;

    /**
     * Scheduler quantum. A small prime forces context switches in
     * the middle of open regions, so speculative footprints overlap
     * in time and ownership races actually happen; the default
     * quantum (50) lets short regions serialize accidentally.
     */
    uint64_t quantum = 13;

    uint64_t machineMaxUops = 1ull << 30;

    /** Attach the ContentionGovernor (backoff/fairness/livelock). */
    bool governor = true;
    runtime::ContentionPolicy policy;

    /** Attach the cross-context rollback oracle. */
    bool oracle = true;

    /** Attach the deopt bisimulation oracle (hw/bisim.hh): every
     *  abort — including conflict aborts between fighting contexts —
     *  is replayed non-speculatively from its checkpoint and must
     *  reach the state the hardware left behind. */
    bool bisim = true;
};

/** Everything one cell reports. */
struct CellResult
{
    std::string workload;
    int contexts = 0;
    uint64_t seed = 0;

    bool completed = false;
    bool outputMatches = false;     ///< machine == interpreter

    uint64_t regionEntries = 0;
    uint64_t regionCommits = 0;
    uint64_t totalAborts = 0;
    uint64_t conflictAborts = 0;    ///< genuine + injected
    uint64_t injectedConflicts = 0;
    uint64_t injectedCommitStalls = 0;
    uint64_t allContextUops = 0;

    uint64_t backoffSteps = 0;
    uint64_t starvationBoosts = 0;
    uint64_t livelockBreaks = 0;

    uint64_t oracleCommitChecks = 0;
    uint64_t oracleConflictHeapChecks = 0;
    uint64_t bisimChecks = 0;           ///< aborts bisim-replayed
    uint64_t bisimReplayedUops = 0;

    /** Oracle divergences + differential mismatches, already
     *  stamped with seed/ctx/replay coordinates. */
    std::vector<std::string> problems;
};

/**
 * Run one cell: profile, compile (atomic + SLE), and execute the
 * workload on `contexts + 1` hardware contexts with the oracle and
 * governor attached, then differentially compare the output against
 * the reference interpreter. Does not touch the failpoint registry:
 * whatever is armed process-wide (e.g. machine.conflict) applies.
 */
CellResult runContentionCell(const ContentionWorkload &workload,
                             const ContentionRunConfig &cfg);

/** A (workload, contexts, seed) grid point. */
struct GridCell
{
    const ContentionWorkload *workload;
    ContentionRunConfig cfg;
};

/**
 * Run a grid of cells via parallel::runGrid (results in cell order,
 * independent of completion order) and publish `contention.*`
 * telemetry. Failpoint arming is grid-scoped, not cell-scoped — arm
 * before calling, disarm after — because the registry is
 * process-global and arming mid-grid would race evaluate().
 */
std::vector<CellResult> runContentionGrid(
    const std::vector<GridCell> &cells);

/** The canonical one-line replay command for a cell (what the
 *  oracle stamps into its failure messages). */
std::string replayCommand(const std::string &workload, int contexts,
                          uint64_t seed, bool injected);

} // namespace aregion::workloads::contention

#endif // AREGION_WORKLOADS_CONTENTION_CONTENTION_HH
