/**
 * @file
 * Lock-striped hash table: insert-only, four stripes, one monitor
 * per stripe.
 *
 * Every worker inserts a distinct key range (base..base+iters-1), so
 * the final table contents are schedule-independent, but key & 3
 * spreads each range across all four stripes — every worker visits
 * every stripe and the per-stripe critical sections (read count,
 * append to two arrays, bump count) collide constantly. Stripe
 * counts and key/value sums are interleaving-invariant, so they are
 * the printed output.
 */

#include "workloads/contention/contention.hh"

#include "vm/builder.hh"

namespace aregion::workloads::contention {

namespace {

constexpr int kTableStripes = 4;

vm::Program
buildStripedHashTable(int contexts, bool profile_variant)
{
    using namespace aregion::vm;
    const int iters = profile_variant ? 8 : 24;

    ProgramBuilder pb;
    const ClassId stripe_cls =
        pb.declareClass("Stripe", {"keys", "vals", "count"});
    const int f_keys = pb.fieldIndex(stripe_cls, "keys");
    const int f_vals = pb.fieldIndex(stripe_cls, "vals");
    const int f_count = pb.fieldIndex(stripe_cls, "count");

    const ClassId table_cls =
        pb.declareClass("Table", {"s0", "s1", "s2", "s3", "done"});
    const int f_done = pb.fieldIndex(table_cls, "done");
    int f_stripe[kTableStripes];
    for (int s = 0; s < kTableStripes; ++s)
        f_stripe[s] =
            pb.fieldIndex(table_cls, "s" + std::to_string(s));

    // worker(table, base): insert keys base..base+iters-1, each into
    // stripe (key & 3) under that stripe's monitor.
    const MethodId worker = pb.declareMethod("worker", 2);
    {
        auto w = pb.define(worker);
        const Reg table = w.arg(0);
        const Reg base = w.arg(1);
        const Reg i = w.constant(0);
        const Reg n = w.constant(iters);
        const Reg one = w.constant(1);
        const Reg three = w.constant(3);
        const Reg vmul = w.constant(5);
        // Single receiver vreg for the monitor pair: SLE requires
        // balanced enter/exit on the *same* vreg, so every dispatch
        // arm writes its stripe ref here.
        const Reg stripe = w.newReg();
        const Label loop = w.newLabel();
        const Label done = w.newLabel();
        w.bind(loop);
        w.branchCmp(Bc::CmpGe, i, n, done);
        const Reg key = w.add(base, i);
        const Reg h = w.binop(Bc::And, key, three);
        const Label locked = w.newLabel();
        std::vector<Label> arms;
        for (int s = 0; s < kTableStripes; ++s)
            arms.push_back(w.newLabel());
        for (int s = 0; s < kTableStripes; ++s)
            w.branchCmp(Bc::CmpEq, h, w.constant(s), arms[s]);
        w.jump(locked);     // unreachable; keeps the CFG closed
        for (int s = 0; s < kTableStripes; ++s) {
            w.bind(arms[s]);
            w.getFieldTo(stripe, table, f_stripe[s]);
            w.jump(locked);
        }
        w.bind(locked);
        w.monitorEnter(stripe);
        const Reg keys = w.getField(stripe, f_keys);
        const Reg vals = w.getField(stripe, f_vals);
        const Reg idx = w.getField(stripe, f_count);
        w.astore(keys, idx, key);
        w.astore(vals, idx, w.mul(key, vmul));
        w.putField(stripe, f_count, w.add(idx, one));
        w.monitorExit(stripe);
        w.binopTo(Bc::Add, i, i, one);
        w.safepoint();
        w.jump(loop);
        w.bind(done);
        w.monitorEnter(table);
        const Reg d = w.getField(table, f_done);
        w.putField(table, f_done, w.add(d, one));
        w.monitorExit(table);
        w.retVoid();
        w.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg table = mb.newObject(table_cls);
    const Reg cap = mb.constant(contexts * iters);
    for (int s = 0; s < kTableStripes; ++s) {
        const Reg so = mb.newObject(stripe_cls);
        mb.putField(so, f_keys, mb.newArray(cap));
        mb.putField(so, f_vals, mb.newArray(cap));
        mb.putField(table, f_stripe[s], so);
    }
    for (int t = 0; t < contexts; ++t)
        mb.spawn(worker, {table, mb.constant(t * iters)});
    const Reg want = mb.constant(contexts);
    const Label wait = mb.newLabel();
    const Label ready = mb.newLabel();
    mb.bind(wait);
    mb.safepoint();
    const Reg d = mb.getField(table, f_done);
    mb.branchCmp(Bc::CmpGe, d, want, ready);
    mb.jump(wait);
    mb.bind(ready);
    // Per stripe: count, key sum, value sum. All are functions of
    // the key *set*, never of insertion order.
    const Reg one = mb.constant(1);
    for (int s = 0; s < kTableStripes; ++s) {
        const Reg so = mb.getField(table, f_stripe[s]);
        const Reg cnt = mb.getField(so, f_count);
        mb.print(cnt);
        const Reg keys = mb.getField(so, f_keys);
        const Reg vals = mb.getField(so, f_vals);
        const Reg j = mb.constant(0);
        Reg ksum = mb.constant(0);
        Reg vsum = mb.constant(0);
        const Label sloop = mb.newLabel();
        const Label sdone = mb.newLabel();
        mb.bind(sloop);
        mb.branchCmp(Bc::CmpGe, j, cnt, sdone);
        mb.binopTo(Bc::Add, ksum, ksum, mb.aload(keys, j));
        mb.binopTo(Bc::Add, vsum, vsum, mb.aload(vals, j));
        mb.binopTo(Bc::Add, j, j, one);
        mb.safepoint();
        mb.jump(sloop);
        mb.bind(sdone);
        mb.print(ksum);
        mb.print(vsum);
    }
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);
    return pb.build();
}

} // namespace

ContentionWorkload
makeStripedHashTable()
{
    ContentionWorkload w;
    w.name = "hashtable";
    w.description = "lock-striped insert-only hash table, 4 stripes";
    w.build = buildStripedHashTable;
    return w;
}

} // namespace aregion::workloads::contention
