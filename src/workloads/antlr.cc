/**
 * @file
 * antlr analog: "Generates parser/lexical analyzer".
 *
 * A tokenizer with many tiny (inlinable) classification helpers and
 * synchronized token-buffer appends feeds a large rule-walking
 * parser whose body is peppered with calls to medium-sized helpers
 * that exceed every inlining budget — those calls terminate atomic
 * regions, keeping region coverage low (~9%, the paper's Table 3)
 * even though roughly two thirds of the instructions *inside* the
 * tokenizer regions optimize away. Four input files = four samples.
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildAntlr(bool profile_variant)
{
    const int file_len = profile_variant ? 1200 : 3600;

    ProgramBuilder pb;

    const ClassId tokens = pb.declareClass("TokenBuffer",
                                           {"data", "len"});
    const int f_data = pb.fieldIndex(tokens, "data");
    const int f_len = pb.fieldIndex(tokens, "len");
    const MethodId append = pb.declareMethod("appendToken", 2,
                                             /*sync=*/true);
    {
        auto f = pb.define(append);
        const Reg data = f.getField(f.self(), f_data);
        const Reg len = f.getField(f.self(), f_len);
        const Reg cap = f.alength(data);
        const Label wrap = f.newLabel();
        f.branchCmp(Bc::CmpGe, len, cap, wrap);
        f.astore(data, len, f.arg(1));
        const Reg one = f.constant(1);
        f.putField(f.self(), f_len, f.add(len, one));
        f.retVoid();
        f.bind(wrap);       // cold
        const Reg zero = f.constant(0);
        f.putField(f.self(), f_len, zero);
        f.retVoid();
        f.finish();
    }

    // Character-class table holder; the rare control-character arm
    // stores to `table`, blocking the baseline's cross-iteration
    // reuse of the table load and its checks (regions prune it).
    const ClassId lexcls = pb.declareClass("LexTables",
                                           {"table", "controls"});
    const int f_table = pb.fieldIndex(lexcls, "table");
    const int f_controls = pb.fieldIndex(lexcls, "controls");

    // The tokenizer: the region-friendly hot loop. Per character it
    // re-reads the class table (real lexers do, through accessors);
    // the rare control-character arm stores to the holder's fields,
    // so baseline AVAIL loses the loads at the loop join while the
    // atomic regions (control arm pruned to an assert) keep them.
    const MethodId tokenize = pb.declareMethod("tokenize", 4);
    {
        auto f = pb.define(tokenize);
        const Reg input = f.arg(0);
        const Reg buffer = f.arg(1);
        const Reg lex = f.arg(2);
        const Reg from = f.arg(3);
        const Reg len = f.alength(input);
        const Reg i = f.newReg();
        f.mov(i, from);
        const Reg stop = f.add(from, f.constant(48));
        const Reg token = f.constant(0);
        const Reg one = f.constant(1);
        const Label loop = f.newLabel();
        const Label flush = f.newLabel();
        const Label control = f.newLabel();
        const Label cont = f.newLabel();
        const Label done = f.newLabel();
        f.bind(loop);
        f.branchCmp(Bc::CmpGe, i, stop, done);
        f.branchCmp(Bc::CmpGe, i, len, done);
        const Reg c = f.aload(input, i);
        const Reg tbl = f.getField(lex, f_table);
        const Reg word = f.aload(tbl, c);
        // Rare control character (c == 127: ~0.8%).
        const Reg k127 = f.constant(127);
        const Reg is_ctl = f.cmp(Bc::CmpEq, c, k127);
        f.branchIf(is_ctl, control);
        f.branchIf(word, cont);
        f.jump(flush);
        f.bind(control);    // cold: rotate tables, count controls
        {
            const Reg ctl = f.getField(lex, f_controls);
            f.putField(lex, f_controls, f.add(ctl, one));
            f.putField(lex, f_table, tbl);
        }
        f.jump(cont);
        f.bind(flush);      // separator: emit accumulated token
        f.callStaticVoid(append, {buffer, token});
        const Reg zero = f.constant(0);
        f.mov(token, zero);
        f.jump(cont);
        f.bind(cont);
        const Reg tbl2 = f.getField(lex, f_table);
        const Reg weight = f.aload(tbl2, c);
        const Reg k31 = f.constant(31);
        const Reg scaled = f.mul(token, k31);
        const Reg wc = f.add(c, weight);
        f.binopTo(Bc::Add, token, scaled, wc);
        f.binopTo(Bc::Add, i, i, one);
        f.jump(loop);
        f.bind(done);
        f.ret(token);
        f.finish();
    }

    // A medium helper too big to inline even at 5x budget: its call
    // sites break regions inside the parser.
    const MethodId grind = pb.declareMethod("grind", 2);
    {
        auto f = pb.define(grind);
        Reg acc = f.arg(0);
        const Reg salt = f.arg(1);
        // Long straightline mix: ~280 instructions.
        for (int round = 0; round < 46; ++round) {
            const Reg k = f.constant(round * 2654435761LL + 17);
            const Reg t1 = f.binop(Bc::Xor, acc, k);
            const Reg t2 = f.binop(Bc::Shr, t1, f.constant(7));
            const Reg t3 = f.add(t1, t2);
            const Reg t4 = f.mul(t3, f.constant(31));
            acc = f.add(t4, salt);
        }
        f.ret(acc);
        f.finish();
    }

    // The parser: dominant non-region work.
    const MethodId parse = pb.declareMethod("parseRule", 2);
    {
        auto f = pb.define(parse);
        Reg acc = f.arg(0);
        const Reg salt = f.arg(1);
        for (int site = 0; site < 16; ++site) {
            acc = f.callStatic(grind, {acc, salt});
            const Reg k = f.constant(site + 1);
            acc = f.binop(Bc::Xor, acc, k);
        }
        f.ret(acc);
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    // Input "file": synthesized characters.
    const Reg input = mb.newArray(mb.constant(file_len));
    {
        const Reg i = mb.constant(0);
        const Reg n = mb.constant(file_len);
        const Reg one = mb.constant(1);
        const Reg a = mb.constant(1103515245);
        const Reg c = mb.constant(12345);
        const Reg k127m = mb.constant(127);
        const Reg s = mb.constant(42);
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        mb.binopTo(Bc::Mul, s, s, a);
        mb.binopTo(Bc::Add, s, s, c);
        const Reg sh = mb.constant(16);
        const Reg hi = mb.binop(Bc::Shr, s, sh);
        // Characters 0..126: the control-character arm (c == 127)
        // profiles as never-taken, but its stores still block the
        // baseline's load availability at the join.
        mb.astore(input, i, mb.binop(Bc::Rem,
                                     mb.binop(Bc::And, hi,
                                              mb.constant(0xffff)),
                                     k127m));
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
    }
    const Reg buffer = mb.newObject(tokens);
    mb.putField(buffer, f_data, mb.newArray(mb.constant(1 << 14)));
    const Reg lex = mb.newObject(lexcls);
    {
        const Reg tbl = mb.newArray(mb.constant(128));
        const Reg i2 = mb.constant(0);
        const Reg n2 = mb.constant(128);
        const Reg one2 = mb.constant(1);
        const Reg k26 = mb.constant(26);
        const Reg k36 = mb.constant(36);
        const Reg k64 = mb.constant(64);
        const Label fill = mb.newLabel();
        const Label filled = mb.newLabel();
        mb.bind(fill);
        mb.branchCmp(Bc::CmpGe, i2, n2, filled);
        const Reg m = mb.binop(Bc::Rem, i2, k64);
        const Reg lt26 = mb.cmp(Bc::CmpLt, m, k26);
        const Reg ge26 = mb.cmp(Bc::CmpGe, m, k26);
        const Reg lt36 = mb.cmp(Bc::CmpLt, m, k36);
        const Reg dig = mb.binop(Bc::And, ge26, lt36);
        const Reg word = mb.binop(Bc::Or, lt26, dig);
        mb.astore(tbl, i2, word);
        mb.binopTo(Bc::Add, i2, i2, one2);
        mb.jump(fill);
        mb.bind(filled);
        mb.putField(lex, f_table, tbl);
    }

    const Reg total = mb.constant(0);
    // Four files = four samples (markers 10/11, 20/21, 30/31, 40/41).
    for (int file = 0; file < 4; ++file) {
        mb.marker(10 * (file + 1));
        const Reg pos = mb.constant(0);
        const Reg limit = mb.constant(file_len - 64);
        const Reg stride = mb.constant(48);
        const Reg salt = mb.constant(file + 3);
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, pos, limit, done);
        const Reg tok = mb.callStatic(tokenize,
                                      {input, buffer, lex, pos});
        const Reg parsed = mb.callStatic(parse, {tok, salt});
        mb.binopTo(Bc::Add, total, total, parsed);
        mb.binopTo(Bc::Add, pos, pos, stride);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
        mb.marker(10 * (file + 1) + 1);
    }
    mb.print(total);
    mb.print(mb.getField(buffer, f_len));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makeAntlr()
{
    Workload w;
    w.name = "antlr";
    w.description = "Generates parser/lexical analyzer";
    w.paperSamples = 4;
    w.build = buildAntlr;
    w.samples = {{10, 11, 0.4}, {20, 21, 0.3}, {30, 31, 0.2},
                 {40, 41, 0.1}};
    return w;
}

} // namespace aregion::workloads
