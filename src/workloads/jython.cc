/**
 * @file
 * jython analog: "Interprets pybench Python benchmark".
 *
 * An interpreter-in-the-interpreter: the hot loop dispatches over a
 * synthetic "Python bytecode" array and manipulates a PyList-backed
 * operand stack through getitem, the paper's Section 6.1 method: it
 * is called four times per hot iteration, and it contains a call
 * site that looks polymorphic from a caller-blind profile (PyList
 * and PyTuple both implement `unwrap`) yet is perfectly monomorphic
 * at the hot call site. The paper's partial inliner therefore
 * refuses to inline it in the `atomic` configuration; the
 * forced-monomorphic knob (the grey bar of Figure 7) recovers the
 * speedup.
 *
 * Targeted characteristics: highest coverage (~87%), the largest
 * regions (~227 uops), near-zero abort rate.
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildJython(bool profile_variant)
{
    const int iterations = profile_variant ? 40 : 130;
    const int pyprog_len = 128;

    ProgramBuilder pb;

    // --- Boxed element holders: the polymorphic pair --------------
    const ClassId holder = pb.declareClass("PyObject", {"value"});
    const int f_value = pb.fieldIndex(holder, "value");
    const ClassId int_holder =
        pb.declareClass("PyIntHolder", {}, holder);
    const ClassId str_holder =
        pb.declareClass("PyStrHolder", {}, holder);
    const MethodId unwrap_int =
        pb.declareVirtual(int_holder, "unwrap", 1);
    {
        auto f = pb.define(unwrap_int);
        f.ret(f.getField(f.self(), f_value));
        f.finish();
    }
    const MethodId unwrap_str =
        pb.declareVirtual(str_holder, "unwrap", 1);
    {
        auto f = pb.define(unwrap_str);
        const Reg v = f.getField(f.self(), f_value);
        const Reg k = f.constant(31);
        f.ret(f.mul(v, k));
        f.finish();
    }
    const int slot_unwrap = pb.virtualSlot("unwrap");

    // --- PyList with the paper's getitem ---------------------------
    const ClassId pylist = pb.declareClass("PyList",
                                           {"items", "boxes", "n"});
    const int f_items = pb.fieldIndex(pylist, "items");
    const int f_boxes = pb.fieldIndex(pylist, "boxes");
    const int f_n = pb.fieldIndex(pylist, "n");

    // getitem(list, idx): bounds logic + a virtual unwrap of the
    // boxed element -- the "polymorphic-looking" call site.
    const MethodId getitem = pb.declareMethod("getitem", 2);
    {
        auto f = pb.define(getitem);
        const Reg items = f.getField(f.self(), f_items);
        const Reg n = f.getField(f.self(), f_n);
        const Reg idx = f.arg(1);
        const Label bad = f.newLabel();
        const Reg zero = f.constant(0);
        f.branchCmp(Bc::CmpLt, idx, zero, bad);
        f.branchCmp(Bc::CmpGe, idx, n, bad);
        // Index normalisation (python-style negative-index and
        // slice handling): independent straight-line checks.
        Reg norm = f.constant(0);
        for (int step = 0; step < 5; ++step) {
            const Reg k = f.constant(step * 7 + 3);
            const Reg t1 = f.add(idx, k);
            const Reg t2 = f.binop(Bc::Xor, t1, idx);
            norm = f.add(norm, t2);
        }
        const Reg norm63 = f.binop(Bc::And, norm, f.constant(63));
        const Reg raw = f.aload(items, idx);
        const Reg raw2 = f.aload(items, norm63);
        const Reg boxes = f.getField(f.self(), f_boxes);
        const Reg box = f.aload(boxes, idx);
        const Reg unwrapped = f.callVirtual(slot_unwrap, {box});
        const Reg mix = f.add(raw, f.binop(Bc::Xor, raw2, raw2));
        f.ret(f.add(mix, unwrapped));
        f.bind(bad);        // cold: clamp to zero. The self-field
        // stores force the baseline to reload items/n/boxes per
        // call; inside regions this arm is an assert and the loads
        // coalesce across the unrolled getitem copies.
        f.putField(f.self(), f_items, items);
        f.putField(f.self(), f_n, n);
        f.ret(zero);
        f.finish();
    }

    // Cold-path user of PyStrHolder: makes the unwrap site look
    // polymorphic in the whole-program profile.
    const MethodId touch_strings = pb.declareMethod("touchStrings", 1);
    {
        auto f = pb.define(touch_strings);
        const Reg i = f.constant(0);
        const Reg n = f.constant(8);
        const Reg one = f.constant(1);
        const Reg acc = f.constant(0);
        const Label loop = f.newLabel();
        const Label done = f.newLabel();
        f.bind(loop);
        f.branchCmp(Bc::CmpGe, i, n, done);
        const Reg v = f.callVirtual(slot_unwrap, {f.arg(0)});
        f.binopTo(Bc::Add, acc, acc, v);
        f.binopTo(Bc::Add, i, i, one);
        f.jump(loop);
        f.bind(done);
        f.ret(acc);
        f.finish();
    }

    // --- The dispatch loop -----------------------------------------
    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    // Synthetic py-program: ops 0 (70%), 1 (29%), 2 (rare).
    const Reg code = mb.newArray(mb.constant(pyprog_len));
    {
        const Reg i = mb.constant(0);
        const Reg n = mb.constant(pyprog_len);
        const Reg one = mb.constant(1);
        const Reg k10 = mb.constant(10);
        const Reg k127 = mb.constant(127);
        const Label loop = mb.newLabel();
        const Label rare = mb.newLabel();
        const Label op1 = mb.newLabel();
        const Label next = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        const Reg r = mb.binop(Bc::Rem, i, k10);
        const Reg zero = mb.constant(0);
        const Reg is_rare = mb.cmp(Bc::CmpEq, i, k127);
        mb.branchIf(is_rare, rare);
        const Reg seven = mb.constant(7);
        const Reg is1 = mb.cmp(Bc::CmpGe, r, seven);
        mb.branchIf(is1, op1);
        mb.astore(code, i, zero);
        mb.jump(next);
        mb.bind(op1);
        const Reg one_v = mb.constant(1);
        mb.astore(code, i, one_v);
        mb.jump(next);
        mb.bind(rare);
        const Reg two_v = mb.constant(2);
        mb.astore(code, i, two_v);
        mb.jump(next);
        mb.bind(next);
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
    }

    // Operand stack: a PyList of 64 ints with int-holder boxes.
    const Reg stack = mb.newObject(pylist);
    const Reg cap = mb.constant(64);
    const Reg items = mb.newArray(cap);
    const Reg boxes = mb.newArray(cap);
    mb.putField(stack, f_items, items);
    mb.putField(stack, f_boxes, boxes);
    mb.putField(stack, f_n, cap);
    {
        const Reg i = mb.constant(0);
        const Reg one = mb.constant(1);
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, cap, done);
        mb.astore(items, i, i);
        const Reg box = mb.newObject(int_holder);
        mb.putField(box, f_value, i);
        mb.astore(boxes, i, box);
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
    }
    // A string holder exists and is unwrapped a few times (cold),
    // making the profile of `unwrap` polymorphic overall.
    const Reg sbox = mb.newObject(str_holder);
    const Reg k9 = mb.constant(9);
    mb.putField(sbox, f_value, k9);
    mb.print(mb.callStatic(touch_strings, {sbox}));

    // A PyStr-backed list processed outside the hot loop: getitem's
    // unwrap site becomes polymorphic in the caller-blind profile
    // (~20% PyStrHolder receivers) while remaining perfectly
    // monomorphic at the hot dispatch-loop call sites -- the paper's
    // Section 6.1 jython anecdote.
    {
        const Reg strlist = mb.newObject(pylist);
        const Reg cap2 = mb.constant(64);
        const Reg items2 = mb.newArray(cap2);
        const Reg boxes2 = mb.newArray(cap2);
        mb.putField(strlist, f_items, items2);
        mb.putField(strlist, f_boxes, boxes2);
        mb.putField(strlist, f_n, cap2);
        const Reg i = mb.constant(0);
        const Reg one = mb.constant(1);
        const Label fill = mb.newLabel();
        const Label filled = mb.newLabel();
        mb.bind(fill);
        mb.branchCmp(Bc::CmpGe, i, cap2, filled);
        mb.astore(items2, i, i);
        const Reg box = mb.newObject(str_holder);
        mb.putField(box, f_value, i);
        mb.astore(boxes2, i, box);
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(fill);
        mb.bind(filled);

        const Reg calls = mb.constant(550);
        const Reg j = mb.constant(0);
        const Reg m63 = mb.constant(63);
        const Reg acc = mb.constant(0);
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, j, calls, done);
        const Reg idx = mb.binop(Bc::And, j, m63);
        const Reg v = mb.callStatic(getitem, {strlist, idx});
        mb.binopTo(Bc::Add, acc, acc, v);
        mb.binopTo(Bc::Add, j, j, one);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
        mb.print(acc);
    }

    mb.marker(10);
    const Reg sum = mb.constant(0);
    const Reg it = mb.constant(0);
    const Reg iters = mb.constant(iterations);
    const Reg one = mb.constant(1);
    const Reg plen = mb.constant(pyprog_len);
    const Label outer = mb.newLabel();
    const Label outer_done = mb.newLabel();
    mb.bind(outer);
    mb.branchCmp(Bc::CmpGe, it, iters, outer_done);
    {
        // One pass over the py-program.
        const Reg pc = mb.constant(0);
        const Label fetch = mb.newLabel();
        const Label op_add = mb.newLabel();
        const Label op_load = mb.newLabel();
        const Label op_rare = mb.newLabel();
        const Label advance = mb.newLabel();
        const Label pass_done = mb.newLabel();
        mb.bind(fetch);
        mb.branchCmp(Bc::CmpGe, pc, plen, pass_done);
        const Reg op = mb.aload(code, pc);
        const Reg zero = mb.constant(0);
        const Reg is0 = mb.cmp(Bc::CmpEq, op, zero);
        mb.branchIf(is0, op_add);
        const Reg one_v = mb.constant(1);
        const Reg is1 = mb.cmp(Bc::CmpEq, op, one_v);
        mb.branchIf(is1, op_load);
        mb.jump(op_rare);

        mb.bind(op_add);    // hot: four getitem calls (the paper)
        {
            const Reg m63 = mb.constant(63);
            const Reg i0 = mb.binop(Bc::And, pc, m63);
            const Reg a = mb.callStatic(getitem, {stack, i0});
            const Reg i1 = mb.binop(Bc::And, mb.add(pc, one), m63);
            const Reg b = mb.callStatic(getitem, {stack, i1});
            const Reg i2 = mb.binop(Bc::And, mb.add(pc, mb.constant(2)),
                                    m63);
            const Reg c = mb.callStatic(getitem, {stack, i2});
            const Reg i3 = mb.binop(Bc::And, mb.add(pc, mb.constant(3)),
                                    m63);
            const Reg d = mb.callStatic(getitem, {stack, i3});
            const Reg t1 = mb.add(a, b);
            const Reg t2 = mb.add(c, d);
            mb.binopTo(Bc::Add, sum, sum, mb.add(t1, t2));
        }
        mb.jump(advance);

        mb.bind(op_load);   // warm: two getitem calls
        {
            const Reg m63 = mb.constant(63);
            const Reg i0 = mb.binop(Bc::And, pc, m63);
            const Reg a = mb.callStatic(getitem, {stack, i0});
            const Reg i1 = mb.binop(Bc::And, mb.add(pc, one), m63);
            const Reg b = mb.callStatic(getitem, {stack, i1});
            mb.binopTo(Bc::Add, sum, sum, mb.sub(a, b));
        }
        mb.jump(advance);

        mb.bind(op_rare);   // cold opcode
        mb.binopTo(Bc::Add, sum, sum, one);
        mb.jump(advance);

        mb.bind(advance);
        mb.binopTo(Bc::Add, pc, pc, one);
        mb.jump(fetch);
        mb.bind(pass_done);
    }
    mb.binopTo(Bc::Add, it, it, one);
    mb.safepoint();
    mb.jump(outer);
    mb.bind(outer_done);
    mb.marker(11);
    mb.print(sum);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makeJython()
{
    Workload w;
    w.name = "jython";
    w.description = "Interprets pybench Python benchmark";
    w.paperSamples = 1;
    w.build = buildJython;
    w.samples = {{10, 11, 1.0}};
    return w;
}

} // namespace aregion::workloads
