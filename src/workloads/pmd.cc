/**
 * @file
 * pmd analog: "Analyzes a set of Java classes".
 *
 * Rule checks over arrays of AST node kinds. The crucial property
 * (paper Section 6.1): the profiling input sees rule violations on
 * ~0.4% of nodes — cold, so the violation handlers become asserts —
 * but the measurement input's later class files violate rules on
 * several percent of nodes. The resulting ~2% abort rate makes the
 * atomic configuration a net LOSS for pmd, the paper's only
 * slowdown, and the showcase for adaptive recompilation (Section 7).
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildPmd(bool profile_variant)
{
    const int file_nodes = profile_variant ? 700 : 1200;
    // Violation spacing: profiling sees 1/256 (~0.4%), measurement's
    // drifted files see 1/40 (~2.5%).
    const int violate_profile = 256;
    const int violate_measure = profile_variant ? 256 : 300;

    ProgramBuilder pb;

    const ClassId report = pb.declareClass("Report", {"count", "sum"});
    const int f_count = pb.fieldIndex(report, "count");
    const int f_sum = pb.fieldIndex(report, "sum");

    // checkFile(nodes, report, salt): the rule loop.
    const MethodId check = pb.declareMethod("checkFile", 3);
    {
        auto f = pb.define(check);
        const Reg nodes = f.arg(0);
        const Reg rep = f.arg(1);
        const Reg salt = f.arg(2);
        const Reg n = f.alength(nodes);
        const Reg i = f.constant(0);
        const Reg one = f.constant(1);
        const Reg acc = f.constant(0);
        const Label loop = f.newLabel();
        const Label violation = f.newLabel();
        const Label next = f.newLabel();
        const Label done = f.newLabel();
        f.bind(loop);
        f.branchCmp(Bc::CmpGe, i, n, done);
        const Reg kind = f.aload(nodes, i);
        // Rule mix: cheap structural checks (hot path).
        const Reg k31 = f.constant(31);
        const Reg h1 = f.mul(kind, k31);
        const Reg h2 = f.add(h1, salt);
        const Reg k5 = f.constant(5);
        const Reg h3 = f.binop(Bc::Shr, h2, k5);
        f.binopTo(Bc::Add, acc, acc, h3);
        // The violation rule: node kind 99 (rare while profiling).
        const Reg k99 = f.constant(99);
        const Reg bad = f.cmp(Bc::CmpEq, kind, k99);
        f.branchIf(bad, violation);
        f.jump(next);
        f.bind(violation);      // drifts warm: the abort source
        const Reg c = f.getField(rep, f_count);
        f.putField(rep, f_count, f.add(c, one));
        const Reg s = f.getField(rep, f_sum);
        f.putField(rep, f_sum, f.add(s, i));
        f.jump(next);
        f.bind(next);
        f.binopTo(Bc::Add, i, i, one);
        f.jump(loop);
        f.bind(done);
        f.ret(acc);
        f.finish();
    }

    // "Class file parsing": a large straightline method no inlining
    // budget accepts; its call sites are region-free filler that
    // keeps pmd's region coverage low (~32% in Table 3).
    const MethodId parse_cf = pb.declareMethod("parseClassFile", 2);
    {
        auto f = pb.define(parse_cf);
        Reg acc = f.arg(0);
        const Reg salt = f.arg(1);
        for (int round = 0; round < 44; ++round) {
            const Reg k = f.constant(round * 40503 + 7);
            const Reg t1 = f.binop(Bc::Xor, acc, k);
            const Reg t2 = f.binop(Bc::Shr, t1, f.constant(5));
            const Reg t3 = f.add(t1, t2);
            const Reg t4 = f.mul(t3, f.constant(37));
            acc = f.add(t4, salt);
        }
        f.ret(acc);
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    // Two node-kind arrays: "clean" (profile-like violation rate)
    // and "drifted" (the measurement rate).
    auto build_nodes = [&](int violate_every) {
        const Reg arr = mb.newArray(mb.constant(file_nodes));
        const Reg i = mb.constant(0);
        const Reg n = mb.constant(file_nodes);
        const Reg one = mb.constant(1);
        const Reg vk = mb.constant(violate_every);
        const Reg k17 = mb.constant(17);
        const Label loop = mb.newLabel();
        const Label bad = mb.newLabel();
        const Label store = mb.newLabel();
        const Label done = mb.newLabel();
        const Reg kind = mb.newReg();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        const Reg r = mb.binop(Bc::Rem, i, vk);
        const Reg zero = mb.constant(0);
        const Reg is_bad = mb.cmp(Bc::CmpEq, r, zero);
        mb.branchIf(is_bad, bad);
        const Reg k = mb.binop(Bc::Rem, i, k17);
        mb.mov(kind, k);
        mb.jump(store);
        mb.bind(bad);
        mb.constTo(kind, 99);
        mb.jump(store);
        mb.bind(store);
        mb.astore(arr, i, kind);
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
        return arr;
    };
    const Reg clean = build_nodes(violate_profile);
    const Reg drifted = build_nodes(violate_measure);

    const Reg rep = mb.newObject(report);
    const Reg total = mb.constant(0);
    // Four samples: samples 1-2 check clean files, samples 3-4 the
    // drifted ones (where the aborts land).
    for (int sample = 0; sample < 4; ++sample) {
        mb.marker(10 * (sample + 1));
        const Reg files = mb.constant(2);
        const Reg p = mb.constant(0);
        const Reg one = mb.constant(1);
        const Reg salt = mb.constant(sample + 5);
        const Reg arr = sample < 2 ? clean : drifted;
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, p, files, done);
        {
            // Parse the class file (region-free work).
            const Reg q = mb.constant(0);
            const Reg nq = mb.constant(60);
            const Reg acc = mb.newReg();
            mb.mov(acc, total);
            const Label ploop = mb.newLabel();
            const Label pdone = mb.newLabel();
            mb.bind(ploop);
            mb.branchCmp(Bc::CmpGe, q, nq, pdone);
            const Reg pr = mb.callStatic(parse_cf, {acc, salt});
            mb.mov(acc, pr);
            mb.binopTo(Bc::Add, q, q, one);
            mb.jump(ploop);
            mb.bind(pdone);
            mb.binopTo(Bc::Add, total, total, acc);
        }
        const Reg r = mb.callStatic(check, {arr, rep, salt});
        mb.binopTo(Bc::Add, total, total, r);
        mb.binopTo(Bc::Add, p, p, one);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
        mb.marker(10 * (sample + 1) + 1);
    }
    mb.print(total);
    mb.print(mb.getField(rep, f_count));
    mb.print(mb.getField(rep, f_sum));
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makePmd()
{
    Workload w;
    w.name = "pmd";
    w.description = "Analyzes a set of Java classes";
    w.paperSamples = 4;
    w.build = buildPmd;
    w.samples = {{10, 11, 0.25}, {20, 21, 0.25}, {30, 31, 0.25},
                 {40, 41, 0.25}};
    return w;
}

} // namespace aregion::workloads
