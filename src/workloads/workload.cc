#include "workloads/workload.hh"

#include "support/logging.hh"

namespace aregion::workloads {

const std::vector<Workload> &
dacapoSuite()
{
    static const std::vector<Workload> suite = [] {
        std::vector<Workload> w;
        w.push_back(makeAntlr());
        w.push_back(makeBloat());
        w.push_back(makeFop());
        w.push_back(makeHsqldb());
        w.push_back(makeJython());
        w.push_back(makePmd());
        w.push_back(makeXalan());
        return w;
    }();
    return suite;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload &w : dacapoSuite()) {
        if (w.name == name)
            return w;
    }
    AREGION_PANIC("unknown workload ", name);
}

} // namespace aregion::workloads
