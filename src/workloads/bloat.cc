/**
 * @file
 * bloat analog: "Bytecode analysis and optimization tool".
 *
 * Four analysis passes over a linked graph of instruction nodes
 * (pointer chasing plus biased per-node type dispatch). Passes are
 * the paper's four samples; the last (least-dominant, weight ~0.1)
 * phase analyzes drifted data in which a profile-cold node type
 * becomes common, concentrating nearly all aborts in that one sample
 * (the paper: bloat's bad sample runs 33% slower, the others carry
 * the 30%+ speedup).
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildBloat(bool profile_variant)
{
    const int nodes = profile_variant ? 600 : 800;
    const int passes_per_sample = profile_variant ? 6 : 18;
    // Node type 3 frequency in the last pass's extra work: cold in
    // the profiling input, common in the measurement input.
    const int rare_every = profile_variant ? 400 : 90;

    ProgramBuilder pb;

    const ClassId node = pb.declareClass(
        "InsnNode", {"kind", "operand", "next", "flags"});
    // Analysis configuration; "scale" shares field index 1 with
    // InsnNode.operand, which the cold kind-3 arm stores to: the
    // baseline therefore reloads it every node, while regions (with
    // the cold arm converted to an assert) keep it available.
    const ClassId conf = pb.declareClass(
        "AnalysisConfig", {"pad0", "scale", "pad2", "pad3"});
    const int f_scale = pb.fieldIndex(conf, "scale");
    const int f_kind = pb.fieldIndex(node, "kind");
    const int f_operand = pb.fieldIndex(node, "operand");
    const int f_next = pb.fieldIndex(node, "next");
    const int f_flags = pb.fieldIndex(node, "flags");

    // One analysis sweep over the chain.
    const MethodId sweep = pb.declareMethod("sweep", 3);
    {
        auto f = pb.define(sweep);
        const Reg head = f.arg(0);
        const Reg salt = f.arg(1);
        const Reg cfg = f.arg(2);
        const Reg acc = f.constant(0);
        const Reg cur = f.newReg();
        f.mov(cur, head);
        const Reg zero = f.constant(0);
        const Label loop = f.newLabel();
        const Label k0 = f.newLabel();
        const Label k1 = f.newLabel();
        const Label k3 = f.newLabel();
        const Label next = f.newLabel();
        const Label done = f.newLabel();
        f.bind(loop);
        f.branchCmp(Bc::CmpEq, cur, zero, done);
        // Loaded every node: the cold kind-3 arm stores to the same
        // field index, so baseline AVAIL loses it at the loop join.
        const Reg scale = f.getField(cfg, f_scale);
        const Reg kind = f.getField(cur, f_kind);
        const Reg operand = f.getField(cur, f_operand);
        const Reg is0 = f.cmp(Bc::CmpEq, kind, zero);
        f.branchIf(is0, k0);
        const Reg one = f.constant(1);
        const Reg is1 = f.cmp(Bc::CmpEq, kind, one);
        f.branchIf(is1, k1);
        const Reg three = f.constant(3);
        const Reg is3 = f.cmp(Bc::CmpEq, kind, three);
        f.branchIf(is3, k3);
        // kind 2: common alternative.
        const Reg t2 = f.binop(Bc::Xor, operand, salt);
        f.binopTo(Bc::Add, acc, acc, t2);
        f.putField(cur, f_flags, t2);
        f.jump(next);
        f.bind(k0);     // dominant kind (arith simplification)
        {
            const Reg t = f.mul(operand, scale);
            const Reg t2 = f.add(t, salt);
            f.binopTo(Bc::Add, acc, acc, t2);
            f.putField(cur, f_flags, t2);
        }
        f.jump(next);
        f.bind(k1);     // second common kind
        {
            const Reg sh = f.constant(3);
            const Reg t = f.binop(Bc::Shr, operand, sh);
            const Reg t2 = f.add(t, scale);
            f.binopTo(Bc::Add, acc, acc, t2);
        }
        f.jump(next);
        f.bind(k3);     // cold while profiling, warm when drifted
        {
            const Reg flags = f.getField(cur, f_flags);
            const Reg k7 = f.constant(7);
            const Reg t = f.binop(Bc::Rem, flags, k7);
            f.binopTo(Bc::Add, acc, acc, t);
            f.putField(cur, f_operand, t);
        }
        f.jump(next);
        f.bind(next);
        f.getFieldTo(cur, cur, f_next);
        f.jump(loop);
        f.bind(done);
        f.ret(acc);
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    // Build the node chain: kinds 0 (70%), 1 (20%), 2 (9.x%), with
    // kind 3 appearing every `rare_every` nodes.
    const Reg head = mb.newObject(node);
    {
        const Reg prev = mb.newReg();
        mb.mov(prev, head);
        const Reg i = mb.constant(1);
        const Reg n = mb.constant(nodes);
        const Reg one = mb.constant(1);
        const Reg rare_k = mb.constant(rare_every);
        const Label loop = mb.newLabel();
        const Label pick3 = mb.newLabel();
        const Label pick01 = mb.newLabel();
        const Label store = mb.newLabel();
        const Label done = mb.newLabel();
        const Reg kind = mb.newReg();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        const Reg fresh = mb.newObject(node);
        mb.putField(fresh, f_operand, i);
        const Reg r3 = mb.binop(Bc::Rem, i, rare_k);
        const Reg zero = mb.constant(0);
        const Reg is_rare = mb.cmp(Bc::CmpEq, r3, zero);
        mb.branchIf(is_rare, pick3);
        mb.jump(pick01);
        mb.bind(pick3);
        mb.constTo(kind, 3);
        mb.jump(store);
        mb.bind(pick01);
        {
            const Reg three = mb.constant(3);
            const Reg r = mb.binop(Bc::Rem, i, three);
            const Reg two = mb.constant(2);
            const Label k1l = mb.newLabel();
            mb.branchCmp(Bc::CmpGe, r, two, k1l);
            mb.constTo(kind, 0);
            mb.jump(store);
            mb.bind(k1l);
            mb.constTo(kind, 1);
            mb.jump(store);
        }
        mb.bind(store);
        mb.putField(fresh, f_kind, kind);
        mb.putField(prev, f_next, fresh);
        mb.mov(prev, fresh);
        mb.binopTo(Bc::Add, i, i, one);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
    }

    // Four samples; drift only matters in sample 4's data: build a
    // SECOND chain whose kind-3 rate follows `rare_every`, while
    // samples 1-3 sweep a clean chain (kind 3 at 1/250 always).
    const Reg clean_head = mb.newObject(node);
    {
        const Reg prev = mb.newReg();
        mb.mov(prev, clean_head);
        const Reg i = mb.constant(1);
        const Reg n = mb.constant(nodes);
        const Reg one = mb.constant(1);
        const Reg rare_k = mb.constant(400);
        const Label loop = mb.newLabel();
        const Label pick3 = mb.newLabel();
        const Label pick01 = mb.newLabel();
        const Label store = mb.newLabel();
        const Label done = mb.newLabel();
        const Reg kind = mb.newReg();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        const Reg fresh = mb.newObject(node);
        mb.putField(fresh, f_operand, i);
        const Reg r3 = mb.binop(Bc::Rem, i, rare_k);
        const Reg zero = mb.constant(0);
        const Reg is_rare = mb.cmp(Bc::CmpEq, r3, zero);
        mb.branchIf(is_rare, pick3);
        mb.jump(pick01);
        mb.bind(pick3);
        mb.constTo(kind, 3);
        mb.jump(store);
        mb.bind(pick01);
        {
            const Reg three = mb.constant(3);
            const Reg r = mb.binop(Bc::Rem, i, three);
            const Reg two = mb.constant(2);
            const Label k1l = mb.newLabel();
            mb.branchCmp(Bc::CmpGe, r, two, k1l);
            mb.constTo(kind, 0);
            mb.jump(store);
            mb.bind(k1l);
            mb.constTo(kind, 1);
            mb.jump(store);
        }
        mb.bind(store);
        mb.putField(fresh, f_kind, kind);
        mb.putField(prev, f_next, fresh);
        mb.mov(prev, fresh);
        mb.binopTo(Bc::Add, i, i, one);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
    }

    const Reg acfg = mb.newObject(conf);
    mb.putField(acfg, f_scale, mb.constant(31));

    const Reg total = mb.constant(0);
    for (int sample = 0; sample < 4; ++sample) {
        mb.marker(10 * (sample + 1));
        const Reg p = mb.constant(0);
        const Reg np = mb.constant(passes_per_sample);
        const Reg one = mb.constant(1);
        const Reg salt = mb.constant(sample + 11);
        const Reg which = sample == 3 ? head : clean_head;
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, p, np, done);
        const Reg r = mb.callStatic(sweep, {which, salt, acfg});
        mb.binopTo(Bc::Add, total, total, r);
        mb.binopTo(Bc::Add, p, p, one);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
        mb.marker(10 * (sample + 1) + 1);
    }
    mb.print(total);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makeBloat()
{
    Workload w;
    w.name = "bloat";
    w.description = "Bytecode analysis and optimization tool";
    w.paperSamples = 4;
    w.build = buildBloat;
    w.samples = {{10, 11, 0.35}, {20, 21, 0.30}, {30, 31, 0.25},
                 {40, 41, 0.10}};
    return w;
}

} // namespace aregion::workloads
