/**
 * @file
 * The evaluation workloads: synthetic analogs of the seven DaCapo
 * benchmarks in the paper's Table 2, modeled on each benchmark's
 * published structural characteristics (region coverage, region
 * size, abort behaviour, monitor usage, phase structure). The
 * substitution rationale per workload lives in DESIGN.md.
 *
 * Each workload builds two program variants: the profiling input and
 * the measurement input. They share identical code (so profiles
 * transfer); only embedded data constants differ, which is how
 * profile-drift effects (pmd, bloat's bad sample) are reproduced.
 */

#ifndef AREGION_WORKLOADS_WORKLOAD_HH
#define AREGION_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "runtime/jit.hh"
#include "vm/program.hh"

namespace aregion::workloads {

struct Workload
{
    std::string name;
    std::string description;        ///< Table 2 text
    int paperSamples = 1;           ///< Table 2 '#'

    /** Build the program; profile_variant selects the smaller
     *  profiling input. */
    std::function<vm::Program(bool profile_variant)> build;

    /** Marker-delimited measurement samples with phase weights. */
    std::vector<runtime::SampleSpec> samples;
};

/** The seven-benchmark suite, in the paper's order. */
const std::vector<Workload> &dacapoSuite();

/** Lookup by name; panics when unknown. */
const Workload &workloadByName(const std::string &name);

/** Individual factories (registry building blocks and tests). */
Workload makeAntlr();
Workload makeBloat();
Workload makeFop();
Workload makeHsqldb();
Workload makeJython();
Workload makePmd();
Workload makeXalan();

} // namespace aregion::workloads

#endif // AREGION_WORKLOADS_WORKLOAD_HH
