/**
 * @file
 * fop analog: "Parses/formats XSL-FO to generate PDF".
 *
 * Recursive layout over a tree of boxes plus glyph-metric string
 * building. The recursion keeps methods un-inlinable (self calls)
 * and splits regions at every call, giving the paper's profile: low
 * coverage (~20%) and the smallest regions (~32 uops). Two samples.
 */

#include "workloads/workload.hh"

#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::workloads {

using namespace aregion::vm;

namespace {

Program
buildFop(bool profile_variant)
{
    const int tree_depth = profile_variant ? 9 : 11;
    const int relayouts = profile_variant ? 3 : 6;

    ProgramBuilder pb;

    const ClassId box = pb.declareClass(
        "Box", {"left", "right", "width", "pad", "x"});
    const int f_left = pb.fieldIndex(box, "left");
    const int f_right = pb.fieldIndex(box, "right");
    const int f_width = pb.fieldIndex(box, "width");
    const int f_pad = pb.fieldIndex(box, "pad");
    const int f_x = pb.fieldIndex(box, "x");

    // Recursive build(depth): full binary tree of boxes.
    const MethodId build_tree = pb.declareMethod("buildTree", 1);
    {
        auto f = pb.define(build_tree);
        const Reg depth = f.arg(0);
        const Reg b = f.newObject(box);
        const Reg k3 = f.constant(3);
        const Reg seven = f.constant(7);
        const Reg w = f.add(f.mul(depth, k3), seven);
        f.putField(b, f_width, w);
        f.putField(b, f_pad, f.constant(2));
        const Label leaf = f.newLabel();
        const Reg one = f.constant(1);
        f.branchCmp(Bc::CmpLe, depth, one, leaf);
        const Reg d1 = f.sub(depth, one);
        const Reg l = f.callStatic(build_tree, {d1});
        f.putField(b, f_left, l);
        const Reg r = f.callStatic(build_tree, {d1});
        f.putField(b, f_right, r);
        f.bind(leaf);
        f.ret(b);
        f.finish();
    }

    // Recursive layout(box, x): assigns positions; the straightline
    // metric code between the two recursive calls forms the small
    // regions.
    const MethodId layout = pb.declareMethod("layout", 2);
    {
        auto f = pb.define(layout);
        const Reg b = f.arg(0);
        const Reg x = f.arg(1);
        const Reg zero = f.constant(0);
        const Label leaf = f.newLabel();
        const Label clamp = f.newLabel();
        const Label metrics = f.newLabel();
        // Glyph metric mix: checks + arithmetic (region fodder).
        const Reg w = f.getField(b, f_width);
        const Reg pad = f.getField(b, f_pad);
        const Reg k31 = f.constant(31);
        const Reg m1 = f.mul(w, k31);
        const Reg m2 = f.add(m1, pad);
        const Reg m3 = f.binop(Bc::Xor, m2, x);
        // Cold clamp path: stores to `width`, which forces the
        // baseline to reload width/pad below; regions prune it.
        f.branchCmp(Bc::CmpLt, m3, zero, clamp);
        f.jump(metrics);
        f.bind(clamp);
        // Clamping dirties the child box: stores through a different
        // base with the same field indices, so the baseline cannot
        // prove the parent's width/pad reloads below redundant.
        {
            const Reg child = f.getField(b, f_left);
            f.putField(child, f_width, zero);
            f.putField(child, f_pad, zero);
        }
        f.jump(metrics);
        f.bind(metrics);
        // Accessor-style code re-reads width/pad several times; the
        // clamp arm's stores block baseline reuse at the join.
        const Reg w2 = f.getField(b, f_width);
        const Reg pad2 = f.getField(b, f_pad);
        const Reg k7 = f.constant(7);
        const Reg m4 = f.binop(Bc::Rem, m3, f.constant(997));
        const Reg m5a = f.add(m4, k7);
        const Reg w3 = f.getField(b, f_width);
        const Reg pad3 = f.getField(b, f_pad);
        const Reg border = f.add(w3, pad3);
        const Reg w4 = f.getField(b, f_width);
        const Reg inner = f.sub(border, w4);
        const Reg m5b = f.add(m5a, w2);
        const Reg m5c = f.add(m5b, inner);
        const Reg m5d = f.sub(m5c, w2);
        const Reg m5 = f.sub(m5d, inner);
        f.putField(b, f_x, m5);
        const Reg l = f.getField(b, f_left);
        f.branchCmp(Bc::CmpEq, l, zero, leaf);
        const Reg lx = f.callStatic(layout, {l, m5});
        const Reg r = f.getField(b, f_right);
        const Reg rx = f.callStatic(layout, {r, lx});
        f.ret(f.add(rx, pad2));
        f.bind(leaf);
        f.ret(f.add(m5, w2));
        f.finish();
    }

    const MethodId mm = pb.declareMethod("main", 0);
    auto mb = pb.define(mm);
    const Reg depth = mb.constant(tree_depth);
    const Reg root = mb.callStatic(build_tree, {depth});

    const Reg total = mb.constant(0);
    for (int sample = 0; sample < 2; ++sample) {
        mb.marker(10 * (sample + 1));
        const Reg p = mb.constant(0);
        const Reg np = mb.constant(relayouts);
        const Reg one = mb.constant(1);
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, p, np, done);
        const Reg x0 = mb.add(p, mb.constant(sample * 13));
        const Reg r = mb.callStatic(layout, {root, x0});
        mb.binopTo(Bc::Add, total, total, r);
        mb.binopTo(Bc::Add, p, p, one);
        mb.safepoint();
        mb.jump(loop);
        mb.bind(done);
        mb.marker(10 * (sample + 1) + 1);
    }
    mb.print(total);
    mb.retVoid();
    mb.finish();
    pb.setMain(mm);

    Program prog = pb.build();
    verifyOrDie(prog);
    return prog;
}

} // namespace

Workload
makeFop()
{
    Workload w;
    w.name = "fop";
    w.description = "Parses/formats XSL-FO to generate PDF";
    w.paperSamples = 2;
    w.build = buildFop;
    w.samples = {{10, 11, 0.6}, {20, 21, 0.4}};
    return w;
}

} // namespace aregion::workloads
